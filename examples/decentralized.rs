//! The fully distributed deployment: every peer and every helper is an
//! OS thread; the only communication is message passing (bootstrap via a
//! tracker, per-epoch requests and rate replies). An impairment plan
//! injects data-plane loss and timing jitter.
//!
//! A fault-free threaded run reproduces the single-threaded simulator
//! bit-for-bit — checked live at the end.
//!
//! Run with: `cargo run --release --example decentralized`

use rths_suite::prelude::*;
use rths_suite::sparkline;

fn main() {
    let epochs = 800;
    let sim_config = Scenario::paper_small().seed(3).build();

    println!("spawning 10 peer threads + 4 helper threads + tracker…\n");
    let clean = NetRuntime::new(NetConfig::from_sim(sim_config.clone())).run(epochs);
    println!("clean run      welfare {}", sparkline(clean.metrics.welfare.values(), 56));

    let lossy_plan =
        ImpairmentPlan::builder(77).uniform_loss(0.2).build().unwrap().with_jitter(50);
    let lossy =
        NetRuntime::new(NetConfig::from_sim(sim_config.clone()).with_impairments(lossy_plan))
            .run(epochs);
    println!("20% loss+jitter welfare {}", sparkline(lossy.metrics.welfare.values(), 56));

    println!(
        "\nconverged welfare: clean {:.0} kbps, lossy {:.0} kbps",
        clean.metrics.tail_welfare(200),
        lossy.metrics.tail_welfare(200),
    );
    println!(
        "worst-peer empirical regret: clean {:.1}, lossy {:.1}",
        clean.metrics.worst_empirical_regret.tail_mean(200),
        lossy.metrics.worst_empirical_regret.tail_mean(200),
    );

    // Live cross-check against the monolithic simulator.
    let mut reference = System::new(sim_config);
    let sim_out = reference.run(epochs);
    let identical = sim_out
        .metrics
        .welfare
        .values()
        .iter()
        .zip(clean.metrics.welfare.values())
        .all(|(a, b)| a == b);
    println!(
        "\nthreaded runtime vs simulator, same seed: {}",
        if identical { "bit-for-bit IDENTICAL" } else { "DIVERGED (bug!)" }
    );
    assert!(identical);
}
