//! A flash crowd hits a live channel: the audience surges 10×, helper
//! capacity saturates, the streaming server absorbs the deficit, and the
//! system drains back to normal when the event ends — all while every
//! peer keeps selecting helpers with only local feedback.
//!
//! Run with: `cargo run --release --example flash_crowd`

use rths_stoch::process::{ChurnProcess, FlashCrowd};
use rths_suite::prelude::*;
use rths_suite::sparkline;

fn main() {
    let config = SimConfig::builder(40, vec![BandwidthSpec::Paper { stay: 0.98 }; 8])
        .churn(ChurnProcess::new(0.8, 0.02))
        .demand(300.0)
        .seed(9)
        .build();
    let mut system = System::new(config);

    let crowd = FlashCrowd::new(1000, 1600, 10.0);
    println!("flash crowd: arrivals x10 during epochs [1000, 1600)\n");
    let outcome = rths_sim::workload::run_flash_crowd(&mut system, 3000, crowd);

    let m = &outcome.metrics;
    println!("population   {}", sparkline(m.population.values(), 66));
    println!("server load  {}", sparkline(m.server_load.values(), 66));
    println!("welfare      {}", sparkline(m.welfare.values(), 66));
    println!("jain index   {}", sparkline(m.jain.values(), 66));

    let phase = |label: &str, range: std::ops::Range<usize>| {
        let pop = rths_math::stats::mean(&m.population.values()[range.clone()]);
        let load = rths_math::stats::mean(&m.server_load.values()[range.clone()]);
        let welfare = rths_math::stats::mean(&m.welfare.values()[range]);
        println!("{label:<12} population {pop:6.0}   server load {load:8.0} kbps   delivered {welfare:8.0} kbps");
    };
    println!();
    phase("before", 800..1000);
    phase("during", 1300..1600);
    phase("after", 2800..3000);

    println!(
        "\nhelpers cushioned the surge: the server covered only the residual demand\n\
         (total demand during the crowd was ~{:.0} kbps).",
        rths_math::stats::mean(&m.population.values()[1300..1600]) * 300.0
    );
}
