//! The multi-channel extension (the paper's stated future work): helpers
//! jointly allocate bandwidth across the channels they serve while peers
//! select helpers within their channel — and the allocation policy
//! matters.
//!
//! Run with: `cargo run --release --example multi_channel`

use rths_suite::prelude::*;

fn run(policy: AllocationPolicy) -> rths_sim::multichannel::MultiChannelOutcome {
    let config = MultiChannelConfig::standard(
        /* channels */ 4, /* bitrate  */ 400.0, /* helpers  */ 8,
        /* channels per helper */ 2, /* viewers  */ 80, /* zipf s   */ 1.5,
        policy, /* seed */ 5,
    );
    MultiChannelSystem::new(config).run(2500)
}

fn main() {
    println!(
        "4 channels (Zipf-1.5 popularity), 8 helpers serving 2 channels each,\n\
         80 viewers at 400 kbps — comparing helper-level allocation policies\n"
    );
    println!(
        "{:<20} {:>10} {:>10} {:>10} {:>9}",
        "policy", "delivered", "server", "fairness", "regret"
    );
    for (name, policy) in [
        ("even split", AllocationPolicy::EvenSplit),
        ("load proportional", AllocationPolicy::LoadProportional),
        ("water filling", AllocationPolicy::WaterFilling),
    ] {
        let out = run(policy);
        println!(
            "{:<20} {:>8.0}k {:>8.0}k {:>10.3} {:>9.1}",
            name,
            out.welfare.tail_mean(400),
            out.server_load.tail_mean(400),
            out.viewer_fairness,
            out.worst_empirical_regret.tail_mean(400),
        );
    }

    let out = run(AllocationPolicy::WaterFilling);
    println!("\nper-channel detail (water filling):");
    println!("{:<9} {:>9} {:>12} {:>11}", "channel", "viewers", "delivered", "continuity");
    let viewers = MultiChannelConfig::zipf_population(4, 80, 1.5);
    for (c, &v) in viewers.iter().enumerate() {
        println!(
            "{c:<9} {v:>9} {:>10.0}k {:>11.2}",
            out.mean_channel_rates[c], out.channel_continuity[c]
        );
    }
    println!(
        "\ndemand-aware water filling routes helper bandwidth to where the\n\
         audience actually is; the static even split strands capacity on\n\
         unpopular channels."
    );
}
