//! Quickstart: the paper's small-scale scenario in ~30 lines.
//!
//! Ten peers select among four helpers whose upload bandwidth wanders
//! over `[700, 800, 900]` kbps. Every peer runs RTHS with nothing but its
//! own realized streaming rate; we watch the worst peer's regret fall and
//! compare the social welfare against the centralized MDP optimum.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::SeedableRng;
use rths_suite::prelude::*;
use rths_suite::sparkline;

fn main() {
    let config = Scenario::paper_small().seed(7).build();
    let mut system = System::new(config);
    let outcome = system.run(5000);

    // Centralized benchmark (§IV.A): expected optimum is Σ_j E[C_j].
    let bench = MdpBenchmark::from_parts(
        vec![vec![700.0, 800.0, 900.0]; 4],
        vec![vec![0.25, 0.5, 0.25]; 4],
        10,
        None,
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let optimum = bench.optimal_welfare(&mut rng);

    let regret = &outcome.metrics.worst_empirical_regret;
    let welfare = &outcome.metrics.welfare;
    println!("RTHS on the paper's N=10, H=4 scenario (5000 epochs)\n");
    println!("worst-peer regret  {}", sparkline(regret.values(), 60));
    println!(
        "                   start {:8.1} -> end {:8.1} kbps",
        regret.values()[10],
        regret.tail_mean(200)
    );
    println!("social welfare     {}", sparkline(welfare.values(), 60));
    println!(
        "                   converged {:6.0} kbps vs MDP optimum {:6.0} kbps ({:.1}%)",
        welfare.tail_mean(500),
        optimum,
        100.0 * welfare.tail_mean(500) / optimum
    );
    println!("\nhelper load (mean peers per helper, target 2.5 each):");
    for (j, load) in outcome.metrics.mean_helper_loads.iter().enumerate() {
        println!("  helper {j}: {load:5.2}  {}", "#".repeat((load * 8.0) as usize));
    }
    println!("\nper-peer mean rates (fair share 320 kbps):");
    for (i, rate) in outcome.metrics.mean_peer_rates.iter().enumerate() {
        println!("  peer {i}: {rate:6.1} kbps");
    }
    println!(
        "\nJain fairness index of long-run rates: {:.4}",
        outcome.metrics.long_run_fairness()
    );
}
