//! The paper's core design argument, demonstrated: regret *tracking*
//! (recency-weighted averaging) adapts to helper bandwidth shifts that
//! regret *matching* (uniform averaging) follows only sluggishly.
//!
//! Half the helpers collapse from 900 to 100 kbps mid-run. Tracking peers
//! evacuate within a few hundred epochs; matching peers stay anchored to
//! stale averages and keep crowding the degraded helpers for thousands.
//!
//! Run with: `cargo run --release --example tracking_vs_matching`

use rths_suite::prelude::*;
use rths_suite::sparkline;

const SHIFT_EPOCH: u64 = 3000;
const TOTAL_EPOCHS: u64 = 6000;

/// Per-epoch total load on the three degraded helpers (indices 0, 2, 4).
fn degraded_load_series(out: &rths_sim::Outcome) -> Vec<f64> {
    let n = out.metrics.epochs();
    (0..n)
        .map(|e| [0usize, 2, 4].iter().map(|&j| out.metrics.helper_loads[j].values()[e]).sum())
        .collect()
}

fn run(algorithm: Algorithm) -> rths_sim::Outcome {
    let config = Scenario::regime_shift(SHIFT_EPOCH)
        .learner(LearnerSpec { algorithm, ..LearnerSpec::default() })
        .seed(42)
        .build();
    System::new(config).run(TOTAL_EPOCHS)
}

fn main() {
    println!(
        "60 peers, 6 helpers; helpers 0/2/4 collapse 900 -> 100 kbps at epoch {SHIFT_EPOCH}\n"
    );
    let tracking = run(Algorithm::Rths);
    let matching = run(Algorithm::RegretMatching);

    let mut summaries = Vec::new();
    for (name, out) in [("TRACKING (RTHS)", &tracking), ("MATCHING (uniform)", &matching)] {
        let series = degraded_load_series(out);
        let shift = SHIFT_EPOCH as usize;
        let mean = |lo: usize, hi: usize| rths_math::stats::mean(&series[lo..hi]);
        let pre = mean(shift - 300, shift);
        let at300 = mean(shift + 200, shift + 400);
        let at1000 = mean(shift + 900, shift + 1100);
        let end = mean(series.len() - 300, series.len());
        println!("{name}");
        println!("  load on degraded helpers  {}", sparkline(&series, 66));
        println!(
            "  pre-shift {pre:5.1}   +300 epochs {at300:5.1}   +1000 epochs {at1000:5.1}   end {end:5.1}"
        );
        println!();
        summaries.push((pre, at300, end));
    }

    let (pre_t, t300, t_end) = summaries[0];
    let (_, m300, _) = summaries[1];
    let evac_t = pre_t - t300;
    let evac_m = pre_t - m300;
    println!(
        "300 epochs after the collapse, tracking has shed {evac_t:.1} peers from the\n\
         degraded helpers; matching only {evac_m:.1}. That gap — the ability to\n\
         \"gradually let go of the past\" (paper §II) — is why RTHS replaces the\n\
         uniform average of classic regret matching. (steady state ≈ {t_end:.1})"
    );
}
