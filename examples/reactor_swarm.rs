//! A reactor-hosted swarm: 2,000 peers and 40 helpers in one process.
//!
//! The thread-per-actor runtime would need 2,040 OS threads for this
//! population; the reactor backend hosts every actor as a poll-driven
//! state machine and needs none beyond the calling thread (plus at most
//! `RTHS_THREADS − 1` scoped workers while a round is being sharded).
//! The run prints per-epoch welfare and, on Linux, the peak OS thread
//! count observed while the swarm was live — the receipts for the
//! "thousands of peers per thread" claim.
//!
//! ```sh
//! cargo run --release --example reactor_swarm
//! RTHS_SWARM_PEERS=4950 RTHS_SWARM_HELPERS=50 cargo run --release --example reactor_swarm
//! ```
//!
//! Env knobs: `RTHS_SWARM_PEERS` (2000), `RTHS_SWARM_HELPERS` (40),
//! `RTHS_SWARM_EPOCHS` (50), `RTHS_SWARM_THREAD_CHECK=1` to fail loudly
//! if the process ever exceeds the `RTHS_THREADS` budget (+ main + the
//! sampler itself).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use rths_suite::net::{Backend, NetConfig, ReactorRuntime};
use rths_suite::sim::{BandwidthSpec, SimConfig};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Current OS thread count of this process (Linux; `None` elsewhere).
fn os_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status.lines().find(|l| l.starts_with("Threads:"))?.split_whitespace().nth(1)?.parse().ok()
}

fn main() {
    let peers = env_usize("RTHS_SWARM_PEERS", 2_000);
    let helpers = env_usize("RTHS_SWARM_HELPERS", 40);
    let epochs = env_usize("RTHS_SWARM_EPOCHS", 50) as u64;
    let check_threads = std::env::var("RTHS_SWARM_THREAD_CHECK").is_ok_and(|v| v != "0");
    let workers = rths_suite::par::threads();

    println!(
        "reactor swarm: {peers} peers + {helpers} helpers = {} actors, {epochs} epochs, \
         RTHS_THREADS={workers}",
        peers + helpers
    );

    // A background sampler records the peak OS thread count while the
    // swarm runs; the reactor itself never spawns more than the
    // RTHS_THREADS budget (scoped rths_par workers, alive only inside a
    // round).
    let stop = Arc::new(AtomicBool::new(false));
    let peak = Arc::new(AtomicUsize::new(0));
    let sampler = os_threads().map(|_| {
        let stop = Arc::clone(&stop);
        let peak = Arc::clone(&peak);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if let Some(now) = os_threads() {
                    peak.fetch_max(now, Ordering::Relaxed);
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        })
    });

    let sim = SimConfig::builder(peers, vec![BandwidthSpec::Paper { stay: 0.98 }; helpers])
        .seed(42)
        .build();
    let config = NetConfig::from_sim(sim).with_backend(Backend::Reactor);
    // rths: allow(wall-clock): demo prints wall time; never feeds simulation state.
    let start = std::time::Instant::now();
    let mut runtime = ReactorRuntime::new(config);
    runtime.run_epochs(epochs);
    let stats = runtime.stats();
    let out = runtime.finish();
    let secs = start.elapsed().as_secs_f64();

    stop.store(true, Ordering::Relaxed);
    if let Some(handle) = sampler {
        let _ = handle.join();
    }

    println!("\n{:>7}  {:>14}  {:>12}", "epoch", "welfare kbps", "switches");
    for (e, (&w, &s)) in
        out.metrics.welfare.values().iter().zip(out.metrics.switches.values()).enumerate()
    {
        println!("{e:>7}  {w:>14.1}  {s:>12.0}");
    }

    let actor_epochs = ((peers + helpers) as u64 * epochs) as f64;
    println!(
        "\n{} epochs in {:.2}s — {:.0} actor-epochs/sec, {} scheduler rounds, {} messages",
        out.epochs,
        secs,
        actor_epochs / secs.max(1e-12),
        stats.rounds,
        stats.messages
    );
    println!(
        "mean welfare (last 10 epochs): {:.1} kbps; messages/peer/epoch: {:.2}",
        out.metrics.welfare.tail_mean(10),
        out.messages.per_peer_per_epoch(peers, out.epochs)
    );

    let peak_threads = peak.load(Ordering::Relaxed);
    if peak_threads > 0 {
        // main + sampler + at most (workers − 1) scoped rths_par workers.
        let budget = 2 + workers.saturating_sub(1);
        println!(
            "peak OS threads: {peak_threads} (budget {budget}: main + sampler + \
             {} scoped workers) for {} actors",
            workers.saturating_sub(1),
            peers + helpers
        );
        if check_threads {
            assert!(
                peak_threads <= budget,
                "thread budget exceeded: {peak_threads} > {budget}"
            );
            println!("thread budget respected");
        }
    }
}
