//! Umbrella crate for the RTHS reproduction.
//!
//! Re-exports the workspace's public API so examples and downstream users
//! can depend on a single crate. See the individual crates for details:
//!
//! * [`rths_core`] — the RTHS/R2HS learners (the paper's contribution);
//! * [`rths_game`] — the helper-selection game and equilibrium tooling;
//! * [`rths_sim`] — the streaming-system simulator (evaluation substrate);
//! * [`rths_net`] — the decentralized message-passing runtimes
//!   (thread-per-actor and reactor backends);
//! * [`rths_reactor`] — the deterministic event-loop actor runtime;
//! * [`rths_mdp`] — the centralized MDP benchmark;
//! * [`rths_par`] — the deterministic data-parallel runtime;
//! * [`rths_stoch`], [`rths_lp`], [`rths_math`] — supporting substrates.

#![forbid(unsafe_code)]

pub use rths_core as core;
pub use rths_game as game;
pub use rths_lp as lp;
pub use rths_math as math;
pub use rths_mdp as mdp;
pub use rths_net as net;
pub use rths_par as par;
pub use rths_reactor as reactor;
pub use rths_sim as sim;
pub use rths_stoch as stoch;

/// Renders a numeric series as a one-line unicode sparkline — used by the
/// examples to show time series in the terminal.
///
/// # Example
///
/// ```
/// let line = rths_suite::sparkline(&[0.0, 1.0, 2.0, 3.0], 4);
/// assert_eq!(line.chars().count(), 4);
/// ```
pub fn sparkline(values: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    let stride = (values.len() as f64 / width as f64).max(1.0);
    let mut out = String::new();
    let mut idx = 0.0;
    while (idx as usize) < values.len() && out.chars().count() < width {
        let lo = idx as usize;
        let hi = ((idx + stride) as usize).min(values.len()).max(lo + 1);
        let mean: f64 = values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        let level = (((mean - min) / span) * 7.0).round() as usize;
        out.push(BARS[level.min(7)]);
        idx += stride;
    }
    out
}

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use rths_core::{
        Learner, RecencyMode, RegretMatchingLearner, RepeatedGameDriver, RthsConfig,
        RthsLearner,
    };
    pub use rths_game::{HelperSelectionGame, JointDistribution};
    pub use rths_mdp::MdpBenchmark;
    pub use rths_net::{Backend, FaultPlan, NetConfig, NetRuntime, ReactorRuntime};
    pub use rths_sim::{
        Algorithm, AllocationPolicy, BandwidthSpec, ImpairmentPlan, LearnerSpec,
        MultiChannelConfig, MultiChannelSystem, Scenario, ScenarioSpec, SimConfig, System,
        WorkloadPhase,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_importable() {
        use crate::prelude::*;
        let _ = RthsConfig::builder(2).build().unwrap();
        let _ = HelperSelectionGame::new(vec![800.0]);
    }
}
