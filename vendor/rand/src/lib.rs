//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the API subset the workspace uses: [`RngCore`], the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! with `seed_from_u64`, and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded via the SplitMix64 expander. It is
//! deterministic for a given seed (which is all the workspace relies on) but
//! its output stream intentionally makes no compatibility promise with the
//! real `rand::rngs::StdRng` (ChaCha12).

pub mod rngs;

/// Core RNG interface: a source of raw random words. Object-safe, so code can
/// pass `&mut dyn RngCore` across trait boundaries.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled uniformly from an `RngCore` (the role the
/// `Standard` distribution plays in the real crate).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that `Rng::gen_range` can draw from.
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is a valid draw.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Convenience extension methods, blanket-implemented for every `RngCore`
/// (including `dyn RngCore`).
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}
