//! The workspace-standard RNG: xoshiro256++ behind the `StdRng` name.

use crate::{RngCore, SeedableRng};

/// Deterministic, seedable RNG (xoshiro256++). Not the real crate's ChaCha12
/// `StdRng`; only determinism per seed is promised, not stream compatibility.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&y));
        }
    }
}
