//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses unbounded MPSC channels (`crossbeam::channel`),
//! which `std::sync::mpsc` provides with a compatible API for the calls made
//! here (`send`, `recv`, `try_recv`, cloneable senders). This crate simply
//! re-exports the std types under crossbeam's names.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, Sender};
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Creates an unbounded channel, crossbeam-style.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        let handle = std::thread::spawn(move || {
            tx2.send(41).unwrap();
            tx.send(1).unwrap();
        });
        handle.join().unwrap();
        assert_eq!(rx.recv().unwrap() + rx.recv().unwrap(), 42);
    }
}
