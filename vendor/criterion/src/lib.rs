//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!` / `criterion_main!`
//! macros — backed by a simple wall-clock timer: each benchmark gets a short
//! warm-up, then timed batches, and the mean time per iteration is printed.
//! No statistics engine, plots, or saved baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Declared throughput of one benchmark iteration; printed alongside timing.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Times closures. Handed to the benchmark body by `bench_function`.
pub struct Bencher {
    /// Mean wall-clock time per iteration, filled in by `iter`.
    elapsed_per_iter: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up, then time enough batches to pass the measurement floor.
        const WARMUP: Duration = Duration::from_millis(20);
        const MEASURE: Duration = Duration::from_millis(100);
        let warm_start = Instant::now();
        let mut iters_per_batch: u64 = 0;
        while warm_start.elapsed() < WARMUP || iters_per_batch == 0 {
            black_box(f());
            iters_per_batch += 1;
        }

        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < MEASURE {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(f());
            }
            total += start.elapsed();
            iters += iters_per_batch;
        }
        self.elapsed_per_iter = total / iters.max(1) as u32;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        // The stub sizes batches by wall clock, so the hint is accepted and
        // ignored.
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { elapsed_per_iter: Duration::ZERO };
        f(&mut bencher);
        self.report(&id.label, bencher.elapsed_per_iter);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher { elapsed_per_iter: Duration::ZERO };
        f(&mut bencher, input);
        self.report(&id.label, bencher.elapsed_per_iter);
        self
    }

    pub fn finish(self) {}

    fn report(&self, label: &str, per_iter: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                format!("  ({:.0} elem/s)", n as f64 / per_iter.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                format!("  ({:.0} B/s)", n as f64 / per_iter.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{label}: {per_iter:?}/iter{rate}", self.name);
    }
}

/// Entry point handed to each `criterion_group!` target function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("criterion").bench_function(id, f);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
