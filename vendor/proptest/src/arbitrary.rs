//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::{Strategy, TestRng};
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
