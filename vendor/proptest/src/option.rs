//! Option strategies (`prop::option::of`).

use crate::strategy::{Strategy, TestRng};
use rand::Rng;

/// Strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Match real proptest's default ratio: Some three times out of four.
        if rng.gen::<f64>() < 0.25 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// Strategy yielding `None` sometimes and `Some(inner)` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
