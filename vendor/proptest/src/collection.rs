//! Collection strategies (`prop::collection::vec`).

use crate::strategy::{Strategy, TestRng};
use rand::Rng;

/// Length specification for [`vec`]: an exact length or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { lo: exact, hi: exact + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "vec size range is empty");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "vec size range is empty");
        SizeRange { lo: *r.start(), hi: r.end() + 1 }
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy with the given element strategy and length spec.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
