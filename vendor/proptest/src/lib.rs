//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   header and `name in strategy` argument bindings;
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric ranges
//!   and tuples;
//! * `prop::collection::vec`, `prop::option::of`, and `any::<T>()`;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds. Inputs are drawn from an RNG seeded deterministically from the
//! test's module path and case index, so every run (locally and in CI)
//! exercises the same cases — failures are reproducible by construction.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirror of proptest's `prelude::prop` re-export module, so tests can
    /// write `prop::collection::vec(..)` after a glob import.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Defines property tests. Each `name in strategy` argument is drawn freshly
/// for every case; the body runs once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($args:tt)* ) $body:block
        )*
    ) => {
        $(
            $crate::__proptest_fn! {
                @parse [($cfg) $(#[$meta])* fn $name $body] [] $($args)*
            }
        )*
    };
}

/// Tt-muncher that splits `pattern in strategy, ...` argument lists into
/// `((pattern) (strategy))` pairs, then emits the test fn. `pat` covers both
/// plain names, `mut` names, and tuple destructuring; `in` is in `pat`'s
/// follow set precisely because of `for pat in` syntax.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fn {
    (@parse $ctx:tt [$($acc:tt)*] $arg:pat in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_fn! { @parse $ctx [$($acc)* (($arg) ($strat))] $($rest)* }
    };
    (@parse $ctx:tt [$($acc:tt)*] $arg:pat in $strat:expr) => {
        $crate::__proptest_fn! { @emit $ctx [$($acc)* (($arg) ($strat))] }
    };
    (@parse $ctx:tt $acc:tt) => {
        $crate::__proptest_fn! { @emit $ctx $acc }
    };
    (@emit
        [($cfg:expr) $(#[$meta:meta])* fn $name:ident $body:block]
        [$((($arg:pat) $strat:tt))+]
    ) => {
        $(#[$meta])*
        fn $name() {
            let __pt_cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __pt_case in 0..__pt_cfg.cases {
                let mut __pt_rng = $crate::test_runner::rng_for(
                    concat!(module_path!(), "::", stringify!($name)),
                    __pt_case as u64,
                );
                #[allow(unused_mut)]
                let ($($arg,)+) = ($(
                    $crate::strategy::Strategy::generate(&$strat, &mut __pt_rng),
                )+);
                $body
            }
        }
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Expands to an unlabeled `continue` targeting the per-case loop, so it is
/// only valid at the top level of a `proptest!` body (which is how the
/// workspace uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts a property holds; panics (failing the enclosing case) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}
