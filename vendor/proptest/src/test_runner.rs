//! Per-test configuration and the deterministic case RNG.

use crate::strategy::TestRng;
use rand::SeedableRng;

/// Subset of proptest's config: just the case count.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Smaller than real proptest's 256: there is no shrinker here, and
        // CI runs every case on every push.
        ProptestConfig { cases: 64 }
    }
}

/// RNG for one test case, seeded from the test's path and case index so runs
/// are identical everywhere.
pub fn rng_for(test_path: &str, case: u64) -> TestRng {
    // FNV-1a over the path, then avalanche in the case index (SplitMix64
    // finalizer) so consecutive cases get unrelated streams.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_path.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    TestRng::seed_from_u64(z ^ (z >> 31))
}
