//! The `Strategy` trait and its implementations for ranges and tuples.

use rand::rngs::StdRng;
use rand::Rng;

/// RNG handed to strategies; deterministic per (test, case).
pub type TestRng = StdRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree or shrinking: `generate`
/// produces a plain value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}
