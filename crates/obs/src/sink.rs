//! Trace export: the [`TraceReport`] a finished run yields, and its
//! JSONL / Chrome `trace_event` / per-epoch CSV projections.
//!
//! All three formats are derived from the same deterministic state
//! (spans in orchestrator-then-worker-index order, counters and gauges
//! reduced with order-independent operators), so two exports of the
//! same report are byte-identical. Wall-time *values* naturally differ
//! between runs; the shape — line structure, event ordering, column
//! layout — does not.

use std::fmt::Write as _;

use crate::counters::{Counter, Gauge};
use crate::hist::Hist;
use crate::phase::Phase;
use crate::span::SpanRecord;

/// Everything one traced run recorded. Produced by
/// [`take_report`](crate::take_report) (global registry) or
/// [`Registry::report`](crate::Registry::report) (instance).
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Run label (scenario or bench name; file-name friendly).
    pub name: String,
    /// Every span, in record/merge order: orchestrator spans interleave
    /// with worker spans merged in worker-index order at each barrier.
    pub spans: Vec<SpanRecord>,
    /// Final counter totals, indexed by [`Counter::index`].
    pub counters: [u64; Counter::COUNT],
    /// Final gauge high-water marks, indexed by [`Gauge::index`].
    pub gauges: [u64; Gauge::COUNT],
    /// Per-phase wall-time histograms, indexed by [`Phase::index`].
    pub hists: Vec<Hist>,
}

impl TraceReport {
    /// An empty report with the given name.
    pub fn empty(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            spans: Vec::new(),
            counters: [0; Counter::COUNT],
            gauges: [0; Gauge::COUNT],
            hists: vec![Hist::new(); Phase::COUNT],
        }
    }

    /// Whether the run recorded nothing at all.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.iter().all(|&v| v == 0)
            && self.gauges.iter().all(|&v| v == 0)
    }

    // -- JSONL ----------------------------------------------------------

    /// One JSON object per line: every span
    /// (`{"phase":…,"epoch":…,"worker":…,"start_ns":…,"dur_ns":…}`),
    /// then counter totals (`{"counter":…,"value":…}`), gauge marks
    /// (`{"gauge":…,"value":…}`), and per-phase histogram summaries
    /// (`{"hist":…,"count":…,"sum_ns":…,"p50_ns":…,"p99_ns":…}`).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{{\"phase\":\"{}\",\"epoch\":{},\"worker\":{},\"start_ns\":{},\"dur_ns\":{}}}",
                s.phase.name(),
                s.epoch,
                s.worker,
                s.start_ns,
                s.dur_ns
            );
        }
        for c in Counter::ALL {
            let _ = writeln!(
                out,
                "{{\"counter\":\"{}\",\"value\":{}}}",
                c.name(),
                self.counters[c.index()]
            );
        }
        for g in Gauge::ALL {
            let _ = writeln!(
                out,
                "{{\"gauge\":\"{}\",\"value\":{}}}",
                g.name(),
                self.gauges[g.index()]
            );
        }
        for p in Phase::ALL {
            let h = &self.hists[p.index()];
            if h.count() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{{\"hist\":\"{}\",\"count\":{},\"sum_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
                p.name(),
                h.count(),
                h.sum_ns(),
                h.quantile_floor_ns(0.5),
                h.quantile_floor_ns(0.99)
            );
        }
        out
    }

    // -- Chrome trace_event ---------------------------------------------

    /// A Chrome-loadable trace (open with `chrome://tracing` or
    /// <https://ui.perfetto.dev>): one complete (`"ph":"X"`) event per
    /// span, `pid` 0, `tid` = worker index, timestamps in microseconds
    /// relative to the run origin.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"rths\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\
                 \"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{\"epoch\":{}}}}}",
                s.phase.name(),
                s.worker,
                s.start_ns / 1_000,
                s.start_ns % 1_000,
                s.dur_ns / 1_000,
                s.dur_ns % 1_000,
                s.epoch
            );
        }
        out.push_str("]}");
        out
    }

    // -- Per-epoch CSV profile ------------------------------------------

    /// Header names for the per-epoch phase-time column group:
    /// `us_<phase>` for every phase in [`Phase::ALL`] order. The set is
    /// fixed — consumers can rely on every column existing in every
    /// profile regardless of which phases a backend actually ran.
    pub fn profile_headers() -> Vec<String> {
        Phase::ALL.iter().map(|p| format!("us_{}", p.name())).collect()
    }

    /// Per-epoch wall-time totals: for each epoch that recorded at
    /// least one span (ascending), the summed span microseconds per
    /// phase in [`Phase::ALL`] order.
    pub fn epoch_profile(&self) -> Vec<(u64, Vec<u64>)> {
        let mut rows: std::collections::BTreeMap<u64, Vec<u64>> =
            std::collections::BTreeMap::new();
        for s in &self.spans {
            let row = rows.entry(s.epoch).or_insert_with(|| vec![0u64; Phase::COUNT]);
            row[s.phase.index()] += s.dur_ns;
        }
        rows.into_iter()
            .map(|(e, ns)| (e, ns.into_iter().map(|v| v / 1_000).collect()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceReport {
        let mut r = TraceReport::empty("t");
        r.spans.push(SpanRecord {
            phase: Phase::Choose,
            epoch: 0,
            worker: 0,
            start_ns: 1_500,
            dur_ns: 2_750,
        });
        r.spans.push(SpanRecord {
            phase: Phase::Observe,
            epoch: 1,
            worker: 2,
            start_ns: 9_000,
            dur_ns: 1_000,
        });
        r.counters[Counter::MessagesDelivered.index()] = 42;
        r.gauges[Gauge::RingCapacityHwm.index()] = 1024;
        r.hists[Phase::Choose.index()].record_ns(2_750);
        r
    }

    #[test]
    fn jsonl_has_one_object_per_line() {
        let text = sample().to_jsonl();
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad line: {line}");
        }
        assert!(text.contains("\"phase\":\"choose\""));
        assert!(text.contains("\"counter\":\"messages_delivered\",\"value\":42"));
        assert!(text.contains("\"gauge\":\"ring_capacity_hwm\",\"value\":1024"));
        assert!(text.contains("\"hist\":\"choose\""));
    }

    #[test]
    fn chrome_trace_shape() {
        let text = sample().to_chrome_trace();
        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(text.ends_with("]}"));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ts\":1.500"));
        assert!(text.contains("\"dur\":2.750"));
        assert!(text.contains("\"tid\":2"));
    }

    #[test]
    fn epoch_profile_is_fixed_width_and_sorted() {
        let report = sample();
        let headers = TraceReport::profile_headers();
        assert_eq!(headers.len(), Phase::COUNT);
        assert!(headers.contains(&"us_choose".to_string()));
        let rows = report.epoch_profile();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 0);
        assert_eq!(rows[1].0, 1);
        for (_, cols) in &rows {
            assert_eq!(cols.len(), Phase::COUNT);
        }
        assert_eq!(rows[0].1[Phase::Choose.index()], 2);
        assert_eq!(rows[1].1[Phase::Observe.index()], 1);
    }
}
