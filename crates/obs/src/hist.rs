//! Fixed-bucket log-scale wall-time histograms.
//!
//! Buckets are powers of two of nanoseconds: bucket `i` counts
//! durations in `[2^i, 2^(i+1))` ns (bucket 0 additionally absorbs 0 ns;
//! the last bucket saturates). The bucket layout is a compile-time
//! constant, so merging two histograms is an element-wise sum —
//! commutative and associative over `u64` counts, hence independent of
//! merge order by construction.

/// Number of log₂ buckets. Bucket 31 starts at `2^31` ns ≈ 2.1 s;
/// anything longer saturates there.
pub const HIST_BUCKETS: usize = 32;

/// A fixed-bucket log₂(ns) histogram with exact count and sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Per-bucket sample counts (`buckets[i]` covers `[2^i, 2^(i+1))` ns).
    buckets: [u64; HIST_BUCKETS],
    /// Total samples recorded.
    count: u64,
    /// Exact sum of all recorded durations, in nanoseconds.
    sum_ns: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Hist {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self { buckets: [0; HIST_BUCKETS], count: 0, sum_ns: 0 }
    }

    /// The bucket index a duration of `ns` nanoseconds falls into.
    #[inline]
    pub fn bucket_of(ns: u64) -> usize {
        if ns == 0 {
            return 0;
        }
        ((63 - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    /// Inclusive lower bound (ns) of bucket `i`.
    pub fn bucket_floor_ns(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// Records one duration.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns;
    }

    /// Element-wise merge of `other` into `self`. Order-independent:
    /// `a.merge(b)` and `b.merge(a)` produce equal histograms.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded durations, ns.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// The per-bucket counts.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Floor (ns) of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`), or 0 when empty. Log-bucketed, so this is a
    /// lower bound with ≤ 2× resolution — enough to spot phase-time
    /// cliffs without storing samples.
    pub fn quantile_floor_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor_ns(i);
            }
        }
        Self::bucket_floor_ns(HIST_BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 0);
        assert_eq!(Hist::bucket_of(2), 1);
        assert_eq!(Hist::bucket_of(3), 1);
        assert_eq!(Hist::bucket_of(4), 2);
        assert_eq!(Hist::bucket_of(1023), 9);
        assert_eq!(Hist::bucket_of(1024), 10);
        assert_eq!(Hist::bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        for ns in [0u64, 5, 17, 900, 4096, 1 << 20] {
            a.record_ns(ns);
        }
        for ns in [3u64, 3, 1 << 33, 250] {
            b.record_ns(ns);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 10);
        assert_eq!(ab.sum_ns(), a.sum_ns() + b.sum_ns());
    }

    #[test]
    fn quantile_floor_is_monotone() {
        let mut h = Hist::new();
        for i in 0..1000u64 {
            h.record_ns(i * 37);
        }
        let q50 = h.quantile_floor_ns(0.5);
        let q90 = h.quantile_floor_ns(0.9);
        let q99 = h.quantile_floor_ns(0.99);
        assert!(q50 <= q90 && q90 <= q99, "{q50} {q90} {q99}");
        assert_eq!(Hist::new().quantile_floor_ns(0.5), 0);
    }
}
