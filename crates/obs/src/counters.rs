//! Counters, gauges, and the thread-affine scratch they accumulate in.
//!
//! Like [`Phase`](crate::Phase), the counter and gauge sets are closed
//! enums so every export has the same shape. Counters are additive
//! (merge = sum); gauges are high-water marks (merge = max). Both
//! operations are commutative and associative over `u64`, so reduced
//! totals are identical regardless of merge order — the *span* buffers
//! are where merge order matters, and those are merged in worker-index
//! order (see [`SpanBuf`](crate::SpanBuf)).

use crate::span::SpanBuf;

/// An additive event counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Messages staged for delivery (reactor sends + timer posts).
    MessagesEnqueued,
    /// Messages handed to an actor's `on_message`.
    MessagesDelivered,
    /// Mailbox-ring reallocations (a batch exceeded ring capacity).
    RingGrowEvents,
    /// Learner-slab columns touched by batched decay/observe kernels.
    SlabColumnsTouched,
    /// Learner-slab rows recycled from the free list instead of grown.
    FreeListReuse,
    /// Regret-ledger stretch closes (arm switches, window folds,
    /// migrations).
    StretchFolds,
}

impl Counter {
    /// Every counter, in canonical order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::MessagesEnqueued,
        Counter::MessagesDelivered,
        Counter::RingGrowEvents,
        Counter::SlabColumnsTouched,
        Counter::FreeListReuse,
        Counter::StretchFolds,
    ];

    /// Number of counters.
    pub const COUNT: usize = 6;

    /// Stable snake_case name used in every export format.
    pub fn name(self) -> &'static str {
        match self {
            Counter::MessagesEnqueued => "messages_enqueued",
            Counter::MessagesDelivered => "messages_delivered",
            Counter::RingGrowEvents => "ring_grow_events",
            Counter::SlabColumnsTouched => "slab_columns_touched",
            Counter::FreeListReuse => "free_list_reuse",
            Counter::StretchFolds => "stretch_folds",
        }
    }

    /// Index into [`Counter::ALL`] (and every counter-indexed array).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A high-water-mark gauge (merge = max).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Gauge {
    /// Largest mailbox-ring capacity reached by any shard.
    RingCapacityHwm,
    /// Largest single-round message batch staged into any shard's ring.
    RingOccupancyHwm,
    /// Largest learner-slab row count reached by any shard's arena.
    SlabRowsHwm,
}

impl Gauge {
    /// Every gauge, in canonical order.
    pub const ALL: [Gauge; Gauge::COUNT] =
        [Gauge::RingCapacityHwm, Gauge::RingOccupancyHwm, Gauge::SlabRowsHwm];

    /// Number of gauges.
    pub const COUNT: usize = 3;

    /// Stable snake_case name used in every export format.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::RingCapacityHwm => "ring_capacity_hwm",
            Gauge::RingOccupancyHwm => "ring_occupancy_hwm",
            Gauge::SlabRowsHwm => "slab_rows_hwm",
        }
    }

    /// Index into [`Gauge::ALL`] (and every gauge-indexed array).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Thread-affine observability scratch: one per worker/shard, owned by
/// whatever per-shard scratch struct the host already threads through
/// its parallel regions. Accumulation is plain (lock-free) arithmetic on
/// owned memory; the orchestrating thread reduces every shard's scratch
/// **in shard-index order** after the join via
/// [`absorb_scratch`](crate::absorb_scratch).
#[derive(Debug, Default, Clone)]
pub struct ObsScratch {
    /// Additive counter deltas since the last absorb.
    pub counts: [u64; Counter::COUNT],
    /// Gauge high-water candidates since the last absorb.
    pub gauges: [u64; Gauge::COUNT],
    /// Spans recorded by this worker since the last absorb.
    pub spans: SpanBuf,
}

impl ObsScratch {
    /// A zeroed scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to counter `c`.
    #[inline]
    pub fn add(&mut self, c: Counter, v: u64) {
        self.counts[c.index()] += v;
    }

    /// Raises gauge `g` to at least `v`.
    #[inline]
    pub fn raise(&mut self, g: Gauge, v: u64) {
        let slot = &mut self.gauges[g.index()];
        if v > *slot {
            *slot = v;
        }
    }

    /// Whether nothing has been recorded since the last absorb.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&v| v == 0)
            && self.gauges.iter().all(|&v| v == 0)
            && self.spans.is_empty()
    }

    /// Zeroes the scratch (spans included).
    pub fn clear(&mut self) {
        self.counts = [0; Counter::COUNT];
        self.gauges = [0; Gauge::COUNT];
        self.spans.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enums_are_index_aligned() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
    }

    #[test]
    fn scratch_accumulates_and_clears() {
        let mut s = ObsScratch::new();
        assert!(s.is_empty());
        s.add(Counter::MessagesEnqueued, 3);
        s.add(Counter::MessagesEnqueued, 4);
        s.raise(Gauge::RingCapacityHwm, 10);
        s.raise(Gauge::RingCapacityHwm, 7);
        assert_eq!(s.counts[Counter::MessagesEnqueued.index()], 7);
        assert_eq!(s.gauges[Gauge::RingCapacityHwm.index()], 10);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }
}
