//! Span recording: wall-clock timing of [`Phase`]s.
//!
//! A span is opened with [`span_start`](crate::span_start) (a bare
//! `Instant` capture — no lock, no allocation) and closed either into
//! the global registry ([`span_end`](crate::span_end), orchestrator
//! thread) or into a worker-owned [`SpanBuf`] that the orchestrator
//! later merges **in worker-index order**. Timing never flows back into
//! the computation: a traced run's outputs are bit-identical to an
//! untraced run's.

use std::time::Instant;

use crate::phase::Phase;

/// An open span: the capture of `Instant::now()` at phase entry.
/// Obtained from [`span_start`](crate::span_start), which returns `None`
/// when tracing is disabled — the disabled path is a single relaxed
/// atomic load.
#[derive(Debug, Clone, Copy)]
pub struct SpanStart(pub(crate) Instant);

impl SpanStart {
    /// Captures the current instant. Prefer
    /// [`span_start`](crate::span_start), which folds in the enabled
    /// check.
    pub fn now() -> Self {
        SpanStart(Instant::now())
    }
}

/// A closed span as a worker records it: phase, entry instant, and
/// duration. The run-relative timestamp is resolved against the
/// registry's origin at merge time, and the epoch/worker tags are
/// applied then too — workers don't need to know either.
#[derive(Debug, Clone, Copy)]
pub struct RawSpan {
    /// The phase this span timed.
    pub phase: Phase,
    /// Phase entry instant.
    pub start: Instant,
    /// Wall time between entry and close, nanoseconds (saturating).
    pub dur_ns: u64,
}

/// A fully resolved span in a [`TraceReport`](crate::TraceReport).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The phase this span timed.
    pub phase: Phase,
    /// Epoch the span belongs to.
    pub epoch: u64,
    /// Worker index (0 = the orchestrating thread; workers are
    /// shard-index + 1).
    pub worker: u32,
    /// Nanoseconds from the run origin to phase entry.
    pub start_ns: u64,
    /// Wall time between entry and close, nanoseconds.
    pub dur_ns: u64,
}

/// A worker-owned span buffer: plain owned memory, so recording is
/// lock-free by construction. The orchestrator drains every worker's
/// buffer after the join, in worker-index order, via
/// [`merge_worker`](crate::merge_worker) (or as part of
/// [`absorb_scratch`](crate::absorb_scratch)) — that fixed order is
/// what makes the merged span sequence deterministic.
#[derive(Debug, Default, Clone)]
pub struct SpanBuf {
    pub(crate) raw: Vec<RawSpan>,
}

impl SpanBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Closes `start` as a `phase` span into this buffer.
    #[inline]
    pub fn record(&mut self, phase: Phase, start: SpanStart) {
        let dur_ns = u64::try_from(start.0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.raw.push(RawSpan { phase, start: start.0, dur_ns });
    }

    /// Number of buffered spans.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Drops all buffered spans.
    pub fn clear(&mut self) {
        self.raw.clear();
    }
}
