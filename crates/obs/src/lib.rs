//! `rths_obs` — deterministic, dependency-free observability for the
//! RTHS engines: phase-scoped tracing spans, per-shard counters and
//! gauges, fixed-bucket log-scale wall-time histograms, and export to
//! JSONL / Chrome `trace_event` / per-epoch CSV profiles.
//!
//! # The determinism contract
//!
//! Observability is **bit-exact neutral**: a traced run's welfare,
//! regret, and message trajectories are `f64::to_bits`-identical to an
//! untraced run's (the `obs_neutrality` integration suite pins this
//! across all three backends). The contract has two halves:
//!
//! 1. **Timing never flows back into the computation.** Spans read the
//!    monotonic clock and write into side buffers; no timer value ever
//!    reaches an RNG draw, a float reduction, or a scheduling decision.
//! 2. **Exports have deterministic shape.** Ordered state (the span
//!    stream) is recorded into per-worker buffers and merged in
//!    **worker-index order** at each join barrier; unordered state
//!    (counters, gauges, histogram buckets) is reduced with commutative,
//!    associative `u64` operators (sum / max), which are merge-order
//!    independent by construction. Wall-time *values* differ run to
//!    run; line structure, event ordering, and column layout do not.
//!
//! The disabled path is near-zero cost: every span/counter site guards
//! on [`enabled`], a single relaxed atomic load, before touching the
//! clock or the registry.
//!
//! # Usage shape
//!
//! Orchestrator-thread phases (the common case):
//!
//! ```
//! use rths_obs::{self as obs, Phase};
//!
//! let _restore = obs::scoped_enable(true);
//! obs::begin_run("demo");
//! let t = obs::span_start();
//! // ... run the choose phase of epoch 3 ...
//! if let Some(t) = t {
//!     obs::span_end(Phase::Choose, 3, t);
//! }
//! let report = obs::take_report();
//! assert_eq!(report.spans.len(), 1);
//! ```
//!
//! Worker-side recording goes through an [`ObsScratch`] owned by each
//! shard's scratch struct; after the join the orchestrator calls
//! [`absorb_scratch`] for each shard **in shard-index order**.
//!
//! Enablement: bins call [`init_from_env`] (the `RTHS_TRACE` variable:
//! unset, empty, `0`, `off`, or `false` mean disabled, anything else
//! enabled); engine knobs (`ScenarioSpec`, `NetConfig`) use
//! [`scoped_enable`] so a traced run inside a larger process restores
//! the prior state on drop.

#![forbid(unsafe_code)]

mod counters;
mod hist;
mod phase;
mod sink;
mod span;

pub use counters::{Counter, Gauge, ObsScratch};
pub use hist::{Hist, HIST_BUCKETS};
pub use phase::Phase;
pub use sink::TraceReport;
pub use span::{RawSpan, SpanBuf, SpanRecord, SpanStart};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A span/counter/histogram collector. The workspace normally uses the
/// process-global instance through the free functions ([`span_start`],
/// [`counter_add`], [`take_report`], …); an owned `Registry` exists so
/// the merge-determinism properties are unit-testable in isolation.
#[derive(Debug)]
pub struct Registry {
    name: String,
    origin: Option<Instant>,
    spans: Vec<SpanRecord>,
    counters: [u64; Counter::COUNT],
    gauges: [u64; Gauge::COUNT],
    hists: Vec<Hist>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry (const, so it can back a `static`).
    pub const fn new() -> Self {
        Self {
            name: String::new(),
            origin: None,
            spans: Vec::new(),
            counters: [0; Counter::COUNT],
            gauges: [0; Gauge::COUNT],
            hists: Vec::new(),
        }
    }

    /// Clears all recorded state, names the run, and pins the time
    /// origin to now.
    pub fn begin(&mut self, name: &str) {
        self.name.clear();
        self.name.push_str(name);
        self.origin = Some(Instant::now());
        self.spans.clear();
        self.counters = [0; Counter::COUNT];
        self.gauges = [0; Gauge::COUNT];
        self.hists.clear();
    }

    fn origin(&mut self) -> Instant {
        *self.origin.get_or_insert_with(Instant::now)
    }

    fn hist_mut(&mut self, phase: Phase) -> &mut Hist {
        if self.hists.is_empty() {
            self.hists.resize(Phase::COUNT, Hist::new());
        }
        &mut self.hists[phase.index()]
    }

    /// Closes `start` as an orchestrator-thread (`worker` 0) span.
    pub fn push_span(&mut self, phase: Phase, epoch: u64, start: SpanStart) {
        self.push_span_as(phase, epoch, 0, start);
    }

    /// Closes `start` as a span attributed to `worker`.
    pub fn push_span_as(&mut self, phase: Phase, epoch: u64, worker: u32, start: SpanStart) {
        let dur_ns = u64::try_from(start.0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let origin = self.origin();
        let start_ns =
            u64::try_from(start.0.duration_since(origin).as_nanos()).unwrap_or(u64::MAX);
        self.spans.push(SpanRecord { phase, epoch, worker, start_ns, dur_ns });
        self.hist_mut(phase).record_ns(dur_ns);
    }

    /// Drains a worker-owned span buffer, tagging each span with
    /// `epoch` and worker index `worker`. Callers drain buffers in
    /// worker-index order — that order is the merged stream's order.
    pub fn merge_buf(&mut self, worker: u32, epoch: u64, buf: &mut SpanBuf) {
        let origin = self.origin();
        if self.hists.is_empty() {
            self.hists.resize(Phase::COUNT, Hist::new());
        }
        for raw in buf.raw.drain(..) {
            let start_ns =
                u64::try_from(raw.start.duration_since(origin).as_nanos()).unwrap_or(u64::MAX);
            self.spans.push(SpanRecord {
                phase: raw.phase,
                epoch,
                worker,
                start_ns,
                dur_ns: raw.dur_ns,
            });
            self.hists[raw.phase.index()].record_ns(raw.dur_ns);
        }
    }

    /// Adds `v` to counter `c`.
    pub fn counter_add(&mut self, c: Counter, v: u64) {
        self.counters[c.index()] += v;
    }

    /// Raises gauge `g` to at least `v`.
    pub fn gauge_max(&mut self, g: Gauge, v: u64) {
        let slot = &mut self.gauges[g.index()];
        if v > *slot {
            *slot = v;
        }
    }

    /// Reduces one worker's [`ObsScratch`] into the registry (counters
    /// summed, gauges maxed, spans merged tagged with `worker` and
    /// `epoch`) and clears the scratch. Call once per shard after a
    /// join, in shard-index order.
    pub fn absorb(&mut self, worker: u32, epoch: u64, scratch: &mut ObsScratch) {
        for (i, v) in scratch.counts.iter().enumerate() {
            self.counters[i] += v;
        }
        for (i, &v) in scratch.gauges.iter().enumerate() {
            if v > self.gauges[i] {
                self.gauges[i] = v;
            }
        }
        if !scratch.spans.is_empty() {
            self.merge_buf(worker, epoch, &mut scratch.spans);
        }
        scratch.counts = [0; Counter::COUNT];
        scratch.gauges = [0; Gauge::COUNT];
    }

    /// Takes everything recorded so far as a [`TraceReport`], leaving
    /// the registry empty (origin and name reset too).
    pub fn report(&mut self) -> TraceReport {
        let mut hists = std::mem::take(&mut self.hists);
        if hists.is_empty() {
            hists.resize(Phase::COUNT, Hist::new());
        }
        let report = TraceReport {
            name: std::mem::take(&mut self.name),
            spans: std::mem::take(&mut self.spans),
            counters: self.counters,
            gauges: self.gauges,
            hists,
        };
        self.counters = [0; Counter::COUNT];
        self.gauges = [0; Gauge::COUNT];
        self.origin = None;
        report
    }
}

// ---------------------------------------------------------------------------
// Global enable state + registry
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static CURRENT_EPOCH: AtomicU64 = AtomicU64::new(0);
static REGISTRY: Mutex<Registry> = Mutex::new(Registry::new());

fn registry() -> MutexGuard<'static, Registry> {
    REGISTRY.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Whether tracing is currently enabled — one relaxed atomic load; this
/// is the per-span disabled-path cost.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Sets the global enable flag, returning the prior value.
pub fn set_enabled(on: bool) -> bool {
    ENABLED.swap(on, Ordering::Relaxed)
}

/// RAII restore for [`set_enabled`]: returned by [`scoped_enable`].
#[derive(Debug)]
pub struct EnabledGuard {
    prior: bool,
}

impl Drop for EnabledGuard {
    fn drop(&mut self) {
        ENABLED.store(self.prior, Ordering::Relaxed);
    }
}

/// Enables (or disables) tracing for a scope; the prior state is
/// restored when the guard drops. This is what engine-level knobs
/// (`ScenarioSpec` trace flag, `NetConfig::with_trace`) use, so a
/// traced run embedded in a larger process leaves no residue.
#[must_use = "the guard restores the prior state on drop"]
pub fn scoped_enable(on: bool) -> EnabledGuard {
    EnabledGuard { prior: set_enabled(on) }
}

/// Whether the `RTHS_TRACE` environment variable requests tracing:
/// unset, empty, `0`, `off`, or `false` mean no; anything else yes.
pub fn env_requested() -> bool {
    match std::env::var("RTHS_TRACE") {
        Ok(v) => !matches!(v.to_ascii_lowercase().as_str(), "" | "0" | "off" | "false"),
        Err(_) => false,
    }
}

/// Applies [`env_requested`] to the global flag and returns the result.
/// Bins call this once at startup.
pub fn init_from_env() -> bool {
    let on = env_requested();
    set_enabled(on);
    on
}

/// Tags subsequent epoch-agnostic spans (reactor rounds, `rths_par`
/// dispatch) with `epoch`. The engines set this at each epoch start;
/// layers below the epoch protocol read it via [`current_epoch`].
pub fn set_epoch(epoch: u64) {
    CURRENT_EPOCH.store(epoch, Ordering::Relaxed);
}

/// The epoch tag last set with [`set_epoch`] (0 before any).
pub fn current_epoch() -> u64 {
    CURRENT_EPOCH.load(Ordering::Relaxed)
}

/// Clears the global registry and names the run. Call before a traced
/// run whose report you intend to [`take_report`]. Resets the
/// [`set_epoch`] tag too.
pub fn begin_run(name: &str) {
    set_epoch(0);
    registry().begin(name);
}

/// Drains the global registry into a [`TraceReport`].
pub fn take_report() -> TraceReport {
    registry().report()
}

/// Opens a span: `None` (for free) when tracing is disabled, otherwise
/// a clock capture to close with [`span_end`] or
/// [`SpanBuf::record`].
#[inline]
pub fn span_start() -> Option<SpanStart> {
    if enabled() {
        Some(SpanStart::now())
    } else {
        None
    }
}

/// Closes an orchestrator-thread span into the global registry.
pub fn span_end(phase: Phase, epoch: u64, start: SpanStart) {
    registry().push_span(phase, epoch, start);
}

/// Adds `v` to counter `c` in the global registry (no-op when
/// disabled).
pub fn counter_add(c: Counter, v: u64) {
    if enabled() {
        registry().counter_add(c, v);
    }
}

/// Raises gauge `g` to at least `v` in the global registry (no-op when
/// disabled).
pub fn gauge_max(g: Gauge, v: u64) {
    if enabled() {
        registry().gauge_max(g, v);
    }
}

/// Merges one worker's span buffer into the global registry. Call in
/// worker-index order after a join.
pub fn merge_worker(worker: u32, epoch: u64, buf: &mut SpanBuf) {
    if !buf.is_empty() {
        registry().merge_buf(worker, epoch, buf);
    }
}

/// Reduces one worker's [`ObsScratch`] into the global registry and
/// clears it. Call once per shard after a join, in shard-index order.
/// When tracing is disabled the scratch is cleared without touching the
/// registry, so stale deltas never leak into a later traced run.
pub fn absorb_scratch(worker: u32, epoch: u64, scratch: &mut ObsScratch) {
    if scratch.is_empty() {
        return;
    }
    if enabled() {
        registry().absorb(worker, epoch, scratch);
    } else {
        scratch.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle the process-global enable flag.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_span_start_is_none() {
        let _l = lock();
        let _restore = scoped_enable(false);
        assert!(span_start().is_none());
    }

    #[test]
    fn scoped_enable_restores_prior_state() {
        let _l = lock();
        let _outer = scoped_enable(false);
        {
            let _g = scoped_enable(true);
            assert!(enabled());
        }
        assert!(!enabled());
    }

    #[test]
    fn counter_reduction_is_shard_order_independent() {
        // Three workers' scratches absorbed in every permutation give
        // the same totals and gauge marks: sums and maxes commute.
        let make = || {
            let mut s = [ObsScratch::new(), ObsScratch::new(), ObsScratch::new()];
            s[0].add(Counter::MessagesEnqueued, 5);
            s[1].add(Counter::MessagesEnqueued, 7);
            s[2].add(Counter::StretchFolds, 2);
            s[0].raise(Gauge::RingCapacityHwm, 64);
            s[1].raise(Gauge::RingCapacityHwm, 512);
            s[2].raise(Gauge::RingCapacityHwm, 128);
            s
        };
        let orders: [[usize; 3]; 6] =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let mut reports = Vec::new();
        for order in orders {
            let mut reg = Registry::new();
            reg.begin("perm");
            let mut scratches = make();
            for &w in &order {
                reg.absorb(w as u32, 0, &mut scratches[w]);
            }
            let r = reg.report();
            reports.push((r.counters, r.gauges));
        }
        for window in reports.windows(2) {
            assert_eq!(window[0], window[1], "reduction depended on absorb order");
        }
        assert_eq!(reports[0].0[Counter::MessagesEnqueued.index()], 12);
        assert_eq!(reports[0].1[Gauge::RingCapacityHwm.index()], 512);
    }

    #[test]
    fn worker_index_order_merge_is_deterministic() {
        // Two registries fed the same worker buffers in worker-index
        // order produce span streams with identical (phase, epoch,
        // worker) sequences — the shape contract for JSONL/trace_event.
        let run = || {
            let mut reg = Registry::new();
            reg.begin("merge");
            let mut bufs = [SpanBuf::new(), SpanBuf::new()];
            for (w, buf) in bufs.iter_mut().enumerate() {
                for phase in [Phase::SlabDecay, Phase::SlabObserve] {
                    let t = SpanStart::now();
                    buf.record(phase, t);
                    let _ = w;
                }
            }
            for (w, buf) in bufs.iter_mut().enumerate() {
                reg.merge_buf(w as u32 + 1, 3, buf);
            }
            reg.report().spans.iter().map(|s| (s.phase, s.epoch, s.worker)).collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(
            a,
            vec![
                (Phase::SlabDecay, 3, 1),
                (Phase::SlabObserve, 3, 1),
                (Phase::SlabDecay, 3, 2),
                (Phase::SlabObserve, 3, 2),
            ]
        );
    }

    #[test]
    fn merge_feeds_histograms() {
        let mut reg = Registry::new();
        reg.begin("hist");
        let mut buf = SpanBuf::new();
        buf.record(Phase::MailboxDrain, SpanStart::now());
        buf.record(Phase::MailboxDrain, SpanStart::now());
        reg.merge_buf(1, 0, &mut buf);
        let t = SpanStart::now();
        reg.push_span(Phase::MailboxDrain, 0, t);
        let report = reg.report();
        assert_eq!(report.hists[Phase::MailboxDrain.index()].count(), 3);
        assert_eq!(report.spans.len(), 3);
    }

    #[test]
    fn global_roundtrip_with_scratch() {
        let _l = lock();
        let _restore = scoped_enable(true);
        begin_run("global");
        let t = span_start().expect("enabled");
        span_end(Phase::Epoch, 0, t);
        counter_add(Counter::MessagesDelivered, 9);
        gauge_max(Gauge::SlabRowsHwm, 77);
        let mut scratch = ObsScratch::new();
        scratch.add(Counter::MessagesDelivered, 1);
        if let Some(t) = span_start() {
            scratch.spans.record(Phase::MailboxDrain, t);
        }
        absorb_scratch(1, 0, &mut scratch);
        assert!(scratch.is_empty());
        let report = take_report();
        assert_eq!(report.name, "global");
        assert_eq!(report.counters[Counter::MessagesDelivered.index()], 10);
        assert_eq!(report.gauges[Gauge::SlabRowsHwm.index()], 77);
        assert_eq!(report.spans.len(), 2);
        assert!(!report.to_jsonl().is_empty());
    }

    #[test]
    fn disabled_absorb_clears_scratch_without_recording() {
        let _l = lock();
        let _restore = scoped_enable(false);
        begin_run("drop");
        let mut scratch = ObsScratch::new();
        scratch.add(Counter::RingGrowEvents, 4);
        absorb_scratch(0, 0, &mut scratch);
        assert!(scratch.is_empty());
        let report = take_report();
        assert_eq!(report.counters[Counter::RingGrowEvents.index()], 0);
    }
}
