//! The span taxonomy: every timed region in the workspace is one of a
//! fixed, closed set of [`Phase`]s.
//!
//! A closed enum (rather than free-form string names) is what keeps the
//! export layer deterministic: histograms are a fixed array indexed by
//! phase, the per-epoch CSV profile has one column group per phase in
//! [`Phase::ALL`] order, and no run can invent a column another run
//! lacks.

/// One timed region of an epoch. The first block is the simulator /
/// coordinator pipeline in execution order; the second is the reactor's
/// mailbox machinery; [`Phase::Epoch`] wraps a whole epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Phase {
    /// A whole epoch, end to end.
    Epoch,
    /// Helper bandwidth process updates (simulator phase 1).
    HelperDynamics,
    /// Peer arrivals and departures (simulator phase 2).
    Churn,
    /// The learners' helper-selection phase.
    Choose,
    /// Proportional rate allocation at the helpers and server.
    RateAlloc,
    /// The learners' observe/update phase (includes the regret record).
    Observe,
    /// Batched learner-slab decay sweep.
    SlabDecay,
    /// Per-shard learner observe sweep (slab observe kernels plus the
    /// per-peer regret record).
    SlabObserve,
    /// Stretch-fold closes in the regret ledger.
    RegretFold,
    /// Link-impairment shaping (loss, policing, link processes).
    Impairment,
    /// Server / coordinator settle (rate grants, epoch barrier close).
    Settle,
    /// End-of-epoch metrics accounting.
    Metrics,
    /// Reactor: staging-buffer pack + sender-index-ordered merge.
    MailboxSort,
    /// Reactor: batch reservation + copy into the per-shard rings.
    MailboxDeliver,
    /// Reactor: sharded drain of ring messages into actor `on_message`.
    MailboxDrain,
    /// Reactor: due-timer flush at the end of a round.
    TimerFlush,
    /// A whole `rths_par` fork/join sharded region, spawn to join.
    ParDispatch,
}

impl Phase {
    /// Every phase, in the canonical (declaration) order used for
    /// histogram indexing and CSV column layout.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Epoch,
        Phase::HelperDynamics,
        Phase::Churn,
        Phase::Choose,
        Phase::RateAlloc,
        Phase::Observe,
        Phase::SlabDecay,
        Phase::SlabObserve,
        Phase::RegretFold,
        Phase::Impairment,
        Phase::Settle,
        Phase::Metrics,
        Phase::MailboxSort,
        Phase::MailboxDeliver,
        Phase::MailboxDrain,
        Phase::TimerFlush,
        Phase::ParDispatch,
    ];

    /// Number of phases (the length of [`Phase::ALL`]).
    pub const COUNT: usize = 17;

    /// Stable snake_case name used in every export format.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Epoch => "epoch",
            Phase::HelperDynamics => "helper_dynamics",
            Phase::Churn => "churn",
            Phase::Choose => "choose",
            Phase::RateAlloc => "rate_alloc",
            Phase::Observe => "observe",
            Phase::SlabDecay => "slab_decay",
            Phase::SlabObserve => "slab_observe",
            Phase::RegretFold => "regret_fold",
            Phase::Impairment => "impairment",
            Phase::Settle => "settle",
            Phase::Metrics => "metrics",
            Phase::MailboxSort => "mailbox_sort",
            Phase::MailboxDeliver => "mailbox_deliver",
            Phase::MailboxDrain => "mailbox_drain",
            Phase::TimerFlush => "timer_flush",
            Phase::ParDispatch => "par_dispatch",
        }
    }

    /// Index into [`Phase::ALL`] (and every phase-indexed array).
    pub fn index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_complete_and_index_aligned() {
        assert_eq!(Phase::ALL.len(), Phase::COUNT);
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i, "{} out of place", p.name());
        }
    }

    #[test]
    fn names_are_unique_snake_case() {
        let mut seen = std::collections::BTreeSet::new();
        for p in Phase::ALL {
            assert!(
                p.name().bytes().all(|b| b.is_ascii_lowercase() || b == b'_'),
                "{} is not snake_case",
                p.name()
            );
            assert!(seen.insert(p.name()), "duplicate name {}", p.name());
        }
    }
}
