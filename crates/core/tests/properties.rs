//! Property-based tests for the RTHS learners.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use rand::SeedableRng;
use rths_core::{
    HistoryRths, Learner, LearnerSlab, RecencyMode, RegretMatchingLearner, RthsConfig,
    RthsLearner, SlabLearner,
};

fn arb_config() -> impl Strategy<Value = RthsConfig> {
    (2usize..6, 0.005..0.5f64, 0.02..0.5f64, 10.0..10000.0f64).prop_map(
        |(m, eps, delta, mu)| {
            RthsConfig::builder(m).epsilon(eps).delta(delta).mu(mu).build().unwrap()
        },
    )
}

/// Like [`arb_config`] but additionally sweeping all three recency modes
/// and the conditional-regret flag — the full mode matrix the slab must
/// replay bit-for-bit.
fn arb_config_all_modes() -> impl Strategy<Value = RthsConfig> {
    (2usize..6, 0.005..0.5f64, 0.02..0.5f64, 10.0..10000.0f64, 0usize..3, 0usize..2).prop_map(
        |(m, eps, delta, mu, mode, cond)| {
            let recency = match mode {
                0 => RecencyMode::Exponential,
                1 => RecencyMode::PaperLiteral,
                _ => RecencyMode::Uniform,
            };
            RthsConfig::builder(m)
                .epsilon(eps)
                .delta(delta)
                .mu(mu)
                .recency(recency)
                .conditional(cond == 1)
                .build()
                .unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn probabilities_always_valid_with_floor(
        cfg in arb_config(),
        seed in any::<u64>(),
        utilities in prop::collection::vec(0.0..1000.0f64, 50..150),
    ) {
        let m = cfg.num_actions();
        let floor = cfg.delta() / m as f64;
        let mut l = RthsLearner::new(cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for &u in &utilities {
            let _ = l.select_action(&mut rng);
            l.observe(u);
            prop_assert!(rths_math::vector::is_distribution(l.probabilities(), 1e-9));
            for &p in l.probabilities() {
                prop_assert!(p >= floor - 1e-12, "probability {p} under floor {floor}");
            }
        }
    }

    #[test]
    fn regrets_always_nonnegative_and_finite(
        cfg in arb_config(),
        seed in any::<u64>(),
        utilities in prop::collection::vec(0.0..1000.0f64, 30..100),
    ) {
        let m = cfg.num_actions();
        let mut l = RthsLearner::new(cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for &u in &utilities {
            let _ = l.select_action(&mut rng);
            l.observe(u);
            for j in 0..m {
                for k in 0..m {
                    let q = l.regret(j, k);
                    prop_assert!(q >= 0.0 && q.is_finite());
                }
            }
            prop_assert!(l.max_regret() >= 0.0);
        }
    }

    #[test]
    fn history_equals_recursive_for_any_config(
        cfg in arb_config(),
        seed in any::<u64>(),
        utilities in prop::collection::vec(0.0..100.0f64, 20..60),
    ) {
        let mut hist = HistoryRths::new(cfg.clone());
        let mut rec = RthsLearner::new(cfg);
        let mut rng_h = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rng_r = rand::rngs::StdRng::seed_from_u64(seed);
        for &u in &utilities {
            let a_h = hist.select_action(&mut rng_h);
            let a_r = rec.select_action(&mut rng_r);
            prop_assert_eq!(a_h, a_r);
            // Make utility depend on action to surface any divergence.
            let payoff = u + a_h as f64;
            hist.observe(payoff);
            rec.observe(payoff);
            for (p_h, p_r) in hist.probabilities().iter().zip(rec.probabilities()) {
                prop_assert!((p_h - p_r).abs() < 1e-9, "probs diverged: {p_h} vs {p_r}");
            }
        }
    }

    #[test]
    fn deterministic_trajectories(cfg in arb_config(), seed in any::<u64>()) {
        let run = |cfg: RthsConfig, seed: u64| {
            let mut l = RthsLearner::new(cfg);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut actions = Vec::new();
            for s in 0..40 {
                let a = l.select_action(&mut rng);
                actions.push(a);
                l.observe((a + s % 3) as f64 * 7.0);
            }
            actions
        };
        prop_assert_eq!(run(cfg.clone(), seed), run(cfg, seed));
    }

    #[test]
    fn constant_utilities_keep_strategy_near_uniform(
        cfg in arb_config(),
        seed in any::<u64>(),
        u in 1.0..500.0f64,
    ) {
        // With identical utilities for every action there is nothing to
        // regret *in expectation*; the strategy should not collapse onto a
        // single action. (Importance-weighting noise allows transient
        // tilt, so the assertion is deliberately loose.)
        let m = cfg.num_actions();
        let mut l = RthsLearner::new(cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut sum_entropyish = 0.0;
        let stages = 400;
        for _ in 0..stages {
            let _ = l.select_action(&mut rng);
            l.observe(u);
            let max_p = l.probabilities().iter().copied().fold(0.0f64, f64::max);
            sum_entropyish += max_p;
        }
        let avg_max_p = sum_entropyish / stages as f64;
        prop_assert!(
            avg_max_p < 0.995,
            "strategy collapsed under constant utility: avg max prob {avg_max_p} (m={m})"
        );
    }

    #[test]
    fn matching_learner_keeps_uniform_invariants(
        seed in any::<u64>(),
        utilities in prop::collection::vec(0.0..100.0f64, 20..80),
    ) {
        let cfg = RthsConfig::builder(3).epsilon(0.05).delta(0.1).mu(100.0).build().unwrap();
        let mut l = RegretMatchingLearner::new(cfg).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for &u in &utilities {
            let _ = l.select_action(&mut rng);
            l.observe(u);
            prop_assert!(rths_math::vector::is_distribution(l.probabilities(), 1e-9));
            prop_assert!(l.max_regret() >= 0.0);
        }
    }

    #[test]
    fn reset_actions_gives_fresh_uniform_state(
        cfg in arb_config(),
        seed in any::<u64>(),
        new_m in 1usize..7,
    ) {
        let mut l = RthsLearner::new(cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..10 {
            let _ = l.select_action(&mut rng);
            l.observe(42.0);
        }
        l.reset_actions(new_m);
        prop_assert_eq!(l.num_actions(), new_m);
        prop_assert_eq!(l.stage(), 0);
        prop_assert_eq!(l.max_regret(), 0.0);
        let expect = 1.0 / new_m as f64;
        for &p in l.probabilities() {
            prop_assert!((p - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn slab_learner_replays_recursive_learner_bitwise(
        cfg in arb_config_all_modes(),
        seed in any::<u64>(),
        utilities in prop::collection::vec(0.0..1000.0f64, 40..120),
    ) {
        // Slab-backed learners must replay the scalar wrapped learner
        // bit-for-bit over randomized trajectories in every recency ×
        // conditional mode. Two slots share the slab so the strided
        // layout (not just a lone slot) is exercised.
        let slab = Arc::new(Mutex::new(LearnerSlab::new(cfg.num_actions())));
        let _neighbor = SlabLearner::new(Arc::clone(&slab), cfg.clone());
        let mut slabbed = SlabLearner::new(Arc::clone(&slab), cfg.clone());
        let mut wrapped = RthsLearner::new(cfg);
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(seed);
        for (s, &u) in utilities.iter().enumerate() {
            let a = wrapped.select_action(&mut rng_a);
            let b = slabbed.select_action(&mut rng_b);
            prop_assert_eq!(a, b, "action diverged at stage {}", s);
            wrapped.observe(u);
            slabbed.observe(u);
            for (x, y) in wrapped.probabilities().iter().zip(slabbed.probabilities()) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "probs diverged at stage {}", s);
            }
            prop_assert_eq!(
                wrapped.max_regret().to_bits(),
                slabbed.max_regret().to_bits(),
                "max_regret diverged at stage {}",
                s
            );
        }
    }

    #[test]
    fn uniform_mode_regrets_bounded_by_max_utility(
        seed in any::<u64>(),
        utilities in prop::collection::vec(0.0..200.0f64, 30..100),
    ) {
        // Under uniform averaging the regret is an average of bounded
        // per-stage differences with importance weights ≤ m/δ; sanity
        // bound: max_regret ≤ max_u · m / δ.
        let cfg = RthsConfig::builder(3)
            .epsilon(0.05)
            .delta(0.2)
            .mu(100.0)
            .recency(RecencyMode::Uniform)
            .build()
            .unwrap();
        let mut l = RthsLearner::new(cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let max_u = utilities.iter().copied().fold(0.0f64, f64::max);
        for &u in &utilities {
            let _ = l.select_action(&mut rng);
            l.observe(u);
        }
        let bound = max_u * 3.0 / 0.2 + 1e-9;
        prop_assert!(l.max_regret() <= bound, "{} > {bound}", l.max_regret());
    }
}
