//! Convergence time series.
//!
//! The evaluation figures are all time series (regret, welfare, loads,
//! server workload). [`ConvergenceSeries`] is the small recorder used by
//! the drivers and figure harnesses: it stores per-stage values and
//! answers the summary questions the figures need ("when did the series
//! fall below x?", "what is the tail mean?").

/// A named per-stage scalar series.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConvergenceSeries {
    name: String,
    values: Vec<f64>,
}

impl ConvergenceSeries {
    /// Creates an empty series called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), values: Vec::new() }
    }

    /// The series name (used as a CSV column header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends one stage's value.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// The recorded values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of recorded stages.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Last recorded value, if any.
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// Mean over the final `window` stages (or all, if shorter) — the
    /// "converged value" estimate used in EXPERIMENTS.md.
    pub fn tail_mean(&self, window: usize) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let start = self.values.len().saturating_sub(window.max(1));
        rths_math::stats::mean(&self.values[start..])
    }

    /// First stage index at which the series falls to or below
    /// `threshold` and stays there for `sustain` consecutive stages.
    /// `None` if it never does.
    pub fn convergence_stage(&self, threshold: f64, sustain: usize) -> Option<usize> {
        let sustain = sustain.max(1);
        let mut run = 0usize;
        for (i, &v) in self.values.iter().enumerate() {
            if v <= threshold {
                run += 1;
                if run >= sustain {
                    return Some(i + 1 - sustain);
                }
            } else {
                run = 0;
            }
        }
        None
    }

    /// Downsamples to at most `max_points` by stride, preserving the last
    /// point — keeps figure CSVs small.
    pub fn downsample(&self, max_points: usize) -> Vec<(usize, f64)> {
        if self.values.is_empty() || max_points == 0 {
            return Vec::new();
        }
        let stride = self.values.len().div_ceil(max_points).max(1);
        let mut out: Vec<(usize, f64)> =
            self.values.iter().enumerate().step_by(stride).map(|(i, &v)| (i, v)).collect();
        let last_idx = self.values.len() - 1;
        if out.last().map(|&(i, _)| i) != Some(last_idx) {
            out.push((last_idx, self.values[last_idx]));
        }
        out
    }
}

impl Extend<f64> for ConvergenceSeries {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_accessors() {
        let mut s = ConvergenceSeries::new("regret");
        assert!(s.is_empty());
        s.push(3.0);
        s.push(1.0);
        assert_eq!(s.name(), "regret");
        assert_eq!(s.len(), 2);
        assert_eq!(s.last(), Some(1.0));
        assert_eq!(s.values(), &[3.0, 1.0]);
    }

    #[test]
    fn tail_mean_windows() {
        let mut s = ConvergenceSeries::new("x");
        s.extend([10.0, 10.0, 2.0, 4.0]);
        assert_eq!(s.tail_mean(2), 3.0);
        assert_eq!(s.tail_mean(100), 6.5);
        assert_eq!(ConvergenceSeries::new("empty").tail_mean(5), 0.0);
    }

    #[test]
    fn convergence_stage_requires_sustained_dip() {
        let mut s = ConvergenceSeries::new("x");
        s.extend([5.0, 0.5, 6.0, 0.4, 0.3, 0.2, 7.0]);
        // Single-stage dip at index 1 does not count for sustain=2.
        assert_eq!(s.convergence_stage(0.5, 2), Some(3));
        assert_eq!(s.convergence_stage(0.5, 1), Some(1));
        assert_eq!(s.convergence_stage(0.1, 1), None);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let mut s = ConvergenceSeries::new("x");
        s.extend((0..100).map(|i| i as f64));
        let d = s.downsample(10);
        assert!(d.len() <= 11);
        assert_eq!(d[0], (0, 0.0));
        assert_eq!(*d.last().unwrap(), (99, 99.0));
        assert!(ConvergenceSeries::new("e").downsample(10).is_empty());
    }

    #[test]
    fn downsample_handles_small_series() {
        let mut s = ConvergenceSeries::new("x");
        s.extend([1.0, 2.0]);
        assert_eq!(s.downsample(10), vec![(0, 1.0), (1, 2.0)]);
    }
}
