//! A synchronous repeated-game driver.
//!
//! Couples a population of [`Learner`]s to the helper-selection stage game
//! with (optionally) time-varying helper capacities. This is the minimal
//! experiment loop used by unit tests, benches and the equilibrium
//! analyses; the full streaming-system simulator (demands, server, churn,
//! channels) lives in `rths-sim` and reuses the same learners.

use rand::RngCore;
use rths_game::equilibrium::verify::{ce_residual_congestion, CeReport};
use rths_game::{HelperSelectionGame, JointDistribution};

use crate::learner::Learner;
use crate::metrics::ConvergenceSeries;

/// Outcome of a driven run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Stages executed.
    pub stages: u64,
    /// Empirical joint distribution of play (for CE verification).
    pub joint: JointDistribution,
    /// Per-stage worst-peer *estimated* regret `max_i max_{j,k} Q_i(j,k)`
    /// — the learners' internal bandit estimates. Plateaus at the tracking
    /// noise floor (paper §II: "the regret estimates never completely
    /// converge but continue to vary").
    pub worst_regret: ConvergenceSeries,
    /// Per-stage worst-peer *empirical* regret: the time-averaged true
    /// regret `max_i max_{j,k} (1/n)·Σ_{τ: a_i=j} [u_i(k,a_-i) − u_i(a)]⁺`
    /// computed with full information from the actual play history. This
    /// is the quantity Hart & Mas-Colell's theorem drives to zero and the
    /// series Fig. 1 plots.
    pub worst_empirical_regret: ConvergenceSeries,
    /// Per-stage social welfare `Σ_i u_i` (Fig. 2).
    pub welfare: ConvergenceSeries,
    /// Per-stage count of peers that switched helpers (QoE proxy).
    pub switches: ConvergenceSeries,
    /// Time-averaged load per helper (Fig. 3).
    pub mean_loads: Vec<f64>,
    /// Time-averaged received rate per peer (Fig. 4).
    pub mean_rates: Vec<f64>,
    /// The capacities used at the final stage.
    pub final_capacities: Vec<f64>,
}

impl RunResult {
    /// CE verification of the recorded play against a game with the given
    /// (e.g. mean) capacities.
    pub fn ce_report(&self, capacities: Vec<f64>) -> CeReport {
        let game = HelperSelectionGame::new(capacities);
        ce_residual_congestion(&game, &self.joint)
    }
}

/// Synchronous driver: all peers select, the stage game resolves, all
/// peers observe — exactly the repeated-game protocol of §III.A.
#[derive(Debug)]
pub struct RepeatedGameDriver<L> {
    learners: Vec<L>,
    capacities: Vec<f64>,
    record_joint_from: u64,
}

impl<L: Learner> RepeatedGameDriver<L> {
    /// Creates a driver over `learners` with initial helper `capacities`.
    ///
    /// # Panics
    ///
    /// Panics if `learners` is empty, `capacities` is empty, or any
    /// learner's action count differs from the helper count.
    pub fn new(learners: Vec<L>, capacities: Vec<f64>) -> Self {
        assert!(!learners.is_empty(), "need at least one learner");
        assert!(!capacities.is_empty(), "need at least one helper");
        for (i, l) in learners.iter().enumerate() {
            assert_eq!(
                l.num_actions(),
                capacities.len(),
                "learner {i} has {} actions but there are {} helpers",
                l.num_actions(),
                capacities.len()
            );
        }
        Self { learners, capacities, record_joint_from: 0 }
    }

    /// Only record the joint distribution from stage `stage` onwards —
    /// standard practice to discard the transient when verifying CE.
    #[must_use]
    pub fn record_joint_from(mut self, stage: u64) -> Self {
        self.record_joint_from = stage;
        self
    }

    /// Immutable access to the learners.
    pub fn learners(&self) -> &[L] {
        &self.learners
    }

    /// Mutable access to the learners (e.g. to inspect regrets mid-run).
    pub fn learners_mut(&mut self) -> &mut [L] {
        &mut self.learners
    }

    /// Runs `stages` stages with fixed capacities.
    pub fn run(&mut self, stages: u64, rng: &mut dyn RngCore) -> RunResult {
        self.run_with(stages, rng, |_stage, _caps| {})
    }

    /// Runs `stages` stages; before each stage, `update_capacities` may
    /// mutate the capacity vector in place (helper bandwidth dynamics).
    ///
    /// # Panics
    ///
    /// Panics if the callback changes the capacity vector length or makes
    /// an entry negative/non-finite.
    pub fn run_with(
        &mut self,
        stages: u64,
        rng: &mut dyn RngCore,
        mut update_capacities: impl FnMut(u64, &mut Vec<f64>),
    ) -> RunResult {
        let n = self.learners.len();
        let h = self.capacities.len();
        let mut joint = JointDistribution::new();
        let mut worst_regret = ConvergenceSeries::new("worst_regret");
        let mut worst_empirical_regret = ConvergenceSeries::new("worst_empirical_regret");
        let mut welfare = ConvergenceSeries::new("welfare");
        let mut switches = ConvergenceSeries::new("switches");
        let mut load_sums = vec![0.0; h];
        let mut rate_sums = vec![0.0; n];
        let mut prev_profile: Option<Vec<usize>> = None;
        let mut profile = vec![0usize; n];
        // Cumulative true-regret sums per (peer, played j, alternative k):
        // Σ_{τ: a_i^τ = j} [u_i(k, a_-i^τ) − u_i^τ], laid out i·h² + j·h + k.
        let mut true_regret_sums = vec![0.0f64; n * h * h];

        for stage in 0..stages {
            update_capacities(stage, &mut self.capacities);
            assert_eq!(self.capacities.len(), h, "capacity vector length changed mid-run");
            assert!(
                self.capacities.iter().all(|c| c.is_finite() && *c >= 0.0),
                "capacities must stay finite and non-negative"
            );
            let game = HelperSelectionGame::new(self.capacities.clone());

            for (learner, slot) in self.learners.iter_mut().zip(profile.iter_mut()) {
                *slot = learner.select_action(rng);
            }
            let loads = game.loads(&profile);
            // Counterfactual joining rates, shared by all peers this stage.
            let join_rates: Vec<f64> = (0..h).map(|k| game.rate(k, loads[k] + 1)).collect();
            let mut stage_welfare = 0.0;
            for (i, (learner, &a)) in self.learners.iter_mut().zip(profile.iter()).enumerate() {
                let rate = game.rate(a, loads[a]);
                learner.observe(rate);
                stage_welfare += rate;
                rate_sums[i] += rate;
                let base = i * h * h + a * h;
                for k in 0..h {
                    if k != a {
                        true_regret_sums[base + k] += join_rates[k] - rate;
                    }
                }
            }
            for (sum, &l) in load_sums.iter_mut().zip(&loads) {
                *sum += l as f64;
            }

            let moved = prev_profile
                .as_ref()
                .map(|prev| prev.iter().zip(&profile).filter(|(a, b)| a != b).count())
                .unwrap_or(0);
            switches.push(moved as f64);
            prev_profile = Some(profile.clone());

            if stage >= self.record_joint_from {
                joint.record(&profile);
            }
            welfare.push(stage_welfare);
            let worst = self.learners.iter().map(|l| l.max_regret()).fold(0.0f64, f64::max);
            worst_regret.push(worst);
            let max_sum = true_regret_sums.iter().copied().fold(0.0f64, f64::max);
            worst_empirical_regret.push(max_sum / (stage + 1) as f64);
        }

        let denom = stages.max(1) as f64;
        RunResult {
            stages,
            joint,
            worst_regret,
            worst_empirical_regret,
            welfare,
            switches,
            mean_loads: load_sums.into_iter().map(|s| s / denom).collect(),
            mean_rates: rate_sums.into_iter().map(|s| s / denom).collect(),
            final_capacities: self.capacities.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RthsConfig;
    use crate::recursive::RthsLearner;
    use rand::SeedableRng;

    fn population(n: usize, h: usize, mu: f64) -> Vec<RthsLearner> {
        let cfg = RthsConfig::builder(h).epsilon(0.05).delta(0.08).mu(mu).build().unwrap();
        (0..n).map(|_| RthsLearner::new(cfg.clone())).collect()
    }

    #[test]
    fn run_produces_full_series() {
        let mut driver = RepeatedGameDriver::new(population(6, 2, 3200.0), vec![800.0, 800.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let result = driver.run(200, &mut rng);
        assert_eq!(result.stages, 200);
        assert_eq!(result.worst_regret.len(), 200);
        assert_eq!(result.welfare.len(), 200);
        assert_eq!(result.switches.len(), 200);
        assert_eq!(result.mean_loads.len(), 2);
        assert_eq!(result.mean_rates.len(), 6);
        assert_eq!(result.joint.total(), 200);
    }

    #[test]
    fn mean_loads_sum_to_peer_count() {
        let mut driver =
            RepeatedGameDriver::new(population(9, 3, 3200.0), vec![700.0, 800.0, 900.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let result = driver.run(150, &mut rng);
        let total: f64 = result.mean_loads.iter().sum();
        assert!((total - 9.0).abs() < 1e-9, "loads sum {total}");
    }

    #[test]
    fn welfare_never_exceeds_total_capacity() {
        let mut driver = RepeatedGameDriver::new(population(5, 2, 3200.0), vec![800.0, 600.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let result = driver.run(100, &mut rng);
        for &w in result.welfare.values() {
            assert!(w <= 1400.0 + 1e-9, "welfare {w} above capacity");
        }
    }

    #[test]
    fn empirical_regret_decays_on_equal_helpers() {
        let mut driver = RepeatedGameDriver::new(population(10, 2, 3200.0), vec![800.0, 800.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let result = driver.run(4000, &mut rng);
        let series = result.worst_empirical_regret.values();
        let early = rths_math::stats::mean(&series[20..120]);
        let late = result.worst_empirical_regret.tail_mean(200);
        assert!(
            late < early * 0.5,
            "empirical regret did not decay: early {early}, late {late}"
        );
        // Relative to the ~160 kbps per-peer scale the tail is small.
        assert!(late < 40.0, "tail empirical regret too large: {late}");
    }

    #[test]
    fn run_with_varies_capacities() {
        let mut driver = RepeatedGameDriver::new(population(4, 2, 3200.0), vec![800.0, 800.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let result = driver.run_with(50, &mut rng, |stage, caps| {
            caps[0] = if stage < 25 { 900.0 } else { 700.0 };
        });
        assert_eq!(result.final_capacities[0], 700.0);
    }

    #[test]
    fn record_joint_from_discards_transient() {
        let mut driver = RepeatedGameDriver::new(population(3, 2, 3200.0), vec![800.0, 800.0])
            .record_joint_from(80);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let result = driver.run(100, &mut rng);
        assert_eq!(result.joint.total(), 20);
    }

    #[test]
    #[should_panic(expected = "length changed")]
    fn capacity_length_change_panics() {
        let mut driver = RepeatedGameDriver::new(population(2, 2, 3200.0), vec![800.0, 800.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let _ = driver.run_with(10, &mut rng, |_, caps| {
            caps.push(100.0);
        });
    }

    #[test]
    #[should_panic(expected = "learner 0 has 3 actions")]
    fn mismatched_learner_actions_panics() {
        let _ = RepeatedGameDriver::new(population(2, 3, 3200.0), vec![800.0, 800.0]);
    }

    #[test]
    fn ce_report_from_converged_run_is_small() {
        let mut driver = RepeatedGameDriver::new(population(8, 2, 3200.0), vec![800.0, 800.0])
            .record_joint_from(1500);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let result = driver.run(4000, &mut rng);
        let report = result.ce_report(vec![800.0, 800.0]);
        // Relative residual should be a small fraction of mean utility.
        assert!(
            report.relative_residual() < 0.25,
            "relative residual {}",
            report.relative_residual()
        );
    }
}
