//! **RTHS** — Regret-Tracking-based Helper Selection.
//!
//! This crate implements the primary contribution of *"Decentralized
//! Adaptive Helper Selection in Multi-channel P2P Streaming Systems"*
//! (Mostafavi & Dehghan, ICDCS 2014): a fully decentralized online
//! learning rule by which selfish peers, each observing **only its own
//! realized streaming rate**, select helpers such that the empirical joint
//! play converges to (and tracks, under non-stationary helper bandwidth)
//! the set of **correlated equilibria** of the helper-selection game.
//!
//! Three learners are provided:
//!
//! * [`RthsLearner`] — the recursive R2HS form (paper Algorithm 2,
//!   Eqs. 3-4…3-6): `O(|H|)` state and `O(|H|²)` work per stage. This is
//!   the implementation to use.
//! * [`HistoryRths`] — the literal Algorithm 1 statement that recomputes
//!   the exponentially weighted sums (Eqs. 3-2/3-3) from explicit history
//!   each stage. It exists for fidelity and is asserted trajectory-
//!   identical to [`RthsLearner`] in tests.
//! * [`RegretMatchingLearner`] — the classic Hart & Mas-Colell
//!   *regret-matching* baseline with uniform `1/n` averaging. The
//!   tracking-vs-matching ablation shows why the paper replaces uniform
//!   with recency-weighted averaging in non-stationary environments.
//!
//! # The algorithm in five lines
//!
//! At stage `n`, a peer with play probabilities `p^n` samples helper
//! `j ~ p^n`, receives rate `u`, and updates (default
//! [`RecencyMode::Exponential`]):
//!
//! ```text
//! T ← (1-ε)·T;   T[r][j] += u · p^n(r)/p^n(j)   for every row r     (3-5)
//! Q(j,k) = ε · max(0, T[j][k] − T[j][j])                            (3-6)
//! p^{n+1}(k) = (1-δ)·min{ Q(j,k)/μ, 1/(m-1) } + δ/m   for k ≠ j
//! p^{n+1}(j) = 1 − Σ_{k≠j} p^{n+1}(k)
//! ```
//!
//! No information about other peers is needed — the coordination signal
//! travels implicitly through the realized rates.
//!
//! # Example
//!
//! ```
//! use rths_core::{RepeatedGameDriver, RthsConfig, RthsLearner};
//! use rand::SeedableRng;
//!
//! // 6 peers learn over two 800 kbps helpers.
//! let config = RthsConfig::builder(2).mu(3200.0).build()?;
//! let peers: Vec<RthsLearner> =
//!     (0..6).map(|_| RthsLearner::new(config.clone())).collect();
//! let mut driver = RepeatedGameDriver::new(peers, vec![800.0, 800.0]);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let result = driver.run(3000, &mut rng);
//!
//! // The empirical worst-peer regret (Fig. 1's series) has decayed…
//! let tail = result.worst_empirical_regret.tail_mean(300);
//! assert!(tail < 30.0, "tail regret {tail}");
//! // …and play is an approximate correlated equilibrium.
//! let report = result.ce_report(vec![800.0, 800.0]);
//! assert!(report.relative_residual() < 0.2);
//! # Ok::<(), rths_core::ConfigError>(())
//! ```

#![forbid(unsafe_code)]

pub mod compact;
pub mod config;
pub mod driver;
pub mod exp3;
pub mod history;
pub mod learner;
pub mod matching;
pub mod metrics;
pub mod policy;
pub mod recursive;
pub mod slab;

pub use compact::RthsState;
pub use config::{ConfigError, RecencyMode, RthsConfig, RthsConfigBuilder};
pub use driver::{RepeatedGameDriver, RunResult};
pub use exp3::{Exp3Config, Exp3Learner};
pub use history::HistoryRths;
pub use learner::Learner;
pub use matching::RegretMatchingLearner;
pub use metrics::ConvergenceSeries;
pub use recursive::RthsLearner;
pub use slab::{LearnerSlab, SharedSlab, SlabCols, SlabLearner};
