//! The common learner interface.

use rand::RngCore;

/// A bandit-feedback regret learner: it selects one action per stage and
/// observes only the utility of the action actually played
/// ("zero-knowledge … opaque feedbacks", paper §III.B).
///
/// The stage protocol is strict: every [`select_action`](Learner::select_action)
/// must be followed by exactly one [`observe`](Learner::observe) before
/// the next selection. Implementations panic on protocol violations, which
/// would silently corrupt regret bookkeeping otherwise.
pub trait Learner {
    /// Number of currently available actions.
    fn num_actions(&self) -> usize;

    /// The current mixed strategy `pⁿ` (a probability distribution).
    fn probabilities(&self) -> &[f64];

    /// Samples and commits to the action for this stage.
    ///
    /// # Panics
    ///
    /// Panics if called twice without an intervening
    /// [`observe`](Learner::observe).
    fn select_action(&mut self, rng: &mut dyn RngCore) -> usize;

    /// Reports the realized utility of the action chosen this stage and
    /// performs the regret/probability update.
    ///
    /// # Panics
    ///
    /// Panics if no action is pending or the utility is not finite.
    fn observe(&mut self, utility: f64);

    /// Largest current regret estimate `max_{j,k} Qⁿ(j,k)` — the quantity
    /// Fig. 1 plots for the worst peer.
    fn max_regret(&self) -> f64;

    /// Stages completed (select+observe pairs).
    fn stage(&self) -> u64;

    /// The action committed this stage, if between select and observe.
    fn pending_action(&self) -> Option<usize>;

    /// Replaces the action set with `num_actions` fresh actions (helper
    /// churn). Regret state is reset; the strategy restarts uniform.
    ///
    /// # Panics
    ///
    /// Panics if `num_actions == 0` or if an observation is pending.
    fn reset_actions(&mut self, num_actions: usize);
}

#[cfg(test)]
mod tests {
    // The trait is exercised through its implementations; here we only
    // check object safety.
    use super::*;

    #[test]
    fn learner_is_object_safe() {
        fn _takes_dyn(_l: &dyn Learner) {}
    }
}
