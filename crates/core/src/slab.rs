//! Arena slabs of learner state + batched column-major T-matrix kernels.
//!
//! At 10⁵+ peers the per-peer [`RthsState`](crate::RthsState) layout is
//! allocator-bound: every peer carries its own `Matrix::zeros(m, m)` heap
//! block (32 KB at m = 64), so *constructing* a mesh costs one allocation
//! storm and the T-matrices dominate peak RSS. [`LearnerSlab`] packs all
//! same-shard peers' learner state into a handful of flat columns — the
//! structure-of-arrays counterpart of `rths_sim`'s `PeerStore`:
//!
//! ```text
//!            slot 0                    slot 1                 …
//!   t:     [ col₀ | col₁ | … | colₛ ][ col₀ | col₁ | … ]      stride s²
//!           └─ T(r,k) at k·s + r  (column-major per slot)
//!   probs: [ p₀ … pₛ ]             [ p₀ … pₛ ]                stride s
//!   freq:  [ f₀ … fₛ ]             [ f₀ … fₛ ]                stride s
//!   played:[ column bitmask ]      [ column bitmask ]         ⌈s/64⌉ words
//!   arity / stage / pending: one scalar per slot
//! ```
//!
//! The layout is chosen so every hot loop of the learner update runs over
//! a **contiguous** slice that LLVM autovectorizes (`rths_math::kernels`):
//! the rank-1 update touches exactly column `j`, the exponential decay
//! walks whole columns, and `max_regret` scans column-against-diagonal.
//! The played-column bitmask makes the decay *provably sparse*: a column
//! `k` is only ever written by the decay itself (a bitwise no-op on an
//! all-zero column, since `+0.0 · (1−ε) = +0.0`) and by the rank-1 update
//! when `k` was the played action — so never-played columns are exactly
//! `+0.0` everywhere and skipping their decay is bit-identical. That both
//! cuts the `O(m²)`-per-observe decay down to `O(played · m)` and leaves
//! the untouched columns' pages unwritten (one big lazily-mapped zero
//! allocation instead of 10⁵ eagerly-zeroed ones), which is where the
//! construction-time and peak-RSS wins at the 10⁵-actor point come from.
//!
//! Every operation performs the **exact float expressions in the exact
//! order** of the scalar oracle ([`RthsState`](crate::RthsState)), so
//! slab-backed learners replay the scalar path bit-for-bit — proven by
//! the oracle tests below and the proptest sweep in
//! `tests/properties.rs`.
//!
//! Two usage modes (per instance — they must not be mixed):
//!
//! * **slot-aligned mode** (`rths_sim`'s `PeerStore`): slab slot ==
//!   store slot; departures go through [`LearnerSlab::remove_slots`]'s
//!   order-preserving compaction (mirroring the store's column
//!   compaction), and the free list stays empty.
//! * **free-list mode** (the reactor backend, one slab per mailbox
//!   shard): [`alloc`](LearnerSlab::alloc) / [`release`](LearnerSlab::release)
//!   with stable slots; [`SlabLearner`] wraps one slot behind the
//!   [`Learner`] trait for actors that own their learner.

use std::sync::{Arc, Mutex};

use rand::RngCore;
use rths_math::kernels;
use rths_par::{ShardCols, Strided};

use crate::config::{RecencyMode, RthsConfig};
use crate::learner::Learner;
use crate::policy;

/// Sentinel in the `pending` column: no observation outstanding.
pub const NO_PENDING: u32 = u32::MAX;

/// The averaging factor turning proxy differences into regrets — `ε` for
/// the tracking modes, `1/n` for uniform matching (same as
/// `RthsState::factor`).
fn factor_for(config: &RthsConfig, stage: u64) -> f64 {
    match config.recency() {
        RecencyMode::Exponential | RecencyMode::PaperLiteral => config.epsilon(),
        RecencyMode::Uniform => 1.0 / stage.max(1) as f64,
    }
}

/// Applies `T[:, k] *= keep` to every column flagged in the played
/// bitmask. Unflagged columns are exactly `+0.0` (slab invariant), for
/// which the decay is a bitwise no-op — skipping them changes nothing
/// and keeps their pages unwritten.
fn decay_columns(t: &mut [f64], played: &[u64], stride: usize, keep: f64) {
    for (w, &word) in played.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let k = w * 64 + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            kernels::scale(&mut t[k * stride..(k + 1) * stride], keep);
        }
    }
}

/// Max derived regret over one slot's `m × m` submatrix — the same value
/// multiset (and therefore the same max) as the scalar row-major scan.
fn max_regret_in(t: &[f64], stride: usize, m: usize, factor: f64, diag: &mut Vec<f64>) -> f64 {
    diag.clear();
    diag.extend((0..m).map(|j| t[j * stride + j]));
    let mut max = f64::NEG_INFINITY;
    for k in 0..m {
        max =
            max.max(kernels::shifted_regret_max(&t[k * stride..k * stride + m], diag, factor));
    }
    if max.is_finite() {
        max.max(0.0)
    } else {
        0.0
    }
}

/// An arena of learner slots sharing flat columns (see the module docs
/// for the layout and the two usage modes).
#[derive(Debug, Clone)]
pub struct LearnerSlab {
    /// Scalars per probs/freq row; columns per T submatrix. Fixed at
    /// construction to the largest arity the slab must host.
    stride: usize,
    /// Bitmask words per slot (`⌈stride / 64⌉`).
    words: usize,
    t: Vec<f64>,
    probs: Vec<f64>,
    freq: Vec<f64>,
    played: Vec<u64>,
    arity: Vec<u32>,
    stage: Vec<u64>,
    pending: Vec<u32>,
    free: Vec<u32>,
    /// Slots handed out by [`alloc`](Self::alloc) from the free list
    /// instead of fresh storage (observability: free-list reuse means
    /// churn is not costing allocator traffic).
    reuses: u64,
}

impl LearnerSlab {
    /// An empty slab whose slots can host up to `stride` actions each.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn new(stride: usize) -> Self {
        Self::with_capacity(stride, 0)
    }

    /// An empty slab with **zeroed backing storage** for `slots` slots
    /// created up front. This is the fast construction path: one
    /// `alloc_zeroed` per column (the kernel maps the pages lazily, so
    /// nothing is committed until a column is actually written), and
    /// [`alloc`](Self::alloc) then only initialises the tiny per-slot
    /// probability prefix — no per-peer heap allocation, no eager
    /// `O(m²)` zero-fill per peer.
    pub fn with_capacity(stride: usize, slots: usize) -> Self {
        assert!(stride > 0, "slab stride must be positive");
        let words = stride.div_ceil(64);
        Self {
            stride,
            words,
            t: vec![0.0; slots * stride * stride],
            probs: vec![0.0; slots * stride],
            freq: vec![0.0; slots * stride],
            played: vec![0; slots * words],
            arity: Vec::with_capacity(slots),
            stage: Vec::with_capacity(slots),
            pending: Vec::with_capacity(slots),
            free: Vec::new(),
            reuses: 0,
        }
    }

    /// Ensures zeroed backing storage for `additional` more slots beyond
    /// the current count. On an **empty** slab this replaces the backing
    /// columns with one fresh `alloc_zeroed` each (lazily-mapped pages —
    /// the same fast path as [`with_capacity`](Self::with_capacity));
    /// on a live slab it falls back to an explicit zero-extending resize.
    pub fn reserve(&mut self, additional: usize) {
        let target = self.arity.len() + additional;
        if target * self.stride * self.stride <= self.t.len() {
            return;
        }
        if self.arity.is_empty() && self.free.is_empty() {
            self.t = vec![0.0; target * self.stride * self.stride];
            self.probs = vec![0.0; target * self.stride];
            self.freq = vec![0.0; target * self.stride];
            self.played = vec![0; target * self.words];
        } else {
            self.t.resize(target * self.stride * self.stride, 0.0);
            self.probs.resize(target * self.stride, 0.0);
            self.freq.resize(target * self.stride, 0.0);
            self.played.resize(target * self.words, 0);
        }
        self.arity.reserve(target - self.arity.len());
        self.stage.reserve(target - self.stage.len());
        self.pending.reserve(target - self.pending.len());
    }

    /// The fixed per-slot stride (maximum hostable arity).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Total slots, including free-listed ones.
    pub fn num_slots(&self) -> usize {
        self.arity.len()
    }

    /// Slots currently on the free list.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Cumulative count of [`alloc`](Self::alloc) calls satisfied from
    /// the free list (no fresh storage touched).
    pub fn free_list_reuses(&self) -> u64 {
        self.reuses
    }

    /// Allocates a slot initialised to the uniform fresh-learner state
    /// (`T = 0`, `p = f = 1/m`, stage 0, nothing pending), reusing the
    /// most recently freed slot if one exists.
    ///
    /// # Panics
    ///
    /// Panics if `num_actions` is zero or exceeds the stride.
    pub fn alloc(&mut self, num_actions: usize) -> u32 {
        assert!(num_actions > 0, "slab slot needs at least one action");
        assert!(num_actions <= self.stride, "action count {num_actions} exceeds slab stride");
        let slot = match self.free.pop() {
            Some(s) => {
                self.reuses += 1;
                s as usize
            }
            None => {
                let s = self.arity.len();
                // Grow the backing columns only past the pre-zeroed
                // region ([`with_capacity`]/[`reserve`]); inside it the
                // slot's storage already exists, untouched and zero.
                if (s + 1) * self.stride * self.stride > self.t.len() {
                    self.t.resize((s + 1) * self.stride * self.stride, 0.0);
                    self.probs.resize((s + 1) * self.stride, 0.0);
                    self.freq.resize((s + 1) * self.stride, 0.0);
                    self.played.resize((s + 1) * self.words, 0);
                }
                self.arity.push(0);
                self.stage.push(0);
                self.pending.push(NO_PENDING);
                s
            }
        };
        // Freed slots were wiped on release and fresh slots are zero, so
        // T and the bitmask need no work; only the uniform prefix does.
        self.arity[slot] = num_actions as u32;
        self.stage[slot] = 0;
        self.pending[slot] = NO_PENDING;
        let base = slot * self.stride;
        let p = 1.0 / num_actions as f64;
        self.probs[base..base + num_actions].fill(p);
        self.freq[base..base + num_actions].fill(p);
        slot as u32
    }

    /// Returns a slot to the free list, restoring the all-zero T /
    /// cleared-bitmask invariant `alloc` relies on.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range or already free.
    pub fn release(&mut self, slot: u32) {
        let s = slot as usize;
        assert!(s < self.arity.len(), "slot out of range");
        assert!(self.arity[s] != 0, "slot released twice");
        self.wipe_t(s);
        self.arity[s] = 0;
        self.stage[s] = 0;
        self.pending[s] = NO_PENDING;
        self.free.push(slot);
    }

    /// Allocates a new slot carrying an exact copy of `src`'s state.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range or free.
    pub fn clone_slot(&mut self, src: u32) -> u32 {
        let s = src as usize;
        assert!(s < self.arity.len(), "slot out of range");
        let m = self.arity[s] as usize;
        assert!(m > 0, "cannot clone a freed slot");
        let dst = self.alloc(m) as usize;
        let stride = self.stride;
        for w in 0..self.words {
            let mut bits = self.played[s * self.words + w];
            self.played[dst * self.words + w] = bits;
            while bits != 0 {
                let k = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let from = (s * stride + k) * stride;
                self.t.copy_within(from..from + stride, (dst * stride + k) * stride);
            }
        }
        self.probs.copy_within(s * stride..(s + 1) * stride, dst * stride);
        self.freq.copy_within(s * stride..(s + 1) * stride, dst * stride);
        self.stage[dst] = self.stage[s];
        self.pending[dst] = self.pending[s];
        dst as u32
    }

    /// Removes the given slots with an **order-preserving compaction**,
    /// mirroring `PeerStore::remove_slots` so slab slots stay aligned
    /// with store slots. Survivor data is copied by played columns only
    /// (`O(played · stride)` per move, not `O(stride²)`).
    ///
    /// # Panics
    ///
    /// Panics if `sorted` is not strictly increasing, any slot is out of
    /// range, or the slab has free-listed slots (compaction and the free
    /// list are the two mutually exclusive usage modes).
    pub fn remove_slots(&mut self, sorted: &[u32]) {
        if sorted.is_empty() {
            return;
        }
        assert!(self.free.is_empty(), "cannot compact a slab with free-listed slots");
        assert!(sorted.windows(2).all(|w| w[0] < w[1]), "slots must be sorted and unique");
        let n = self.arity.len();
        assert!((sorted[sorted.len() - 1] as usize) < n, "slot out of range");
        let stride = self.stride;
        let words = self.words;
        let mut next = 0usize;
        let mut write = 0usize;
        for read in 0..n {
            if next < sorted.len() && sorted[next] as usize == read {
                next += 1;
                continue;
            }
            if write != read {
                // The write slot holds stale data (its live copy, if any,
                // already moved further down): wipe its played columns,
                // then pull the survivor's played columns down.
                self.wipe_t(write);
                for w in 0..words {
                    let mut bits = self.played[read * words + w];
                    self.played[write * words + w] = bits;
                    while bits != 0 {
                        let k = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let from = (read * stride + k) * stride;
                        self.t.copy_within(from..from + stride, (write * stride + k) * stride);
                    }
                }
                self.probs.copy_within(read * stride..(read + 1) * stride, write * stride);
                self.freq.copy_within(read * stride..(read + 1) * stride, write * stride);
                self.arity[write] = self.arity[read];
                self.stage[write] = self.stage[read];
                self.pending[write] = self.pending[read];
            }
            write += 1;
        }
        // The tail slots `[write..n)` hold stale copies of removed or
        // relocated state. Wipe their played columns so the retained
        // backing region returns to the all-zero state `alloc` relies
        // on (probs/freq slack needs no wipe — `alloc` refills the
        // prefix it hands out). The flat columns keep their length: the
        // zeroed tail is reusable backing, not live slots.
        for s in write..n {
            self.wipe_t(s);
        }
        self.arity.truncate(write);
        self.stage.truncate(write);
        self.pending.truncate(write);
    }

    /// Reinitialises a slot for a new action count (channel switch) —
    /// same semantics (and panics) as `RthsState::reset_actions`.
    pub fn reset_actions(&mut self, slot: usize, num_actions: usize) {
        assert!(
            self.pending[slot] == NO_PENDING,
            "cannot reset actions with an observation pending"
        );
        assert!(num_actions > 0, "reset_actions requires at least one action");
        assert!(num_actions <= self.stride, "action count {num_actions} exceeds slab stride");
        self.wipe_t(slot);
        self.arity[slot] = num_actions as u32;
        self.stage[slot] = 0;
        let base = slot * self.stride;
        let p = 1.0 / num_actions as f64;
        self.probs[base..base + num_actions].fill(p);
        self.freq[base..base + num_actions].fill(p);
    }

    /// Zeroes the slot's played T columns and clears its bitmask.
    fn wipe_t(&mut self, slot: usize) {
        let stride = self.stride;
        let w_base = slot * self.words;
        for w in 0..self.words {
            let mut bits = self.played[w_base + w];
            self.played[w_base + w] = 0;
            while bits != 0 {
                let k = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let from = (slot * stride + k) * stride;
                self.t[from..from + stride].fill(0.0);
            }
        }
    }

    /// The slot's action count.
    pub fn num_actions(&self, slot: usize) -> usize {
        self.arity[slot] as usize
    }

    /// The slot's current mixed strategy.
    pub fn probabilities(&self, slot: usize) -> &[f64] {
        let base = slot * self.stride;
        &self.probs[base..base + self.arity[slot] as usize]
    }

    /// The slot's recency-weighted play frequencies.
    pub fn play_frequencies(&self, slot: usize) -> &[f64] {
        let base = slot * self.stride;
        &self.freq[base..base + self.arity[slot] as usize]
    }

    /// Stages the slot has observed.
    pub fn stage(&self, slot: usize) -> u64 {
        self.stage[slot]
    }

    /// The slot's action awaiting observation, if any.
    pub fn pending_action(&self, slot: usize) -> Option<usize> {
        let p = self.pending[slot];
        (p != NO_PENDING).then_some(p as usize)
    }

    /// Proxy-matrix entry `T(j, k)` of a slot (tests/diagnostics).
    pub fn proxy(&self, slot: usize, j: usize, k: usize) -> f64 {
        let m = self.arity[slot] as usize;
        assert!(j < m && k < m, "proxy index out of range");
        self.t[(slot * self.stride + k) * self.stride + j]
    }

    /// Borrows every column as a [`SlabCols`] bundle for a sharded
    /// parallel phase.
    pub fn split(&mut self) -> SlabCols<'_> {
        // Only the live-slot prefix is handed out — the flat columns may
        // carry extra pre-zeroed backing beyond `num_slots()`.
        let n = self.arity.len();
        SlabCols {
            stride: self.stride,
            t: Strided::new(
                self.stride * self.stride,
                &mut self.t[..n * self.stride * self.stride],
            ),
            probs: Strided::new(self.stride, &mut self.probs[..n * self.stride]),
            freq: Strided::new(self.stride, &mut self.freq[..n * self.stride]),
            played: Strided::new(self.words, &mut self.played[..n * self.words]),
            arity: &mut self.arity,
            stage: &mut self.stage,
            pending: &mut self.pending,
        }
    }

    /// Samples an action for a slot (see `RthsState::select_action`).
    pub fn select_action(&mut self, slot: usize, rng: &mut dyn RngCore) -> usize {
        self.split().select_action(slot, rng)
    }

    /// Feeds a slot's pending utility through the full update (see
    /// `RthsState::observe`).
    pub fn observe(
        &mut self,
        slot: usize,
        config: &RthsConfig,
        utility: f64,
        row_scratch: &mut Vec<f64>,
    ) {
        self.split().observe(slot, config, utility, row_scratch);
    }

    /// Decays every slot's played T columns by `keep = 1 − ε` once —
    /// the batched counterpart of the per-observe decay, for callers
    /// that then use [`SlabCols::observe_predecayed`]. Returns the
    /// number of T columns touched (observability; ignorable).
    pub fn decay_all(&mut self, keep: f64) -> u64 {
        self.split().decay(keep)
    }

    /// Largest derived regret of a slot (metrics path; allocates a small
    /// diagonal scratch — the sharded phases use
    /// [`SlabCols::max_regret`] with a reusable buffer instead).
    pub fn max_regret(&self, slot: usize, config: &RthsConfig) -> f64 {
        let m = self.arity[slot] as usize;
        let base = slot * self.stride * self.stride;
        let factor = factor_for(config, self.stage[slot]);
        let mut diag = Vec::with_capacity(m);
        max_regret_in(
            &self.t[base..base + self.stride * self.stride],
            self.stride,
            m,
            factor,
            &mut diag,
        )
    }
}

/// All of a [`LearnerSlab`]'s columns borrowed as a splittable bundle:
/// the [`ShardCols`] implementation hands each parallel shard a disjoint
/// contiguous slot range of **every** column, so the store's phases can
/// run slab-backed learners with the same zero-sharing contract as the
/// rest of the SoA columns. Slot indices on the methods are **relative
/// to the chunk** (shard-local), like `Strided::row`.
#[derive(Debug)]
pub struct SlabCols<'a> {
    stride: usize,
    t: Strided<'a, f64>,
    probs: Strided<'a, f64>,
    freq: Strided<'a, f64>,
    played: Strided<'a, u64>,
    arity: &'a mut [u32],
    stage: &'a mut [u64],
    pending: &'a mut [u32],
}

impl ShardCols for SlabCols<'_> {
    fn shard_split(self, mid: usize) -> (Self, Self) {
        let (t0, t1) = self.t.shard_split(mid);
        let (p0, p1) = self.probs.shard_split(mid);
        let (f0, f1) = self.freq.shard_split(mid);
        let (w0, w1) = self.played.shard_split(mid);
        let (a0, a1) = self.arity.split_at_mut(mid);
        let (s0, s1) = self.stage.split_at_mut(mid);
        let (g0, g1) = self.pending.split_at_mut(mid);
        (
            SlabCols {
                stride: self.stride,
                t: t0,
                probs: p0,
                freq: f0,
                played: w0,
                arity: a0,
                stage: s0,
                pending: g0,
            },
            SlabCols {
                stride: self.stride,
                t: t1,
                probs: p1,
                freq: f1,
                played: w1,
                arity: a1,
                stage: s1,
                pending: g1,
            },
        )
    }
}

impl SlabCols<'_> {
    /// Slots in this chunk.
    pub fn len(&self) -> usize {
        self.arity.len()
    }

    /// Whether the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.arity.is_empty()
    }

    /// Decays every slot's played T columns by `keep` once. Valid as a
    /// hoisted batch before a round of [`observe_predecayed`]
    /// (`Self::observe_predecayed`) calls exactly when each slot observes
    /// exactly once in the round: the decay commutes bitwise with every
    /// other slot's update (disjoint state) and with this slot's own
    /// select (which reads only `probs`), so hoisting it to the top of
    /// the round leaves each slot's decay→rank-1 order intact.
    ///
    /// Returns the number of T columns touched (the popcount of the
    /// played bitmasks) — the per-shard `slab_columns_touched`
    /// observability counter. The count is derived state, never an
    /// input: ignoring it changes nothing.
    pub fn decay(&mut self, keep: f64) -> u64 {
        let mut touched = 0u64;
        for i in 0..self.arity.len() {
            let t = self.t.row(i);
            let played = self.played.row(i);
            touched += played.iter().map(|w| u64::from(w.count_ones())).sum::<u64>();
            decay_columns(t, played, self.stride, keep);
        }
        touched
    }

    /// Samples an action from slot `i`'s strategy, recording it pending —
    /// float-identical to `RthsState::select_action`.
    ///
    /// # Panics
    ///
    /// Panics if an observation is already pending.
    pub fn select_action(&mut self, i: usize, rng: &mut dyn RngCore) -> usize {
        assert!(
            self.pending[i] == NO_PENDING,
            "select_action called with an observation pending"
        );
        let m = self.arity[i] as usize;
        let probs = &self.probs.row(i)[..m];
        let u: f64 = rand::Rng::gen(rng);
        let mut acc = 0.0;
        let mut chosen = m - 1;
        for (a, &p) in probs.iter().enumerate() {
            acc += p;
            if u < acc {
                chosen = a;
                break;
            }
        }
        self.pending[i] = chosen as u32;
        chosen
    }

    /// Full observe for slot `i` — the slab counterpart of
    /// `RthsState::observe`, bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if no action is pending or `utility` is not finite.
    pub fn observe(
        &mut self,
        i: usize,
        config: &RthsConfig,
        utility: f64,
        row_scratch: &mut Vec<f64>,
    ) {
        self.observe_inner(i, config, utility, row_scratch, false);
    }

    /// Observe for a slot whose exponential decay was already applied by
    /// a batched [`decay`](Self::decay) this round.
    pub fn observe_predecayed(
        &mut self,
        i: usize,
        config: &RthsConfig,
        utility: f64,
        row_scratch: &mut Vec<f64>,
    ) {
        self.observe_inner(i, config, utility, row_scratch, true);
    }

    fn observe_inner(
        &mut self,
        i: usize,
        config: &RthsConfig,
        utility: f64,
        row_scratch: &mut Vec<f64>,
        predecayed: bool,
    ) {
        assert!(utility.is_finite(), "utility must be finite, got {utility}");
        assert!(self.pending[i] != NO_PENDING, "observe called without a pending action");
        let j = self.pending[i] as usize;
        self.pending[i] = NO_PENDING;
        self.stage[i] += 1;
        let stage = self.stage[i];
        let m = self.arity[i] as usize;
        debug_assert_eq!(m, config.num_actions(), "slot arity and config disagree");
        let stride = self.stride;
        let t = self.t.row(i);
        let probs = self.probs.row(i);
        let freq = self.freq.row(i);
        let played = self.played.row(i);

        // Eq. (3-5): T ← decay(T); column j += (u/pⁿ(j)) · pⁿ.
        if !predecayed && config.recency() == RecencyMode::Exponential {
            decay_columns(t, played, stride, 1.0 - config.epsilon());
        }
        let p_j = probs[j];
        debug_assert!(p_j > 0.0, "played action had zero probability");
        let scale = utility / p_j;
        kernels::axpy(&mut t[j * stride..j * stride + m], scale, &probs[..m]);
        played[j / 64] |= 1 << (j % 64);

        // Play-frequency average (same weighting scheme as T).
        match config.recency() {
            RecencyMode::Exponential => {
                let eps = config.epsilon();
                for (a, f) in freq[..m].iter_mut().enumerate() {
                    *f = (1.0 - eps) * *f + if a == j { eps } else { 0.0 };
                }
            }
            RecencyMode::PaperLiteral | RecencyMode::Uniform => {
                let n = stage as f64;
                for (a, f) in freq[..m].iter_mut().enumerate() {
                    let count = *f * (n - 1.0) + if a == j { 1.0 } else { 0.0 };
                    *f = count / n;
                }
            }
        }

        // Eq. (3-6) for the played row: element j of each column — a
        // strided gather in this layout, same values and visit order as
        // the scalar row walk.
        let factor = factor_for(config, stage);
        let t_jj = t[j * stride + j];
        row_scratch.clear();
        for k in 0..m {
            row_scratch.push(if j == k {
                0.0
            } else {
                (factor * (t[k * stride + j] - t_jj)).max(0.0)
            });
        }
        if config.conditional() {
            let floor = policy::exploration_floor(m, config.delta());
            let f_j = freq[j].max(floor);
            for r in row_scratch.iter_mut() {
                *r /= f_j;
            }
        }
        policy::update_probabilities(
            &mut probs[..m],
            j,
            row_scratch,
            config.delta(),
            config.mu(),
        );
    }

    /// Largest derived regret of slot `i`, with a caller-provided
    /// diagonal scratch so steady-state phases allocate nothing.
    pub fn max_regret(&mut self, i: usize, config: &RthsConfig, diag: &mut Vec<f64>) -> f64 {
        let m = self.arity[i] as usize;
        let factor = factor_for(config, self.stage[i]);
        let stride = self.stride;
        max_regret_in(self.t.row(i), stride, m, factor, diag)
    }

    /// Slot `i`'s current mixed strategy.
    pub fn probabilities(&mut self, i: usize) -> &[f64] {
        let m = self.arity[i] as usize;
        &self.probs.row(i)[..m]
    }
}

/// A shared, mutex-guarded slab handle for owners that hold their
/// learner by value (the reactor's peer actors).
pub type SharedSlab = Arc<Mutex<LearnerSlab>>;

/// One slab slot behind the [`Learner`] trait: the reactor backend packs
/// all same-mailbox-shard peers' state into one [`SharedSlab`] (same-
/// shard actors run sequentially on one worker, so the mutex is
/// uncontended) and hands each `Peer` a `SlabLearner`. The strategy is
/// mirrored into a local cache after every update so
/// [`probabilities`](Learner::probabilities) can return a borrow without
/// holding the lock.
#[derive(Debug)]
pub struct SlabLearner {
    slab: SharedSlab,
    slot: u32,
    config: RthsConfig,
    probs: Vec<f64>,
    scratch: Vec<f64>,
}

impl SlabLearner {
    /// Allocates a fresh uniform slot in `slab` for `config`'s action
    /// count.
    pub fn new(slab: SharedSlab, config: RthsConfig) -> Self {
        let m = config.num_actions();
        let slot = slab.lock().expect("learner slab mutex poisoned").alloc(m);
        Self { slab, slot, config, probs: vec![1.0 / m as f64; m], scratch: Vec::new() }
    }

    /// The slab slot this learner owns.
    pub fn slot(&self) -> u32 {
        self.slot
    }

    /// The learner's configuration.
    pub fn config(&self) -> &RthsConfig {
        &self.config
    }
}

impl Clone for SlabLearner {
    fn clone(&self) -> Self {
        let slot = self.slab.lock().expect("learner slab mutex poisoned").clone_slot(self.slot);
        Self {
            slab: Arc::clone(&self.slab),
            slot,
            config: self.config.clone(),
            probs: self.probs.clone(),
            scratch: Vec::new(),
        }
    }
}

impl Drop for SlabLearner {
    fn drop(&mut self) {
        // Return the slot for reuse; skip quietly if another owner
        // panicked with the lock held (the slab dies with the runtime).
        if let Ok(mut slab) = self.slab.lock() {
            slab.release(self.slot);
        }
    }
}

impl Learner for SlabLearner {
    fn num_actions(&self) -> usize {
        self.probs.len()
    }

    fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    fn select_action(&mut self, rng: &mut dyn RngCore) -> usize {
        self.slab
            .lock()
            .expect("learner slab mutex poisoned")
            .select_action(self.slot as usize, rng)
    }

    fn observe(&mut self, utility: f64) {
        let mut slab = self.slab.lock().expect("learner slab mutex poisoned");
        slab.observe(self.slot as usize, &self.config, utility, &mut self.scratch);
        self.probs.copy_from_slice(slab.probabilities(self.slot as usize));
    }

    fn max_regret(&self) -> f64 {
        self.slab
            .lock()
            .expect("learner slab mutex poisoned")
            .max_regret(self.slot as usize, &self.config)
    }

    fn stage(&self) -> u64 {
        self.slab.lock().expect("learner slab mutex poisoned").stage(self.slot as usize)
    }

    fn pending_action(&self) -> Option<usize> {
        self.slab
            .lock()
            .expect("learner slab mutex poisoned")
            .pending_action(self.slot as usize)
    }

    fn reset_actions(&mut self, num_actions: usize) {
        self.config = self
            .config
            .with_num_actions(num_actions)
            .expect("reset_actions requires at least one action");
        let mut slab = self.slab.lock().expect("learner slab mutex poisoned");
        // The slot keeps its stride, so a reset only works up to the
        // slab's stride — same restriction as the arity the slab was
        // sized for.
        slab.reset_actions(self.slot as usize, num_actions);
        self.probs = vec![1.0 / num_actions as f64; num_actions];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compact::RthsState;
    use crate::recursive::RthsLearner;
    use rand::SeedableRng;

    fn config(m: usize, recency: RecencyMode, conditional: bool) -> RthsConfig {
        RthsConfig::builder(m)
            .epsilon(0.05)
            .delta(0.1)
            .mu(150.0)
            .recency(recency)
            .conditional(conditional)
            .build()
            .unwrap()
    }

    /// The slab must replay the scalar oracle bit-for-bit in every
    /// averaging mode — with slots interleaved so the strided layout
    /// (not just slot 0) is exercised, and a stride wider than the
    /// arity so the slack region is proven inert.
    #[test]
    fn slab_matches_scalar_state_bitwise() {
        for recency in
            [RecencyMode::Exponential, RecencyMode::PaperLiteral, RecencyMode::Uniform]
        {
            for conditional in [false, true] {
                let cfg = config(4, recency, conditional);
                let mut slab = LearnerSlab::new(7);
                let slots: Vec<u32> = (0..3).map(|_| slab.alloc(4)).collect();
                let mut oracles: Vec<RthsState> =
                    (0..3).map(|_| RthsState::new(&cfg)).collect();
                let mut rngs_a: Vec<_> =
                    (0..3).map(|p| rand::rngs::StdRng::seed_from_u64(9 + p)).collect();
                let mut rngs_b: Vec<_> =
                    (0..3).map(|p| rand::rngs::StdRng::seed_from_u64(9 + p)).collect();
                let mut scratch = Vec::new();
                let mut oracle_scratch = Vec::new();
                for s in 0..200u64 {
                    for (p, &slot) in slots.iter().enumerate() {
                        let a = slab.select_action(slot as usize, &mut rngs_a[p]);
                        let b = oracles[p].select_action(&mut rngs_b[p]);
                        assert_eq!(a, b, "{recency:?} action diverged at stage {s}");
                        let u = ((a * 37 + (s as usize) * (p + 1)) % 11) as f64 * 13.0;
                        slab.observe(slot as usize, &cfg, u, &mut scratch);
                        oracles[p].observe(&cfg, u, &mut oracle_scratch);
                        for (k, (x, y)) in slab
                            .probabilities(slot as usize)
                            .iter()
                            .zip(oracles[p].probabilities())
                            .enumerate()
                        {
                            assert_eq!(
                                x.to_bits(),
                                y.to_bits(),
                                "{recency:?}/cond={conditional} probs[{k}] diverged at \
                                 stage {s} slot {p}"
                            );
                        }
                        assert_eq!(
                            slab.max_regret(slot as usize, &cfg).to_bits(),
                            oracles[p].max_regret(&cfg).to_bits(),
                            "{recency:?} max_regret diverged at stage {s} slot {p}"
                        );
                    }
                }
            }
        }
    }

    /// Hoisting the exponential decay to one batched pass per round is
    /// bit-identical to the inline per-observe decay when every slot
    /// observes exactly once per round — the store's observe-phase
    /// pattern.
    #[test]
    fn batched_decay_matches_inline_decay_bitwise() {
        let cfg = config(5, RecencyMode::Exponential, false);
        let mut inline = LearnerSlab::new(5);
        let mut batched = LearnerSlab::new(5);
        for _ in 0..4 {
            inline.alloc(5);
            batched.alloc(5);
        }
        let mut rngs_a: Vec<_> =
            (0..4).map(|p| rand::rngs::StdRng::seed_from_u64(31 + p)).collect();
        let mut rngs_b: Vec<_> =
            (0..4).map(|p| rand::rngs::StdRng::seed_from_u64(31 + p)).collect();
        let mut scratch = Vec::new();
        let keep = 1.0 - cfg.epsilon();
        for round in 0..150u64 {
            let mut picks = Vec::new();
            for i in 0..4usize {
                let a = inline.select_action(i, &mut rngs_a[i]);
                let b = batched.select_action(i, &mut rngs_b[i]);
                assert_eq!(a, b);
                picks.push(a);
            }
            {
                let mut cols = batched.split();
                cols.decay(keep);
                for (i, &pick) in picks.iter().enumerate() {
                    let u = ((pick * 13 + round as usize) % 7) as f64 * 21.0;
                    cols.observe_predecayed(i, &cfg, u, &mut scratch);
                }
            }
            for (i, &pick) in picks.iter().enumerate() {
                let u = ((pick * 13 + round as usize) % 7) as f64 * 21.0;
                inline.observe(i, &cfg, u, &mut scratch);
                for (x, y) in inline.probabilities(i).iter().zip(batched.probabilities(i)) {
                    assert_eq!(x.to_bits(), y.to_bits(), "diverged at round {round} slot {i}");
                }
            }
        }
    }

    /// Free-list churn: releasing a slot and allocating again reuses it,
    /// and survivors replay their scalar mirrors bit-for-bit across the
    /// churn (the `departure_does_not_perturb_survivors` pinning style).
    #[test]
    fn release_reuses_slot_without_perturbing_survivors() {
        let cfg = config(3, RecencyMode::Exponential, false);
        let mut slab = LearnerSlab::new(3);
        let slots: Vec<u32> = (0..4).map(|_| slab.alloc(3)).collect();
        assert_eq!(slots, vec![0, 1, 2, 3]);
        let mut mirrors: Vec<RthsState> = (0..4).map(|_| RthsState::new(&cfg)).collect();
        let mut rngs: Vec<_> =
            (0..4).map(|p| rand::rngs::StdRng::seed_from_u64(100 + p)).collect();
        let mut mirror_rngs: Vec<_> =
            (0..4).map(|p| rand::rngs::StdRng::seed_from_u64(100 + p)).collect();
        let mut scratch = Vec::new();
        let drive = |slab: &mut LearnerSlab,
                     mirrors: &mut Vec<RthsState>,
                     rngs: &mut Vec<rand::rngs::StdRng>,
                     mirror_rngs: &mut Vec<rand::rngs::StdRng>,
                     scratch: &mut Vec<f64>,
                     live: &[usize],
                     stages: u64| {
            for s in 0..stages {
                for &i in live {
                    let a = slab.select_action(i, &mut rngs[i]);
                    let b = mirrors[i].select_action(&mut mirror_rngs[i]);
                    assert_eq!(a, b);
                    let u = ((a + s as usize * i.max(1)) % 5) as f64 * 11.0;
                    slab.observe(i, &cfg, u, scratch);
                    mirrors[i].observe(&cfg, u, scratch);
                }
            }
        };
        drive(
            &mut slab,
            &mut mirrors,
            &mut rngs,
            &mut mirror_rngs,
            &mut scratch,
            &[0, 1, 2, 3],
            40,
        );

        slab.release(2);
        assert_eq!(slab.free_slots(), 1);
        let reused = slab.alloc(3);
        assert_eq!(reused, 2, "freed slot must be reused");
        assert_eq!(slab.free_slots(), 0);
        // The reused slot is a fresh uniform learner.
        assert_eq!(slab.probabilities(2), &[1.0 / 3.0; 3]);
        assert_eq!(slab.stage(2), 0);
        mirrors[2] = RthsState::new(&cfg);
        rngs[2] = rand::rngs::StdRng::seed_from_u64(777);
        mirror_rngs[2] = rand::rngs::StdRng::seed_from_u64(777);

        // Survivors and the reused slot all keep replaying their mirrors.
        drive(
            &mut slab,
            &mut mirrors,
            &mut rngs,
            &mut mirror_rngs,
            &mut scratch,
            &[0, 1, 2, 3],
            40,
        );
        for (i, mirror) in mirrors.iter().enumerate() {
            for (x, y) in slab.probabilities(i).iter().zip(mirror.probabilities()) {
                assert_eq!(x.to_bits(), y.to_bits(), "slot {i} diverged after churn");
            }
        }
    }

    /// Order-preserving compaction: survivors keep their exact state and
    /// continue bit-for-bit, mirroring the store's `remove_slots`.
    #[test]
    fn remove_slots_compacts_without_perturbing_survivors() {
        let cfg = config(4, RecencyMode::Exponential, true);
        let mut slab = LearnerSlab::new(4);
        for _ in 0..5 {
            slab.alloc(4);
        }
        let mut mirrors: Vec<RthsState> = (0..5).map(|_| RthsState::new(&cfg)).collect();
        let mut rngs: Vec<_> =
            (0..5).map(|p| rand::rngs::StdRng::seed_from_u64(500 + p)).collect();
        let mut mirror_rngs: Vec<_> =
            (0..5).map(|p| rand::rngs::StdRng::seed_from_u64(500 + p)).collect();
        let mut scratch = Vec::new();
        for s in 0..60u64 {
            for i in 0..5usize {
                let a = slab.select_action(i, &mut rngs[i]);
                let b = mirrors[i].select_action(&mut mirror_rngs[i]);
                assert_eq!(a, b);
                let u = ((a + s as usize) % 9) as f64 * 7.0;
                slab.observe(i, &cfg, u, &mut scratch);
                mirrors[i].observe(&cfg, u, &mut scratch);
            }
        }
        let survivors = [0usize, 2, 4];
        let before: Vec<Vec<u64>> = survivors
            .iter()
            .map(|&i| slab.probabilities(i).iter().map(|p| p.to_bits()).collect())
            .collect();
        slab.remove_slots(&[1, 3]);
        assert_eq!(slab.num_slots(), 3);
        for (new_slot, (&old_slot, bits)) in survivors.iter().zip(&before).enumerate() {
            let after: Vec<u64> =
                slab.probabilities(new_slot).iter().map(|p| p.to_bits()).collect();
            assert_eq!(&after, bits, "slot {old_slot}→{new_slot} state changed");
            assert_eq!(slab.stage(new_slot), mirrors[old_slot].stage());
            assert_eq!(
                slab.max_regret(new_slot, &cfg).to_bits(),
                mirrors[old_slot].max_regret(&cfg).to_bits()
            );
        }
    }

    #[test]
    fn clone_slot_copies_state_exactly() {
        let cfg = config(3, RecencyMode::Uniform, false);
        let mut slab = LearnerSlab::new(3);
        let a = slab.alloc(3) as usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let mut scratch = Vec::new();
        for s in 0..30u64 {
            let act = slab.select_action(a, &mut rng);
            slab.observe(a, &cfg, ((act + s as usize) % 4) as f64 * 5.0, &mut scratch);
        }
        let b = slab.clone_slot(a as u32) as usize;
        assert_ne!(a, b);
        assert_eq!(slab.stage(a), slab.stage(b));
        for (x, y) in slab.probabilities(a).iter().zip(slab.probabilities(b)) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for j in 0..3 {
            for k in 0..3 {
                assert_eq!(slab.proxy(a, j, k).to_bits(), slab.proxy(b, j, k).to_bits());
            }
        }
        assert_eq!(slab.max_regret(a, &cfg).to_bits(), slab.max_regret(b, &cfg).to_bits());
    }

    #[test]
    fn reset_matches_fresh_slot() {
        let cfg = config(3, RecencyMode::Exponential, false);
        let mut slab = LearnerSlab::new(5);
        let slot = slab.alloc(3) as usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut scratch = Vec::new();
        for _ in 0..10 {
            let _ = slab.select_action(slot, &mut rng);
            slab.observe(slot, &cfg, 5.0, &mut scratch);
        }
        slab.reset_actions(slot, 5);
        assert_eq!(slab.num_actions(slot), 5);
        assert_eq!(slab.stage(slot), 0);
        assert_eq!(slab.probabilities(slot), &[0.2; 5]);
        assert_eq!(slab.play_frequencies(slot), &[0.2; 5]);
        for j in 0..5 {
            for k in 0..5 {
                assert_eq!(slab.proxy(slot, j, k), 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "observation pending")]
    fn double_select_panics() {
        let mut slab = LearnerSlab::new(2);
        let slot = slab.alloc(2) as usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let _ = slab.select_action(slot, &mut rng);
        let _ = slab.select_action(slot, &mut rng);
    }

    #[test]
    #[should_panic(expected = "without a pending action")]
    fn observe_without_select_panics() {
        let cfg = config(2, RecencyMode::Exponential, false);
        let mut slab = LearnerSlab::new(2);
        let slot = slab.alloc(2) as usize;
        slab.observe(slot, &cfg, 1.0, &mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "cannot compact a slab with free-listed slots")]
    fn compaction_rejects_free_list_mode() {
        let mut slab = LearnerSlab::new(2);
        slab.alloc(2);
        slab.alloc(2);
        slab.release(0);
        slab.remove_slots(&[1]);
    }

    /// The trait wrapper must behave exactly like the standalone learner,
    /// including across a reset.
    #[test]
    fn slab_learner_replays_wrapped_learner_bitwise() {
        let cfg = config(4, RecencyMode::Exponential, false);
        let slab: SharedSlab = Arc::new(Mutex::new(LearnerSlab::new(6)));
        let mut wrapped = RthsLearner::new(cfg.clone());
        let mut learner = SlabLearner::new(Arc::clone(&slab), cfg);
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(42);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(42);
        for phase in 0..2 {
            for s in 0..120u64 {
                let a = wrapped.select_action(&mut rng_a);
                let b = learner.select_action(&mut rng_b);
                assert_eq!(a, b, "phase {phase} stage {s}");
                assert_eq!(learner.pending_action(), Some(b));
                let u = ((a * 31 + s as usize) % 13) as f64 * 3.0;
                wrapped.observe(u);
                learner.observe(u);
                for (x, y) in wrapped.probabilities().iter().zip(learner.probabilities()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "phase {phase} stage {s}");
                }
                assert_eq!(wrapped.max_regret().to_bits(), learner.max_regret().to_bits());
                assert_eq!(wrapped.stage(), learner.stage());
            }
            // Channel switch mid-life: both sides reset to 6 actions.
            wrapped.reset_actions(6);
            learner.reset_actions(6);
            assert_eq!(learner.num_actions(), 6);
        }
        // Dropping the learner returns its slot to the free list.
        drop(learner);
        assert_eq!(slab.lock().unwrap().free_slots(), 1);
    }

    /// Cloning a `SlabLearner` allocates an independent slot.
    #[test]
    fn slab_learner_clone_is_independent() {
        let cfg = config(3, RecencyMode::Exponential, false);
        let slab: SharedSlab = Arc::new(Mutex::new(LearnerSlab::new(3)));
        let mut a = SlabLearner::new(Arc::clone(&slab), cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for _ in 0..20 {
            let _ = a.select_action(&mut rng);
            a.observe(10.0);
        }
        let mut b = a.clone();
        assert_ne!(a.slot(), b.slot());
        assert_eq!(a.stage(), b.stage());
        let _ = b.select_action(&mut rng);
        b.observe(99.0);
        assert_ne!(a.stage(), b.stage(), "clone shares state with the original");
    }
}
