//! Learner configuration.
//!
//! Mapping to the paper's Table 1 notation:
//!
//! | Symbol | Field | Meaning |
//! |--------|-------|---------|
//! | `ε`    | [`RthsConfig::epsilon`] | constant step size of the recency-weighted average |
//! | `δ`    | [`RthsConfig::delta`]   | exploration mass mixed into every action |
//! | `μ`    | [`RthsConfig::mu`]      | normalisation constant scaling regret into probability |
//! | `mⁿ`   | [`RthsConfig::num_actions`] | number of available actions (helpers) |
//! | `Qⁿ(a,b)` | learner state | regret for not having played `b` instead of `a` |
//! | `pⁿ`   | learner state | the peer's mixed strategy at stage `n` |

use std::fmt;

/// How past utilities are averaged into regret estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RecencyMode {
    /// Exponentially recency-weighted averaging with step `ε`
    /// (Eqs. 3-2/3-3): the *tracking* behaviour that adapts to
    /// non-stationary helper bandwidth. **Default.**
    #[default]
    Exponential,
    /// The paper's Eq. (3-5) taken literally: the proxy matrix `T` is
    /// never discounted. `ε·T` then grows without bound, so regret
    /// estimates saturate the probability clip. Kept for documentation of
    /// the typo (see DESIGN.md §2.1) and negative tests.
    PaperLiteral,
    /// Uniform `1/n` averaging — plain regret *matching* (Hart &
    /// Mas-Colell). No tracking; the ablation baseline.
    Uniform,
}

/// Configuration shared by all learners in this crate.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RthsConfig {
    num_actions: usize,
    epsilon: f64,
    delta: f64,
    mu: f64,
    recency: RecencyMode,
    conditional: bool,
}

/// Errors from configuration validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `num_actions` was zero.
    NoActions,
    /// `epsilon` outside `(0, 1]`.
    BadEpsilon,
    /// `delta` outside `(0, 1)`.
    BadDelta,
    /// `mu` not strictly positive and finite.
    BadMu,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoActions => write!(f, "learner needs at least one action"),
            ConfigError::BadEpsilon => write!(f, "epsilon must be in (0, 1]"),
            ConfigError::BadDelta => write!(f, "delta must be in (0, 1)"),
            ConfigError::BadMu => write!(f, "mu must be positive and finite"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl RthsConfig {
    /// Paper-calibrated defaults for a game over `num_actions` helpers
    /// where a peer's typical (fair-share) streaming rate is `rate_scale`
    /// kbps: `ε = 0.01`, `δ = 0.1`, `μ = 4·rate_scale`.
    ///
    /// `μ` must be commensurate with the **per-peer rate**, not the raw
    /// helper capacity: regrets are differences of received rates, and
    /// `Q/μ` is the per-alternative switching probability. A `μ` that is
    /// orders of magnitude above the rate scale freezes the dynamics into
    /// pure inertia. The `ε`/`δ` pair balances the proxy-regret
    /// estimator's noise (variance scales like `ε·m/δ`) against tracking
    /// speed (effective memory `1/ε` stages). See DESIGN.md §5.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `num_actions == 0` or `rate_scale`
    /// makes `μ` non-positive.
    pub fn for_rate_scale(num_actions: usize, rate_scale: f64) -> Result<Self, ConfigError> {
        Self::builder(num_actions).mu(4.0 * rate_scale).build()
    }

    /// Starts a builder with defaults `ε = 0.01`, `δ = 0.1`, `μ = 1280`
    /// (4× the 320 kbps fair share of the paper's N=10/H=4 evaluation).
    pub fn builder(num_actions: usize) -> RthsConfigBuilder {
        RthsConfigBuilder {
            num_actions,
            epsilon: 0.01,
            delta: 0.1,
            mu: 1280.0,
            recency: RecencyMode::Exponential,
            conditional: false,
        }
    }

    /// Number of actions `m` (available helpers).
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// Step size `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Exploration parameter `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Normalisation constant `μ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Averaging mode.
    pub fn recency(&self) -> RecencyMode {
        self.recency
    }

    /// Whether conditional-regret normalisation is enabled.
    ///
    /// The proxy regrets of Eqs. (3-2)/(3-3) are *unconditional*: the
    /// regret row of an action `j` is implicitly weighted by the
    /// frequency with which `j` is played, so rarely-played actions carry
    /// near-zero regret — yet the Hart–Mas-Colell update parks all
    /// residual probability on the *last played* action. After an abrupt
    /// environment change (helper failure) this combination makes peers
    /// repeatedly flip back to a dead action. With this extension enabled
    /// the probability update divides row `j` by the (recency-weighted)
    /// empirical frequency of playing `j`, recovering Hart &
    /// Mas-Colell's *conditional* regret and fast evacuation. Off by
    /// default (paper-faithful); used by the failure-recovery ablation.
    pub fn conditional(&self) -> bool {
        self.conditional
    }

    /// Returns a copy with a different action count (used when helpers
    /// join or leave), keeping all other parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NoActions`] if `num_actions == 0`.
    pub fn with_num_actions(&self, num_actions: usize) -> Result<Self, ConfigError> {
        if num_actions == 0 {
            return Err(ConfigError::NoActions);
        }
        Ok(Self { num_actions, ..self.clone() })
    }
}

/// Builder for [`RthsConfig`].
#[derive(Debug, Clone)]
pub struct RthsConfigBuilder {
    num_actions: usize,
    epsilon: f64,
    delta: f64,
    mu: f64,
    recency: RecencyMode,
    conditional: bool,
}

impl RthsConfigBuilder {
    /// Sets the step size `ε ∈ (0, 1]`.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the exploration parameter `δ ∈ (0, 1)`.
    pub fn delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Sets the normalisation constant `μ > 0`.
    pub fn mu(mut self, mu: f64) -> Self {
        self.mu = mu;
        self
    }

    /// Sets the averaging mode.
    pub fn recency(mut self, recency: RecencyMode) -> Self {
        self.recency = recency;
        self
    }

    /// Enables conditional-regret normalisation (see
    /// [`RthsConfig::conditional`]).
    pub fn conditional(mut self, conditional: bool) -> Self {
        self.conditional = conditional;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`ConfigError`].
    pub fn build(self) -> Result<RthsConfig, ConfigError> {
        if self.num_actions == 0 {
            return Err(ConfigError::NoActions);
        }
        if !(self.epsilon > 0.0 && self.epsilon <= 1.0) {
            return Err(ConfigError::BadEpsilon);
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(ConfigError::BadDelta);
        }
        if !(self.mu > 0.0 && self.mu.is_finite()) {
            return Err(ConfigError::BadMu);
        }
        Ok(RthsConfig {
            num_actions: self.num_actions,
            epsilon: self.epsilon,
            delta: self.delta,
            mu: self.mu,
            recency: self.recency,
            conditional: self.conditional,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        let c = RthsConfig::builder(4).build().unwrap();
        assert_eq!(c.num_actions(), 4);
        assert_eq!(c.epsilon(), 0.01);
        assert_eq!(c.delta(), 0.1);
        assert_eq!(c.mu(), 1280.0);
        assert_eq!(c.recency(), RecencyMode::Exponential);
        assert!(!c.conditional());
    }

    #[test]
    fn for_rate_scale_scales_mu() {
        let c = RthsConfig::for_rate_scale(3, 320.0).unwrap();
        assert_eq!(c.mu(), 1280.0);
    }

    #[test]
    fn conditional_flag_round_trips() {
        let c = RthsConfig::builder(2).conditional(true).build().unwrap();
        assert!(c.conditional());
        assert!(c.with_num_actions(5).unwrap().conditional());
    }

    #[test]
    fn validation_catches_each_field() {
        assert_eq!(RthsConfig::builder(0).build().unwrap_err(), ConfigError::NoActions);
        assert_eq!(
            RthsConfig::builder(2).epsilon(0.0).build().unwrap_err(),
            ConfigError::BadEpsilon
        );
        assert_eq!(
            RthsConfig::builder(2).epsilon(1.5).build().unwrap_err(),
            ConfigError::BadEpsilon
        );
        assert_eq!(
            RthsConfig::builder(2).delta(0.0).build().unwrap_err(),
            ConfigError::BadDelta
        );
        assert_eq!(
            RthsConfig::builder(2).delta(1.0).build().unwrap_err(),
            ConfigError::BadDelta
        );
        assert_eq!(RthsConfig::builder(2).mu(0.0).build().unwrap_err(), ConfigError::BadMu);
        assert_eq!(
            RthsConfig::builder(2).mu(f64::INFINITY).build().unwrap_err(),
            ConfigError::BadMu
        );
    }

    #[test]
    fn with_num_actions_preserves_parameters() {
        let c = RthsConfig::builder(4).epsilon(0.1).delta(0.05).mu(100.0).build().unwrap();
        let c2 = c.with_num_actions(7).unwrap();
        assert_eq!(c2.num_actions(), 7);
        assert_eq!(c2.epsilon(), 0.1);
        assert_eq!(c2.delta(), 0.05);
        assert_eq!(c2.mu(), 100.0);
        assert_eq!(c.with_num_actions(0).unwrap_err(), ConfigError::NoActions);
    }

    #[test]
    fn error_messages_are_lowercase() {
        for e in [
            ConfigError::NoActions,
            ConfigError::BadEpsilon,
            ConfigError::BadDelta,
            ConfigError::BadMu,
        ] {
            let msg = e.to_string();
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
        }
    }

    #[test]
    fn recency_default_is_exponential() {
        assert_eq!(RecencyMode::default(), RecencyMode::Exponential);
    }
}
