//! EXP3 — the classic adversarial-bandit baseline.
//!
//! RTHS belongs to the regret-matching family (converges to *correlated*
//! equilibria via conditional regrets). The natural outside comparator is
//! EXP3 (Auer, Cesa-Bianchi, Freund & Schapire), the exponential-weights
//! bandit algorithm, which controls *external* regret and therefore only
//! guarantees coarse correlated equilibria in games. This implementation
//! follows the standard recipe with two practical additions for the
//! streaming setting:
//!
//! * rewards are normalised by a caller-supplied `reward_scale` (kbps)
//!   and clamped to `[0, 1]`;
//! * an optional forgetting factor geometrically discounts the weight
//!   exponents, giving EXP3 the same "let go of the past" ability the
//!   paper's tracking modification gives regret matching.

use rand::RngCore;

use crate::learner::Learner;

/// Configuration for [`Exp3Learner`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Exp3Config {
    /// Number of actions `K`.
    pub num_actions: usize,
    /// Exploration mixing `γ ∈ (0, 1]`.
    pub gamma: f64,
    /// Reward normalisation: observed utilities are divided by this and
    /// clamped to `[0, 1]` (use the expected maximum rate).
    pub reward_scale: f64,
    /// Per-stage geometric discount of the weight exponents in `[0, 1)`;
    /// 0 recovers textbook EXP3, larger values track non-stationarity.
    pub forgetting: f64,
}

impl Exp3Config {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters.
    pub fn validated(self) -> Self {
        assert!(self.num_actions > 0, "need at least one action");
        assert!(self.gamma > 0.0 && self.gamma <= 1.0, "gamma must be in (0,1]");
        assert!(
            self.reward_scale > 0.0 && self.reward_scale.is_finite(),
            "reward scale must be positive and finite"
        );
        assert!((0.0..1.0).contains(&self.forgetting), "forgetting must be in [0,1)");
        self
    }
}

/// The EXP3 learner (exponential weights with importance-weighted bandit
/// estimates).
///
/// # Example
///
/// ```
/// use rths_core::{Exp3Config, Exp3Learner, Learner};
/// use rand::SeedableRng;
///
/// let mut learner = Exp3Learner::new(Exp3Config {
///     num_actions: 3,
///     gamma: 0.1,
///     reward_scale: 800.0,
///     forgetting: 0.01,
/// });
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let a = learner.select_action(&mut rng);
/// learner.observe(400.0);
/// assert!(a < 3);
/// ```
#[derive(Debug, Clone)]
pub struct Exp3Learner {
    config: Exp3Config,
    /// Log-domain weights (exponents), kept shifted so the max is 0.
    log_weights: Vec<f64>,
    probs: Vec<f64>,
    stage: u64,
    pending: Option<usize>,
}

impl Exp3Learner {
    /// Creates a learner with uniform initial weights.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`Exp3Config::validated`]).
    pub fn new(config: Exp3Config) -> Self {
        let config = config.validated();
        let m = config.num_actions;
        let mut learner = Self {
            log_weights: vec![0.0; m],
            probs: vec![1.0 / m as f64; m],
            stage: 0,
            pending: None,
            config,
        };
        learner.refresh_probs();
        learner
    }

    /// The configuration.
    pub fn config(&self) -> &Exp3Config {
        &self.config
    }

    fn refresh_probs(&mut self) {
        let m = self.config.num_actions;
        // Shift exponents so the max is 0 (numerical stability).
        let max = self.log_weights.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut total = 0.0;
        let mut exp = vec![0.0; m];
        for (e, &lw) in exp.iter_mut().zip(&self.log_weights) {
            *e = (lw - max).exp();
            total += *e;
        }
        let gamma = self.config.gamma;
        for (p, &e) in self.probs.iter_mut().zip(&exp) {
            *p = (1.0 - gamma) * e / total + gamma / m as f64;
        }
    }
}

impl Learner for Exp3Learner {
    fn num_actions(&self) -> usize {
        self.config.num_actions
    }

    fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    fn select_action(&mut self, rng: &mut dyn RngCore) -> usize {
        assert!(self.pending.is_none(), "select_action called with an observation pending");
        let u: f64 = rand::Rng::gen(rng);
        let mut acc = 0.0;
        let mut chosen = self.probs.len() - 1;
        for (a, &p) in self.probs.iter().enumerate() {
            acc += p;
            if u < acc {
                chosen = a;
                break;
            }
        }
        self.pending = Some(chosen);
        chosen
    }

    fn observe(&mut self, utility: f64) {
        assert!(utility.is_finite(), "utility must be finite, got {utility}");
        let j = self.pending.take().expect("observe called without a pending action");
        self.stage += 1;
        let m = self.config.num_actions as f64;
        let reward = (utility / self.config.reward_scale).clamp(0.0, 1.0);
        // Importance-weighted estimate feeds only the played arm.
        let estimate = reward / self.probs[j];
        if self.config.forgetting > 0.0 {
            for lw in &mut self.log_weights {
                *lw *= 1.0 - self.config.forgetting;
            }
        }
        self.log_weights[j] += self.config.gamma * estimate / m;
        self.refresh_probs();
    }

    fn max_regret(&self) -> f64 {
        // EXP3 does not maintain explicit regrets; report the spread of
        // the weight exponents scaled back to reward units as a rough
        // analogue (0 when weights are uniform).
        let max = self.log_weights.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = self.log_weights.iter().copied().fold(f64::INFINITY, f64::min);
        (max - min) * self.config.reward_scale * self.config.num_actions as f64
            / self.config.gamma.max(1e-12)
            / (self.stage.max(1) as f64)
    }

    fn stage(&self) -> u64 {
        self.stage
    }

    fn pending_action(&self) -> Option<usize> {
        self.pending
    }

    fn reset_actions(&mut self, num_actions: usize) {
        assert!(self.pending.is_none(), "cannot reset actions with an observation pending");
        assert!(num_actions > 0, "need at least one action");
        self.config.num_actions = num_actions;
        self.log_weights = vec![0.0; num_actions];
        self.probs = vec![1.0 / num_actions as f64; num_actions];
        self.stage = 0;
        self.refresh_probs();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn config(m: usize) -> Exp3Config {
        Exp3Config { num_actions: m, gamma: 0.1, reward_scale: 100.0, forgetting: 0.0 }
    }

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn initial_strategy_is_uniform() {
        let l = Exp3Learner::new(config(4));
        rths_math::assert::assert_slices_close(l.probabilities(), &[0.25; 4], 1e-12);
    }

    #[test]
    fn probabilities_stay_valid_under_adversarial_rewards() {
        let mut l = Exp3Learner::new(config(3));
        let mut r = rng(1);
        for s in 0..2000 {
            let a = l.select_action(&mut r);
            l.observe(if (s / 100) % 2 == 0 {
                (a * 50) as f64
            } else {
                100.0 - (a * 50) as f64
            });
            assert!(rths_math::vector::is_distribution(l.probabilities(), 1e-9));
            let floor = 0.1 / 3.0;
            for &p in l.probabilities() {
                assert!(p >= floor - 1e-12, "below γ/K floor: {p}");
            }
        }
    }

    #[test]
    fn concentrates_on_dominant_action() {
        let mut l = Exp3Learner::new(config(2));
        let mut r = rng(2);
        for _ in 0..3000 {
            let a = l.select_action(&mut r);
            l.observe(if a == 1 { 100.0 } else { 10.0 });
        }
        assert!(l.probabilities()[1] > 0.8, "probs {:?}", l.probabilities());
    }

    #[test]
    fn forgetting_tracks_reversal_faster() {
        let run = |forgetting: f64| {
            let mut l = Exp3Learner::new(Exp3Config { forgetting, ..config(2) });
            let mut r = rng(3);
            for _ in 0..4000 {
                let a = l.select_action(&mut r);
                l.observe(if a == 0 { 100.0 } else { 10.0 });
            }
            for _ in 0..800 {
                let a = l.select_action(&mut r);
                l.observe(if a == 1 { 100.0 } else { 10.0 });
            }
            l.probabilities()[1]
        };
        let plain = run(0.0);
        let forgetful = run(0.01);
        assert!(
            forgetful > plain + 0.1,
            "forgetting did not speed adaptation: {forgetful} vs {plain}"
        );
    }

    #[test]
    fn weights_bounded_in_log_domain() {
        // Long one-sided play must not overflow.
        let mut l = Exp3Learner::new(config(2));
        let mut r = rng(4);
        for _ in 0..50_000 {
            let a = l.select_action(&mut r);
            l.observe(if a == 0 { 100.0 } else { 0.0 });
            assert!(l.probabilities().iter().all(|p| p.is_finite()));
        }
    }

    #[test]
    fn reset_actions_reinitialises() {
        let mut l = Exp3Learner::new(config(2));
        let mut r = rng(5);
        let _ = l.select_action(&mut r);
        l.observe(50.0);
        l.reset_actions(4);
        assert_eq!(l.num_actions(), 4);
        rths_math::assert::assert_slices_close(l.probabilities(), &[0.25; 4], 1e-12);
        assert_eq!(l.stage(), 0);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn invalid_gamma_rejected() {
        let _ = Exp3Learner::new(Exp3Config { gamma: 0.0, ..config(2) });
    }
}
