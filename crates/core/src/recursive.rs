//! R2HS — the recursive regret-tracking learner (paper Algorithm 2).

use rand::RngCore;
use rths_math::Matrix;

use crate::compact::RthsState;
use crate::config::RthsConfig;
use crate::learner::Learner;

/// The Recursive Regret-Tracking Helper Selection learner.
///
/// Maintains the proxy matrix `Tⁿ` of Eq. (3-4) via the rank-one update of
/// Eq. (3-5) and derives regrets with Eq. (3-6), so per-stage work is
/// `O(m²)` with no history kept. See the crate docs for the full update
/// equations and [`RecencyMode`](crate::RecencyMode) for the averaging
/// variants.
///
/// This type is a standalone wrapper over the compact split state
/// ([`RthsState`]) plus its own config and row scratch; population-scale
/// consumers (the sharded peer stores in `rths_sim`) hold one `RthsState`
/// per peer and share the config and scratch instead.
///
/// # Example
///
/// ```
/// use rths_core::{Learner, RthsConfig, RthsLearner};
/// use rand::SeedableRng;
///
/// let mut learner = RthsLearner::new(RthsConfig::builder(3).build()?);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let a = learner.select_action(&mut rng);
/// assert!(a < 3);
/// learner.observe(640.0);
/// assert_eq!(learner.stage(), 1);
/// # Ok::<(), rths_core::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RthsLearner {
    config: RthsConfig,
    state: RthsState,
    /// Scratch copy of the played regret row, reused across stages so the
    /// per-stage probability update allocates nothing.
    row_scratch: Vec<f64>,
}

impl RthsLearner {
    /// Creates a learner with the uniform initial strategy and zero
    /// regrets (`Q⁰ = 0`, Algorithm 2 initialisation).
    pub fn new(config: RthsConfig) -> Self {
        let m = config.num_actions();
        Self { state: RthsState::new(&config), row_scratch: Vec::with_capacity(m), config }
    }

    /// Wraps an existing split state (e.g. one extracted from a sharded
    /// peer store) with its shared config.
    pub fn from_parts(config: RthsConfig, state: RthsState) -> Self {
        let m = config.num_actions();
        Self { config, state, row_scratch: Vec::with_capacity(m) }
    }

    /// The configuration.
    pub fn config(&self) -> &RthsConfig {
        &self.config
    }

    /// The compact per-peer state.
    pub fn state(&self) -> &RthsState {
        &self.state
    }

    /// Consumes the learner, returning its split state.
    pub fn into_state(self) -> RthsState {
        self.state
    }

    /// The regret matrix `Qⁿ` (diagonal is zero by definition),
    /// materialised from the proxy matrix on demand — the learner no
    /// longer stores it.
    pub fn regret_matrix(&self) -> Matrix {
        let m = self.config.num_actions();
        let mut q = Matrix::zeros(m, m);
        for j in 0..m {
            for k in 0..m {
                q[(j, k)] = self.state.regret(&self.config, j, k);
            }
        }
        q
    }

    /// The proxy matrix `Tⁿ`.
    pub fn proxy_matrix(&self) -> &Matrix {
        self.state.proxy_matrix()
    }

    /// Regret `Qⁿ(j, k)` for not having played `k` instead of `j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn regret(&self, j: usize, k: usize) -> f64 {
        self.state.regret(&self.config, j, k)
    }

    /// Recency-weighted empirical play frequencies (one per action).
    pub fn play_frequencies(&self) -> &[f64] {
        self.state.play_frequencies()
    }
}

impl Default for RthsLearner {
    fn default() -> Self {
        Self::new(RthsConfig::builder(2).build().expect("default config is valid"))
    }
}

impl Learner for RthsLearner {
    fn num_actions(&self) -> usize {
        self.config.num_actions()
    }

    fn probabilities(&self) -> &[f64] {
        self.state.probabilities()
    }

    fn select_action(&mut self, rng: &mut dyn RngCore) -> usize {
        self.state.select_action(rng)
    }

    fn observe(&mut self, utility: f64) {
        self.state.observe(&self.config, utility, &mut self.row_scratch);
    }

    fn max_regret(&self) -> f64 {
        self.state.max_regret(&self.config)
    }

    fn stage(&self) -> u64 {
        self.state.stage()
    }

    fn pending_action(&self) -> Option<usize> {
        self.state.pending_action()
    }

    fn reset_actions(&mut self, num_actions: usize) {
        let config = self
            .config
            .with_num_actions(num_actions)
            .expect("reset_actions requires at least one action");
        self.config = config;
        self.state.reset_actions(num_actions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RecencyMode;
    use rand::SeedableRng;
    use rths_math::vector::is_distribution;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn config(m: usize) -> RthsConfig {
        RthsConfig::builder(m).epsilon(0.1).delta(0.1).mu(100.0).build().unwrap()
    }

    #[test]
    fn initial_strategy_is_uniform_with_zero_regret() {
        let l = RthsLearner::new(config(4));
        assert_eq!(l.probabilities(), &[0.25; 4]);
        assert_eq!(l.max_regret(), 0.0);
        assert_eq!(l.stage(), 0);
        assert_eq!(l.pending_action(), None);
    }

    #[test]
    fn protocol_select_then_observe() {
        let mut l = RthsLearner::new(config(3));
        let mut r = rng(1);
        let a = l.select_action(&mut r);
        assert_eq!(l.pending_action(), Some(a));
        l.observe(10.0);
        assert_eq!(l.stage(), 1);
        assert_eq!(l.pending_action(), None);
    }

    #[test]
    #[should_panic(expected = "observation pending")]
    fn double_select_panics() {
        let mut l = RthsLearner::new(config(2));
        let mut r = rng(2);
        l.select_action(&mut r);
        l.select_action(&mut r);
    }

    #[test]
    #[should_panic(expected = "without a pending action")]
    fn observe_without_select_panics() {
        let mut l = RthsLearner::new(config(2));
        l.observe(1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_utility_panics() {
        let mut l = RthsLearner::new(config(2));
        let mut r = rng(3);
        l.select_action(&mut r);
        l.observe(f64::NAN);
    }

    #[test]
    fn probabilities_remain_distribution_with_floor() {
        let mut l = RthsLearner::new(config(5));
        let mut r = rng(4);
        let floor = crate::policy::exploration_floor(5, 0.1);
        for s in 0..500 {
            let a = l.select_action(&mut r);
            // Adversarial utility pattern.
            l.observe(if a == 0 { 100.0 } else { 1.0 + (s % 7) as f64 });
            assert!(is_distribution(l.probabilities(), 1e-9), "stage {s}");
            for &p in l.probabilities() {
                assert!(p >= floor - 1e-12, "floor violated: {p} < {floor}");
            }
        }
    }

    #[test]
    fn learner_concentrates_on_dominant_action() {
        // Action 1 always pays 10x more; the learner should favour it.
        let mut l = RthsLearner::new(config(2));
        let mut r = rng(5);
        for _ in 0..2000 {
            let a = l.select_action(&mut r);
            l.observe(if a == 1 { 100.0 } else { 10.0 });
        }
        assert!(
            l.probabilities()[1] > 0.8,
            "strategy did not concentrate: {:?}",
            l.probabilities()
        );
    }

    #[test]
    fn tracks_reward_reversal() {
        // The defining feature versus uniform averaging: after the best
        // action flips, the exponential learner re-concentrates.
        let mut l = RthsLearner::new(config(2));
        let mut r = rng(6);
        for _ in 0..1500 {
            let a = l.select_action(&mut r);
            l.observe(if a == 0 { 100.0 } else { 10.0 });
        }
        assert!(l.probabilities()[0] > 0.8, "phase 1 failed: {:?}", l.probabilities());
        for _ in 0..1500 {
            let a = l.select_action(&mut r);
            l.observe(if a == 1 { 100.0 } else { 10.0 });
        }
        assert!(l.probabilities()[1] > 0.8, "did not track reversal: {:?}", l.probabilities());
    }

    #[test]
    fn regret_matrix_diagonal_is_zero() {
        let mut l = RthsLearner::new(config(3));
        let mut r = rng(7);
        for _ in 0..50 {
            let a = l.select_action(&mut r);
            l.observe(a as f64 * 10.0);
        }
        for j in 0..3 {
            assert_eq!(l.regret(j, j), 0.0);
        }
    }

    #[test]
    fn regrets_are_nonnegative() {
        let mut l = RthsLearner::new(config(4));
        let mut r = rng(8);
        for s in 0..300 {
            let a = l.select_action(&mut r);
            l.observe((a + s % 3) as f64);
            for j in 0..4 {
                for k in 0..4 {
                    assert!(l.regret(j, k) >= 0.0);
                }
            }
        }
    }

    #[test]
    fn exponential_proxy_matrix_is_bounded() {
        // With decay, ε·T stays within the utility scale; boundedness is
        // what the PaperLiteral mode loses.
        let cfg = RthsConfig::builder(3).epsilon(0.1).delta(0.1).mu(100.0).build().unwrap();
        let mut l = RthsLearner::new(cfg);
        let mut r = rng(9);
        let u_max = 100.0;
        for _ in 0..3000 {
            let _ = l.select_action(&mut r);
            l.observe(u_max);
        }
        // Bound: |T| ≤ u_max · max_importance / ε where importance ≤ m/δ.
        let bound = u_max * (3.0 / 0.1) / 0.1;
        assert!(l.proxy_matrix().max() <= bound, "T = {}", l.proxy_matrix().max());
    }

    #[test]
    fn paper_literal_mode_regret_grows_unboundedly() {
        // Documents the Eq. (3-5) typo: without decay the regret estimate
        // of a never-chosen better action grows linearly.
        let cfg = RthsConfig::builder(2)
            .epsilon(0.1)
            .delta(0.1)
            .mu(1e12) // effectively disable the probability response
            .recency(RecencyMode::PaperLiteral)
            .build()
            .unwrap();
        let mut l = RthsLearner::new(cfg);
        let mut r = rng(10);
        let mut mid = 0.0;
        for s in 0..4000 {
            let a = l.select_action(&mut r);
            l.observe(if a == 1 { 50.0 } else { 1.0 });
            if s == 1999 {
                mid = l.max_regret();
            }
        }
        let end = l.max_regret();
        assert!(
            end > 1.5 * mid && end > 10.0,
            "literal-mode regret did not grow: mid {mid}, end {end}"
        );
    }

    #[test]
    fn reset_actions_reinitialises() {
        let mut l = RthsLearner::new(config(3));
        let mut r = rng(11);
        for _ in 0..20 {
            let _ = l.select_action(&mut r);
            l.observe(5.0);
        }
        l.reset_actions(5);
        assert_eq!(l.num_actions(), 5);
        assert_eq!(l.probabilities(), &[0.2; 5]);
        assert_eq!(l.max_regret(), 0.0);
        assert_eq!(l.stage(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut l = RthsLearner::new(config(3));
            let mut r = rng(seed);
            let mut actions = Vec::with_capacity(100);
            for _ in 0..100 {
                let a = l.select_action(&mut r);
                actions.push(a);
                l.observe((a * 3 + 1) as f64);
            }
            (actions, l.probabilities().to_vec())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0);
    }

    #[test]
    fn play_frequencies_track_play() {
        let mut l = RthsLearner::new(config(2));
        // Trajectory-pinned seed (vendored StdRng stream, see vendor/rand):
        // the ~10-stage EWMA play frequency is noisy around the lock, so
        // the stage-800 snapshot depends on the seed; this one lands
        // concentrated on the dominant action.
        let mut r = rng(42);
        for _ in 0..800 {
            let a = l.select_action(&mut r);
            // Action 1 pays far more -> learner concentrates on it.
            l.observe(if a == 1 { 100.0 } else { 1.0 });
        }
        let f = l.play_frequencies();
        assert!(f[1] > 0.6, "frequencies did not follow play: {f:?}");
        assert!((f[0] + f[1] - 1.0).abs() < 1e-6, "frequencies not normalised: {f:?}");
    }

    #[test]
    fn conditional_mode_recovers_faster_from_dead_action() {
        // Mini failure scenario: action 0 pays 100 for 1500 stages, then
        // drops to 0 while action 1 pays 50. Conditional normalisation
        // should evacuate faster (spend fewer post-shift stages on 0).
        let run = |conditional: bool| {
            let cfg = RthsConfig::builder(2)
                .epsilon(0.01)
                .delta(0.1)
                .mu(200.0)
                .conditional(conditional)
                .build()
                .unwrap();
            let mut l = RthsLearner::new(cfg);
            let mut r = rng(21);
            for _ in 0..1500 {
                let a = l.select_action(&mut r);
                l.observe(if a == 0 { 100.0 } else { 50.0 });
            }
            let mut dead_plays = 0;
            for _ in 0..1500 {
                let a = l.select_action(&mut r);
                if a == 0 {
                    dead_plays += 1;
                }
                l.observe(if a == 0 { 0.0 } else { 50.0 });
            }
            dead_plays
        };
        let plain = run(false);
        let conditional = run(true);
        assert!(
            conditional < plain,
            "conditional ({conditional}) should evacuate faster than plain ({plain})"
        );
    }

    #[test]
    fn default_is_usable() {
        let mut l = RthsLearner::default();
        let mut r = rng(12);
        let a = l.select_action(&mut r);
        l.observe(1.0);
        assert!(a < 2);
    }
}
