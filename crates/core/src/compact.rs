//! Compact per-peer learner state, split out of [`RthsLearner`].
//!
//! A million-peer simulation cannot afford the original learner layout:
//! every peer carried its own [`RthsConfig`] copy, the proxy matrix `T`,
//! **and** a fully materialised regret matrix `Q` plus a private row
//! scratch buffer — although `Q` is a pure function of `T` (Eq. 3-6) and
//! the config is identical for every peer of a channel.
//!
//! [`RthsState`] keeps only what is genuinely per-peer — `T`, the mixed
//! strategy, the play-frequency average, the stage counter and the
//! pending action — and takes the shared [`RthsConfig`] plus a reusable
//! row scratch as arguments on every step. The regret row of the played
//! action and the worst-regret metric are derived from `T` on demand with
//! exactly the float operations (and operation order) the old learner
//! used when materialising `Q`, so trajectories are **bit-for-bit
//! identical** to the pre-split implementation.
//!
//! The sharded peer stores (`rths_sim`) hold one `RthsState` per peer and
//! one config per channel; [`RthsLearner`] wraps a single state + config
//! pair to keep the original standalone API.

use rand::RngCore;
use rths_math::Matrix;

use crate::config::{RecencyMode, RthsConfig};
use crate::policy;

/// The per-peer mutable state of the recursive R2HS learner (Algorithm 2):
/// everything [`RthsLearner`](crate::RthsLearner) owns that is not shared
/// or derivable.
#[derive(Debug, Clone, PartialEq)]
pub struct RthsState {
    /// Proxy matrix `T` (Eq. 3-4): entry `(j, k)` accumulates importance-
    /// weighted utilities of stages where `k` was played.
    t: Matrix,
    /// Current mixed strategy `pⁿ`.
    probs: Vec<f64>,
    /// Recency-weighted empirical play frequency per action (same
    /// averaging mode as `T`); drives conditional-regret normalisation.
    freq: Vec<f64>,
    stage: u64,
    /// Action sampled by [`select_action`](Self::select_action) and not
    /// yet observed (`u32`: action sets are helper sets, far below 2³²).
    pending: Option<u32>,
}

impl RthsState {
    /// Uniform initial strategy with zero regrets (`T⁰ = 0`, Algorithm 2
    /// initialisation) for `config`'s action count.
    pub fn new(config: &RthsConfig) -> Self {
        let m = config.num_actions();
        Self {
            t: Matrix::zeros(m, m),
            probs: vec![1.0 / m as f64; m],
            freq: vec![1.0 / m as f64; m],
            stage: 0,
            pending: None,
        }
    }

    /// Number of actions this state was built for.
    pub fn num_actions(&self) -> usize {
        self.probs.len()
    }

    /// The current mixed strategy.
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// Recency-weighted empirical play frequencies (one per action).
    pub fn play_frequencies(&self) -> &[f64] {
        &self.freq
    }

    /// Stages observed so far.
    pub fn stage(&self) -> u64 {
        self.stage
    }

    /// The action awaiting its observation, if any.
    pub fn pending_action(&self) -> Option<usize> {
        self.pending.map(|a| a as usize)
    }

    /// The proxy matrix `Tⁿ`.
    pub fn proxy_matrix(&self) -> &Matrix {
        &self.t
    }

    /// The averaging factor turning proxy differences into regrets: `ε`
    /// for the tracking modes (Eq. 3-6), `1/n` for uniform matching.
    fn factor(&self, config: &RthsConfig) -> f64 {
        match config.recency() {
            RecencyMode::Exponential | RecencyMode::PaperLiteral => config.epsilon(),
            RecencyMode::Uniform => 1.0 / self.stage.max(1) as f64,
        }
    }

    /// Regret `Qⁿ(j, k)` (Eq. 3-6), derived from `T` on demand. The
    /// diagonal is zero by definition.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn regret(&self, config: &RthsConfig, j: usize, k: usize) -> f64 {
        if j == k {
            return 0.0;
        }
        (self.factor(config) * (self.t[(j, k)] - self.t[(j, j)])).max(0.0)
    }

    /// Largest entry of the derived regret matrix — scans `T` in the same
    /// row-major order the old learner's materialised `Q` was scanned in.
    pub fn max_regret(&self, config: &RthsConfig) -> f64 {
        let m = self.probs.len();
        let factor = self.factor(config);
        let mut max = f64::NEG_INFINITY;
        for j in 0..m {
            let t_jj = self.t[(j, j)];
            for k in 0..m {
                let q = if j == k { 0.0 } else { (factor * (self.t[(j, k)] - t_jj)).max(0.0) };
                max = max.max(q);
            }
        }
        if max.is_finite() {
            max.max(0.0)
        } else {
            0.0
        }
    }

    /// Samples an action from the current strategy, recording it as
    /// pending.
    ///
    /// # Panics
    ///
    /// Panics if an observation is already pending.
    pub fn select_action(&mut self, rng: &mut dyn RngCore) -> usize {
        assert!(self.pending.is_none(), "select_action called with an observation pending");
        let u: f64 = rand::Rng::gen(rng);
        let mut acc = 0.0;
        let mut chosen = self.probs.len() - 1;
        for (a, &p) in self.probs.iter().enumerate() {
            acc += p;
            if u < acc {
                chosen = a;
                break;
            }
        }
        self.pending = Some(chosen as u32);
        chosen
    }

    /// Feeds the pending action's realized utility through Eqs. (3-5) and
    /// (3-6) and the probability update. `row_scratch` is caller-provided
    /// (shared per shard/learner) so steady-state stages allocate nothing.
    ///
    /// # Panics
    ///
    /// Panics if no action is pending or `utility` is not finite.
    pub fn observe(&mut self, config: &RthsConfig, utility: f64, row_scratch: &mut Vec<f64>) {
        assert!(utility.is_finite(), "utility must be finite, got {utility}");
        let j = self.pending.take().expect("observe called without a pending action") as usize;
        self.stage += 1;

        // Eq. (3-5): T ← decay(T); column j += (u/pⁿ(j)) · pⁿ.
        if config.recency() == RecencyMode::Exponential {
            self.t.scale(1.0 - config.epsilon());
        }
        let p_j = self.probs[j];
        debug_assert!(p_j > 0.0, "played action had zero probability");
        let scale = utility / p_j;
        let m = config.num_actions();
        for r in 0..m {
            self.t[(r, j)] += scale * self.probs[r];
        }

        // Play-frequency average (same weighting scheme as T).
        match config.recency() {
            RecencyMode::Exponential => {
                let eps = config.epsilon();
                for (a, f) in self.freq.iter_mut().enumerate() {
                    *f = (1.0 - eps) * *f + if a == j { eps } else { 0.0 };
                }
            }
            RecencyMode::PaperLiteral | RecencyMode::Uniform => {
                // Uniform 1/n play counts (literal mode reuses them).
                let n = self.stage as f64;
                for (a, f) in self.freq.iter_mut().enumerate() {
                    let count = *f * (n - 1.0) + if a == j { 1.0 } else { 0.0 };
                    *f = count / n;
                }
            }
        }

        // Eq. (3-6) for the played row only — derived straight from T
        // instead of materialising the full Q matrix first; same values,
        // same operation order as the old update_regrets + row copy.
        let factor = self.factor(config);
        let t_jj = self.t[(j, j)];
        row_scratch.clear();
        for k in 0..m {
            row_scratch.push(if j == k {
                0.0
            } else {
                (factor * (self.t[(j, k)] - t_jj)).max(0.0)
            });
        }
        if config.conditional() {
            // Conditional regret: normalise row j by the play frequency
            // of j (floored at the exploration rate to stay bounded).
            let floor = policy::exploration_floor(m, config.delta());
            let f_j = self.freq[j].max(floor);
            for r in row_scratch.iter_mut() {
                *r /= f_j;
            }
        }
        policy::update_probabilities(
            &mut self.probs,
            j,
            row_scratch,
            config.delta(),
            config.mu(),
        );
    }

    /// Reinitialises the state for a new action count (channel switch).
    ///
    /// # Panics
    ///
    /// Panics if an observation is pending or `num_actions` is zero.
    pub fn reset_actions(&mut self, num_actions: usize) {
        assert!(self.pending.is_none(), "cannot reset actions with an observation pending");
        assert!(num_actions > 0, "reset_actions requires at least one action");
        self.t = Matrix::zeros(num_actions, num_actions);
        self.probs = vec![1.0 / num_actions as f64; num_actions];
        self.freq = vec![1.0 / num_actions as f64; num_actions];
        // Restart the stage clock so Uniform-mode averaging matches a
        // fresh learner (and stays consistent with HistoryRths).
        self.stage = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learner::Learner;
    use crate::recursive::RthsLearner;
    use rand::SeedableRng;

    fn config(m: usize, recency: RecencyMode, conditional: bool) -> RthsConfig {
        RthsConfig::builder(m)
            .epsilon(0.05)
            .delta(0.1)
            .mu(150.0)
            .recency(recency)
            .conditional(conditional)
            .build()
            .unwrap()
    }

    /// The split state must replay the wrapped learner bit-for-bit in
    /// every averaging mode — this is the property the sharded SoA peer
    /// stores rely on.
    #[test]
    fn state_matches_wrapped_learner_bitwise() {
        for recency in
            [RecencyMode::Exponential, RecencyMode::PaperLiteral, RecencyMode::Uniform]
        {
            for conditional in [false, true] {
                let cfg = config(4, recency, conditional);
                let mut learner = RthsLearner::new(cfg.clone());
                let mut state = RthsState::new(&cfg);
                let mut rng_a = rand::rngs::StdRng::seed_from_u64(9);
                let mut rng_b = rand::rngs::StdRng::seed_from_u64(9);
                let mut scratch = Vec::new();
                for s in 0..400u64 {
                    let a = learner.select_action(&mut rng_a);
                    let b = state.select_action(&mut rng_b);
                    assert_eq!(a, b, "{recency:?} action diverged at stage {s}");
                    let u = ((a * 37 + s as usize) % 11) as f64 * 13.0;
                    learner.observe(u);
                    state.observe(&cfg, u, &mut scratch);
                    let lp = learner.probabilities();
                    let sp = state.probabilities();
                    for (k, (x, y)) in lp.iter().zip(sp).enumerate() {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "{recency:?}/cond={conditional} probs[{k}] diverged at stage {s}"
                        );
                    }
                    assert_eq!(
                        learner.max_regret().to_bits(),
                        state.max_regret(&cfg).to_bits(),
                        "{recency:?} max_regret diverged at stage {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn regret_diagonal_is_zero_and_entries_nonnegative() {
        let cfg = config(3, RecencyMode::Exponential, false);
        let mut state = RthsState::new(&cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut scratch = Vec::new();
        for s in 0..100 {
            let a = state.select_action(&mut rng);
            state.observe(&cfg, (a + s % 3) as f64, &mut scratch);
        }
        for j in 0..3 {
            assert_eq!(state.regret(&cfg, j, j), 0.0);
            for k in 0..3 {
                assert!(state.regret(&cfg, j, k) >= 0.0);
            }
        }
    }

    #[test]
    fn reset_matches_fresh_state() {
        let cfg = config(3, RecencyMode::Exponential, false);
        let big = RthsConfig::builder(5).epsilon(0.05).delta(0.1).mu(150.0).build().unwrap();
        let mut state = RthsState::new(&cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut scratch = Vec::new();
        for _ in 0..10 {
            let _ = state.select_action(&mut rng);
            state.observe(&cfg, 5.0, &mut scratch);
        }
        state.reset_actions(5);
        assert_eq!(state, RthsState::new(&big));
    }

    #[test]
    #[should_panic(expected = "observation pending")]
    fn double_select_panics() {
        let cfg = config(2, RecencyMode::Exponential, false);
        let mut state = RthsState::new(&cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let _ = state.select_action(&mut rng);
        let _ = state.select_action(&mut rng);
    }

    #[test]
    #[should_panic(expected = "without a pending action")]
    fn observe_without_select_panics() {
        let cfg = config(2, RecencyMode::Exponential, false);
        let mut state = RthsState::new(&cfg);
        state.observe(&cfg, 1.0, &mut Vec::new());
    }
}
