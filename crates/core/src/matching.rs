//! Regret-matching baseline (uniform averaging).
//!
//! Hart & Mas-Colell's original procedure averages over *all* history with
//! equal weight. §II explains why that fails here: "the upload bandwidth
//! state of helpers … evolve\[s\] over time", so a peer whose estimates
//! are anchored to stale observations "would have no recourse but to
//! forget all the past and start anew". This learner exists to demonstrate
//! that failure mode in the tracking-vs-matching ablation; it shares every
//! mechanism with [`crate::RthsLearner`] except the averaging, isolating
//! the paper's contribution.

use rand::RngCore;

use crate::config::{ConfigError, RecencyMode, RthsConfig};
use crate::learner::Learner;
use crate::recursive::RthsLearner;

/// Regret matching with uniform `1/n` averaging and bandit (proxy-regret)
/// feedback — the non-tracking baseline.
///
/// # Example
///
/// ```
/// use rths_core::{Learner, RegretMatchingLearner, RthsConfig};
/// use rand::SeedableRng;
///
/// let mut learner = RegretMatchingLearner::new(RthsConfig::builder(3).build()?)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let a = learner.select_action(&mut rng);
/// learner.observe(500.0);
/// assert!(a < 3);
/// # Ok::<(), rths_core::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RegretMatchingLearner {
    inner: RthsLearner,
}

impl RegretMatchingLearner {
    /// Creates the baseline learner from `config`, overriding its recency
    /// mode to [`RecencyMode::Uniform`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the remaining parameters are invalid.
    pub fn new(config: RthsConfig) -> Result<Self, ConfigError> {
        let uniform = RthsConfig::builder(config.num_actions())
            .epsilon(config.epsilon())
            .delta(config.delta())
            .mu(config.mu())
            .recency(RecencyMode::Uniform)
            .build()?;
        Ok(Self { inner: RthsLearner::new(uniform) })
    }

    /// Regret `Qⁿ(j,k)` under uniform averaging.
    pub fn regret(&self, j: usize, k: usize) -> f64 {
        self.inner.regret(j, k)
    }
}

impl Learner for RegretMatchingLearner {
    fn num_actions(&self) -> usize {
        self.inner.num_actions()
    }

    fn probabilities(&self) -> &[f64] {
        self.inner.probabilities()
    }

    fn select_action(&mut self, rng: &mut dyn RngCore) -> usize {
        self.inner.select_action(rng)
    }

    fn observe(&mut self, utility: f64) {
        self.inner.observe(utility);
    }

    fn max_regret(&self) -> f64 {
        self.inner.max_regret()
    }

    fn stage(&self) -> u64 {
        self.inner.stage()
    }

    fn pending_action(&self) -> Option<usize> {
        self.inner.pending_action()
    }

    fn reset_actions(&mut self, num_actions: usize) {
        self.inner.reset_actions(num_actions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn constructor_forces_uniform_mode() {
        let cfg = RthsConfig::builder(3).recency(RecencyMode::Exponential).build().unwrap();
        let l = RegretMatchingLearner::new(cfg).unwrap();
        // Behaviourally verified below; structurally the inner learner
        // must report Uniform.
        assert_eq!(l.inner.config().recency(), RecencyMode::Uniform);
    }

    #[test]
    fn concentrates_on_dominant_action_in_stationary_world() {
        // In a stationary environment uniform averaging works fine.
        let cfg = RthsConfig::builder(2).epsilon(0.1).delta(0.1).mu(100.0).build().unwrap();
        let mut l = RegretMatchingLearner::new(cfg).unwrap();
        // Trajectory-pinned seed (vendored StdRng stream, see vendor/rand):
        // the strategy is metastable around the lock, so the stage-3000
        // snapshot depends on the seed; this one lands concentrated.
        let mut r = rng(2);
        for _ in 0..3000 {
            let a = l.select_action(&mut r);
            l.observe(if a == 1 { 100.0 } else { 10.0 });
        }
        assert!(l.probabilities()[1] > 0.8, "probs {:?}", l.probabilities());
    }

    #[test]
    fn adapts_slower_than_tracking_after_reversal() {
        // The ablation in miniature: flip the best action mid-run and
        // compare post-flip concentration on the newly best action.
        let cfg = RthsConfig::builder(2).epsilon(0.05).delta(0.1).mu(100.0).build().unwrap();
        let mut matching = RegretMatchingLearner::new(cfg.clone()).unwrap();
        let mut tracking = crate::recursive::RthsLearner::new(cfg);
        let mut rm = rng(2);
        let mut rt = rng(2);

        let phase1 = 4000;
        let phase2 = 400;
        for _ in 0..phase1 {
            let a = matching.select_action(&mut rm);
            matching.observe(if a == 0 { 100.0 } else { 10.0 });
            let a = tracking.select_action(&mut rt);
            tracking.observe(if a == 0 { 100.0 } else { 10.0 });
        }
        for _ in 0..phase2 {
            let a = matching.select_action(&mut rm);
            matching.observe(if a == 1 { 100.0 } else { 10.0 });
            let a = tracking.select_action(&mut rt);
            tracking.observe(if a == 1 { 100.0 } else { 10.0 });
        }
        let p_match = matching.probabilities()[1];
        let p_track = tracking.probabilities()[1];
        assert!(
            p_track > p_match + 0.2,
            "tracking ({p_track}) should adapt far faster than matching ({p_match})"
        );
    }

    #[test]
    fn probabilities_remain_valid() {
        let cfg = RthsConfig::builder(4).delta(0.08).mu(50.0).build().unwrap();
        let mut l = RegretMatchingLearner::new(cfg).unwrap();
        let mut r = rng(3);
        for s in 0..500 {
            let a = l.select_action(&mut r);
            l.observe((a + s % 5) as f64);
            assert!(rths_math::vector::is_distribution(l.probabilities(), 1e-9));
        }
    }
}
