//! RTHS — the history-based learner (paper Algorithm 1).
//!
//! This is the *literal* statement of Algorithm 1: at every stage it
//! recomputes the exponentially weighted proxy sums of Eqs. (3-2)/(3-3)
//! from the full private history `h_i^n = (a⁰, u⁰, …, aⁿ⁻¹, uⁿ⁻¹)` (plus
//! the play probabilities at each stage, needed for the importance
//! weights). Per-stage cost is `O(n·m²)`, versus `O(m²)` for the recursive
//! [`RthsLearner`](crate::RthsLearner); the paper introduces R2HS exactly
//! because "it will consume too much resource to compute the estimated
//! average regret directly".
//!
//! The two implementations are asserted trajectory-identical in tests,
//! which validates the recursive re-expression.

use rand::RngCore;

use crate::config::{RecencyMode, RthsConfig};
use crate::learner::Learner;
use crate::policy;

/// One stage of private history.
#[derive(Debug, Clone)]
struct StageRecord {
    action: usize,
    utility: f64,
    probs: Vec<f64>,
}

/// Algorithm 1 (RTHS) with explicit history.
#[derive(Debug, Clone)]
pub struct HistoryRths {
    config: RthsConfig,
    probs: Vec<f64>,
    history: Vec<StageRecord>,
    q: Vec<f64>, // row-major m×m regret matrix
    pending: Option<usize>,
}

impl HistoryRths {
    /// Creates the learner (uniform initial strategy, zero regret).
    pub fn new(config: RthsConfig) -> Self {
        let m = config.num_actions();
        Self {
            probs: vec![1.0 / m as f64; m],
            history: Vec::new(),
            q: vec![0.0; m * m],
            config,
            pending: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RthsConfig {
        &self.config
    }

    /// Regret `Qⁿ(j,k)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn regret(&self, j: usize, k: usize) -> f64 {
        let m = self.config.num_actions();
        assert!(j < m && k < m, "regret index out of range");
        self.q[j * m + k]
    }

    /// Empirical play frequency of `action`, weighted by the configured
    /// averaging mode (matching [`RthsLearner`](crate::RthsLearner)'s
    /// recursive frequency tracker, including its uniform initial prior).
    fn play_frequency(&self, action: usize) -> f64 {
        let n = self.history.len();
        let m = self.config.num_actions();
        match self.config.recency() {
            RecencyMode::Exponential => {
                let eps = self.config.epsilon();
                let mut f = (1.0 - eps).powi(n as i32) / m as f64;
                for (idx, rec) in self.history.iter().enumerate() {
                    if rec.action == action {
                        f += eps * (1.0 - eps).powi((n - 1 - idx) as i32);
                    }
                }
                f
            }
            RecencyMode::PaperLiteral | RecencyMode::Uniform => {
                if n == 0 {
                    return 1.0 / m as f64;
                }
                let count = self.history.iter().filter(|r| r.action == action).count();
                count as f64 / n as f64
            }
        }
    }

    /// Recomputes the full regret matrix from history (Eqs. 3-2/3-3).
    fn recompute_regrets(&mut self) {
        let m = self.config.num_actions();
        let n = self.history.len();
        let eps = self.config.epsilon();
        // weight(τ) for τ = 1..n (1-based age from the most recent).
        let weight = |idx: usize| -> f64 {
            match self.config.recency() {
                RecencyMode::Exponential => {
                    let age = (n - 1 - idx) as i32;
                    eps * (1.0 - eps).powi(age)
                }
                RecencyMode::PaperLiteral => eps,
                RecencyMode::Uniform => 1.0 / n as f64,
            }
        };
        for j in 0..m {
            // own(j) = Σ_{τ: aτ=j} w(τ)·uτ
            let mut own = 0.0;
            for (idx, rec) in self.history.iter().enumerate() {
                if rec.action == j {
                    own += weight(idx) * rec.utility;
                }
            }
            for k in 0..m {
                if j == k {
                    self.q[j * m + k] = 0.0;
                    continue;
                }
                // û(k) with proxy importance weights p(j)/p(k).
                let mut proxy = 0.0;
                for (idx, rec) in self.history.iter().enumerate() {
                    if rec.action == k {
                        proxy += weight(idx) * rec.utility * rec.probs[j] / rec.probs[k];
                    }
                }
                self.q[j * m + k] = (proxy - own).max(0.0);
            }
        }
    }
}

impl Learner for HistoryRths {
    fn num_actions(&self) -> usize {
        self.config.num_actions()
    }

    fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    fn select_action(&mut self, rng: &mut dyn RngCore) -> usize {
        assert!(self.pending.is_none(), "select_action called with an observation pending");
        let u: f64 = rand::Rng::gen(rng);
        let mut acc = 0.0;
        let mut chosen = self.probs.len() - 1;
        for (a, &p) in self.probs.iter().enumerate() {
            acc += p;
            if u < acc {
                chosen = a;
                break;
            }
        }
        self.pending = Some(chosen);
        chosen
    }

    fn observe(&mut self, utility: f64) {
        assert!(utility.is_finite(), "utility must be finite, got {utility}");
        let j = self.pending.take().expect("observe called without a pending action");
        self.history.push(StageRecord { action: j, utility, probs: self.probs.clone() });
        self.recompute_regrets();
        let m = self.config.num_actions();
        let mut regret_row: Vec<f64> = self.q[j * m..(j + 1) * m].to_vec();
        if self.config.conditional() {
            let floor = policy::exploration_floor(m, self.config.delta());
            let f_j = self.play_frequency(j).max(floor);
            for r in regret_row.iter_mut() {
                *r /= f_j;
            }
        }
        policy::update_probabilities(
            &mut self.probs,
            j,
            &regret_row,
            self.config.delta(),
            self.config.mu(),
        );
    }

    fn max_regret(&self) -> f64 {
        self.q.iter().copied().fold(0.0, f64::max)
    }

    fn stage(&self) -> u64 {
        self.history.len() as u64
    }

    fn pending_action(&self) -> Option<usize> {
        self.pending
    }

    fn reset_actions(&mut self, num_actions: usize) {
        assert!(self.pending.is_none(), "cannot reset actions with an observation pending");
        self.config = self
            .config
            .with_num_actions(num_actions)
            .expect("reset_actions requires at least one action");
        self.probs = vec![1.0 / num_actions as f64; num_actions];
        self.history.clear();
        self.q = vec![0.0; num_actions * num_actions];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recursive::RthsLearner;
    use rand::SeedableRng;

    fn config(m: usize, recency: RecencyMode) -> RthsConfig {
        RthsConfig::builder(m)
            .epsilon(0.08)
            .delta(0.12)
            .mu(50.0)
            .recency(recency)
            .build()
            .unwrap()
    }

    /// The central validation: Algorithm 1 (history form) and Algorithm 2
    /// (recursive form) produce *identical* trajectories in Exponential
    /// mode — proving the recursive re-expression of Eqs. (3-4)–(3-6)
    /// matches Eqs. (3-2)–(3-3).
    #[test]
    fn history_and_recursive_are_trajectory_identical() {
        for seed in [1u64, 7, 42] {
            let cfg = config(3, RecencyMode::Exponential);
            let mut hist = HistoryRths::new(cfg.clone());
            let mut rec = RthsLearner::new(cfg);
            let mut rng_h = rand::rngs::StdRng::seed_from_u64(seed);
            let mut rng_r = rand::rngs::StdRng::seed_from_u64(seed);
            for s in 0..300 {
                let a_h = hist.select_action(&mut rng_h);
                let a_r = rec.select_action(&mut rng_r);
                assert_eq!(a_h, a_r, "actions diverged at stage {s} (seed {seed})");
                // Utility depends on the action so divergence would cascade.
                let u = 10.0 + (a_h as f64) * 5.0 + (s % 4) as f64;
                hist.observe(u);
                rec.observe(u);
                for j in 0..3 {
                    for k in 0..3 {
                        let qh = hist.regret(j, k);
                        let qr = rec.regret(j, k);
                        assert!(
                            (qh - qr).abs() < 1e-9,
                            "Q({j},{k}) diverged at stage {s}: {qh} vs {qr}"
                        );
                    }
                }
                rths_math::assert::assert_slices_close(
                    hist.probabilities(),
                    rec.probabilities(),
                    1e-9,
                );
            }
        }
    }

    #[test]
    fn uniform_mode_matches_recursive_uniform() {
        let cfg = config(3, RecencyMode::Uniform);
        let mut hist = HistoryRths::new(cfg.clone());
        let mut rec = RthsLearner::new(cfg);
        let mut rng_h = rand::rngs::StdRng::seed_from_u64(9);
        let mut rng_r = rand::rngs::StdRng::seed_from_u64(9);
        for s in 0..200 {
            let a_h = hist.select_action(&mut rng_h);
            let a_r = rec.select_action(&mut rng_r);
            assert_eq!(a_h, a_r, "actions diverged at stage {s}");
            let u = 5.0 + a_h as f64;
            hist.observe(u);
            rec.observe(u);
            rths_math::assert::assert_slices_close(
                hist.probabilities(),
                rec.probabilities(),
                1e-9,
            );
        }
    }

    #[test]
    fn paper_literal_mode_matches_recursive_literal() {
        let cfg = config(2, RecencyMode::PaperLiteral);
        let mut hist = HistoryRths::new(cfg.clone());
        let mut rec = RthsLearner::new(cfg);
        let mut rng_h = rand::rngs::StdRng::seed_from_u64(33);
        let mut rng_r = rand::rngs::StdRng::seed_from_u64(33);
        for _ in 0..150 {
            let a_h = hist.select_action(&mut rng_h);
            let a_r = rec.select_action(&mut rng_r);
            assert_eq!(a_h, a_r);
            let u = 1.0 + 3.0 * a_h as f64;
            hist.observe(u);
            rec.observe(u);
            rths_math::assert::assert_slices_close(
                hist.probabilities(),
                rec.probabilities(),
                1e-9,
            );
        }
    }

    #[test]
    fn conditional_mode_matches_recursive_conditional() {
        let cfg = RthsConfig::builder(3)
            .epsilon(0.08)
            .delta(0.12)
            .mu(50.0)
            .conditional(true)
            .build()
            .unwrap();
        let mut hist = HistoryRths::new(cfg.clone());
        let mut rec = RthsLearner::new(cfg);
        let mut rng_h = rand::rngs::StdRng::seed_from_u64(44);
        let mut rng_r = rand::rngs::StdRng::seed_from_u64(44);
        for s in 0..250 {
            let a_h = hist.select_action(&mut rng_h);
            let a_r = rec.select_action(&mut rng_r);
            assert_eq!(a_h, a_r, "actions diverged at stage {s}");
            let u = 10.0 + (a_h as f64) * 7.0;
            hist.observe(u);
            rec.observe(u);
            rths_math::assert::assert_slices_close(
                hist.probabilities(),
                rec.probabilities(),
                1e-9,
            );
        }
    }

    #[test]
    fn history_learner_protocol_enforced() {
        let mut l = HistoryRths::new(config(2, RecencyMode::Exponential));
        let mut r = rand::rngs::StdRng::seed_from_u64(1);
        let _ = l.select_action(&mut r);
        l.observe(1.0);
        assert_eq!(l.stage(), 1);
    }

    #[test]
    #[should_panic(expected = "without a pending action")]
    fn observe_before_select_panics() {
        let mut l = HistoryRths::new(config(2, RecencyMode::Exponential));
        l.observe(1.0);
    }

    #[test]
    fn reset_clears_history() {
        let mut l = HistoryRths::new(config(2, RecencyMode::Exponential));
        let mut r = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let _ = l.select_action(&mut r);
            l.observe(1.0);
        }
        l.reset_actions(4);
        assert_eq!(l.stage(), 0);
        assert_eq!(l.num_actions(), 4);
        assert_eq!(l.max_regret(), 0.0);
    }
}
