//! The probability update rule of Algorithms 1 & 2.
//!
//! Given the regret row `Q(j, ·)` of the *currently played* action `j`,
//! the next mixed strategy is
//!
//! ```text
//! p^{n+1}(k) = (1-δ)·min{ Q(j,k)/μ, 1/(m-1) } + δ/m     for k ≠ j
//! p^{n+1}(j) = 1 − Σ_{k≠j} p^{n+1}(k)
//! ```
//!
//! Two structural properties make this well-defined (and are enforced by
//! property tests):
//!
//! * each clipped term is ≤ `1/(m-1)`, so the off-`j` mass is at most
//!   `(1-δ) + δ·(m-1)/m < 1`, leaving `p(j) ≥ δ/m > 0`;
//! * every action retains at least `δ/m` probability, which keeps the
//!   importance weights `1/p(k)` of the proxy-regret estimator bounded —
//!   the exploration/estimation trade-off discussed in §III.B.

/// Computes `p^{n+1}` in place from the regret row of the played action.
///
/// * `probs` — the strategy to overwrite.
/// * `played` — index `j` of the action played this stage.
/// * `regret_row` — `Q(j, k)` for every `k` (entry `j` is ignored).
/// * `delta`, `mu` — the paper's `δ` and `μ`.
///
/// With a single action the strategy is trivially `[1.0]`.
///
/// # Panics
///
/// Panics if lengths mismatch, `played` is out of range, or parameters are
/// outside their domains.
pub fn update_probabilities(
    probs: &mut [f64],
    played: usize,
    regret_row: &[f64],
    delta: f64,
    mu: f64,
) {
    let m = probs.len();
    assert_eq!(regret_row.len(), m, "regret row length mismatch");
    assert!(played < m, "played action out of range");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    assert!(mu > 0.0 && mu.is_finite(), "mu must be positive and finite");

    if m == 1 {
        probs[0] = 1.0;
        return;
    }

    let cap = 1.0 / (m as f64 - 1.0);
    let floor = delta / m as f64;
    let mut off_mass = 0.0;
    for (k, p) in probs.iter_mut().enumerate() {
        if k == played {
            continue;
        }
        let q = regret_row[k].max(0.0);
        let candidate = (q / mu).min(cap);
        *p = (1.0 - delta) * candidate + floor;
        off_mass += *p;
    }
    probs[played] = 1.0 - off_mass;
    debug_assert!(
        probs[played] >= floor - 1e-12,
        "played-action probability fell below exploration floor"
    );
}

/// The guaranteed exploration floor `δ/m` under the update rule.
pub fn exploration_floor(num_actions: usize, delta: f64) -> f64 {
    if num_actions == 0 {
        return 0.0;
    }
    delta / num_actions as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rths_math::vector::is_distribution;

    #[test]
    fn zero_regret_keeps_mass_on_played_action() {
        let mut p = vec![0.25; 4];
        update_probabilities(&mut p, 2, &[0.0; 4], 0.1, 100.0);
        assert!(is_distribution(&p, 1e-12));
        // Off-played actions get exactly the floor δ/m.
        for (k, &pk) in p.iter().enumerate() {
            if k != 2 {
                assert!((pk - 0.025).abs() < 1e-12, "p[{k}] = {pk}");
            }
        }
        assert!((p[2] - (1.0 - 3.0 * 0.025)).abs() < 1e-12);
    }

    #[test]
    fn large_regret_saturates_at_cap() {
        let mut p = vec![0.5, 0.5];
        update_probabilities(&mut p, 0, &[0.0, 1e9], 0.2, 10.0);
        assert!(is_distribution(&p, 1e-12));
        // k=1 term: (1-δ)·min(1e8, 1/(2-1)) + δ/2 = 0.8·1 + 0.1 = 0.9.
        assert!((p[1] - 0.9).abs() < 1e-12);
        // Played action keeps the floor δ/m = 0.1.
        assert!((p[0] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn proportionality_below_cap() {
        let mut p = vec![1.0 / 3.0; 3];
        update_probabilities(&mut p, 0, &[0.0, 30.0, 60.0], 0.1, 600.0);
        // candidates: 0.05 and 0.1, both below cap 0.5.
        let expect1 = 0.9 * 0.05 + 0.1 / 3.0;
        let expect2 = 0.9 * 0.1 + 0.1 / 3.0;
        assert!((p[1] - expect1).abs() < 1e-12);
        assert!((p[2] - expect2).abs() < 1e-12);
        assert!(is_distribution(&p, 1e-12));
    }

    #[test]
    fn negative_regrets_are_clamped() {
        let mut p = vec![0.5, 0.5];
        update_probabilities(&mut p, 0, &[0.0, -50.0], 0.1, 10.0);
        // Negative regret acts like zero: floor only.
        assert!((p[1] - 0.05).abs() < 1e-12);
    }

    #[test]
    fn single_action_is_degenerate() {
        let mut p = vec![0.7];
        update_probabilities(&mut p, 0, &[123.0], 0.1, 10.0);
        assert_eq!(p, vec![1.0]);
    }

    #[test]
    fn floor_formula() {
        assert_eq!(exploration_floor(4, 0.08), 0.02);
        assert_eq!(exploration_floor(0, 0.08), 0.0);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn bad_delta_panics() {
        let mut p = vec![0.5, 0.5];
        update_probabilities(&mut p, 0, &[0.0, 0.0], 1.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_played_panics() {
        let mut p = vec![0.5, 0.5];
        update_probabilities(&mut p, 2, &[0.0, 0.0], 0.1, 10.0);
    }
}
