//! Deterministic data-parallel primitives for the simulation runtime.
//!
//! A dependency-free scoped fork/join layer in the spirit of rayon's
//! `scope`/`par_map`, built on [`std::thread::scope`] so borrowed data can
//! cross into workers without `'static` bounds or unsafe lifetime erasure.
//! The workspace uses it to fan simulation work out across cores **without
//! changing any result**: every primitive assigns items to workers by
//! contiguous index ranges and hands results back in input order, so a
//! caller that keeps its reductions index-ordered is bit-for-bit identical
//! at any thread count.
//!
//! # Thread count
//!
//! The worker count is resolved per call, cheapest-first:
//!
//! 1. an explicit scoped override installed with [`with_threads`] — the
//!    API tests and benches use instead of mutating the process
//!    environment (`std::env::set_var` is racy under the multithreaded
//!    test harness and `unsafe` in newer toolchains);
//! 2. otherwise the `RTHS_THREADS` environment variable, the *outermost*
//!    configuration layer (CI matrices, operators).
//!
//! Unset, unparsable, or `1` means **inline sequential execution on the
//! calling thread** — no threads are spawned at all, which keeps CI and
//! the golden tests on the exact code path the paper reproduction was
//! pinned on.
//! For the fine-grained primitives, inputs smaller than
//! [`MIN_PARALLEL_ITEMS`] also run inline: below that, spawn overhead
//! dwarfs the work and single-channel test systems with a handful of
//! peers would pay for threads they cannot use.
//!
//! Regions **nest without multiplying**: a primitive called from inside a
//! worker runs inline on that worker, so when the bench harness already
//! fans one seed out per worker, the per-epoch phases inside each
//! simulation do not spawn another `RTHS_THREADS` threads each.
//!
//! # Panics
//!
//! If a worker panics, the panic is re-raised on the calling thread with
//! the original payload after all workers of the scope have finished
//! (propagation is inherited from [`std::thread::scope`]).
//!
//! # Example
//!
//! ```
//! let squares = rths_par::par_map(&[1u64, 2, 3], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9]);
//! ```

#![forbid(unsafe_code)]

pub mod env;

/// For the fine-grained per-entity primitives ([`par_chunks_mut`],
/// [`par_zip_mut`]), inputs with fewer items than this run inline even
/// when `RTHS_THREADS` asks for parallelism: thread spawn costs tens of
/// microseconds, which only pays off once each worker has a meaningful
/// slice of work. [`par_map`] is the coarse-task primitive (whole
/// simulation runs, one per seed) and has no such cutoff.
pub const MIN_PARALLEL_ITEMS: usize = 64;

/// Advisory sequential cutoff for *sharded per-entity phases*: spawning
/// a worker only pays off once its contiguous shard holds at least this
/// many fine-grained items (one peer's choose/observe step is ~0.1–2 µs;
/// a scoped spawn plus join costs tens of µs, so a worker needs a couple
/// thousand items to amortize it). The committed `BENCH_sim.json`
/// demonstrated the pathology this guards against: 2- and 4-thread runs
/// were *slower* than sequential for every population ≤ 4×10³ (e.g.
/// 2 861 → 2 122 epochs/s at n = 200, threads 4).
///
/// [`par_sharded`] itself cannot apply the cutoff — it does not know the
/// weight of an item (the reactor passes a handful of whole mailbox
/// shards, each worth milliseconds) — so callers with per-entity items
/// cap their *requested* shard count with it, e.g.
/// `threads().min(len / MIN_ITEMS_PER_WORKER).max(1)` in the peer
/// stores and the net coordinator. Shard counts never change results
/// (bit-identical by construction), so the cap is pure scheduling.
pub const MIN_ITEMS_PER_WORKER: usize = 2048;

/// The configured worker count: the innermost [`with_threads`] override on
/// this thread if one is active, else `RTHS_THREADS` if set to a positive
/// integer, otherwise `1` (sequential).
pub fn threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(std::cell::Cell::get) {
        return n;
    }
    parse_threads(std::env::var("RTHS_THREADS").ok().as_deref())
}

/// Interprets an `RTHS_THREADS` value: a positive integer (surrounding
/// whitespace tolerated) is the worker count; unset, unparsable, or zero
/// means `1` (sequential).
fn parse_threads(value: Option<&str>) -> usize {
    match value {
        Some(v) => v.trim().parse::<usize>().ok().filter(|&n| n >= 1).unwrap_or(1),
        None => 1,
    }
}

std::thread_local! {
    /// Scoped worker-count override installed by [`with_threads`].
    static THREAD_OVERRIDE: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

/// Restores the previous override when a [`with_threads`] scope unwinds.
struct OverrideGuard {
    prev: Option<usize>,
}

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.with(|o| o.set(self.prev));
    }
}

/// Runs `f` with the worker count pinned to `n` on this thread, restoring
/// the previous setting afterwards (also on panic).
///
/// This is the programmatic alternative to the `RTHS_THREADS` environment
/// variable: tests and benches that sweep thread counts use it so they
/// never mutate process-global state (racy under the multithreaded test
/// harness). An inner `with_threads` wins over an outer one and over the
/// environment; the environment variable remains the outermost default
/// for code that never installs an override.
///
/// The override is **per-thread**: work spawned onto pool workers inside
/// `f` is governed by the count captured when the parallel region was
/// entered (regions nest inline anyway, see the crate docs).
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "worker count must be at least 1");
    let prev = THREAD_OVERRIDE.with(|o| o.replace(Some(n)));
    let _guard = OverrideGuard { prev };
    f()
}

std::thread_local! {
    /// True while this thread is executing a chunk on behalf of one of the
    /// primitives. Nested calls then run inline: when the seed-level
    /// fan-out already occupies every configured worker, letting each
    /// simulation epoch spawn another `RTHS_THREADS` workers would give
    /// T×T threads and per-epoch spawn churn for no extra parallelism.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Marks the current thread as a pool worker for the guard's lifetime.
struct WorkerGuard {
    was: bool,
}

impl WorkerGuard {
    fn enter() -> Self {
        let was = IN_WORKER.with(|w| w.replace(true));
        WorkerGuard { was }
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        IN_WORKER.with(|w| w.set(self.was));
    }
}

/// The worker count for a new parallel region: `threads()`, or `1` when
/// already inside a worker (nested regions run inline).
fn region_threads() -> usize {
    if IN_WORKER.with(std::cell::Cell::get) {
        1
    } else {
        threads()
    }
}

/// Workers to actually use for `len` items (respects the inline cutoffs).
fn workers_for(len: usize) -> usize {
    if len < MIN_PARALLEL_ITEMS {
        return 1;
    }
    region_threads().min(len).max(1)
}

/// Balanced contiguous `(start, end)` ranges covering `0..len` in order.
fn chunk_ranges(len: usize, parts: usize) -> Vec<(usize, usize)> {
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        if size == 0 {
            break;
        }
        ranges.push((start, start + size));
        start += size;
    }
    ranges
}

/// Joins scoped workers in spawn order, re-raising the first panic.
fn join_all<T>(handles: Vec<std::thread::ScopedJoinHandle<'_, T>>) -> Vec<T> {
    let mut outputs = Vec::with_capacity(handles.len());
    for handle in handles {
        match handle.join() {
            Ok(value) => outputs.push(value),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    outputs
}

/// Maps `f(index, &item)` over `items`, returning results in input order.
///
/// Work is split into one contiguous chunk per worker; the output is the
/// in-order concatenation of the chunk results, so the return value is
/// identical at any thread count.
///
/// This is the **coarse-task** primitive — each item is assumed to carry
/// substantial work (e.g. one full simulation run per seed), so it
/// parallelizes even tiny inputs; [`MIN_PARALLEL_ITEMS`] does not apply.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = region_threads().min(items.len()).max(1);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let ranges = chunk_ranges(items.len(), workers);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        // Spawn chunks 1.. first, then the calling thread works chunk 0
        // itself instead of parking — one fewer spawn per call.
        let mut handles = Vec::with_capacity(ranges.len() - 1);
        for &(start, end) in &ranges[1..] {
            let f = &f;
            let chunk = &items[start..end];
            handles.push(scope.spawn(move || {
                let _guard = WorkerGuard::enter();
                chunk.iter().enumerate().map(|(i, item)| f(start + i, item)).collect::<Vec<R>>()
            }));
        }
        {
            let _guard = WorkerGuard::enter();
            out.extend(
                items[ranges[0].0..ranges[0].1].iter().enumerate().map(|(i, item)| f(i, item)),
            );
        }
        for part in join_all(handles) {
            out.extend(part);
        }
    });
    out
}

/// Runs `f(offset, chunk)` on disjoint contiguous chunks of `items`, one
/// chunk per worker. `offset` is the index of `chunk[0]` within `items`.
///
/// Sequential fallback calls `f(0, items)` once (and not at all on empty
/// input), so `f` must not depend on *how* the slice is partitioned —
/// only on which absolute indices it receives, which are always `0..len`
/// exactly once.
pub fn par_chunks_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if items.is_empty() {
        return;
    }
    let workers = workers_for(items.len());
    if workers <= 1 {
        f(0, items);
        return;
    }
    let ranges = chunk_ranges(items.len(), workers);
    let (first, mut rest) = items.split_at_mut(ranges[0].1);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len() - 1);
        for &(start, end) in &ranges[1..] {
            let (chunk, tail) = rest.split_at_mut(end - start);
            rest = tail;
            let f = &f;
            handles.push(scope.spawn(move || {
                let _guard = WorkerGuard::enter();
                f(start, chunk)
            }));
        }
        // The calling thread works chunk 0 itself instead of parking.
        {
            let _guard = WorkerGuard::enter();
            f(0, first);
        }
        join_all(handles);
    });
}

/// Runs `f(index, &mut a[index], &mut b[index])` for every index, with
/// both slices partitioned at the same contiguous boundaries.
///
/// This is the simulator's workhorse: `a` holds the entities (peers), `b`
/// an index-aligned scratch output slot per entity, so a parallel phase
/// can mutate each entity and record its per-entity result without any
/// shared accumulator — order-sensitive reductions then happen
/// sequentially over `b` in index order.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn par_zip_mut<A, B, F>(a: &mut [A], b: &mut [B], f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut A, &mut B) + Sync,
{
    assert_eq!(a.len(), b.len(), "par_zip_mut slices must be index-aligned");
    if a.is_empty() {
        return;
    }
    let workers = workers_for(a.len());
    if workers <= 1 {
        for (i, (x, y)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
            f(i, x, y);
        }
        return;
    }
    let ranges = chunk_ranges(a.len(), workers);
    let (first_a, mut rest_a) = a.split_at_mut(ranges[0].1);
    let (first_b, mut rest_b) = b.split_at_mut(ranges[0].1);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len() - 1);
        for &(start, end) in &ranges[1..] {
            let (chunk_a, tail_a) = rest_a.split_at_mut(end - start);
            let (chunk_b, tail_b) = rest_b.split_at_mut(end - start);
            rest_a = tail_a;
            rest_b = tail_b;
            let f = &f;
            handles.push(scope.spawn(move || {
                let _guard = WorkerGuard::enter();
                for (i, (x, y)) in chunk_a.iter_mut().zip(chunk_b.iter_mut()).enumerate() {
                    f(start + i, x, y);
                }
            }));
        }
        // The calling thread works chunk 0 itself instead of parking.
        {
            let _guard = WorkerGuard::enter();
            for (i, (x, y)) in first_a.iter_mut().zip(first_b.iter_mut()).enumerate() {
                f(i, x, y);
            }
        }
        join_all(handles);
    });
}

/// A bundle of mutable columns that can be split at the same item
/// boundary — the structure-of-arrays counterpart of `split_at_mut`.
///
/// The sharded peer stores keep one flat column per field (ids, learner
/// state, accounting); a parallel phase needs a disjoint contiguous range
/// of **every** column per worker. Implementations exist for `&mut [T]`,
/// tuples of implementors (nest tuples for wider bundles), and
/// [`Strided`] for flat matrices with a fixed row stride.
pub trait ShardCols: Send + Sized {
    /// Splits the bundle into items `..mid` and `mid..`.
    fn shard_split(self, mid: usize) -> (Self, Self);
}

impl<T: Send> ShardCols for &mut [T] {
    fn shard_split(self, mid: usize) -> (Self, Self) {
        self.split_at_mut(mid)
    }
}

impl ShardCols for () {
    fn shard_split(self, _mid: usize) -> (Self, Self) {
        ((), ())
    }
}

macro_rules! impl_shard_cols_tuple {
    ($($name:ident),+) => {
        impl<$($name: ShardCols),+> ShardCols for ($($name,)+) {
            fn shard_split(self, mid: usize) -> (Self, Self) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                #[allow(non_snake_case)]
                let ($($name,)+) = ($($name.shard_split(mid),)+);
                (($($name.0,)+), ($($name.1,)+))
            }
        }
    };
}

impl_shard_cols_tuple!(A, B);
impl_shard_cols_tuple!(A, B, C);
impl_shard_cols_tuple!(A, B, C, D);
impl_shard_cols_tuple!(A, B, C, D, E);

/// A flat row-major column with `stride` scalars per item (e.g. one
/// regret row per peer): splitting at item `mid` splits the backing slice
/// at `mid * stride`.
#[derive(Debug)]
pub struct Strided<'a, T> {
    /// Scalars per item.
    pub stride: usize,
    /// The backing flat slice (`len = items × stride`).
    pub data: &'a mut [T],
}

impl<'a, T> Strided<'a, T> {
    /// Wraps a flat slice with `stride` scalars per item.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of a non-zero `stride`.
    pub fn new(stride: usize, data: &'a mut [T]) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert_eq!(data.len() % stride, 0, "flat column length must be a stride multiple");
        Self { stride, data }
    }

    /// The row of item `i` **relative to this chunk**.
    pub fn row(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.stride..(i + 1) * self.stride]
    }
}

impl<T: Send> ShardCols for Strided<'_, T> {
    fn shard_split(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.data.split_at_mut(mid * self.stride);
        (Self { stride: self.stride, data: a }, Self { stride: self.stride, data: b })
    }
}

/// A shard's identity inside [`par_sharded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Shard index (`0..shards`).
    pub index: usize,
    /// Absolute index of the shard's first item.
    pub start: usize,
    /// One past the shard's last item.
    pub end: usize,
}

impl Shard {
    /// Items in this shard.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the shard is empty (never produced by [`par_sharded`]).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Runs `f(shard, cols_chunk, scratch[shard.index])` over `shards`
/// contiguous index ranges of a structure-of-arrays column bundle, one
/// worker per shard.
///
/// This is the peer-store primitive: `cols` bundles every mutable column
/// of the store ([`ShardCols`]), each shard receives the same contiguous
/// item range of all of them plus **its own** scratch slot, so a phase
/// can mutate per-entity state and thread-affine accumulators without any
/// sharing. Shard boundaries are the deterministic [`chunk_ranges`]
/// partition; as long as the caller keeps order-sensitive reductions
/// index-ordered (sequentially, or by merging per-shard accumulators in
/// shard order when the merge is order-insensitive), results are
/// **bit-for-bit identical at any shard count** — the contract the
/// engines' shard-count sweep test pins.
///
/// `shards` is a *request*: it is clamped to `len`, and a single shard
/// (or a call from inside another parallel region) runs inline on the
/// calling thread. Unlike the requested count, the executing thread count
/// never affects results.
///
/// # Panics
///
/// Panics if `shards` is zero when `len > 0`, or `scratch` has fewer
/// slots than the clamped shard count. Worker panics propagate to the
/// caller after the scope joins.
pub fn par_sharded<C, S, F>(len: usize, shards: usize, cols: C, scratch: &mut [S], f: F)
where
    C: ShardCols,
    S: Send,
    F: Fn(Shard, C, &mut S) + Sync,
{
    if len == 0 {
        return;
    }
    assert!(shards >= 1, "need at least one shard");
    let shards = shards.min(len);
    assert!(scratch.len() >= shards, "need one scratch slot per shard");
    let ranges = chunk_ranges(len, shards);
    if ranges.len() == 1 || IN_WORKER.with(std::cell::Cell::get) {
        // Inline: preserve the shard *structure* (each range still sees
        // its own scratch slot) while executing sequentially.
        let mut rest = cols;
        for (index, &(start, end)) in ranges.iter().enumerate() {
            let (chunk, tail) = rest.shard_split(end - start);
            rest = tail;
            let _guard = WorkerGuard::enter();
            f(Shard { index, start, end }, chunk, &mut scratch[index]);
        }
        return;
    }
    // Span the whole fork/join region (spawn → work → join) so traces
    // show what a parallel phase costs end to end; timing is read-only
    // and cannot perturb shard boundaries or merge order.
    let t_region = rths_obs::span_start();
    let (first_cols, mut rest_cols) = cols.shard_split(ranges[0].1);
    let (first_scratch, mut rest_scratch) = scratch.split_at_mut(1);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len() - 1);
        for (index, &(start, end)) in ranges.iter().enumerate().skip(1) {
            let (chunk, tail) = rest_cols.shard_split(end - start);
            rest_cols = tail;
            let (slot, tail) = rest_scratch.split_at_mut(1);
            rest_scratch = tail;
            let f = &f;
            handles.push(scope.spawn(move || {
                let _guard = WorkerGuard::enter();
                f(Shard { index, start, end }, chunk, &mut slot[0]);
            }));
        }
        // The calling thread works shard 0 itself instead of parking.
        {
            let _guard = WorkerGuard::enter();
            f(
                Shard { index: 0, start: 0, end: ranges[0].1 },
                first_cols,
                &mut first_scratch[0],
            );
        }
        join_all(handles);
    });
    if let Some(t) = t_region {
        rths_obs::span_end(rths_obs::Phase::ParDispatch, rths_obs::current_epoch(), t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_threads_handles_the_env_shapes() {
        assert_eq!(parse_threads(None), 1);
        assert_eq!(parse_threads(Some("not-a-number")), 1);
        assert_eq!(parse_threads(Some("0")), 1);
        assert_eq!(parse_threads(Some(" 3 ")), 3);
        assert_eq!(parse_threads(Some("8")), 8);
        assert_eq!(parse_threads(Some("")), 1);
        assert_eq!(parse_threads(Some("-2")), 1);
    }

    #[test]
    fn threads_prefers_override_then_env() {
        // The override is thread-local, so this test cannot race the rest
        // of the suite regardless of what RTHS_THREADS is set to.
        let ambient = threads();
        let inside = with_threads(3, threads);
        assert_eq!(inside, 3);
        let nested = with_threads(5, || (threads(), with_threads(2, threads), threads()));
        assert_eq!(nested, (5, 2, 5));
        assert_eq!(threads(), ambient, "override leaked past its scope");
    }

    #[test]
    fn override_is_restored_on_panic() {
        let ambient = threads();
        let result = std::panic::catch_unwind(|| with_threads(7, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(threads(), ambient, "override leaked past a panic");
    }

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for len in [1usize, 5, 64, 100, 1001] {
            for parts in [1usize, 2, 3, 7, 64] {
                let ranges = chunk_ranges(len, parts.min(len));
                assert_eq!(ranges[0].0, 0);
                assert_eq!(ranges.last().unwrap().1, len);
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].1, pair[1].0, "gap at {pair:?}");
                }
                let max = ranges.iter().map(|(s, e)| e - s).max().unwrap();
                let min = ranges.iter().map(|(s, e)| e - s).min().unwrap();
                assert!(max - min <= 1, "unbalanced chunks: {ranges:?}");
            }
        }
    }

    #[test]
    fn par_map_preserves_order_and_indices() {
        let items: Vec<u64> = (0..1000).collect();
        let sequential: Vec<u64> =
            items.iter().enumerate().map(|(i, &x)| x * 2 + i as u64).collect();
        for n in [1usize, 2, 4, 7] {
            let parallel = with_threads(n, || par_map(&items, |i, &x| x * 2 + i as u64));
            assert_eq!(parallel, sequential, "mismatch at {n} threads");
        }
    }

    #[test]
    fn par_map_empty_input() {
        let out: Vec<u32> = with_threads(4, || par_map(&[] as &[u32], |_, &x| x));
        assert!(out.is_empty());
    }

    #[test]
    fn small_inputs_run_inline_for_fine_grained_primitives() {
        // Below MIN_PARALLEL_ITEMS the calling thread does all the work,
        // so a thread-identity probe sees only one thread.
        let mut items = vec![0u8; MIN_PARALLEL_ITEMS - 1];
        let mut ids = vec![None; MIN_PARALLEL_ITEMS - 1];
        with_threads(8, || {
            par_zip_mut(&mut items, &mut ids, |_, _, id| {
                *id = Some(std::thread::current().id());
            });
        });
        assert!(ids.iter().all(|&id| id == Some(std::thread::current().id())));
    }

    #[test]
    fn par_map_parallelizes_small_inputs() {
        // Coarse tasks fan out even when there are only a few of them
        // (e.g. ten seeds): no MIN_PARALLEL_ITEMS cutoff.
        let items = [0u8; 4];
        let ids = with_threads(4, || par_map(&items, |_, _| std::thread::current().id()));
        assert!(ids.iter().any(|&id| id != std::thread::current().id()));
    }

    #[test]
    fn par_chunks_mut_visits_every_index_once() {
        let mut data = vec![0u32; 500];
        with_threads(4, || {
            par_chunks_mut(&mut data, |offset, chunk| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot += (offset + i) as u32;
                }
            });
        });
        let expected: Vec<u32> = (0..500).collect();
        assert_eq!(data, expected);
    }

    #[test]
    fn par_chunks_mut_empty_input() {
        let mut data: Vec<u32> = Vec::new();
        with_threads(4, || par_chunks_mut(&mut data, |_, _| panic!("must not be called")));
    }

    #[test]
    fn par_zip_mut_aligns_slices() {
        let mut a: Vec<u64> = (0..777).collect();
        let mut b = vec![0u64; 777];
        with_threads(3, || {
            par_zip_mut(&mut a, &mut b, |i, x, y| {
                *x += 1;
                *y = *x + i as u64;
            });
        });
        for (i, (&x, &y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x, i as u64 + 1);
            assert_eq!(y, 2 * i as u64 + 1);
        }
    }

    #[test]
    #[should_panic(expected = "index-aligned")]
    fn par_zip_mut_rejects_length_mismatch() {
        let mut a = [1u8, 2];
        let mut b = [1u8];
        par_zip_mut(&mut a, &mut b, |_, _, _| {});
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let items: Vec<usize> = (0..400).collect();
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map(&items, |i, _| {
                    if i == 250 {
                        panic!("boom at 250");
                    }
                    i
                })
            })
        });
        let payload = result.expect_err("panic should propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(message.contains("boom at 250"), "unexpected payload: {message}");
    }

    #[test]
    fn nested_scopes_compose() {
        // A worker may itself call the primitives: the nested region runs
        // inline on that worker (no T×T thread blow-up) and produces the
        // same in-order results.
        let outer: Vec<usize> = (0..128).collect();
        let result = with_threads(2, || {
            par_map(&outer, |_, &o| {
                let inner: Vec<usize> = (0..128).collect();
                par_map(&inner, |_, &i| o * i).into_iter().sum::<usize>()
            })
        });
        let inner_sum: usize = (0..128).sum();
        let expected: Vec<usize> = (0..128).map(|o| o * inner_sum).collect();
        assert_eq!(result, expected);
    }

    #[test]
    fn par_sharded_covers_every_index_with_affine_scratch() {
        // Three columns (one strided) + per-shard scratch: every item is
        // visited exactly once with consistent absolute indices, and each
        // shard sees only its own scratch slot.
        let n = 300;
        let stride = 3;
        let mut a: Vec<u64> = vec![0; n];
        let mut b: Vec<u64> = (0..n as u64).collect();
        let mut flat = vec![0u64; n * stride];
        for shards in [1usize, 2, 4, 7] {
            a.fill(0);
            flat.fill(0);
            let mut scratch = vec![0u64; shards];
            par_sharded(
                n,
                shards,
                ((&mut a[..], &mut b[..]), Strided::new(stride, &mut flat[..])),
                &mut scratch,
                |shard, ((a, b), mut flat), count| {
                    assert_eq!(shard.len(), a.len());
                    assert!(!shard.is_empty());
                    for i in 0..a.len() {
                        let abs = shard.start + i;
                        a[i] += abs as u64 + 1;
                        assert_eq!(b[i], abs as u64);
                        flat.row(i)[0] = abs as u64;
                        *count += 1;
                    }
                },
            );
            let total: u64 = scratch.iter().sum();
            assert_eq!(total, n as u64, "scratch counts wrong at {shards} shards");
            for (i, &v) in a.iter().enumerate() {
                assert_eq!(v, i as u64 + 1, "item {i} not visited exactly once");
                assert_eq!(flat[i * stride], i as u64);
            }
        }
    }

    #[test]
    fn par_sharded_runs_inline_inside_a_worker() {
        // From inside a parallel region the shards execute on the calling
        // worker (no T×T thread blow-up), preserving shard structure.
        let outer = [0u8; 2];
        let ids = with_threads(2, || {
            par_map(&outer, |_, _| {
                let me = std::thread::current().id();
                let mut col = [0u8; 128];
                let mut seen = vec![None; 4];
                par_sharded(128, 4, &mut col[..], &mut seen, |_, _, slot| {
                    *slot = Some(std::thread::current().id());
                });
                (me, seen)
            })
        });
        for (worker, seen) in ids {
            assert!(seen.iter().all(|&id| id == Some(worker)), "shard left its worker");
        }
    }

    #[test]
    fn par_sharded_empty_input_is_a_noop() {
        let mut col: Vec<u8> = Vec::new();
        par_sharded(0, 4, &mut col[..], &mut [0u8; 4], |_, _, _| panic!("must not run"));
    }

    #[test]
    #[should_panic(expected = "one scratch slot per shard")]
    fn par_sharded_rejects_short_scratch() {
        let mut col = [0u8; 100];
        par_sharded(100, 4, &mut col[..], &mut [0u8; 2], |_, _, _| {});
    }

    #[test]
    fn nested_regions_run_inline_on_their_worker() {
        // Inside a worker, a nested par_map must not spawn further
        // threads: every nested item is executed by the worker itself.
        let outer = [0u8; 2];
        let nested_ids = with_threads(2, || {
            par_map(&outer, |_, _| {
                let me = std::thread::current().id();
                let inner = [0u8; 8];
                let ids = par_map(&inner, |_, _| std::thread::current().id());
                (me, ids)
            })
        });
        for (worker, ids) in nested_ids {
            assert!(ids.iter().all(|&id| id == worker), "nested region left its worker");
        }
    }
}
