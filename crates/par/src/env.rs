//! The **one sanctioned place** in the workspace that mutates the
//! process environment.
//!
//! `std::env::set_var` is process-global and unsynchronized with respect
//! to concurrent `getenv` calls, so under the multithreaded test harness
//! a bare call is a data race waiting for an unlucky schedule (PR 4
//! fixed exactly such a race, and the pattern crept back three times
//! since — which is why the determinism lint's `env-mutation` rule now
//! bans `set_var`/`remove_var` everywhere *except this module*). Tests
//! and benches that genuinely need an environment variable visible to
//! threads they spawn (e.g. `RTHS_THREADS` read by a reactor worker,
//! where the thread-local [`with_threads`](crate::with_threads) override
//! cannot reach) must route through [`with_var`]: one global mutex
//! serializes every mutation-and-restore window in the process, so two
//! guarded regions can never interleave and a reader outside any guarded
//! region sees only the ambient value.
//!
//! This serializes, it does not desanitize: a *different* thread calling
//! `std::env::var` concurrently still races the mutation itself. The
//! contract that makes the guard sound in this workspace is that every
//! env-reading code path under test runs **inside** the closure, and
//! every env-writing path runs **through this module** — the half the
//! compiler cannot check is exactly what `rths_lint` checks.

use std::sync::Mutex;

/// Serializes every environment mutation in the process. Held across the
/// whole set → run → restore window, so guarded regions never observe
/// each other's values.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the environment variable `key` set to `value`
/// (`None` = removed), restoring the prior value afterwards — also on
/// panic, before the panic resumes.
///
/// The global guard also makes `with_var` a convenient serialization
/// point for *other* process-global state a test touches in the same
/// closure (the obs-neutrality suite keys its global trace flag off the
/// same critical section).
///
/// Nested calls from inside `f` on the same thread would deadlock (the
/// lock is not reentrant); set both variables from one call site
/// instead, or widen the outer closure.
pub fn with_var<R>(key: &str, value: Option<&str>, f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let prior = std::env::var(key).ok();
    apply(key, value);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    apply(key, prior.as_deref());
    match result {
        Ok(value) => value,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// The workspace's single `set_var`/`remove_var` site (see module docs;
/// the determinism lint sanctions exactly this file).
fn apply(key: &str, value: Option<&str>) {
    match value {
        Some(v) => std::env::set_var(key, v),
        None => std::env::remove_var(key),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One obscure probe variable per test: the suite runs multithreaded,
    // and distinct keys keep the assertions independent of scheduling
    // even though the guard already serializes the mutation windows.

    #[test]
    fn sets_inside_and_restores_after() {
        let key = "RTHS_ENV_GUARD_TEST_SET";
        assert!(std::env::var(key).is_err());
        let seen = with_var(key, Some("42"), || std::env::var(key).unwrap());
        assert_eq!(seen, "42");
        assert!(std::env::var(key).is_err(), "variable leaked past its scope");
    }

    #[test]
    fn remove_then_restore() {
        // `with_var` is non-reentrant, so the "prior value exists" case
        // is staged with the module-internal `apply` rather than nesting.
        let key = "RTHS_ENV_GUARD_TEST_REMOVE";
        apply(key, Some("outer"));
        let seen = with_var(key, None, || std::env::var(key).is_err());
        assert!(seen, "None should remove the variable");
        assert_eq!(std::env::var(key).unwrap(), "outer", "prior value not restored");
        apply(key, None);
    }

    #[test]
    fn restores_on_panic() {
        let key = "RTHS_ENV_GUARD_TEST_PANIC";
        let result =
            std::panic::catch_unwind(|| with_var(key, Some("boom"), || panic!("boom")));
        assert!(result.is_err());
        assert!(std::env::var(key).is_err(), "variable leaked past a panic");
    }
}
