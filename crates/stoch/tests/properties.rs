//! Property-based tests for the stochastic substrate.

use proptest::prelude::*;
use rths_math::Matrix;
use rths_stoch::bandwidth::{BandwidthProcess, MarkovBandwidth, RandomWalkBandwidth};
use rths_stoch::markov::MarkovChain;
use rths_stoch::process::{sample_geometric, sample_poisson, ChurnProcess};
use rths_stoch::rng::{derive_seed, entity_rng, seeded_rng};
use rths_stoch::zipf::Zipf;

/// Strategy producing a random row-stochastic matrix with strictly positive
/// entries (hence irreducible and aperiodic).
fn positive_kernel(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(0.05..1.0f64, n * n).prop_map(move |raw| {
        let mut m = Matrix::from_vec(n, n, raw);
        for r in 0..n {
            let s: f64 = m.row(r).iter().sum();
            for c in 0..n {
                m[(r, c)] /= s;
            }
        }
        m
    })
}

proptest! {
    #[test]
    fn stationary_distribution_is_invariant(kernel in positive_kernel(4)) {
        let chain = MarkovChain::new(kernel, 0).unwrap();
        prop_assert!(chain.is_ergodic());
        let pi = chain.stationary_distribution().unwrap();
        prop_assert!(rths_math::vector::is_distribution(&pi, 1e-9));
        let pushed = chain.transition().vec_mul(&pi);
        prop_assert!(rths_math::vector::max_abs_diff(&pi, &pushed) < 1e-8);
    }

    #[test]
    fn sticky_birth_death_always_valid(n in 1usize..12, stay in 0.0..0.999f64) {
        let chain = MarkovChain::sticky_birth_death(n, stay, 0);
        prop_assert!(chain.transition().is_row_stochastic(1e-9));
        prop_assert!(chain.is_irreducible());
    }

    #[test]
    fn markov_step_stays_in_range(kernel in positive_kernel(5), seed in any::<u64>()) {
        let mut chain = MarkovChain::new(kernel, 0).unwrap();
        let mut rng = seeded_rng(seed);
        for _ in 0..100 {
            let s = chain.step(&mut rng);
            prop_assert!(s < 5);
        }
    }

    #[test]
    fn derive_seed_distinct_streams_distinct_seeds(base in any::<u64>(), s1 in 0u64..1000, s2 in 0u64..1000) {
        prop_assume!(s1 != s2);
        prop_assert_ne!(derive_seed(base, s1), derive_seed(base, s2));
    }

    #[test]
    fn entity_rng_is_reproducible(base in any::<u64>(), stream in any::<u64>()) {
        use rand::Rng;
        let mut a = entity_rng(base, stream);
        let mut b = entity_rng(base, stream);
        prop_assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn poisson_is_nonnegative_and_finite(seed in any::<u64>(), lambda in 0.0..200.0f64) {
        let mut rng = seeded_rng(seed);
        let x = sample_poisson(&mut rng, lambda);
        // Crude tail bound: extremely unlikely to be astronomically large.
        prop_assert!(x < (lambda as u64 + 1) * 20 + 100);
    }

    #[test]
    fn geometric_at_least_one(seed in any::<u64>(), p in 0.001..1.0f64) {
        let mut rng = seeded_rng(seed);
        prop_assert!(sample_geometric(&mut rng, p) >= 1);
    }

    #[test]
    fn churn_departures_bounded_by_population(seed in any::<u64>(), online in 0usize..200, p in 0.0..1.0f64) {
        let mut rng = seeded_rng(seed);
        let churn = ChurnProcess::new(1.0, p);
        let ev = churn.sample_epoch(&mut rng, online);
        prop_assert!(ev.departures <= online as u64);
    }

    #[test]
    fn zipf_allocation_sums(n in 1usize..30, s in 0.0..2.5f64, total in 0usize..5000) {
        let z = Zipf::new(n, s);
        let alloc = z.allocate(total);
        prop_assert_eq!(alloc.iter().sum::<usize>(), total);
    }

    #[test]
    fn zipf_sample_in_range(n in 1usize..50, s in 0.0..2.5f64, seed in any::<u64>()) {
        let z = Zipf::new(n, s);
        let mut rng = seeded_rng(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn markov_bandwidth_levels_bounded(seed in any::<u64>(), stay in 0.5..0.999f64) {
        let mut rng = seeded_rng(seed);
        let mut bw = MarkovBandwidth::paper_with_stay(&mut rng, stay);
        for _ in 0..200 {
            prop_assert!(bw.level() >= bw.min_level());
            prop_assert!(bw.level() <= bw.max_level());
            bw.step(&mut rng);
        }
    }

    #[test]
    fn random_walk_never_escapes(seed in any::<u64>(), init in 0.3..0.7f64) {
        let mut rng = seeded_rng(seed);
        let mut bw = RandomWalkBandwidth::new(init * 1000.0, 100.0, 900.0, 37.0, 0.9);
        for _ in 0..500 {
            bw.step(&mut rng);
            prop_assert!(bw.level() >= 100.0 && bw.level() <= 900.0);
        }
    }
}
