//! Arrival/departure processes for peer churn.
//!
//! P2P streaming systems "must operate in changing conditions … join/leave
//! of peers" (paper §I). The simulator models churn with a discrete-time
//! birth–death process: Poisson arrivals per epoch and independent
//! geometric lifetimes (each online peer departs with fixed probability per
//! epoch), plus an on/off flash-crowd modulator for the workload
//! generators.

use rand::Rng;

/// Samples a Poisson-distributed count with mean `lambda` (Knuth's method
/// for small λ, normal approximation above 30).
///
/// # Panics
///
/// Panics if `lambda` is negative or non-finite.
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda.is_finite() && lambda >= 0.0, "lambda must be finite and non-negative");
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Normal approximation with continuity correction.
        let z: f64 = sample_standard_normal(rng);
        let x = lambda + lambda.sqrt() * z + 0.5;
        return x.max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Samples a standard normal via Box–Muller.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples a geometric lifetime: number of whole epochs a peer stays
/// online when it departs with probability `p` per epoch (support `1..`).
///
/// # Panics
///
/// Panics unless `0 < p <= 1`.
pub fn sample_geometric<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "departure probability must be in (0,1]");
    if p >= 1.0 {
        return 1;
    }
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64
}

/// Discrete-time churn process: `arrival_rate` expected joins per epoch,
/// and each online peer departs independently with `departure_prob` per
/// epoch. The long-run population mean is `arrival_rate / departure_prob`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnProcess {
    arrival_rate: f64,
    departure_prob: f64,
}

/// One epoch's churn outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChurnEvents {
    /// Number of peers joining this epoch.
    pub arrivals: u64,
    /// Number of existing peers departing this epoch.
    pub departures: u64,
}

impl ChurnProcess {
    /// Creates a churn process.
    ///
    /// # Panics
    ///
    /// Panics if `arrival_rate` is negative/non-finite or `departure_prob`
    /// is outside `[0, 1]`.
    pub fn new(arrival_rate: f64, departure_prob: f64) -> Self {
        assert!(
            arrival_rate.is_finite() && arrival_rate >= 0.0,
            "arrival rate must be finite and non-negative"
        );
        assert!((0.0..=1.0).contains(&departure_prob), "departure prob must be in [0,1]");
        Self { arrival_rate, departure_prob }
    }

    /// A process with no churn at all.
    pub fn none() -> Self {
        Self { arrival_rate: 0.0, departure_prob: 0.0 }
    }

    /// Expected joins per epoch.
    pub fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    /// Per-epoch departure probability of each online peer.
    pub fn departure_prob(&self) -> f64 {
        self.departure_prob
    }

    /// Long-run expected population (`λ/p`), or `None` when departures are
    /// disabled (population grows without bound if arrivals are positive).
    pub fn equilibrium_population(&self) -> Option<f64> {
        if self.departure_prob == 0.0 {
            None
        } else {
            Some(self.arrival_rate / self.departure_prob)
        }
    }

    /// Draws one epoch of churn for a population of `online` peers.
    pub fn sample_epoch<R: Rng + ?Sized>(&self, rng: &mut R, online: usize) -> ChurnEvents {
        let arrivals = sample_poisson(rng, self.arrival_rate);
        let mut departures = 0u64;
        for _ in 0..online {
            if self.departure_prob > 0.0 && rng.gen::<f64>() < self.departure_prob {
                departures += 1;
            }
        }
        ChurnEvents { arrivals, departures }
    }
}

/// Deterministic flash-crowd modulator: multiplies a base arrival rate by
/// `surge_factor` during `[start, end)` epochs. Models the audience spike
/// when a popular live event begins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// Epoch the surge begins.
    pub start: u64,
    /// Epoch the surge ends (exclusive).
    pub end: u64,
    /// Arrival-rate multiplier during the surge.
    pub surge_factor: f64,
}

impl FlashCrowd {
    /// Creates a flash-crowd window.
    ///
    /// # Panics
    ///
    /// Panics if `end < start` or `surge_factor < 1`.
    pub fn new(start: u64, end: u64, surge_factor: f64) -> Self {
        assert!(end >= start, "end must not precede start");
        assert!(surge_factor >= 1.0, "surge factor must be >= 1");
        Self { start, end, surge_factor }
    }

    /// Arrival-rate multiplier at `epoch`.
    pub fn factor_at(&self, epoch: u64) -> f64 {
        if (self.start..self.end).contains(&epoch) {
            self.surge_factor
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn poisson_mean_is_close_to_lambda() {
        let mut rng = seeded_rng(10);
        for &lambda in &[0.5, 3.0, 12.0, 80.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| sample_poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < 0.05 * lambda + 0.05,
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = seeded_rng(11);
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn geometric_mean_is_inverse_p() {
        let mut rng = seeded_rng(12);
        let p = 0.1;
        let n = 50_000;
        let total: u64 = (0..n).map(|_| sample_geometric(&mut rng, p)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean lifetime {mean}");
    }

    #[test]
    fn geometric_p_one_always_one() {
        let mut rng = seeded_rng(13);
        for _ in 0..10 {
            assert_eq!(sample_geometric(&mut rng, 1.0), 1);
        }
    }

    #[test]
    fn churn_equilibrium_population_matches_simulation() {
        let mut rng = seeded_rng(14);
        let churn = ChurnProcess::new(2.0, 0.02);
        let expected = churn.equilibrium_population().unwrap();
        assert_eq!(expected, 100.0);
        let mut online: i64 = 100;
        let mut acc = 0.0;
        let epochs = 20_000;
        for _ in 0..epochs {
            let ev = churn.sample_epoch(&mut rng, online as usize);
            online += ev.arrivals as i64 - ev.departures as i64;
            online = online.max(0);
            acc += online as f64;
        }
        let mean = acc / epochs as f64;
        assert!((mean - expected).abs() < 10.0, "mean population {mean} vs {expected}");
    }

    #[test]
    fn churn_none_is_quiescent() {
        let mut rng = seeded_rng(15);
        let churn = ChurnProcess::none();
        let ev = churn.sample_epoch(&mut rng, 500);
        assert_eq!(ev, ChurnEvents { arrivals: 0, departures: 0 });
        assert_eq!(churn.equilibrium_population(), None);
    }

    #[test]
    fn departures_never_exceed_population() {
        let mut rng = seeded_rng(16);
        let churn = ChurnProcess::new(0.0, 0.9);
        for online in [0usize, 1, 5, 50] {
            let ev = churn.sample_epoch(&mut rng, online);
            assert!(ev.departures <= online as u64);
        }
    }

    #[test]
    fn flash_crowd_window() {
        let fc = FlashCrowd::new(10, 20, 5.0);
        assert_eq!(fc.factor_at(9), 1.0);
        assert_eq!(fc.factor_at(10), 5.0);
        assert_eq!(fc.factor_at(19), 5.0);
        assert_eq!(fc.factor_at(20), 1.0);
    }

    #[test]
    fn normal_sampler_has_zero_mean_unit_variance() {
        let mut rng = seeded_rng(17);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = rths_math::stats::mean(&samples);
        let var = rths_math::stats::variance(&samples);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }
}
