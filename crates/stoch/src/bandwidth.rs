//! Helper upload-bandwidth processes.
//!
//! The paper's evaluation drives helper capacity with a slowly changing
//! Markov chain over `[700, 800, 900]` kbps. Other processes are provided
//! for robustness experiments: constant capacity, a bounded random walk, a
//! two-state Gilbert–Elliott burst model, and a deterministic regime shift
//! used by the tracking-vs-matching ablation.

use rand::Rng;

use crate::markov::MarkovChain;

/// The paper's bandwidth levels, in kbps (§IV).
pub const PAPER_LEVELS: [f64; 3] = [700.0, 800.0, 900.0];

/// Default stay-probability making the paper's chain "slowly changing".
pub const PAPER_STAY_PROBABILITY: f64 = 0.98;

/// A discrete-time stochastic process describing one helper's upload
/// capacity.
///
/// Implementors are advanced once per simulation epoch via
/// [`step`](BandwidthProcess::step); [`level`](BandwidthProcess::level)
/// reads the current capacity without advancing.
pub trait BandwidthProcess: Send {
    /// Current upload capacity (kbps).
    fn level(&self) -> f64;

    /// Advances the process one epoch.
    fn step(&mut self, rng: &mut dyn rand::RngCore);

    /// Smallest capacity the process can ever produce. Used by the
    /// minimum-bandwidth-deficit bound in Fig. 5.
    fn min_level(&self) -> f64;

    /// Largest capacity the process can ever produce.
    fn max_level(&self) -> f64;

    /// Long-run mean capacity if known analytically (used to calibrate the
    /// learners' normalisation constant μ).
    fn mean_level(&self) -> Option<f64> {
        None
    }
}

/// Markov-modulated bandwidth: a [`MarkovChain`] over a fixed ladder of
/// capacity levels. This is the paper's model.
#[derive(Debug, Clone)]
pub struct MarkovBandwidth {
    chain: MarkovChain,
    levels: Vec<f64>,
}

impl MarkovBandwidth {
    /// Creates a Markov-modulated process.
    ///
    /// # Panics
    ///
    /// Panics if `levels.len() != chain.num_states()`, if `levels` is
    /// empty, or if any level is negative or non-finite.
    pub fn new(chain: MarkovChain, levels: Vec<f64>) -> Self {
        assert_eq!(levels.len(), chain.num_states(), "one level per chain state");
        assert!(!levels.is_empty(), "need at least one level");
        assert!(
            levels.iter().all(|&l| l.is_finite() && l >= 0.0),
            "levels must be finite and non-negative"
        );
        Self { chain, levels }
    }

    /// The paper's process: sticky birth–death chain over
    /// `[700, 800, 900]` kbps with stay-probability 0.98, started in a
    /// uniformly random state.
    pub fn paper_default<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let initial = rng.gen_range(0..PAPER_LEVELS.len());
        let chain = MarkovChain::sticky_birth_death(
            PAPER_LEVELS.len(),
            PAPER_STAY_PROBABILITY,
            initial,
        );
        Self::new(chain, PAPER_LEVELS.to_vec())
    }

    /// Like [`paper_default`](Self::paper_default) but with a custom
    /// stay-probability (mixing speed).
    ///
    /// # Panics
    ///
    /// Panics if `stay` is outside `[0, 1)`.
    pub fn paper_with_stay<R: Rng + ?Sized>(rng: &mut R, stay: f64) -> Self {
        let initial = rng.gen_range(0..PAPER_LEVELS.len());
        let chain = MarkovChain::sticky_birth_death(PAPER_LEVELS.len(), stay, initial);
        Self::new(chain, PAPER_LEVELS.to_vec())
    }

    /// The underlying chain (for stationary analysis in the MDP benchmark).
    pub fn chain(&self) -> &MarkovChain {
        &self.chain
    }

    /// The capacity ladder.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Index of the current level in the ladder.
    pub fn state(&self) -> usize {
        self.chain.state()
    }
}

impl BandwidthProcess for MarkovBandwidth {
    fn level(&self) -> f64 {
        self.levels[self.chain.state()]
    }

    fn step(&mut self, rng: &mut dyn rand::RngCore) {
        self.chain.step(rng);
    }

    fn min_level(&self) -> f64 {
        self.levels.iter().copied().fold(f64::INFINITY, f64::min)
    }

    fn max_level(&self) -> f64 {
        self.levels.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    fn mean_level(&self) -> Option<f64> {
        self.chain.stationary_mean(&self.levels).ok()
    }
}

/// Constant capacity — the degenerate baseline used in unit tests and the
/// §III.B oscillation example (two equal fixed-capacity helpers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantBandwidth {
    level: f64,
}

impl ConstantBandwidth {
    /// Creates a constant process at `level` kbps.
    ///
    /// # Panics
    ///
    /// Panics if `level` is negative or non-finite.
    pub fn new(level: f64) -> Self {
        assert!(level.is_finite() && level >= 0.0, "level must be finite and non-negative");
        Self { level }
    }
}

impl BandwidthProcess for ConstantBandwidth {
    fn level(&self) -> f64 {
        self.level
    }

    fn step(&mut self, _rng: &mut dyn rand::RngCore) {}

    fn min_level(&self) -> f64 {
        self.level
    }

    fn max_level(&self) -> f64 {
        self.level
    }

    fn mean_level(&self) -> Option<f64> {
        Some(self.level)
    }
}

/// Bounded lazy random walk: each epoch the capacity moves by `±step_size`
/// with probability `move_prob/2` each, reflecting at `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWalkBandwidth {
    level: f64,
    min: f64,
    max: f64,
    step_size: f64,
    move_prob: f64,
}

impl RandomWalkBandwidth {
    /// Creates a walk starting at `initial` within `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are inverted, `initial` lies outside them,
    /// `step_size <= 0`, or `move_prob` is outside `[0, 1]`.
    pub fn new(initial: f64, min: f64, max: f64, step_size: f64, move_prob: f64) -> Self {
        assert!(min <= max, "min must not exceed max");
        assert!((min..=max).contains(&initial), "initial outside bounds");
        assert!(step_size > 0.0, "step size must be positive");
        assert!((0.0..=1.0).contains(&move_prob), "move_prob must be a probability");
        Self { level: initial, min, max, step_size, move_prob }
    }
}

impl BandwidthProcess for RandomWalkBandwidth {
    fn level(&self) -> f64 {
        self.level
    }

    fn step(&mut self, rng: &mut dyn rand::RngCore) {
        let u: f64 = rand::Rng::gen(rng);
        if u < self.move_prob {
            let up: bool = rand::Rng::gen(rng);
            let delta = if up { self.step_size } else { -self.step_size };
            self.level = (self.level + delta).clamp(self.min, self.max);
        }
    }

    fn min_level(&self) -> f64 {
        self.min
    }

    fn max_level(&self) -> f64 {
        self.max
    }
}

/// Two-state Gilbert–Elliott burst model: a `good` capacity and a degraded
/// `bad` capacity with asymmetric switching probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    good_level: f64,
    bad_level: f64,
    p_good_to_bad: f64,
    p_bad_to_good: f64,
    in_good: bool,
}

impl GilbertElliott {
    /// Creates the model, starting in the good state.
    ///
    /// # Panics
    ///
    /// Panics if levels are negative/non-finite or probabilities are
    /// outside `[0, 1]`.
    pub fn new(
        good_level: f64,
        bad_level: f64,
        p_good_to_bad: f64,
        p_bad_to_good: f64,
    ) -> Self {
        assert!(good_level.is_finite() && good_level >= 0.0, "good level invalid");
        assert!(bad_level.is_finite() && bad_level >= 0.0, "bad level invalid");
        assert!((0.0..=1.0).contains(&p_good_to_bad), "p_good_to_bad not a probability");
        assert!((0.0..=1.0).contains(&p_bad_to_good), "p_bad_to_good not a probability");
        Self { good_level, bad_level, p_good_to_bad, p_bad_to_good, in_good: true }
    }

    /// Whether the process is currently in the good state.
    pub fn is_good(&self) -> bool {
        self.in_good
    }
}

impl BandwidthProcess for GilbertElliott {
    fn level(&self) -> f64 {
        if self.in_good {
            self.good_level
        } else {
            self.bad_level
        }
    }

    fn step(&mut self, rng: &mut dyn rand::RngCore) {
        let u: f64 = rand::Rng::gen(rng);
        if self.in_good {
            if u < self.p_good_to_bad {
                self.in_good = false;
            }
        } else if u < self.p_bad_to_good {
            self.in_good = true;
        }
    }

    fn min_level(&self) -> f64 {
        self.good_level.min(self.bad_level)
    }

    fn max_level(&self) -> f64 {
        self.good_level.max(self.bad_level)
    }

    fn mean_level(&self) -> Option<f64> {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom == 0.0 {
            return Some(self.level());
        }
        let pi_good = self.p_bad_to_good / denom;
        Some(pi_good * self.good_level + (1.0 - pi_good) * self.bad_level)
    }
}

/// Replays a recorded capacity trace (looping at the end) — the bridge
/// for driving helpers with measured bandwidth data instead of synthetic
/// processes.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceBandwidth {
    samples: Vec<f64>,
    cursor: usize,
}

impl TraceBandwidth {
    /// Creates a trace process from per-epoch capacity samples (kbps).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains negative/non-finite
    /// values.
    pub fn new(samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "trace must have at least one sample");
        assert!(
            samples.iter().all(|s| s.is_finite() && *s >= 0.0),
            "trace samples must be finite and non-negative"
        );
        Self { samples, cursor: 0 }
    }

    /// The underlying samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl BandwidthProcess for TraceBandwidth {
    fn level(&self) -> f64 {
        self.samples[self.cursor]
    }

    fn step(&mut self, _rng: &mut dyn rand::RngCore) {
        self.cursor = (self.cursor + 1) % self.samples.len();
    }

    fn min_level(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    fn max_level(&self) -> f64 {
        self.samples.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    fn mean_level(&self) -> Option<f64> {
        Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }
}

/// Deterministic regime shift: capacity `before` until epoch `shift_at`,
/// then `after` forever. Drives the tracking-vs-matching ablation, where
/// regret *matching*'s uniform averaging fails to adapt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegimeShiftBandwidth {
    before: f64,
    after: f64,
    shift_at: u64,
    epoch: u64,
}

impl RegimeShiftBandwidth {
    /// Creates the shift process.
    ///
    /// # Panics
    ///
    /// Panics if either level is negative or non-finite.
    pub fn new(before: f64, after: f64, shift_at: u64) -> Self {
        assert!(before.is_finite() && before >= 0.0, "before level invalid");
        assert!(after.is_finite() && after >= 0.0, "after level invalid");
        Self { before, after, shift_at, epoch: 0 }
    }

    /// Epochs elapsed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl BandwidthProcess for RegimeShiftBandwidth {
    fn level(&self) -> f64 {
        if self.epoch < self.shift_at {
            self.before
        } else {
            self.after
        }
    }

    fn step(&mut self, _rng: &mut dyn rand::RngCore) {
        self.epoch += 1;
    }

    fn min_level(&self) -> f64 {
        self.before.min(self.after)
    }

    fn max_level(&self) -> f64 {
        self.before.max(self.after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn paper_default_visits_only_paper_levels() {
        let mut rng = seeded_rng(1);
        let mut bw = MarkovBandwidth::paper_default(&mut rng);
        for _ in 0..1000 {
            assert!(PAPER_LEVELS.contains(&bw.level()));
            bw.step(&mut rng);
        }
        assert_eq!(bw.min_level(), 700.0);
        assert_eq!(bw.max_level(), 900.0);
    }

    #[test]
    fn paper_default_mean_is_center_level() {
        // Birth-death over 3 states with symmetric moves has uniform-ish
        // stationary distribution [1/4, 1/2, 1/4] (reflecting ends push
        // mass to the middle), so the mean is exactly 800.
        let mut rng = seeded_rng(2);
        let bw = MarkovBandwidth::paper_default(&mut rng);
        let mean = bw.mean_level().unwrap();
        assert!((mean - 800.0).abs() < 1e-6, "mean = {mean}");
    }

    #[test]
    fn sticky_chain_changes_rarely() {
        let mut rng = seeded_rng(3);
        let mut bw = MarkovBandwidth::paper_default(&mut rng);
        let mut switches = 0;
        let mut prev = bw.level();
        let steps = 10_000;
        for _ in 0..steps {
            bw.step(&mut rng);
            if bw.level() != prev {
                switches += 1;
                prev = bw.level();
            }
        }
        let rate = switches as f64 / steps as f64;
        assert!(rate < 0.05, "switch rate {rate} not 'slowly changing'");
        assert!(rate > 0.005, "switch rate {rate} suspiciously low");
    }

    #[test]
    fn constant_process_never_moves() {
        let mut rng = seeded_rng(4);
        let mut bw = ConstantBandwidth::new(500.0);
        for _ in 0..10 {
            bw.step(&mut rng);
            assert_eq!(bw.level(), 500.0);
        }
        assert_eq!(bw.mean_level(), Some(500.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn constant_rejects_negative() {
        let _ = ConstantBandwidth::new(-1.0);
    }

    #[test]
    fn random_walk_respects_bounds() {
        let mut rng = seeded_rng(5);
        let mut bw = RandomWalkBandwidth::new(500.0, 200.0, 800.0, 100.0, 0.8);
        for _ in 0..10_000 {
            bw.step(&mut rng);
            assert!(bw.level() >= 200.0 && bw.level() <= 800.0, "escaped: {}", bw.level());
        }
    }

    #[test]
    fn gilbert_elliott_stationary_mean() {
        let ge = GilbertElliott::new(1000.0, 200.0, 0.1, 0.3);
        // pi_good = 0.3/0.4 = 0.75 -> mean = 0.75*1000 + 0.25*200 = 800.
        assert!((ge.mean_level().unwrap() - 800.0).abs() < 1e-9);
    }

    #[test]
    fn gilbert_elliott_switches_states() {
        let mut rng = seeded_rng(6);
        let mut ge = GilbertElliott::new(1000.0, 200.0, 0.2, 0.2);
        let mut saw_bad = false;
        let mut saw_good = false;
        for _ in 0..500 {
            ge.step(&mut rng);
            if ge.is_good() {
                saw_good = true;
            } else {
                saw_bad = true;
            }
        }
        assert!(saw_good && saw_bad);
    }

    #[test]
    fn regime_shift_happens_exactly_once() {
        let mut rng = seeded_rng(7);
        let mut bw = RegimeShiftBandwidth::new(900.0, 300.0, 5);
        let mut seen = Vec::new();
        for _ in 0..10 {
            seen.push(bw.level());
            bw.step(&mut rng);
        }
        assert_eq!(seen, vec![900.0; 5].into_iter().chain(vec![300.0; 5]).collect::<Vec<_>>());
        assert_eq!(bw.min_level(), 300.0);
        assert_eq!(bw.max_level(), 900.0);
    }

    #[test]
    fn trace_replays_and_loops() {
        let mut rng = seeded_rng(9);
        let mut bw = TraceBandwidth::new(vec![100.0, 200.0, 300.0]);
        let mut seen = Vec::new();
        for _ in 0..7 {
            seen.push(bw.level());
            bw.step(&mut rng);
        }
        assert_eq!(seen, vec![100.0, 200.0, 300.0, 100.0, 200.0, 300.0, 100.0]);
        assert_eq!(bw.min_level(), 100.0);
        assert_eq!(bw.max_level(), 300.0);
        assert_eq!(bw.mean_level(), Some(200.0));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_trace_rejected() {
        let _ = TraceBandwidth::new(vec![]);
    }

    #[test]
    fn processes_are_object_safe() {
        let mut rng = seeded_rng(8);
        let mut procs: Vec<Box<dyn BandwidthProcess>> = vec![
            Box::new(ConstantBandwidth::new(100.0)),
            Box::new(MarkovBandwidth::paper_default(&mut rng)),
            Box::new(RandomWalkBandwidth::new(500.0, 0.0, 1000.0, 50.0, 0.5)),
            Box::new(GilbertElliott::new(900.0, 100.0, 0.05, 0.2)),
            Box::new(RegimeShiftBandwidth::new(800.0, 400.0, 100)),
        ];
        for p in &mut procs {
            p.step(&mut rng);
            assert!(p.level() >= p.min_level() && p.level() <= p.max_level());
        }
    }
}
