//! Finite ergodic Markov chains.
//!
//! §IV.A of the paper models each helper's bandwidth state as "an ergodic
//! finite Markov chain `Y_i(t)`", independent across helpers, and uses the
//! stationary row vector `π_i` to weight the occupation-measure LP. This
//! module provides the chain itself, stationary-distribution computation,
//! and the structural checks (irreducibility, aperiodicity) behind the
//! "ergodic" assumption.

use rand::Rng;
use rths_math::Matrix;

/// Error produced when constructing or analysing a [`MarkovChain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarkovError {
    /// The transition matrix is not square.
    NotSquare,
    /// A row does not sum to 1 or has negative entries.
    NotStochastic {
        /// Index of the offending row.
        row: usize,
    },
    /// The chain is not irreducible (some state cannot reach some other).
    NotIrreducible,
    /// Power iteration failed to converge to a stationary distribution.
    NoConvergence,
}

impl std::fmt::Display for MarkovError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarkovError::NotSquare => write!(f, "transition matrix must be square"),
            MarkovError::NotStochastic { row } => {
                write!(f, "row {row} of transition matrix is not a probability distribution")
            }
            MarkovError::NotIrreducible => write!(f, "chain is not irreducible"),
            MarkovError::NoConvergence => {
                write!(f, "stationary distribution iteration did not converge")
            }
        }
    }
}

impl std::error::Error for MarkovError {}

/// A finite, time-homogeneous Markov chain with explicit state.
///
/// # Example
///
/// ```
/// use rths_math::Matrix;
/// use rths_stoch::MarkovChain;
///
/// let p = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8]]);
/// let chain = MarkovChain::new(p, 0)?;
/// let pi = chain.stationary_distribution()?;
/// // Detailed balance for this 2-state chain: pi = [2/3, 1/3].
/// assert!((pi[0] - 2.0 / 3.0).abs() < 1e-9);
/// # Ok::<(), rths_stoch::markov::MarkovError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovChain {
    transition: Matrix,
    state: usize,
}

impl MarkovChain {
    /// Creates a chain with transition kernel `transition` and initial
    /// state `initial`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NotSquare`] or [`MarkovError::NotStochastic`]
    /// if the kernel is malformed.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is out of range.
    pub fn new(transition: Matrix, initial: usize) -> Result<Self, MarkovError> {
        if !transition.is_square() {
            return Err(MarkovError::NotSquare);
        }
        for r in 0..transition.rows() {
            let row = transition.row(r);
            let ok = row.iter().all(|&v| (-1e-12..=1.0 + 1e-12).contains(&v))
                && (row.iter().sum::<f64>() - 1.0).abs() <= 1e-9;
            if !ok {
                return Err(MarkovError::NotStochastic { row: r });
            }
        }
        assert!(initial < transition.rows(), "initial state out of range");
        Ok(Self { transition, state: initial })
    }

    /// A "sticky" birth–death chain over `n` states: with probability
    /// `stay` the state is unchanged; otherwise it moves to a uniformly
    /// chosen neighbour (reflecting at the boundary).
    ///
    /// This is the workspace's reading of the paper's "slowly changing
    /// random process" over bandwidth levels: `stay` close to 1 makes the
    /// environment quasi-static between rare shifts.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `stay` is outside `[0, 1)`.
    pub fn sticky_birth_death(n: usize, stay: f64, initial: usize) -> Self {
        assert!(n > 0, "need at least one state");
        assert!((0.0..1.0).contains(&stay), "stay probability must be in [0,1)");
        let mut p = Matrix::zeros(n, n);
        if n == 1 {
            p[(0, 0)] = 1.0;
        } else {
            for i in 0..n {
                p[(i, i)] = stay;
                let move_mass = 1.0 - stay;
                if i == 0 {
                    p[(0, 1)] = move_mass;
                } else if i == n - 1 {
                    p[(n - 1, n - 2)] = move_mass;
                } else {
                    p[(i, i - 1)] = move_mass / 2.0;
                    p[(i, i + 1)] = move_mass / 2.0;
                }
            }
        }
        Self::new(p, initial).expect("birth-death kernel is stochastic by construction")
    }

    /// A chain that jumps to a uniformly random state (including itself
    /// with the same probability) each step — the fastest-mixing kernel.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(n: usize, initial: usize) -> Self {
        assert!(n > 0, "need at least one state");
        let p = Matrix::filled(n, n, 1.0 / n as f64);
        Self::new(p, initial).expect("uniform kernel is stochastic by construction")
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transition.rows()
    }

    /// Current state.
    pub fn state(&self) -> usize {
        self.state
    }

    /// Forces the chain into `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn set_state(&mut self, state: usize) {
        assert!(state < self.num_states(), "state out of range");
        self.state = state;
    }

    /// The transition kernel.
    pub fn transition(&self) -> &Matrix {
        &self.transition
    }

    /// Advances one step, returning the new state.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        let row = self.transition.row(self.state);
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut next = row.len() - 1;
        for (j, &p) in row.iter().enumerate() {
            acc += p;
            if u < acc {
                next = j;
                break;
            }
        }
        self.state = next;
        next
    }

    /// Checks irreducibility: every state can reach every other state.
    // Index loops mirror the Floyd–Warshall formulation; indices are state
    // ids, not mere positions.
    #[allow(clippy::needless_range_loop)]
    pub fn is_irreducible(&self) -> bool {
        let n = self.num_states();
        // Floyd–Warshall style reachability on the support graph.
        let mut reach = vec![vec![false; n]; n];
        for i in 0..n {
            for j in 0..n {
                reach[i][j] = i == j || self.transition[(i, j)] > 0.0;
            }
        }
        for k in 0..n {
            for i in 0..n {
                if !reach[i][k] {
                    continue;
                }
                for j in 0..n {
                    if reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
        reach.iter().all(|row| row.iter().all(|&r| r))
    }

    /// Checks aperiodicity (assuming irreducibility): the gcd of return
    /// times is 1. Any self-loop makes an irreducible chain aperiodic.
    #[allow(clippy::needless_range_loop)]
    pub fn is_aperiodic(&self) -> bool {
        let n = self.num_states();
        // Period of an irreducible chain = gcd over of cycle lengths through
        // any fixed state. Compute via BFS layering from state 0.
        let mut level = vec![None::<usize>; n];
        level[0] = Some(0);
        let mut queue = std::collections::VecDeque::from([0usize]);
        let mut g: u64 = 0;
        while let Some(i) = queue.pop_front() {
            let li = level[i].expect("queued node has level");
            for j in 0..n {
                if self.transition[(i, j)] <= 0.0 {
                    continue;
                }
                match level[j] {
                    None => {
                        level[j] = Some(li + 1);
                        queue.push_back(j);
                    }
                    Some(lj) => {
                        let diff = (li as i64 + 1 - lj as i64).unsigned_abs();
                        g = gcd(g, diff);
                    }
                }
            }
        }
        g == 1
    }

    /// Ergodic = irreducible + aperiodic.
    pub fn is_ergodic(&self) -> bool {
        self.is_irreducible() && self.is_aperiodic()
    }

    /// Stationary distribution `π` with `π P = π`, by damped power
    /// iteration.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NotIrreducible`] for reducible chains and
    /// [`MarkovError::NoConvergence`] if iteration stalls (does not happen
    /// for ergodic kernels).
    pub fn stationary_distribution(&self) -> Result<Vec<f64>, MarkovError> {
        if !self.is_irreducible() {
            return Err(MarkovError::NotIrreducible);
        }
        let n = self.num_states();
        let mut pi = vec![1.0 / n as f64; n];
        // Damping handles periodic chains (π of (P+I)/2 equals π of P).
        let mut kernel = self.transition.clone();
        for i in 0..n {
            for j in 0..n {
                kernel[(i, j)] = 0.5 * kernel[(i, j)] + if i == j { 0.5 } else { 0.0 };
            }
        }
        for _ in 0..100_000 {
            let next = kernel.vec_mul(&pi);
            let diff = rths_math::vector::max_abs_diff(&next, &pi);
            pi = next;
            if diff < 1e-14 {
                rths_math::vector::normalize(&mut pi);
                return Ok(pi);
            }
        }
        Err(MarkovError::NoConvergence)
    }

    /// Expected value of `values[state]` under the stationary distribution.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Self::stationary_distribution`].
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.num_states()`.
    pub fn stationary_mean(&self, values: &[f64]) -> Result<f64, MarkovError> {
        assert_eq!(values.len(), self.num_states(), "values length must match state count");
        let pi = self.stationary_distribution()?;
        Ok(rths_math::vector::dot(&pi, values))
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn two_state() -> MarkovChain {
        let p = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8]]);
        MarkovChain::new(p, 0).unwrap()
    }

    #[test]
    fn rejects_non_square() {
        let p = Matrix::from_rows(&[&[0.5, 0.5]]);
        assert_eq!(MarkovChain::new(p, 0).unwrap_err(), MarkovError::NotSquare);
    }

    #[test]
    fn rejects_non_stochastic_row() {
        let p = Matrix::from_rows(&[&[0.9, 0.2], &[0.5, 0.5]]);
        assert_eq!(MarkovChain::new(p, 0).unwrap_err(), MarkovError::NotStochastic { row: 0 });
    }

    #[test]
    fn stationary_of_two_state_chain() {
        let pi = two_state().stationary_distribution().unwrap();
        assert!((pi[0] - 2.0 / 3.0).abs() < 1e-9, "pi = {pi:?}");
        assert!((pi[1] - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn stationary_is_invariant_under_kernel() {
        let chain = MarkovChain::sticky_birth_death(5, 0.9, 2);
        let pi = chain.stationary_distribution().unwrap();
        let pushed = chain.transition().vec_mul(&pi);
        assert!(rths_math::vector::max_abs_diff(&pi, &pushed) < 1e-9);
    }

    #[test]
    fn sticky_chain_is_ergodic() {
        let chain = MarkovChain::sticky_birth_death(3, 0.98, 1);
        assert!(chain.is_irreducible());
        assert!(chain.is_aperiodic());
        assert!(chain.is_ergodic());
    }

    #[test]
    fn periodic_chain_detected() {
        // Deterministic 2-cycle: period 2.
        let p = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let chain = MarkovChain::new(p, 0).unwrap();
        assert!(chain.is_irreducible());
        assert!(!chain.is_aperiodic());
        assert!(!chain.is_ergodic());
        // Stationary distribution still exists and is uniform.
        let pi = chain.stationary_distribution().unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reducible_chain_detected() {
        let p = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let chain = MarkovChain::new(p, 0).unwrap();
        assert!(!chain.is_irreducible());
        assert_eq!(chain.stationary_distribution().unwrap_err(), MarkovError::NotIrreducible);
    }

    #[test]
    fn empirical_frequencies_approach_stationary() {
        let mut chain = MarkovChain::sticky_birth_death(3, 0.7, 0);
        let pi = chain.stationary_distribution().unwrap();
        let mut rng = seeded_rng(99);
        let mut counts = [0usize; 3];
        let steps = 200_000;
        for _ in 0..steps {
            counts[chain.step(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / steps as f64;
            assert!((freq - pi[i]).abs() < 0.01, "state {i}: freq {freq} vs pi {}", pi[i]);
        }
    }

    #[test]
    fn step_is_deterministic_given_seed() {
        let mut a = two_state();
        let mut b = two_state();
        let mut ra = seeded_rng(5);
        let mut rb = seeded_rng(5);
        for _ in 0..50 {
            assert_eq!(a.step(&mut ra), b.step(&mut rb));
        }
    }

    #[test]
    fn uniform_chain_has_uniform_stationary() {
        let chain = MarkovChain::uniform(4, 0);
        let pi = chain.stationary_distribution().unwrap();
        for &p in &pi {
            assert!((p - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn stationary_mean_weights_values() {
        let chain = two_state();
        // pi = [2/3, 1/3]; values [0, 3] -> mean 1.
        let m = chain.stationary_mean(&[0.0, 3.0]).unwrap();
        assert!((m - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_state_chain_works() {
        let chain = MarkovChain::sticky_birth_death(1, 0.5, 0);
        assert!(chain.is_ergodic());
        assert_eq!(chain.stationary_distribution().unwrap(), vec![1.0]);
    }

    #[test]
    fn set_state_overrides() {
        let mut chain = two_state();
        chain.set_state(1);
        assert_eq!(chain.state(), 1);
    }

    #[test]
    fn display_of_errors_is_informative() {
        assert!(format!("{}", MarkovError::NotIrreducible).contains("irreducible"));
        assert!(format!("{}", MarkovError::NotStochastic { row: 3 }).contains("3"));
    }
}
