//! Stochastic-process substrate for the RTHS reproduction.
//!
//! The paper's environment is driven by random processes:
//!
//! * helper upload bandwidth follows a **slowly changing finite Markov
//!   chain** over the levels `[700, 800, 900]` kbps (§IV) — [`markov`] and
//!   [`bandwidth`];
//! * the centralized MDP benchmark needs **stationary distributions** of
//!   those chains (§IV.A) — [`MarkovChain::stationary_distribution`];
//! * peers join and leave (churn) — [`process`];
//! * multi-channel systems have **Zipf-distributed channel popularity** —
//!   [`zipf`].
//!
//! Everything is seeded explicitly ([`rng`]) so that simulations, tests and
//! figures are bit-for-bit reproducible.
//!
//! # Example
//!
//! ```
//! use rths_stoch::bandwidth::{BandwidthProcess, MarkovBandwidth};
//! use rths_stoch::rng::seeded_rng;
//!
//! let mut rng = seeded_rng(42);
//! // The paper's helper-bandwidth process.
//! let mut bw = MarkovBandwidth::paper_default(&mut rng);
//! for _ in 0..10 {
//!     let level = bw.level();
//!     assert!([700.0, 800.0, 900.0].contains(&level));
//!     bw.step(&mut rng);
//! }
//! ```

#![forbid(unsafe_code)]

pub mod bandwidth;
pub mod markov;
pub mod process;
pub mod rng;
pub mod zipf;

pub use bandwidth::{BandwidthProcess, MarkovBandwidth};
pub use markov::MarkovChain;
pub use zipf::Zipf;
