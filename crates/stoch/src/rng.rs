//! Deterministic random-number-generator plumbing.
//!
//! Every stochastic component in the workspace takes an explicit seed so
//! that figures and tests reproduce bit-for-bit. When a simulation spawns
//! many entities (peers, helpers), each gets an independent stream derived
//! with [`derive_seed`], so adding an entity never perturbs the streams of
//! existing ones.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates the workspace-standard RNG from a `u64` seed.
///
/// # Example
///
/// ```
/// use rand::Rng;
///
/// let mut a = rths_stoch::rng::seeded_rng(7);
/// let mut b = rths_stoch::rng::seeded_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent stream seed from a base seed and a stream index.
///
/// Uses the SplitMix64 finalizer, which is a bijective avalanche mix — two
/// distinct `(seed, stream)` pairs virtually never collide, and consecutive
/// stream indices produce statistically unrelated seeds.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Convenience: RNG for the `stream`-th entity of a simulation seeded with
/// `base`.
pub fn entity_rng(base: u64, stream: u64) -> StdRng {
    seeded_rng(derive_seed(base, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(123);
        let mut b = seeded_rng(123);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derive_seed_is_deterministic_and_spreads() {
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
        assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 1), derive_seed(43, 1));
        // Consecutive streams should differ in many bits, not just a few.
        let x = derive_seed(42, 10) ^ derive_seed(42, 11);
        assert!(x.count_ones() > 10, "weak diffusion: {:064b}", x);
    }

    #[test]
    fn entity_rng_streams_are_independent() {
        let mut r0 = entity_rng(7, 0);
        let mut r1 = entity_rng(7, 1);
        assert_ne!(r0.gen::<u64>(), r1.gen::<u64>());
    }
}
