//! Zipf-distributed channel popularity.
//!
//! Measurement studies of deployed multi-channel P2P systems (PPLive,
//! UUSee — the systems cited in the paper's introduction) consistently
//! report Zipf-like channel popularity: the `k`-th most popular channel
//! attracts a share proportional to `1/k^s`. The multi-channel workload
//! generator uses this distribution to assign peers to channels.

use rand::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `s`.
///
/// Sampling is O(log n) via binary search over the precomputed CDF.
///
/// # Example
///
/// ```
/// use rths_stoch::Zipf;
/// use rths_stoch::rng::seeded_rng;
///
/// let zipf = Zipf::new(10, 1.0);
/// let mut rng = seeded_rng(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 10);
/// // Rank 0 is the most likely outcome.
/// assert!(zipf.pmf(0) > zipf.pmf(9));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
    pmf: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// `s = 0` gives the uniform distribution; `s = 1` is classic Zipf.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be finite and non-negative");
        let mut pmf: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = pmf.iter().sum();
        for w in &mut pmf {
            *w /= total;
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &p in &pmf {
            acc += p;
            cdf.push(acc);
        }
        // Guard against floating-point shortfall at the end.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Self { cdf, pmf, exponent: s }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.pmf.len()
    }

    /// Always `false`: the constructor rejects `n == 0`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of rank `k` (0-based; rank 0 is the most popular).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn pmf(&self, k: usize) -> f64 {
        self.pmf[k]
    }

    /// The full probability mass function.
    pub fn pmf_slice(&self) -> &[f64] {
        &self.pmf
    }

    /// Samples a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("CDF has no NaN")) {
            Ok(i) => (i + 1).min(self.len() - 1),
            Err(i) => i.min(self.len() - 1),
        }
    }

    /// Partitions `total` items into per-rank counts proportional to the
    /// pmf, using largest-remainder rounding so the counts sum to `total`
    /// exactly.
    pub fn allocate(&self, total: usize) -> Vec<usize> {
        let mut counts: Vec<usize> =
            self.pmf.iter().map(|p| (p * total as f64) as usize).collect();
        let assigned: usize = counts.iter().sum();
        let mut remainders: Vec<(usize, f64)> = self
            .pmf
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p * total as f64 - counts[i] as f64))
            .collect();
        remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN remainders"));
        for (i, _) in remainders.into_iter().take(total - assigned) {
            counts[i] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn pmf_sums_to_one() {
        for &(n, s) in &[(1usize, 1.0), (5, 0.0), (100, 1.2), (10, 2.5)] {
            let z = Zipf::new(n, s);
            let total: f64 = z.pmf_slice().iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "n={n} s={s}: total {total}");
        }
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_is_monotone_decreasing() {
        let z = Zipf::new(20, 1.0);
        for k in 1..20 {
            assert!(z.pmf(k) <= z.pmf(k - 1));
        }
    }

    #[test]
    fn classic_zipf_ratio() {
        let z = Zipf::new(10, 1.0);
        // pmf(0)/pmf(1) = 2 for s=1.
        assert!((z.pmf(0) / z.pmf(1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn samples_match_pmf() {
        let z = Zipf::new(5, 1.0);
        let mut rng = seeded_rng(20);
        let n = 200_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let freq = count as f64 / n as f64;
            assert!((freq - z.pmf(k)).abs() < 0.01, "rank {k}: {freq} vs {}", z.pmf(k));
        }
    }

    #[test]
    fn sample_always_in_range() {
        let z = Zipf::new(3, 1.5);
        let mut rng = seeded_rng(21);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn allocate_sums_exactly() {
        let z = Zipf::new(7, 1.0);
        for &total in &[0usize, 1, 10, 97, 1000] {
            let alloc = z.allocate(total);
            assert_eq!(alloc.iter().sum::<usize>(), total);
            assert_eq!(alloc.len(), 7);
        }
    }

    #[test]
    fn allocate_respects_popularity_order() {
        let z = Zipf::new(4, 1.0);
        let alloc = z.allocate(1000);
        for k in 1..4 {
            assert!(alloc[k] <= alloc[k - 1], "alloc {alloc:?} not ordered");
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
