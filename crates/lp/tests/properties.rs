//! Property tests: simplex results verified against brute force.
//!
//! For random small LPs with only `≤` constraints and non-negative rhs,
//! the optimum of `max c·x` lies at a vertex of the polytope. We verify
//! the simplex objective (a) is attained by a feasible point, and (b) is
//! not beaten by any point on a dense grid / random sampling — a cheap but
//! effective oracle for 2-variable problems.

use proptest::prelude::*;
use rths_lp::{LinearProgram, LpError, Relation};

fn small_lp() -> impl Strategy<Value = (Vec<f64>, Vec<(Vec<f64>, f64)>)> {
    let costs = prop::collection::vec(-5.0..5.0f64, 2);
    let rows =
        prop::collection::vec((prop::collection::vec(0.0..4.0f64, 2), 1.0..8.0f64), 1..5);
    (costs, rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simplex_beats_grid_search((costs, rows) in small_lp()) {
        // Ensure boundedness: add a box constraint.
        let mut lp = LinearProgram::maximize(costs.clone());
        for (coeffs, rhs) in &rows {
            lp.add_constraint(coeffs.clone(), Relation::Le, *rhs).unwrap();
        }
        lp.add_constraint(vec![1.0, 0.0], Relation::Le, 10.0).unwrap();
        lp.add_constraint(vec![0.0, 1.0], Relation::Le, 10.0).unwrap();

        let sol = lp.solve().expect("bounded, origin-feasible LP must solve");
        prop_assert!(lp.is_feasible(sol.x(), 1e-7));
        let obj = lp.objective_value(sol.x());
        prop_assert!((obj - sol.objective()).abs() < 1e-7);

        // Grid search oracle.
        let mut best = f64::NEG_INFINITY;
        let steps = 60;
        for i in 0..=steps {
            for j in 0..=steps {
                let x = [10.0 * i as f64 / steps as f64, 10.0 * j as f64 / steps as f64];
                if lp.is_feasible(&x, 1e-9) {
                    best = best.max(lp.objective_value(&x));
                }
            }
        }
        prop_assert!(sol.objective() >= best - 1e-6,
            "simplex {} < grid {best}", sol.objective());
    }

    #[test]
    fn feasible_lp_with_equalities_solves_or_reports(
        pi in prop::collection::vec(0.1..1.0f64, 2..4),
        costs_raw in prop::collection::vec(0.0..10.0f64, 8..12),
    ) {
        // Occupation-measure-like LP: variables grouped per "state", each
        // group must sum to pi[s] (normalised), maximise random utility.
        let groups = pi.len();
        let per_group = 3usize;
        let n = groups * per_group;
        let total: f64 = pi.iter().sum();
        let pi: Vec<f64> = pi.iter().map(|p| p / total).collect();
        let costs: Vec<f64> = (0..n).map(|i| costs_raw[i % costs_raw.len()]).collect();

        let mut lp = LinearProgram::maximize(costs.clone());
        for (s, &mass) in pi.iter().enumerate() {
            let mut row = vec![0.0; n];
            for a in 0..per_group {
                row[s * per_group + a] = 1.0;
            }
            lp.add_constraint(row, Relation::Eq, mass).unwrap();
        }
        let sol = lp.solve().expect("decomposable LP is feasible");
        prop_assert!(lp.is_feasible(sol.x(), 1e-7));

        // The optimum is the pi-weighted max per group — check exactly.
        let expected: f64 = pi.iter().enumerate().map(|(s, &mass)| {
            let best = (0..per_group)
                .map(|a| costs[s * per_group + a])
                .fold(f64::NEG_INFINITY, f64::max);
            mass * best
        }).sum();
        prop_assert!((sol.objective() - expected).abs() < 1e-6,
            "lp {} vs analytic {expected}", sol.objective());
    }

    #[test]
    fn contradictory_bounds_are_infeasible(a in 1.0..5.0f64, b in 1.0..5.0f64) {
        prop_assume!(a < b);
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.add_constraint(vec![1.0], Relation::Le, a).unwrap();
        lp.add_constraint(vec![1.0], Relation::Ge, b).unwrap();
        prop_assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn degenerate_zero_rhs_lps_terminate(
        costs in prop::collection::vec(0.0..100.0f64, 4..20),
        rows in prop::collection::vec(prop::collection::vec(-5.0..5.0f64, 4..20), 1..12),
    ) {
        // CE-polytope-like structure: many ≤-0 rows plus a simplex
        // equality — maximally degenerate (every basic solution has most
        // variables at zero). This class cycled before the Bland-mode
        // leaving-rule fix; now it must always terminate with a feasible
        // optimum.
        let n = costs.len();
        let mut lp = LinearProgram::maximize(costs);
        for row in rows {
            let mut r = vec![0.0; n];
            for (dst, &v) in r.iter_mut().zip(&row) {
                *dst = v;
            }
            lp.add_constraint(r, Relation::Le, 0.0).unwrap();
        }
        lp.add_constraint(vec![1.0; n], Relation::Eq, 1.0).unwrap();
        match lp.solve() {
            Ok(sol) => prop_assert!(lp.is_feasible(sol.x(), 1e-6)),
            // The random ≤-0 rows can make the simplex face infeasible
            // (e.g. all-positive row forces x=0, contradicting Σx=1).
            Err(LpError::Infeasible) => {}
            Err(e) => prop_assert!(false, "unexpected solver error: {e}"),
        }
    }

    #[test]
    fn scaling_costs_scales_objective(k in 0.1..10.0f64) {
        let build = |scale: f64| {
            let mut lp = LinearProgram::maximize(vec![2.0 * scale, 1.0 * scale]);
            lp.add_constraint(vec![1.0, 1.0], Relation::Le, 4.0).unwrap();
            lp.add_constraint(vec![1.0, 0.0], Relation::Le, 3.0).unwrap();
            lp.solve().unwrap().objective()
        };
        let base = build(1.0);
        let scaled = build(k);
        prop_assert!((scaled - k * base).abs() < 1e-6 * (1.0 + base.abs() * k));
    }
}
