//! Problem construction API.

use crate::simplex;
use crate::solution::{LpError, Solution};

/// Direction of optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Maximise the objective `c·x`.
    Maximize,
    /// Minimise the objective `c·x`.
    Minimize,
}

/// Relation of a linear constraint row to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x = b`
    Eq,
    /// `a·x ≥ b`
    Ge,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub coeffs: Vec<f64>,
    pub relation: Relation,
    pub rhs: f64,
}

/// A linear program over non-negative variables.
///
/// All decision variables are implicitly constrained to `x ≥ 0`, which is
/// the natural domain for occupation measures and mixed strategies — the
/// two uses in this workspace. Free variables can be modelled as a
/// difference of two non-negative ones by the caller if ever required.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    objective: Objective,
    costs: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Starts a maximisation problem with objective coefficients `costs`.
    ///
    /// # Panics
    ///
    /// Panics if `costs` is empty or contains non-finite values.
    pub fn maximize(costs: Vec<f64>) -> Self {
        Self::new(Objective::Maximize, costs)
    }

    /// Starts a minimisation problem with objective coefficients `costs`.
    ///
    /// # Panics
    ///
    /// Panics if `costs` is empty or contains non-finite values.
    pub fn minimize(costs: Vec<f64>) -> Self {
        Self::new(Objective::Minimize, costs)
    }

    fn new(objective: Objective, costs: Vec<f64>) -> Self {
        assert!(!costs.is_empty(), "need at least one variable");
        assert!(costs.iter().all(|c| c.is_finite()), "objective coefficients must be finite");
        Self { objective, costs, constraints: Vec::new() }
    }

    /// Adds the constraint `coeffs · x <relation> rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::DimensionMismatch`] if `coeffs.len()` differs
    /// from the number of variables, or [`LpError::NonFinite`] if any
    /// coefficient or the right-hand side is not finite.
    pub fn add_constraint(
        &mut self,
        coeffs: Vec<f64>,
        relation: Relation,
        rhs: f64,
    ) -> Result<&mut Self, LpError> {
        if coeffs.len() != self.costs.len() {
            return Err(LpError::DimensionMismatch {
                expected: self.costs.len(),
                found: coeffs.len(),
            });
        }
        if !rhs.is_finite() || coeffs.iter().any(|c| !c.is_finite()) {
            return Err(LpError::NonFinite);
        }
        self.constraints.push(Constraint { coeffs, relation, rhs });
        Ok(self)
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.costs.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Direction of optimisation.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Objective coefficients.
    pub fn costs(&self) -> &[f64] {
        &self.costs
    }

    pub(crate) fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Solves the program with the two-phase simplex method.
    ///
    /// # Errors
    ///
    /// * [`LpError::Infeasible`] — no point satisfies all constraints.
    /// * [`LpError::Unbounded`] — the objective can grow without limit.
    /// * [`LpError::IterationLimit`] — the pivot limit was exhausted
    ///   (should not occur with Bland's rule; indicates numerical trouble).
    pub fn solve(&self) -> Result<Solution, LpError> {
        simplex::solve(self)
    }

    /// Evaluates the objective at a given point (useful for verification).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the number of variables.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.costs.len(), "point has wrong dimension");
        rths_math::vector::dot(&self.costs, x)
    }

    /// Checks feasibility of a point within tolerance `tol`
    /// (including non-negativity).
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.costs.len() || x.iter().any(|&v| v < -tol) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs = rths_math::vector::dot(&c.coeffs, x);
            match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_shape() {
        let mut lp = LinearProgram::maximize(vec![1.0, 2.0, 3.0]);
        lp.add_constraint(vec![1.0, 1.0, 1.0], Relation::Le, 10.0).unwrap();
        assert_eq!(lp.num_vars(), 3);
        assert_eq!(lp.num_constraints(), 1);
        assert_eq!(lp.objective(), Objective::Maximize);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let mut lp = LinearProgram::maximize(vec![1.0, 2.0]);
        let err = lp.add_constraint(vec![1.0], Relation::Le, 1.0).unwrap_err();
        assert_eq!(err, LpError::DimensionMismatch { expected: 2, found: 1 });
    }

    #[test]
    fn non_finite_rejected() {
        let mut lp = LinearProgram::maximize(vec![1.0]);
        assert_eq!(
            lp.add_constraint(vec![f64::NAN], Relation::Le, 1.0).unwrap_err(),
            LpError::NonFinite
        );
        assert_eq!(
            lp.add_constraint(vec![1.0], Relation::Le, f64::INFINITY).unwrap_err(),
            LpError::NonFinite
        );
    }

    #[test]
    #[should_panic(expected = "at least one variable")]
    fn empty_objective_panics() {
        let _ = LinearProgram::maximize(vec![]);
    }

    #[test]
    fn feasibility_check() {
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(vec![1.0, 1.0], Relation::Le, 1.0).unwrap();
        assert!(lp.is_feasible(&[0.5, 0.5], 1e-9));
        assert!(!lp.is_feasible(&[0.9, 0.2], 1e-9));
        assert!(!lp.is_feasible(&[-0.1, 0.5], 1e-9));
        assert!(!lp.is_feasible(&[0.5], 1e-9));
    }

    #[test]
    fn objective_value_is_dot_product() {
        let lp = LinearProgram::minimize(vec![2.0, -1.0]);
        assert_eq!(lp.objective_value(&[3.0, 4.0]), 2.0);
    }
}
