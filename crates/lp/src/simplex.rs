//! Two-phase primal simplex on a dense tableau.
//!
//! Implementation notes:
//!
//! * The problem is converted to standard form `Ax = b, x ≥ 0, b ≥ 0`
//!   by adding slack variables for `≤`, surplus variables for `≥`, and
//!   artificial variables wherever no ready-made basic column exists.
//! * **Phase 1** minimises the sum of artificials; a positive optimum
//!   proves infeasibility. **Phase 2** optimises the real objective after
//!   driving artificials out of the basis.
//! * Pivot selection uses **Dantzig pricing** (most positive reduced
//!   cost) for speed, falling back permanently to **Bland's rule**
//!   (smallest eligible index, provably cycle-free) once the objective
//!   stalls for `m + n` consecutive pivots — the classic practical
//!   anti-cycling combination.

use rths_math::Matrix;

use crate::problem::{LinearProgram, Objective, Relation};
use crate::solution::{LpError, Solution};

const EPS: f64 = 1e-9;

/// Solves `lp`, returning an optimal solution or a terminal error.
pub(crate) fn solve(lp: &LinearProgram) -> Result<Solution, LpError> {
    let n = lp.num_vars();
    let m = lp.num_constraints();

    // Normalise to maximisation internally.
    let sign = match lp.objective() {
        Objective::Maximize => 1.0,
        Objective::Minimize => -1.0,
    };
    let costs: Vec<f64> = lp.costs().iter().map(|c| c * sign).collect();

    // Count extra columns: one slack/surplus per inequality, one artificial
    // per `≥`/`=` row (and per `≤` row with negative rhs, handled by
    // flipping the row first).
    //
    // Column layout: [structural 0..n | slack/surplus | artificial | rhs]
    let mut rows: Vec<(Vec<f64>, Relation, f64)> =
        lp.constraints().iter().map(|c| (c.coeffs.clone(), c.relation, c.rhs)).collect();

    // Make every rhs non-negative by flipping rows (Le<->Ge under negation).
    for (coeffs, rel, rhs) in &mut rows {
        if *rhs < 0.0 {
            for v in coeffs.iter_mut() {
                *v = -*v;
            }
            *rhs = -*rhs;
            *rel = match *rel {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
    }

    let num_slack = rows.iter().filter(|(_, r, _)| *r != Relation::Eq).count();
    let num_art = rows.iter().filter(|(_, r, _)| *r != Relation::Le).count();
    let total_cols = n + num_slack + num_art + 1; // +1 for rhs
    let rhs_col = total_cols - 1;

    if m == 0 {
        // No constraints: optimum is 0 at the origin unless some cost is
        // positive, in which case the problem is unbounded.
        if costs.iter().any(|&c| c > EPS) {
            return Err(LpError::Unbounded);
        }
        return Ok(Solution::new(0.0, vec![0.0; n], 0));
    }

    let mut tableau = Matrix::zeros(m, total_cols);
    let mut basis = vec![usize::MAX; m];
    let mut art_cols = Vec::with_capacity(num_art);

    let mut slack_cursor = n;
    let mut art_cursor = n + num_slack;
    for (i, (coeffs, rel, rhs)) in rows.iter().enumerate() {
        for (j, &a) in coeffs.iter().enumerate() {
            tableau[(i, j)] = a;
        }
        tableau[(i, rhs_col)] = *rhs;
        match rel {
            Relation::Le => {
                tableau[(i, slack_cursor)] = 1.0;
                basis[i] = slack_cursor;
                slack_cursor += 1;
            }
            Relation::Ge => {
                tableau[(i, slack_cursor)] = -1.0; // surplus
                slack_cursor += 1;
                tableau[(i, art_cursor)] = 1.0;
                basis[i] = art_cursor;
                art_cols.push(art_cursor);
                art_cursor += 1;
            }
            Relation::Eq => {
                tableau[(i, art_cursor)] = 1.0;
                basis[i] = art_cursor;
                art_cols.push(art_cursor);
                art_cursor += 1;
            }
        }
    }

    let mut iterations = 0usize;
    let max_pivots = (200 * (m + total_cols)).max(10_000);
    let stall_limit = m + total_cols;

    // ---- Phase 1: minimise sum of artificials (maximise -sum). ----
    if num_art > 0 {
        let mut phase1_costs = vec![0.0; total_cols - 1];
        for &c in &art_cols {
            phase1_costs[c] = -1.0;
        }
        let mut z_row = reduced_costs(&tableau, &basis, &phase1_costs);
        let mut bland = false;
        let mut stall = 0usize;
        let mut last_obj = objective_of(&tableau, &basis, &phase1_costs, rhs_col);
        while let Some(entering) = pick_entering(&z_row, &[], bland) {
            let Some(leaving) = pick_leaving(&tableau, &basis, entering, rhs_col, bland) else {
                // Phase-1 objective is bounded by 0; unboundedness here
                // signals numerical trouble.
                return Err(LpError::IterationLimit);
            };
            pivot(&mut tableau, &mut basis, leaving, entering, rhs_col);
            z_row = reduced_costs(&tableau, &basis, &phase1_costs);
            iterations += 1;
            if iterations > max_pivots {
                return Err(LpError::IterationLimit);
            }
            let obj = objective_of(&tableau, &basis, &phase1_costs, rhs_col);
            if obj > last_obj + EPS {
                stall = 0;
            } else {
                stall += 1;
                if stall > stall_limit {
                    bland = true;
                }
            }
            last_obj = obj;
        }
        let phase1_obj: f64 = basis
            .iter()
            .enumerate()
            .filter(|(_, &b)| art_cols.contains(&b))
            .map(|(i, _)| tableau[(i, rhs_col)])
            .sum();
        if phase1_obj > 1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive any lingering (degenerate, zero-valued) artificials out of
        // the basis if possible.
        for i in 0..m {
            if art_cols.contains(&basis[i]) {
                let pivot_col = (0..n + num_slack)
                    .find(|&j| tableau[(i, j)].abs() > EPS && !art_cols.contains(&j));
                if let Some(j) = pivot_col {
                    pivot(&mut tableau, &mut basis, i, j, rhs_col);
                    iterations += 1;
                }
                // If no pivot exists the row is redundant; the artificial
                // stays basic at value zero, which is harmless as long as
                // we forbid artificials from ever re-entering.
            }
        }
    }

    // ---- Phase 2: maximise the real objective. ----
    let mut phase2_costs = vec![0.0; total_cols - 1];
    phase2_costs[..n].copy_from_slice(&costs);
    let mut z_row = reduced_costs(&tableau, &basis, &phase2_costs);
    let mut bland = false;
    let mut stall = 0usize;
    let mut last_obj = objective_of(&tableau, &basis, &phase2_costs, rhs_col);
    while let Some(entering) = pick_entering(&z_row, &art_cols, bland) {
        let Some(leaving) = pick_leaving(&tableau, &basis, entering, rhs_col, bland) else {
            return Err(LpError::Unbounded);
        };
        pivot(&mut tableau, &mut basis, leaving, entering, rhs_col);
        z_row = reduced_costs(&tableau, &basis, &phase2_costs);
        iterations += 1;
        if iterations > max_pivots {
            return Err(LpError::IterationLimit);
        }
        let obj = objective_of(&tableau, &basis, &phase2_costs, rhs_col);
        if obj > last_obj + EPS {
            stall = 0;
        } else {
            stall += 1;
            if stall > stall_limit {
                bland = true;
            }
        }
        last_obj = obj;
    }

    // Extract the solution.
    let mut x = vec![0.0; n];
    for (i, &b) in basis.iter().enumerate() {
        if b < n {
            x[b] = tableau[(i, rhs_col)].max(0.0);
        }
    }
    let objective = rths_math::vector::dot(&costs, &x) * sign;
    Ok(Solution::new(objective, x, iterations))
}

/// Reduced cost vector `c_j - c_B · B⁻¹ A_j` for every non-basic column.
fn reduced_costs(tableau: &Matrix, basis: &[usize], costs: &[f64]) -> Vec<f64> {
    let m = tableau.rows();
    let ncols = costs.len();
    let mut z = costs.to_vec();
    for i in 0..m {
        let cb = costs[basis[i]];
        if cb == 0.0 {
            continue;
        }
        for (j, z_j) in z.iter_mut().enumerate().take(ncols) {
            *z_j -= cb * tableau[(i, j)];
        }
    }
    // Basic columns have zero reduced cost by construction; zero them
    // explicitly to suppress floating-point residue.
    for &b in basis {
        if b < z.len() {
            z[b] = 0.0;
        }
    }
    z
}

/// Current objective value `c_B · b`.
fn objective_of(tableau: &Matrix, basis: &[usize], costs: &[f64], rhs_col: usize) -> f64 {
    basis.iter().enumerate().map(|(i, &b)| costs[b] * tableau[(i, rhs_col)]).sum()
}

/// Entering-column choice. `bland = false`: Dantzig pricing (most
/// positive reduced cost, ties to the lowest index). `bland = true`:
/// Bland's rule (smallest eligible index — cycle-free). Banned
/// (artificial) columns are never chosen.
fn pick_entering(z_row: &[f64], banned: &[usize], bland: bool) -> Option<usize> {
    if bland {
        return z_row
            .iter()
            .enumerate()
            .find(|(j, &z)| z > EPS && !banned.contains(j))
            .map(|(j, _)| j);
    }
    let mut best: Option<(usize, f64)> = None;
    for (j, &z) in z_row.iter().enumerate() {
        if z > EPS && !banned.contains(&j) {
            match best {
                Some((_, bz)) if bz >= z => {}
                _ => best = Some((j, z)),
            }
        }
    }
    best.map(|(j, _)| j)
}

/// Minimum-ratio test. Tie-breaking (ties are ubiquitous in degenerate
/// LPs such as the correlated-equilibrium polytope, whose constraint rhs
/// are all zero) depends on the mode:
///
/// * `bland = false`: toward the largest pivot element — a standard
///   stall-reducing, numerically stabilising heuristic;
/// * `bland = true`: toward the smallest *basis variable index* — the
///   second half of Bland's rule, required for the cycling-freedom
///   guarantee (breaking ties any other way can cycle forever on
///   degenerate vertices, as the 27-variable CE LP of a 3×3 game
///   demonstrated).
fn pick_leaving(
    tableau: &Matrix,
    basis: &[usize],
    entering: usize,
    rhs_col: usize,
    bland: bool,
) -> Option<usize> {
    let mut best: Option<(usize, f64, f64)> = None; // (row, ratio, tie-key)
    for i in 0..tableau.rows() {
        let a = tableau[(i, entering)];
        if a > EPS {
            let ratio = tableau[(i, rhs_col)] / a;
            match best {
                Some((_, r, _)) if ratio > r + EPS => {}
                Some((bi, r, key)) if ratio > r - EPS => {
                    // Tie: apply the mode's tie-break.
                    let better = if bland { basis[i] < basis[bi] } else { a > key };
                    if better {
                        best = Some((i, ratio.min(r), if bland { 0.0 } else { a }));
                    }
                }
                _ => best = Some((i, ratio, if bland { 0.0 } else { a })),
            }
        }
    }
    best.map(|(i, _, _)| i)
}

/// Gauss–Jordan pivot on `(row, col)` and basis bookkeeping.
fn pivot(tableau: &mut Matrix, basis: &mut [usize], row: usize, col: usize, rhs_col: usize) {
    let p = tableau[(row, col)];
    debug_assert!(p.abs() > EPS, "pivot on ~zero element");
    for j in 0..=rhs_col {
        tableau[(row, j)] /= p;
    }
    for i in 0..tableau.rows() {
        if i == row {
            continue;
        }
        let factor = tableau[(i, col)];
        if factor.abs() < EPS {
            continue;
        }
        for j in 0..=rhs_col {
            let delta = factor * tableau[(row, j)];
            tableau[(i, j)] -= delta;
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use crate::{LinearProgram, LpError, Relation};

    #[test]
    fn textbook_max_problem() {
        // Dantzig's classic: optimum 36 at (2, 6).
        let mut lp = LinearProgram::maximize(vec![3.0, 5.0]);
        lp.add_constraint(vec![1.0, 0.0], Relation::Le, 4.0).unwrap();
        lp.add_constraint(vec![0.0, 2.0], Relation::Le, 12.0).unwrap();
        lp.add_constraint(vec![3.0, 2.0], Relation::Le, 18.0).unwrap();
        let s = lp.solve().unwrap();
        assert!((s.objective() - 36.0).abs() < 1e-9);
        assert!((s.x()[0] - 2.0).abs() < 1e-9);
        assert!((s.x()[1] - 6.0).abs() < 1e-9);
        assert!(lp.is_feasible(s.x(), 1e-9));
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // minimize 2x + 3y s.t. x + y >= 4, x >= 1 -> optimum at (4, 0): 8.
        let mut lp = LinearProgram::minimize(vec![2.0, 3.0]);
        lp.add_constraint(vec![1.0, 1.0], Relation::Ge, 4.0).unwrap();
        lp.add_constraint(vec![1.0, 0.0], Relation::Ge, 1.0).unwrap();
        let s = lp.solve().unwrap();
        assert!((s.objective() - 8.0).abs() < 1e-9, "objective {}", s.objective());
        assert!((s.x()[0] - 4.0).abs() < 1e-9);
        assert!(s.x()[1].abs() < 1e-9);
    }

    #[test]
    fn equality_constraints() {
        // maximize x + y s.t. x + y = 5, x <= 3 -> 5 (any split works).
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(vec![1.0, 1.0], Relation::Eq, 5.0).unwrap();
        lp.add_constraint(vec![1.0, 0.0], Relation::Le, 3.0).unwrap();
        let s = lp.solve().unwrap();
        assert!((s.objective() - 5.0).abs() < 1e-9);
        assert!(lp.is_feasible(s.x(), 1e-9));
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.add_constraint(vec![1.0], Relation::Le, 1.0).unwrap();
        lp.add_constraint(vec![1.0], Relation::Ge, 2.0).unwrap();
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::maximize(vec![1.0, 0.0]);
        lp.add_constraint(vec![0.0, 1.0], Relation::Le, 1.0).unwrap();
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn unbounded_without_constraints() {
        let lp = LinearProgram::maximize(vec![1.0]);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
        let lp2 = LinearProgram::minimize(vec![1.0]);
        let s = lp2.solve().unwrap();
        assert_eq!(s.objective(), 0.0);
    }

    #[test]
    fn negative_rhs_rows_are_flipped() {
        // x <= -1 is infeasible for x >= 0.
        let mut lp = LinearProgram::maximize(vec![0.0]);
        lp.add_constraint(vec![1.0], Relation::Le, -1.0).unwrap();
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);

        // -x <= -1 (i.e. x >= 1) is fine.
        let mut lp2 = LinearProgram::minimize(vec![1.0]);
        lp2.add_constraint(vec![-1.0], Relation::Le, -1.0).unwrap();
        let s = lp2.solve().unwrap();
        assert!((s.x()[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple constraints active at the optimum (degeneracy).
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(vec![1.0, 0.0], Relation::Le, 1.0).unwrap();
        lp.add_constraint(vec![1.0, 0.0], Relation::Le, 1.0).unwrap();
        lp.add_constraint(vec![0.0, 1.0], Relation::Le, 1.0).unwrap();
        lp.add_constraint(vec![1.0, 1.0], Relation::Le, 2.0).unwrap();
        let s = lp.solve().unwrap();
        assert!((s.objective() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn transportation_style_equalities() {
        // Two sources (supply 3, 4), two sinks (demand 2, 5); cost matrix
        // [[1, 3], [2, 1]]. Optimal cost = 2*1 + 1*3 + 4*1 = 9? Check:
        // ship s1->d1: 2 (cost 2), s1->d2: 1 (cost 3), s2->d2: 4 (cost 4)
        // total 9. Alternative: s1->d2:3 (9), s2->d1:2 (4), s2->d2:2 (2) =
        // 15. So 9 is optimal.
        let mut lp = LinearProgram::minimize(vec![1.0, 3.0, 2.0, 1.0]);
        // x11 + x12 = 3
        lp.add_constraint(vec![1.0, 1.0, 0.0, 0.0], Relation::Eq, 3.0).unwrap();
        // x21 + x22 = 4
        lp.add_constraint(vec![0.0, 0.0, 1.0, 1.0], Relation::Eq, 4.0).unwrap();
        // x11 + x21 = 2
        lp.add_constraint(vec![1.0, 0.0, 1.0, 0.0], Relation::Eq, 2.0).unwrap();
        // x12 + x22 = 5
        lp.add_constraint(vec![0.0, 1.0, 0.0, 1.0], Relation::Eq, 5.0).unwrap();
        let s = lp.solve().unwrap();
        assert!((s.objective() - 9.0).abs() < 1e-9, "objective {}", s.objective());
        assert!(lp.is_feasible(s.x(), 1e-9));
    }

    #[test]
    fn probability_simplex_maximum() {
        // maximize c·p over the probability simplex = max(c).
        let mut lp = LinearProgram::maximize(vec![0.3, 0.9, 0.5]);
        lp.add_constraint(vec![1.0, 1.0, 1.0], Relation::Eq, 1.0).unwrap();
        let s = lp.solve().unwrap();
        assert!((s.objective() - 0.9).abs() < 1e-9);
        assert!((s.x()[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn redundant_equalities_do_not_break_phase1() {
        // The last equality is implied by the first two.
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(vec![1.0, 0.0], Relation::Eq, 1.0).unwrap();
        lp.add_constraint(vec![0.0, 1.0], Relation::Eq, 2.0).unwrap();
        lp.add_constraint(vec![1.0, 1.0], Relation::Eq, 3.0).unwrap();
        let s = lp.solve().unwrap();
        assert!((s.objective() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_relations() {
        // maximize x + 2y s.t. x + y <= 10, x >= 2, y = 3 -> x=7,y=3: 13.
        let mut lp = LinearProgram::maximize(vec![1.0, 2.0]);
        lp.add_constraint(vec![1.0, 1.0], Relation::Le, 10.0).unwrap();
        lp.add_constraint(vec![1.0, 0.0], Relation::Ge, 2.0).unwrap();
        lp.add_constraint(vec![0.0, 1.0], Relation::Eq, 3.0).unwrap();
        let s = lp.solve().unwrap();
        assert!((s.objective() - 13.0).abs() < 1e-9);
        assert!((s.x()[0] - 7.0).abs() < 1e-9);
        assert!((s.x()[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rhs_equality() {
        // x - y = 0, x + y <= 2, maximize x + y -> (1,1).
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(vec![1.0, -1.0], Relation::Eq, 0.0).unwrap();
        lp.add_constraint(vec![1.0, 1.0], Relation::Le, 2.0).unwrap();
        let s = lp.solve().unwrap();
        assert!((s.objective() - 2.0).abs() < 1e-9);
        assert!((s.x()[0] - s.x()[1]).abs() < 1e-9);
    }
}
