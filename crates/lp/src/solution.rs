//! Solution and error types.

use std::fmt;

/// Terminal status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
}

/// An optimal solution to a [`LinearProgram`](crate::LinearProgram).
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    objective: f64,
    x: Vec<f64>,
    iterations: usize,
}

impl Solution {
    pub(crate) fn new(objective: f64, x: Vec<f64>, iterations: usize) -> Self {
        Self { objective, x, iterations }
    }

    /// Optimal objective value (in the original problem's direction).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Optimal point (one value per decision variable).
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Simplex pivots performed across both phases.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

/// Errors produced while building or solving a linear program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// A constraint row's length does not match the variable count.
    DimensionMismatch {
        /// Number of variables in the program.
        expected: usize,
        /// Length of the offending row.
        found: usize,
    },
    /// A coefficient or right-hand side was NaN or infinite.
    NonFinite,
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The pivot limit was exhausted (numerical degeneracy).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::DimensionMismatch { expected, found } => {
                write!(f, "constraint has {found} coefficients, expected {expected}")
            }
            LpError::NonFinite => write!(f, "coefficients must be finite"),
            LpError::Infeasible => write!(f, "problem is infeasible"),
            LpError::Unbounded => write!(f, "problem is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            LpError::DimensionMismatch { expected: 3, found: 2 }.to_string(),
            LpError::NonFinite.to_string(),
            LpError::Infeasible.to_string(),
            LpError::Unbounded.to_string(),
            LpError::IterationLimit.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn solution_accessors() {
        let s = Solution::new(5.0, vec![1.0, 2.0], 7);
        assert_eq!(s.objective(), 5.0);
        assert_eq!(s.x(), &[1.0, 2.0]);
        assert_eq!(s.iterations(), 7);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LpError>();
    }
}
