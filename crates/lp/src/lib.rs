//! A small, dependency-free linear-programming solver.
//!
//! The paper's centralized benchmark (§IV.A) is a cooperative optimization
//! over *occupation measures*: maximize `Σ u(y,x)·ρ(y,x)` subject to the
//! marginal constraints `Σ_x ρ(y,x) = π(y)`, normalisation, and `ρ ≥ 0` —
//! a linear program. This crate provides the exact solver used by
//! `rths-mdp` to compute that benchmark: a classic **two-phase dense
//! primal simplex** with Bland's anti-cycling rule.
//!
//! The solver targets correctness on small/medium dense problems (the
//! occupation-measure LPs here have at most a few thousand variables), not
//! sparse industrial scale.
//!
//! # Example
//!
//! ```
//! use rths_lp::{LinearProgram, Relation};
//!
//! // maximize 3x + 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0
//! let mut lp = LinearProgram::maximize(vec![3.0, 5.0]);
//! lp.add_constraint(vec![1.0, 0.0], Relation::Le, 4.0)?;
//! lp.add_constraint(vec![0.0, 2.0], Relation::Le, 12.0)?;
//! lp.add_constraint(vec![3.0, 2.0], Relation::Le, 18.0)?;
//! let solution = lp.solve()?;
//! assert!((solution.objective() - 36.0).abs() < 1e-9);
//! assert!((solution.x()[0] - 2.0).abs() < 1e-9);
//! assert!((solution.x()[1] - 6.0).abs() < 1e-9);
//! # Ok::<(), rths_lp::LpError>(())
//! ```

#![forbid(unsafe_code)]

mod problem;
mod simplex;
mod solution;

pub use problem::{LinearProgram, Objective, Relation};
pub use solution::{LpError, Solution, SolveStatus};
