//! The logical-time timer wheel.
//!
//! Timers carry a message to an actor and a logical tick at which to fire.
//! The wheel hashes each entry into `fire_at % slots` (the classic timing
//! wheel layout), so firing one tick touches a single bucket instead of
//! every pending timer. Logical time never advances tick-by-tick: the
//! reactor asks for [`next_deadline`](TimerWheel::next_deadline) and jumps
//! straight to it, so a sparse schedule costs nothing.
//!
//! Firing order is deterministic: entries that share a deadline fire in
//! schedule order (a monotone sequence number breaks ties), independent of
//! bucket layout and worker count.
//!
//! # Stale deadlines
//!
//! The wheel tracks the latest tick it has fired
//! ([`now`](TimerWheel::now)). Scheduling a deadline **at or before** that
//! tick is well-defined: the entry is clamped to `now` and fires on the
//! next poll. Without the clamp a stale entry would hash into a bucket
//! whose tick may already have been drained, where
//! [`fire_due`](TimerWheel::fire_due) could never match it again — the
//! reactor's idle loop would then spin on a deadline that never clears.

use crate::reactor::ActorId;

/// Default bucket count — enough to spread epoch-scale schedules without
/// measurable collision scans.
const DEFAULT_SLOTS: usize = 64;

/// One pending timer.
#[derive(Debug)]
struct Entry<M> {
    fire_at: u64,
    seq: u64,
    to: ActorId,
    msg: M,
}

/// A hashed timing wheel over logical ticks.
#[derive(Debug)]
pub struct TimerWheel<M> {
    buckets: Vec<Vec<Entry<M>>>,
    pending: usize,
    seq: u64,
    /// Latest tick [`fire_due`](Self::fire_due) has drained; stale
    /// schedules clamp to it.
    now: u64,
}

impl<M> Default for TimerWheel<M> {
    fn default() -> Self {
        Self::with_buckets(DEFAULT_SLOTS)
    }
}

impl<M> TimerWheel<M> {
    /// Creates an empty wheel with the default bucket count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty wheel with `buckets` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn with_buckets(buckets: usize) -> Self {
        assert!(buckets > 0, "timer wheel needs at least one bucket");
        Self { buckets: (0..buckets).map(|_| Vec::new()).collect(), pending: 0, seq: 0, now: 0 }
    }

    /// Number of pending timers.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Whether no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// The latest tick this wheel has fired (0 before the first firing).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedules `msg` for delivery to `to` at logical tick `fire_at`.
    ///
    /// A `fire_at` at or before the wheel's [`now`](Self::now) is
    /// **clamped to `now`**: the tick's bucket may already have been
    /// drained, so re-hashing the entry into it would strand the timer
    /// (and spin the reactor's idle loop forever). The clamped entry
    /// fires on the next poll of its deadline, after everything already
    /// scheduled there (schedule order is preserved).
    pub fn schedule(&mut self, fire_at: u64, to: ActorId, msg: M) {
        let fire_at = fire_at.max(self.now);
        let bucket = (fire_at % self.buckets.len() as u64) as usize;
        self.buckets[bucket].push(Entry { fire_at, seq: self.seq, to, msg });
        self.seq += 1;
        self.pending += 1;
    }

    /// Earliest pending deadline, if any.
    pub fn next_deadline(&self) -> Option<u64> {
        self.buckets.iter().flatten().map(|e| e.fire_at).min()
    }

    /// Removes and returns every timer due exactly at `now`, in schedule
    /// order. Timers hashed into the same bucket but due later stay put.
    /// Advances the wheel's clock: later [`schedule`](Self::schedule)
    /// calls clamp to the highest tick fired so far.
    pub fn fire_due(&mut self, now: u64) -> Vec<(ActorId, M)> {
        self.now = self.now.max(now);
        let bucket = (now % self.buckets.len() as u64) as usize;
        let slot = &mut self.buckets[bucket];
        if slot.iter().all(|e| e.fire_at != now) {
            return Vec::new();
        }
        let mut due: Vec<Entry<M>> = Vec::new();
        let mut keep: Vec<Entry<M>> = Vec::with_capacity(slot.len());
        for entry in slot.drain(..) {
            if entry.fire_at == now {
                due.push(entry);
            } else {
                keep.push(entry);
            }
        }
        *slot = keep;
        self.pending -= due.len();
        due.sort_by_key(|e| e.seq);
        due.into_iter().map(|e| (e.to, e.msg)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_wheel_has_no_deadline() {
        let w: TimerWheel<u32> = TimerWheel::new();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn schedules_and_fires_in_order() {
        let mut w = TimerWheel::with_buckets(4);
        w.schedule(5, ActorId(0), "b");
        w.schedule(3, ActorId(1), "a");
        w.schedule(5, ActorId(2), "c");
        assert_eq!(w.len(), 3);
        assert_eq!(w.next_deadline(), Some(3));
        assert_eq!(w.fire_due(3), vec![(ActorId(1), "a")]);
        assert_eq!(w.next_deadline(), Some(5));
        // Same deadline fires in schedule order.
        assert_eq!(w.fire_due(5), vec![(ActorId(0), "b"), (ActorId(2), "c")]);
        assert!(w.is_empty());
    }

    #[test]
    fn colliding_buckets_do_not_fire_early() {
        // Ticks 1 and 5 share bucket 1 in a 4-bucket wheel.
        let mut w = TimerWheel::with_buckets(4);
        w.schedule(1, ActorId(0), 10u32);
        w.schedule(5, ActorId(0), 50u32);
        assert_eq!(w.fire_due(1), vec![(ActorId(0), 10)]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.next_deadline(), Some(5));
        assert_eq!(w.fire_due(5), vec![(ActorId(0), 50)]);
    }

    #[test]
    fn fire_due_on_quiet_tick_is_empty() {
        let mut w = TimerWheel::with_buckets(8);
        w.schedule(9, ActorId(3), ());
        assert!(w.fire_due(1).is_empty());
        assert_eq!(w.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let _ = TimerWheel::<()>::with_buckets(0);
    }

    #[test]
    fn stale_deadline_clamps_to_now_and_still_fires() {
        // Ticks 1 and 5 share bucket 1 in a 4-bucket wheel. After tick 5
        // has fired, a schedule for tick 1 would re-hash into the already
        // drained bucket and never match fire_due again — the clamp pins
        // it to the wheel's current tick instead.
        let mut w = TimerWheel::with_buckets(4);
        w.schedule(5, ActorId(0), "on-time");
        assert_eq!(w.fire_due(5), vec![(ActorId(0), "on-time")]);
        assert_eq!(w.now(), 5);

        w.schedule(1, ActorId(1), "stale");
        assert_eq!(w.len(), 1);
        // The entry is observable at the clamped deadline, not the stale
        // one: the reactor's idle loop can reach it.
        assert_eq!(w.next_deadline(), Some(5));
        assert_eq!(w.fire_due(5), vec![(ActorId(1), "stale")]);
        assert!(w.is_empty());
    }

    #[test]
    fn stale_deadline_fires_after_entries_already_at_now() {
        let mut w = TimerWheel::with_buckets(8);
        let _ = w.fire_due(9);
        w.schedule(9, ActorId(0), 1u32);
        w.schedule(2, ActorId(0), 2u32); // clamped to 9, scheduled later
        assert_eq!(w.fire_due(9), vec![(ActorId(0), 1), (ActorId(0), 2)]);
    }

    #[test]
    fn clock_does_not_move_backwards() {
        let mut w: TimerWheel<()> = TimerWheel::with_buckets(4);
        let _ = w.fire_due(7);
        let _ = w.fire_due(3);
        assert_eq!(w.now(), 7);
    }
}
