//! The reactor: actors, per-shard mailbox rings, and the round scheduler.
//!
//! # Mailbox layout
//!
//! Historically every actor owned a `VecDeque` inbox — a 32-byte handle
//! plus one heap block per actor, which at 10⁵ actors is pure overhead:
//! the allocator touches one scattered block per actor per round.
//! Mailboxes are now flattened into **one power-of-two message ring per
//! shard** of [`SHARD_SPAN`]-actor ranges, with two `u32` cursors per
//! actor:
//!
//! ```text
//! shard s hosts actors [s·SPAN, (s+1)·SPAN)
//! ┌─────────────── ring (power-of-two capacity) ───────────────┐
//! │ … a₃ a₃ │ a₇ │ a₁ a₁ a₁ │ (free) … wraps around            │
//! └──────────┴────┴──────────┴────────────────────────────────-┘
//!     heads[3]  heads[7]  heads[1]   ← per-actor head/len cursors
//! ```
//!
//! Each delivery batch (a round's merged sends, fired timers, external
//! injections) is *packed*: per-destination counts first, then every
//! actor's messages are placed contiguously at its `head`, in source
//! order. A round drains each actor's span in place while new sends go
//! to the shard's per-round buffer, so the ring is never mutated
//! concurrently with a drain ("drain-while-push" is buffered, not
//! interleaved). The ring grows (next power of two) only when a batch
//! exceeds capacity — all spans are empty at pack time, so growth never
//! copies live messages — and otherwise the write cursor just keeps
//! wrapping.
//!
//! # Determinism
//!
//! A round processes shards in index order (sharded across `rths_par`
//! workers), actors in index order within a shard, and each actor's span
//! in FIFO order; every send is buffered in its *sender's* shard buffer,
//! and buffers merge shard-by-shard — i.e. in global sender-index order.
//! Neither the worker count nor [`SHARD_SPAN`] can therefore perturb a
//! single bit of any trajectory (the unit tests sweep both).

use crate::wheel::TimerWheel;
use rths_obs::{self as obs, Counter, Gauge, ObsScratch, Phase};

/// Actors per mailbox shard (power of two). One shard is the unit of
/// round-parallelism: ~10³ actor-messages amortize a worker spawn, and a
/// 10⁵-actor mesh still fans out across ~100 shards. The value never
/// affects results; [`Reactor::with_shard_span`] overrides it (tests
/// sweep tiny spans to exercise wraparound and multi-shard merges).
pub const SHARD_SPAN: usize = 1024;

/// Index of an actor inside a [`Reactor`] — assigned densely by
/// [`Reactor::add_actor`] and used as the message address. Under a
/// partitioned reactor ([`Reactor::partitioned`]) the id is **global**:
/// every process numbers the same actor identically, and ids outside the
/// local partition address actors owned by other processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub usize);

/// One local mailbox shard's round output bound for actors owned by
/// *other* processes: the remote-destined subsequence of the shard's
/// send buffer, in send order.
///
/// `sender_shard` is the **global** shard index (`actor id / span`), so a
/// receiving process can merge remote batches into its rings in global
/// sender-index order — exactly the order a single-process reactor would
/// have used — regardless of which process produced them.
#[derive(Debug)]
pub struct RemoteBatch<M> {
    /// Global shard index of the sending shard.
    pub sender_shard: usize,
    /// `(destination, message)` pairs in send order.
    pub msgs: Vec<(ActorId, M)>,
}

impl std::fmt::Display for ActorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "actor-{}", self.0)
    }
}

/// A poll-driven state machine hosted by a [`Reactor`].
///
/// Actors never block and never share state: all interaction goes through
/// messages. `Send` is required because the reactor may shard a round's
/// processing across `rths_par` workers.
pub trait Actor: Send {
    /// The message type this actor exchanges (one type per reactor; use an
    /// enum to multiplex roles).
    type Msg: Send;

    /// Handles one delivered message. Outgoing sends and timers go through
    /// `ctx` and take effect after the current round.
    fn on_message(&mut self, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>);
}

/// Per-delivery handle an actor uses to send messages and schedule timers.
///
/// Sends are buffered per shard (actors within a shard run sequentially
/// in index order) and merged into destination mailboxes in sender-index
/// order after the round — never delivered re-entrantly — so handling
/// stays deterministic at any worker count.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    now: u64,
    me: ActorId,
    actors: usize,
    sends: &'a mut Vec<(ActorId, M)>,
    timers: &'a mut Vec<(u64, ActorId, M)>,
}

impl<M> Ctx<'_, M> {
    /// Current logical time (advances only via the timer wheel).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The id of the actor handling the current message.
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// Sends `msg` to `to`, delivered at the start of the next round.
    ///
    /// # Panics
    ///
    /// Panics if `to` does not name an actor of this reactor.
    pub fn send(&mut self, to: ActorId, msg: M) {
        assert!(to.0 < self.actors, "send to unknown {to} ({} actors)", self.actors);
        self.sends.push((to, msg));
    }

    /// Schedules `msg` for delivery to `to` after `delay` logical ticks.
    /// A zero delay is an ordinary [`send`](Self::send).
    ///
    /// # Panics
    ///
    /// Panics if `to` does not name an actor of this reactor.
    pub fn send_after(&mut self, delay: u64, to: ActorId, msg: M) {
        if delay == 0 {
            self.send(to, msg);
            return;
        }
        assert!(to.0 < self.actors, "send to unknown {to} ({} actors)", self.actors);
        self.timers.push((self.now + delay, to, msg));
    }
}

/// One mailbox shard: a contiguous actor range, their shared message
/// ring with per-actor cursors, and the shard's per-round outgoing
/// buffers.
#[derive(Debug)]
struct MailShard<A: Actor> {
    actors: Vec<A>,
    /// The shared message ring (power-of-two capacity; `None` = empty
    /// slot). `Option` costs nothing for niche-rich message enums and
    /// lets a drain move messages out without `unsafe`.
    ring: Vec<Option<A::Msg>>,
    /// Next free ring position (wraps with the capacity mask).
    tail: usize,
    /// Occupied ring slots.
    live: usize,
    /// Per-actor span start in the ring (meaningful while `lens > 0`).
    heads: Vec<u32>,
    /// Per-actor pending message count.
    lens: Vec<u32>,
    /// Per-actor pack cursor (scratch; always back to 0 after a round).
    cursors: Vec<u32>,
    /// Incoming messages of the batch being packed (scratch).
    incoming: usize,
    /// Sends buffered by this shard's actors during the current round.
    sends: Vec<(ActorId, A::Msg)>,
    /// Timers scheduled by this shard's actors during the current round.
    timers: Vec<(u64, ActorId, A::Msg)>,
    /// Ring reallocations (a batch outgrew a non-empty ring).
    grows: u64,
    /// Largest single batch packed into this shard's ring.
    batch_hwm: usize,
}

impl<A: Actor> MailShard<A> {
    fn new() -> Self {
        Self {
            actors: Vec::new(),
            ring: Vec::new(),
            tail: 0,
            live: 0,
            heads: Vec::new(),
            lens: Vec::new(),
            cursors: Vec::new(),
            incoming: 0,
            sends: Vec::new(),
            timers: Vec::new(),
            grows: 0,
            batch_hwm: 0,
        }
    }

    /// Makes room for the batch counted in `incoming`. Called only when
    /// every span is drained (`live == 0`), so growth never copies live
    /// messages; otherwise the write cursor keeps wrapping.
    fn reserve_batch(&mut self) {
        if self.incoming == 0 {
            return;
        }
        debug_assert_eq!(self.live, 0, "pack with undrained spans");
        if self.incoming > self.batch_hwm {
            self.batch_hwm = self.incoming;
        }
        if self.incoming > self.ring.len() {
            if !self.ring.is_empty() {
                self.grows += 1;
            }
            let cap = self.incoming.next_power_of_two();
            self.ring.clear();
            self.ring.resize_with(cap, || None);
            self.tail = 0;
        }
    }

    /// Assigns `local`'s span (if not yet assigned this batch) and
    /// places one message at its pack cursor.
    fn place(&mut self, local: usize, msg: A::Msg) {
        let mask = self.ring.len() - 1;
        if self.cursors[local] == 0 {
            self.heads[local] = (self.tail & mask) as u32;
            self.tail = (self.tail + self.lens[local] as usize) & mask;
        }
        let at = (self.heads[local] as usize + self.cursors[local] as usize) & mask;
        debug_assert!(self.ring[at].is_none(), "ring slot double-booked");
        self.ring[at] = Some(msg);
        self.cursors[local] += 1;
        self.live += 1;
    }
}

/// Counters describing one reactor run (cumulative across
/// [`run_until_idle`](Reactor::run_until_idle) calls).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Rounds executed.
    pub rounds: u64,
    /// Messages delivered to mailboxes (including timer deliveries).
    pub messages: u64,
    /// Timer entries fired.
    pub timers_fired: u64,
    /// Mailbox-ring reallocations across all shards: batches that
    /// outgrew a non-empty ring (the initial sizing of an empty ring is
    /// not counted). Growth is a perf cliff under churn — this makes it
    /// visible. **Layout-dependent**: varies with the shard span, unlike
    /// the protocol counters above.
    pub ring_grow_events: u64,
    /// Largest mailbox-ring capacity (slots) reached by any shard.
    /// Rings never shrink, so this is the high-water mark.
    /// **Layout-dependent.**
    pub ring_capacity_hwm: u64,
    /// Largest single delivery batch (messages) packed into any shard's
    /// ring. **Layout-dependent.**
    pub ring_occupancy_hwm: u64,
}

impl ReactorStats {
    /// The layout-independent protocol counters `(rounds, messages,
    /// timers_fired)`: bit-equal at any worker count *and* any shard
    /// span. The ring-geometry fields are excluded — they legitimately
    /// vary with [`SHARD_SPAN`].
    pub fn protocol(&self) -> (u64, u64, u64) {
        (self.rounds, self.messages, self.timers_fired)
    }
}

/// The event loop: owns every actor, the sharded mailbox rings, and the
/// timer wheel.
///
/// See the crate docs for the execution model and determinism contract.
#[derive(Debug)]
pub struct Reactor<A: Actor> {
    shards: Vec<MailShard<A>>,
    /// Actors per shard (power of two).
    span: usize,
    span_bits: u32,
    /// Locally hosted actors (the partition length when partitioned).
    actors_total: usize,
    /// First global actor id owned by this reactor (0 unless
    /// partitioned; always a multiple of `span`).
    base: usize,
    /// Global actor count across every partition. Tracks `actors_total`
    /// for a plain reactor; fixed at construction when partitioned.
    global_total: usize,
    /// Whether this reactor hosts one partition of a larger mesh (sends
    /// may then legally target non-local ids).
    partitioned: bool,
    /// Protocol guard: a `drain_phase` has run without its matching
    /// `merge_phase`.
    mid_round: bool,
    /// External deliveries (injections, fired timers) awaiting a pack.
    staged: Vec<(ActorId, A::Msg)>,
    /// Reusable per-shard swap buffers for the merge step.
    send_batches: Vec<Vec<(ActorId, A::Msg)>>,
    /// Per-worker observability scratch for the sharded round (counters
    /// and spans; zero-cost while tracing is disabled).
    round_scratch: Vec<ObsScratch>,
    /// Ring grow events already mirrored into `rths_obs` counters.
    grows_reported: u64,
    wheel: TimerWheel<A::Msg>,
    now: u64,
    pending: usize,
    stats: ReactorStats,
}

impl<A: Actor> Default for Reactor<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Actor> Reactor<A> {
    /// Creates an empty reactor at logical time zero with the default
    /// [`SHARD_SPAN`].
    pub fn new() -> Self {
        Self::with_shard_span(SHARD_SPAN)
    }

    /// Creates an empty reactor whose mailbox shards span `span` actors
    /// (power of two). The span trades parallel granularity against
    /// per-shard overhead and **never affects results**.
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero or not a power of two.
    pub fn with_shard_span(span: usize) -> Self {
        assert!(span.is_power_of_two(), "shard span must be a power of two");
        Self {
            shards: Vec::new(),
            span,
            span_bits: span.trailing_zeros(),
            actors_total: 0,
            base: 0,
            global_total: 0,
            partitioned: false,
            mid_round: false,
            staged: Vec::new(),
            send_batches: Vec::new(),
            round_scratch: Vec::new(),
            grows_reported: 0,
            wheel: TimerWheel::new(),
            now: 0,
            pending: 0,
            stats: ReactorStats::default(),
        }
    }

    /// Creates an empty reactor hosting one **partition** of a larger
    /// mesh: the contiguous global actor range starting at `base`
    /// (span-aligned), out of `global_total` actors overall.
    ///
    /// Actors registered with [`add_actor`](Self::add_actor) receive
    /// **global** ids (`base`, `base + 1`, …). Sends may target any
    /// global id; a partitioned reactor must be driven through
    /// [`drain_phase`](Self::drain_phase) /
    /// [`merge_phase`](Self::merge_phase) /
    /// [`advance_to`](Self::advance_to) so remote-destined messages can
    /// be routed (see `bridge`), not through
    /// [`run_until_idle`](Self::run_until_idle).
    ///
    /// With `base == 0` and every actor local, the phase split is
    /// bit-identical to a plain reactor — the single-process run *is*
    /// the 1-partition special case.
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero or not a power of two, or if `base`
    /// exceeds `global_total`, or if `base` is neither a multiple of
    /// `span` nor exactly `global_total` (the latter is the degenerate
    /// empty partition a small mesh leaves its high ranks — legal, it
    /// just can never host an actor).
    pub fn partitioned(span: usize, base: usize, global_total: usize) -> Self {
        assert!(span.is_power_of_two(), "shard span must be a power of two");
        assert!(
            base.is_multiple_of(span) || base == global_total,
            "partition base {base} not aligned to span {span}"
        );
        assert!(base <= global_total, "partition base {base} past {global_total} actors");
        let mut reactor = Self::with_shard_span(span);
        reactor.base = base;
        reactor.global_total = global_total;
        reactor.partitioned = true;
        reactor
    }

    /// Registers an actor, returning its id (dense, in registration
    /// order; offset by the partition base when partitioned). No OS
    /// thread is spawned — the actor is polled in place.
    pub fn add_actor(&mut self, actor: A) -> ActorId {
        let local = self.actors_total;
        let shard = local >> self.span_bits;
        if shard == self.shards.len() {
            self.shards.push(MailShard::new());
        }
        let s = &mut self.shards[shard];
        s.actors.push(actor);
        s.heads.push(0);
        s.lens.push(0);
        s.cursors.push(0);
        self.actors_total += 1;
        if self.partitioned {
            assert!(
                self.base + self.actors_total <= self.global_total,
                "partition [{}, {}) overflows the {}-actor mesh",
                self.base,
                self.base + self.actors_total,
                self.global_total
            );
        } else {
            self.global_total = self.actors_total;
        }
        ActorId(self.base + local)
    }

    /// Whether `id` names an actor hosted by **this** reactor (always
    /// true for in-range ids of a plain reactor; a partition owns only
    /// `[base, base + len)`).
    pub fn owns(&self, id: ActorId) -> bool {
        id.0 >= self.base && id.0 < self.base + self.actors_total
    }

    /// First global actor id of this reactor's partition (0 for a plain
    /// reactor).
    pub fn base(&self) -> usize {
        self.base
    }

    /// Messages already delivered to local mailboxes and awaiting the
    /// next round (staged externals included).
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Earliest deadline on the local timer wheel, if any.
    pub fn next_deadline(&self) -> Option<u64> {
        self.wheel.next_deadline()
    }

    /// Number of hosted actors.
    pub fn len(&self) -> usize {
        self.actors_total
    }

    /// Whether the reactor hosts no actors.
    pub fn is_empty(&self) -> bool {
        self.actors_total == 0
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Run counters so far, with the mailbox-ring internals (grow
    /// events, capacity and batch high-water marks) aggregated over all
    /// shards.
    pub fn stats(&self) -> ReactorStats {
        let mut s = self.stats;
        for shard in &self.shards {
            s.ring_grow_events += shard.grows;
            s.ring_capacity_hwm = s.ring_capacity_hwm.max(shard.ring.len() as u64);
            s.ring_occupancy_hwm = s.ring_occupancy_hwm.max(shard.batch_hwm as u64);
        }
        s
    }

    /// Shared access to an actor (e.g. to read results after a run).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn actor(&self, id: ActorId) -> &A {
        let local = id.0 - self.base;
        &self.shards[local >> self.span_bits].actors[local & (self.span - 1)]
    }

    /// Exclusive access to an actor (e.g. for out-of-band state changes
    /// between runs; prefer messages).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn actor_mut(&mut self, id: ActorId) -> &mut A {
        let local = id.0 - self.base;
        &mut self.shards[local >> self.span_bits].actors[local & (self.span - 1)]
    }

    /// Iterates actors in id order.
    pub fn actors(&self) -> impl Iterator<Item = &A> {
        self.shards.iter().flat_map(|s| s.actors.iter())
    }

    /// Consumes the reactor, returning the actors in id order.
    pub fn into_actors(self) -> Vec<A> {
        let mut out = Vec::with_capacity(self.actors_total);
        for shard in self.shards {
            out.extend(shard.actors);
        }
        out
    }

    /// Delivers `msg` to `to` from outside the actor graph (processed in
    /// the next round).
    ///
    /// # Panics
    ///
    /// Panics if `to` does not name a registered actor.
    pub fn inject(&mut self, to: ActorId, msg: A::Msg) {
        assert!(
            self.owns(to),
            "inject to unknown {to} (partition [{}, {}))",
            self.base,
            self.base + self.actors_total
        );
        self.staged.push((to, msg));
        self.pending += 1;
        self.stats.messages += 1;
    }

    /// Stages externally routed deliveries (remote-process sends or
    /// remote-fired timers) for the next round, in the given order.
    /// Equivalent to [`inject`](Self::inject) per message.
    ///
    /// # Panics
    ///
    /// Panics if any destination is not owned by this reactor.
    pub fn stage_external(&mut self, msgs: impl IntoIterator<Item = (ActorId, A::Msg)>) {
        for (to, msg) in msgs {
            self.inject(to, msg);
        }
    }

    /// Schedules `msg` for delivery to `to` after `delay` ticks, from
    /// outside the actor graph. A zero delay is an [`inject`](Self::inject).
    ///
    /// # Panics
    ///
    /// Panics if `to` does not name a registered actor.
    pub fn schedule(&mut self, delay: u64, to: ActorId, msg: A::Msg) {
        if delay == 0 {
            self.inject(to, msg);
            return;
        }
        assert!(
            self.owns(to),
            "schedule to unknown {to} (partition [{}, {}))",
            self.base,
            self.base + self.actors_total
        );
        self.wheel.schedule(self.now + delay, to, msg);
    }

    /// Packs the staged external deliveries (injections, fired timers)
    /// into the shard rings: per-destination counts, then contiguous
    /// placement per actor in staging order.
    fn pack_staged(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        let bits = self.span_bits;
        let mask = self.span - 1;
        let base = self.base;
        for (to, _) in &self.staged {
            let local = to.0 - base;
            let s = &mut self.shards[local >> bits];
            s.lens[local & mask] += 1;
            s.incoming += 1;
        }
        for s in &mut self.shards {
            s.reserve_batch();
        }
        for (to, msg) in self.staged.drain(..) {
            let local = to.0 - base;
            self.shards[local >> bits].place(local & mask, msg);
        }
        for s in &mut self.shards {
            s.incoming = 0;
        }
    }

    /// Runs rounds (and advances logical time through the wheel) until no
    /// messages and no timers remain, then returns the cumulative stats.
    ///
    /// # Panics
    ///
    /// Panics on a partitioned reactor: remote-destined sends and fired
    /// timers need a router, so partitions are driven through
    /// [`drain_phase`](Self::drain_phase) /
    /// [`merge_phase`](Self::merge_phase) /
    /// [`advance_to`](Self::advance_to) instead (see `bridge`).
    pub fn run_until_idle(&mut self) -> ReactorStats {
        assert!(
            !self.partitioned,
            "run_until_idle on a partitioned reactor; drive it through the bridge phases"
        );
        loop {
            if self.pending > 0 {
                self.round();
                continue;
            }
            let Some(deadline) = self.wheel.next_deadline() else { break };
            // `>=` (not `>`): the wheel clamps stale deadlines to its
            // current tick, which can equal the reactor's `now`.
            debug_assert!(deadline >= self.now, "timer scheduled in the past");
            self.now = self.now.max(deadline);
            for (to, msg) in self.wheel.fire_due(self.now) {
                self.staged.push((to, msg));
                self.pending += 1;
                self.stats.timers_fired += 1;
                self.stats.messages += 1;
            }
        }
        self.stats()
    }

    /// Advances logical time to `deadline` and fires every due timer:
    /// locally owned deliveries are staged for the next round; deliveries
    /// addressed to other partitions are **returned** (in wheel order,
    /// i.e. schedule order per deadline) for the caller to route.
    ///
    /// The single-process idle loop is exactly `advance_to(next_deadline)`
    /// with an always-empty return value.
    pub fn advance_to(&mut self, deadline: u64) -> Vec<(ActorId, A::Msg)> {
        debug_assert!(!self.mid_round, "advance_to during a split round");
        self.now = self.now.max(deadline);
        let mut remote = Vec::new();
        for (to, msg) in self.wheel.fire_due(self.now) {
            self.stats.timers_fired += 1;
            if self.owns(to) {
                self.staged.push((to, msg));
                self.pending += 1;
                // Counted as delivered here; remote-fired messages are
                // counted by the partition that stages them.
                self.stats.messages += 1;
            } else {
                remote.push((to, msg));
            }
        }
        remote
    }

    /// Executes one round: every shard drains its actors' mailbox spans
    /// in index order (shards sharded across `rths_par` workers), then
    /// the per-shard send buffers are merged into destination rings in
    /// sender-index order.
    ///
    /// A round is [`drain_phase`](Self::drain_phase) followed by
    /// [`merge_phase`](Self::merge_phase); a plain reactor has no remote
    /// traffic in either direction, so the composition is the historical
    /// single-phase round, bit for bit.
    fn round(&mut self) {
        let remote = self.drain_phase();
        debug_assert!(remote.is_empty(), "plain reactor produced remote batches");
        self.merge_phase(Vec::new());
    }

    /// First half of a round: packs staged deliveries, drains every
    /// shard's mailbox spans (actors in index order, shards across
    /// `rths_par` workers), then withholds the per-shard send buffers
    /// for [`merge_phase`](Self::merge_phase), returning the
    /// remote-destined subsequence of each as a [`RemoteBatch`] (global
    /// sender-shard order, send order within a batch). Plain reactors
    /// always return an empty vec.
    pub fn drain_phase(&mut self) -> Vec<RemoteBatch<A::Msg>> {
        debug_assert!(!self.mid_round, "drain_phase while a round is already split open");
        let tracing = obs::enabled();
        let epoch = if tracing { obs::current_epoch() } else { 0 };
        let staged_n = self.staged.len();
        let t_pack = if staged_n > 0 { obs::span_start() } else { None };
        self.pack_staged();
        if let Some(t) = t_pack {
            obs::span_end(Phase::MailboxDeliver, epoch, t);
        }
        let now = self.now;
        let actors = self.global_total;
        let span_bits = self.span_bits;
        let part_base = self.base;
        let num_shards = self.shards.len();
        let workers = rths_par::threads().min(num_shards).max(1);
        if self.round_scratch.len() < workers {
            self.round_scratch.resize_with(workers, ObsScratch::new);
        }
        rths_par::par_sharded(
            num_shards,
            workers,
            &mut self.shards[..],
            &mut self.round_scratch[..],
            |range, chunk: &mut [MailShard<A>], scratch: &mut ObsScratch| {
                let t_drain = obs::span_start();
                let mut drained = 0u64;
                for (k, shard) in chunk.iter_mut().enumerate() {
                    let base = part_base + ((range.start + k) << span_bits);
                    let MailShard {
                        actors: hosted,
                        ring,
                        live,
                        heads,
                        lens,
                        cursors,
                        sends,
                        timers,
                        ..
                    } = shard;
                    let mask = ring.len().wrapping_sub(1);
                    for (local, actor) in hosted.iter_mut().enumerate() {
                        let len = lens[local] as usize;
                        if len == 0 {
                            continue;
                        }
                        let head = heads[local] as usize;
                        lens[local] = 0;
                        cursors[local] = 0;
                        *live -= len;
                        drained += len as u64;
                        let mut ctx =
                            Ctx { now, me: ActorId(base + local), actors, sends, timers };
                        for k2 in 0..len {
                            let msg = ring[(head + k2) & mask]
                                .take()
                                .expect("mailbox span holds a message");
                            actor.on_message(msg, &mut ctx);
                        }
                    }
                }
                if let Some(t) = t_drain {
                    scratch.spans.record(Phase::MailboxDrain, t);
                    scratch.add(Counter::MessagesDelivered, drained);
                }
            },
        );
        if tracing {
            // Reduce every worker's scratch in worker-index order — the
            // deterministic half of the span-merge contract.
            for (i, scratch) in self.round_scratch.iter_mut().enumerate().take(workers) {
                obs::absorb_scratch(i as u32 + 1, epoch, scratch);
            }
            obs::counter_add(Counter::MessagesEnqueued, staged_n as u64);
        }
        // Withhold the send buffers: local-destined messages wait in
        // `send_batches` for the merge phase, remote-destined ones split
        // off (order preserved on both sides of the split) for routing.
        let mut batches = std::mem::take(&mut self.send_batches);
        batches.resize_with(num_shards, Vec::new);
        let mut out = Vec::new();
        let global_shard0 = self.base >> self.span_bits;
        for (si, batch) in batches.iter_mut().enumerate() {
            std::mem::swap(batch, &mut self.shards[si].sends);
            if self.partitioned && batch.iter().any(|(to, _)| !self.owns(*to)) {
                // Stable split: both the kept (local) and extracted
                // (remote) subsequences preserve send order.
                let mut msgs = Vec::new();
                for pair in std::mem::take(batch) {
                    if self.owns(pair.0) {
                        batch.push(pair);
                    } else {
                        msgs.push(pair);
                    }
                }
                out.push(RemoteBatch { sender_shard: global_shard0 + si, msgs });
            }
        }
        self.send_batches = batches;
        self.mid_round = true;
        out
    }

    /// Second half of a round: merges the withheld local send buffers
    /// **and** `remote` batches from other partitions into the
    /// destination rings in ascending global sender-shard order (counts
    /// first, one reservation per ring, then contiguous FIFO placement),
    /// then flushes newly scheduled timers to the wheel in shard order.
    ///
    /// `remote` must be sorted by `sender_shard` and contain only
    /// locally owned destinations.
    pub fn merge_phase(&mut self, remote: Vec<RemoteBatch<A::Msg>>) {
        debug_assert!(self.mid_round || remote.is_empty(), "merge_phase without a drain");
        let tracing = obs::enabled();
        let epoch = if tracing { obs::current_epoch() } else { 0 };
        let bits = self.span_bits;
        let mask = self.span - 1;
        let base = self.base;
        let num_shards = self.shards.len();
        let mut delivered = 0usize;
        let t_sort = obs::span_start();
        let mut batches = std::mem::take(&mut self.send_batches);
        batches.resize_with(num_shards, Vec::new);
        // Counting is commutative — only placement order matters below.
        for batch in batches.iter().chain(remote.iter().map(|b| &b.msgs)) {
            for (to, _) in batch.iter() {
                let local = to.0 - base;
                let d = &mut self.shards[local >> bits];
                d.lens[local & mask] += 1;
                d.incoming += 1;
            }
            delivered += batch.len();
        }
        for s in &mut self.shards {
            s.reserve_batch();
            s.incoming = 0;
        }
        if let Some(t) = t_sort {
            obs::span_end(Phase::MailboxSort, epoch, t);
        }
        // Place in ascending *global* sender-shard order: remote batches
        // interleave with the local ones exactly where a single-process
        // reactor's iteration would have visited their sending shards.
        let t_place = obs::span_start();
        let global_shard0 = base >> bits;
        let mut remote = remote;
        let mut ri = 0usize;
        debug_assert!(
            remote.windows(2).all(|w| w[0].sender_shard < w[1].sender_shard),
            "remote batches not sorted by sender shard"
        );
        for (si, batch) in batches.iter_mut().enumerate() {
            while ri < remote.len() && remote[ri].sender_shard < global_shard0 + si {
                for (to, msg) in remote[ri].msgs.drain(..) {
                    let local = to.0 - base;
                    self.shards[local >> bits].place(local & mask, msg);
                }
                ri += 1;
            }
            for (to, msg) in batch.drain(..) {
                let local = to.0 - base;
                self.shards[local >> bits].place(local & mask, msg);
            }
            // Hand the (empty, capacity-retaining) buffer back to its
            // shard for the next round.
            std::mem::swap(batch, &mut self.shards[si].sends);
        }
        while ri < remote.len() {
            for (to, msg) in remote[ri].msgs.drain(..) {
                let local = to.0 - base;
                self.shards[local >> bits].place(local & mask, msg);
            }
            ri += 1;
        }
        self.send_batches = batches;
        if let Some(t) = t_place {
            obs::span_end(Phase::MailboxDeliver, epoch, t);
        }
        let t_timers = obs::span_start();
        for si in 0..num_shards {
            let mut timers = std::mem::take(&mut self.shards[si].timers);
            for (fire_at, to, msg) in timers.drain(..) {
                self.wheel.schedule(fire_at, to, msg);
            }
            self.shards[si].timers = timers;
        }
        if let Some(t) = t_timers {
            obs::span_end(Phase::TimerFlush, epoch, t);
        }
        self.pending = delivered;
        self.mid_round = false;
        self.stats.rounds += 1;
        self.stats.messages += delivered as u64;
        if tracing {
            obs::counter_add(Counter::MessagesEnqueued, delivered as u64);
            let mut grows = 0u64;
            let mut cap = 0u64;
            let mut occ = 0u64;
            for s in &self.shards {
                grows += s.grows;
                cap = cap.max(s.ring.len() as u64);
                occ = occ.max(s.batch_hwm as u64);
            }
            obs::counter_add(Counter::RingGrowEvents, grows - self.grows_reported);
            self.grows_reported = grows;
            obs::gauge_max(Gauge::RingCapacityHwm, cap);
            obs::gauge_max(Gauge::RingOccupancyHwm, occ);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Worker-count sweeps go through the scoped `rths_par` override: it
    // is thread-local, so tests never mutate the process environment
    // (`std::env::set_var` is racy under the multithreaded test harness
    // and `unsafe` in newer toolchains). The `RTHS_THREADS` variable
    // remains the outermost default for unswept runs.
    use rths_par::with_threads;

    /// Test actor: accumulates a hash of received values and forwards a
    /// mixed value to a topology-determined neighbour while `hops` remain.
    struct Mixer {
        neighbour: ActorId,
        log: Vec<u64>,
    }

    #[derive(Debug, PartialEq, Eq)]
    struct Hop {
        value: u64,
        hops: u32,
    }

    impl Actor for Mixer {
        type Msg = Hop;
        fn on_message(&mut self, msg: Hop, ctx: &mut Ctx<'_, Hop>) {
            self.log.push(msg.value);
            if msg.hops > 0 {
                let value = msg.value.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
                ctx.send(self.neighbour, Hop { value, hops: msg.hops - 1 });
            }
        }
    }

    fn mixer_ring(n: usize, stride: usize) -> Reactor<Mixer> {
        let mut reactor = Reactor::new();
        for i in 0..n {
            reactor
                .add_actor(Mixer { neighbour: ActorId((i * stride + 1) % n), log: Vec::new() });
        }
        reactor
    }

    #[test]
    fn ping_pong_terminates_with_full_log() {
        let mut reactor = mixer_ring(2, 1);
        reactor.inject(ActorId(0), Hop { value: 1, hops: 9 });
        let stats = reactor.run_until_idle();
        let total: usize = reactor.actors().map(|a| a.log.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(stats.messages, 10);
        assert!(stats.rounds >= 10, "each hop needs its own round");
    }

    #[test]
    fn self_send_is_deferred_to_next_round() {
        struct Selfie {
            rounds_seen: Vec<u64>,
        }
        impl Actor for Selfie {
            type Msg = u32;
            fn on_message(&mut self, msg: u32, ctx: &mut Ctx<'_, u32>) {
                self.rounds_seen.push(ctx.now());
                if msg > 0 {
                    ctx.send(ctx.me(), msg - 1);
                }
            }
        }
        let mut reactor = Reactor::new();
        let id = reactor.add_actor(Selfie { rounds_seen: Vec::new() });
        reactor.inject(id, 3);
        let stats = reactor.run_until_idle();
        assert_eq!(reactor.actor(id).rounds_seen.len(), 4);
        // Four separate rounds: a self-send is never handled re-entrantly.
        assert_eq!(stats.rounds, 4);
    }

    #[test]
    fn timers_advance_logical_time() {
        struct Echo {
            fired_at: Vec<u64>,
        }
        impl Actor for Echo {
            type Msg = u64;
            fn on_message(&mut self, delay: u64, ctx: &mut Ctx<'_, u64>) {
                self.fired_at.push(ctx.now());
                if delay > 0 {
                    ctx.send_after(delay, ctx.me(), delay - 1);
                }
            }
        }
        let mut reactor = Reactor::new();
        let id = reactor.add_actor(Echo { fired_at: Vec::new() });
        reactor.inject(id, 3);
        let stats = reactor.run_until_idle();
        // Injected at t=0, then timers at t=3, t=3+2, t=5+1.
        assert_eq!(reactor.actor(id).fired_at, vec![0, 3, 5, 6]);
        assert_eq!(reactor.now(), 6);
        assert_eq!(stats.timers_fired, 3);
    }

    #[test]
    fn external_schedule_delivers_later() {
        let mut reactor = mixer_ring(3, 1);
        reactor.schedule(5, ActorId(2), Hop { value: 7, hops: 0 });
        reactor.run_until_idle();
        assert_eq!(reactor.actor(ActorId(2)).log, vec![7]);
        assert_eq!(reactor.now(), 5);
    }

    #[test]
    fn identical_at_any_worker_count() {
        // A 300-actor mesh with long forwarding chains, on 4-actor
        // shards so multiple workers genuinely share the round: every
        // actor's full receive log must be bit-identical at 1, 2, and 4
        // workers.
        let run = |threads: usize| {
            with_threads(threads, || {
                let mut reactor = Reactor::with_shard_span(4);
                for i in 0..300usize {
                    reactor.add_actor(Mixer {
                        neighbour: ActorId((i * 7 + 1) % 300),
                        log: Vec::new(),
                    });
                }
                for i in 0..300 {
                    reactor.inject(ActorId(i), Hop { value: i as u64, hops: 40 });
                }
                reactor.run_until_idle();
                reactor.into_actors().into_iter().map(|a| a.log).collect::<Vec<_>>()
            })
        };
        let base = run(1);
        assert_eq!(run(2), base, "2 workers diverged");
        assert_eq!(run(4), base, "4 workers diverged");
    }

    #[test]
    fn identical_at_any_shard_span() {
        // The mailbox shard span is scheduling, not semantics: the same
        // mesh must produce bit-identical logs at spans 1, 4, 64 and the
        // default — including the protocol stats (delivery accounting
        // parity). The ring-geometry stats legitimately vary with the
        // span and are excluded (that's what `protocol()` is for).
        let run = |span: usize| {
            let mut reactor = Reactor::with_shard_span(span);
            for i in 0..100usize {
                reactor.add_actor(Mixer {
                    neighbour: ActorId((i * 13 + 1) % 100),
                    log: Vec::new(),
                });
            }
            for i in (0..100).step_by(3) {
                reactor.inject(ActorId(i), Hop { value: i as u64, hops: 25 });
            }
            let stats = reactor.run_until_idle();
            (
                stats.protocol(),
                reactor.into_actors().into_iter().map(|a| a.log).collect::<Vec<_>>(),
            )
        };
        let base = run(SHARD_SPAN);
        for span in [1usize, 4, 64] {
            assert_eq!(run(span), base, "span {span} diverged");
        }
    }

    #[test]
    fn ring_stats_surface_capacity_and_growth() {
        // Same fan-in shape as `ring_grows_when_a_batch_exceeds_capacity`
        // but asserting the *stats* view: growth events and high-water
        // marks must be visible in `ReactorStats`.
        struct Fan {
            sink: ActorId,
            copies: u32,
            log: Vec<u64>,
        }
        impl Actor for Fan {
            type Msg = u64;
            fn on_message(&mut self, v: u64, ctx: &mut Ctx<'_, u64>) {
                if ctx.me() == self.sink {
                    self.log.push(v);
                } else {
                    for c in 0..self.copies {
                        ctx.send(self.sink, v * 1000 + c as u64);
                    }
                }
            }
        }
        let mut reactor = Reactor::with_shard_span(8);
        let sink = ActorId(0);
        // Escalating fan-in: 1 copy each first, then 8 copies each — the
        // second burst (8·8 = 64 > 8·1 rounded up to 8) must re-allocate
        // the sink shard's ring.
        for _ in 0..9usize {
            reactor.add_actor(Fan { sink, copies: 1, log: Vec::new() });
        }
        for i in 1..9usize {
            reactor.inject(ActorId(i), i as u64);
        }
        reactor.run_until_idle();
        let before = reactor.stats();
        assert_eq!(before.ring_grow_events, 0, "initial sizing must not count as growth");
        assert!(before.ring_capacity_hwm >= 8, "stats missed the ring capacity");
        assert_eq!(before.ring_occupancy_hwm, 8, "stats missed the 8-message batch");
        for i in 1..9usize {
            reactor.actor_mut(ActorId(i)).copies = 8;
            reactor.inject(ActorId(i), 10 + i as u64);
        }
        reactor.run_until_idle();
        let after = reactor.stats();
        assert!(after.ring_grow_events >= 1, "re-allocation was not counted: {after:?}");
        assert!(
            after.ring_capacity_hwm >= 64,
            "capacity high-water mark missed the grown ring: {after:?}"
        );
        assert_eq!(after.ring_occupancy_hwm, 64, "batch high-water mark wrong: {after:?}");
        assert_eq!(reactor.actor(sink).log.len(), 8 + 64);
    }

    #[test]
    fn ring_stats_are_cumulative_across_runs() {
        // `run_until_idle` returns the aggregated view; a second idle
        // call must not double-count shard-held ring stats.
        let mut reactor = mixer_ring(4, 1);
        reactor.inject(ActorId(0), Hop { value: 1, hops: 5 });
        let a = reactor.run_until_idle();
        let b = reactor.run_until_idle();
        assert_eq!(a.ring_grow_events, b.ring_grow_events);
        assert_eq!(a.ring_capacity_hwm, b.ring_capacity_hwm);
        assert_eq!(a.ring_occupancy_hwm, b.ring_occupancy_hwm);
        assert_eq!(a, reactor.stats());
    }

    #[test]
    fn merge_order_is_sender_index_order() {
        // Three senders forward to the same sink within one round; the
        // sink must receive them in sender-index order at any worker
        // count (the determinism contract's load-bearing property) —
        // here with the senders split across shards, so the merge
        // crosses shard boundaries.
        let mut reactor = Reactor::with_shard_span(2);
        for _ in 0..4usize {
            reactor.add_actor(Mixer { neighbour: ActorId(3), log: Vec::new() });
        }
        for i in 0..3 {
            reactor.inject(ActorId(i), Hop { value: 10 + i as u64, hops: 1 });
        }
        reactor.run_until_idle();
        let expect: Vec<u64> = (0..3)
            .map(|i| (10 + i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
            .collect();
        assert_eq!(reactor.actor(ActorId(3)).log, expect);
    }

    #[test]
    fn ring_wraps_around_across_rounds() {
        // A 2-actor ping-pong on a span-1 shard: each round packs one
        // message whose placement advances the wrapping tail through a
        // tiny power-of-two ring many times. Counts and logs must match
        // the plain run exactly.
        let mut reactor = Reactor::with_shard_span(1);
        reactor.add_actor(Mixer { neighbour: ActorId(1), log: Vec::new() });
        reactor.add_actor(Mixer { neighbour: ActorId(0), log: Vec::new() });
        reactor.inject(ActorId(0), Hop { value: 5, hops: 40 });
        let stats = reactor.run_until_idle();
        assert_eq!(stats.messages, 41);
        let lens: Vec<usize> = reactor.actors().map(|a| a.log.len()).collect();
        assert_eq!(lens, vec![21, 20]);
    }

    #[test]
    fn ring_grows_when_a_batch_exceeds_capacity() {
        // Fan-in: 63 senders target one sink in a single round, then 127
        // in a later round — the sink shard's ring must grow (next power
        // of two) without dropping or reordering anything.
        struct Burst {
            sink: ActorId,
            copies: u32,
            log: Vec<u64>,
        }
        impl Actor for Burst {
            type Msg = u64;
            fn on_message(&mut self, v: u64, ctx: &mut Ctx<'_, u64>) {
                if ctx.me() == self.sink {
                    self.log.push(v);
                } else {
                    for c in 0..self.copies {
                        ctx.send(self.sink, v * 1000 + c as u64);
                    }
                }
            }
        }
        let mut reactor = Reactor::with_shard_span(8);
        let sink = ActorId(0);
        for copies in [0u32, 1, 1, 1, 2, 2, 3, 3, 4] {
            reactor.add_actor(Burst { sink, copies, log: Vec::new() });
        }
        for round in 0..6u64 {
            for i in 1..9usize {
                reactor.inject(ActorId(i), round * 10 + i as u64);
            }
            reactor.run_until_idle();
        }
        // Per fan-in round the sink receives Σcopies = 17 messages, in
        // sender-index order with per-sender copy order preserved.
        let log = &reactor.actor(sink).log;
        assert_eq!(log.len(), 6 * 17);
        let first: Vec<u64> = log[..17].to_vec();
        let expect: Vec<u64> = {
            let copies = [0u64, 1, 1, 1, 2, 2, 3, 3, 4];
            (1..9usize)
                .flat_map(|i| (0..copies[i]).map(move |c| (i as u64) * 1000 + c))
                .collect()
        };
        assert_eq!(first, expect, "growth reordered the fan-in batch");
    }

    #[test]
    fn drain_while_push_within_a_round() {
        // Every actor holds several pending messages and sends while
        // draining: the in-flight sends must buffer (never mutate the
        // ring mid-drain) and arrive complete next round, with message
        // accounting intact.
        struct Chatty {
            next: ActorId,
            got: Vec<u64>,
        }
        impl Actor for Chatty {
            type Msg = u64;
            fn on_message(&mut self, v: u64, ctx: &mut Ctx<'_, u64>) {
                self.got.push(v);
                if v > 0 {
                    // Two sends per delivery, mid-drain.
                    ctx.send(self.next, v - 1);
                    ctx.send(ctx.me(), 0);
                }
            }
        }
        let mut reactor = Reactor::with_shard_span(2);
        for i in 0..6usize {
            reactor.add_actor(Chatty { next: ActorId((i + 1) % 6), got: Vec::new() });
        }
        for i in 0..6 {
            reactor.inject(ActorId(i), 3);
            reactor.inject(ActorId(i), 2);
        }
        let stats = reactor.run_until_idle();
        // Injected 12; every v>0 delivery spawns exactly 2 more.
        // Total deliveries: 12 + 2·(# of positive deliveries).
        let total: usize = reactor.actors().map(|a| a.got.len()).sum();
        assert_eq!(stats.messages as usize, total, "stats lost a delivery");
        let positive: usize =
            reactor.actors().map(|a| a.got.iter().filter(|&&v| v > 0).count()).sum();
        assert_eq!(total, 12 + 2 * positive);
    }

    #[test]
    #[should_panic(expected = "unknown actor-7")]
    fn inject_to_unknown_actor_panics() {
        let mut reactor = mixer_ring(2, 1);
        reactor.inject(ActorId(7), Hop { value: 0, hops: 0 });
    }

    #[test]
    fn idle_reactor_is_a_noop() {
        let mut reactor = mixer_ring(5, 1);
        let stats = reactor.run_until_idle();
        assert_eq!(stats, ReactorStats::default());
        assert_eq!(reactor.now(), 0);
        assert_eq!(reactor.len(), 5);
        assert!(!reactor.is_empty());
    }
}
