//! The reactor: actors, mailboxes, and the round scheduler.

use std::collections::VecDeque;

use crate::wheel::TimerWheel;

/// Index of an actor inside a [`Reactor`] — assigned densely by
/// [`Reactor::add_actor`] and used as the message address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub usize);

impl std::fmt::Display for ActorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "actor-{}", self.0)
    }
}

/// A poll-driven state machine hosted by a [`Reactor`].
///
/// Actors never block and never share state: all interaction goes through
/// messages. `Send` is required because the reactor may shard a round's
/// processing across `rths_par` workers.
pub trait Actor: Send {
    /// The message type this actor exchanges (one type per reactor; use an
    /// enum to multiplex roles).
    type Msg: Send;

    /// Handles one delivered message. Outgoing sends and timers go through
    /// `ctx` and take effect after the current round.
    fn on_message(&mut self, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>);
}

/// Per-delivery handle an actor uses to send messages and schedule timers.
///
/// Sends are buffered per sender and merged into destination mailboxes in
/// sender-index order after the round — never delivered re-entrantly — so
/// handling stays deterministic at any worker count.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    now: u64,
    me: ActorId,
    actors: usize,
    sends: &'a mut Vec<(ActorId, M)>,
    timers: &'a mut Vec<(u64, ActorId, M)>,
}

impl<M> Ctx<'_, M> {
    /// Current logical time (advances only via the timer wheel).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The id of the actor handling the current message.
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// Sends `msg` to `to`, delivered at the start of the next round.
    ///
    /// # Panics
    ///
    /// Panics if `to` does not name an actor of this reactor.
    pub fn send(&mut self, to: ActorId, msg: M) {
        assert!(to.0 < self.actors, "send to unknown {to} ({} actors)", self.actors);
        self.sends.push((to, msg));
    }

    /// Schedules `msg` for delivery to `to` after `delay` logical ticks.
    /// A zero delay is an ordinary [`send`](Self::send).
    ///
    /// # Panics
    ///
    /// Panics if `to` does not name an actor of this reactor.
    pub fn send_after(&mut self, delay: u64, to: ActorId, msg: M) {
        if delay == 0 {
            self.send(to, msg);
            return;
        }
        assert!(to.0 < self.actors, "send to unknown {to} ({} actors)", self.actors);
        self.timers.push((self.now + delay, to, msg));
    }
}

/// One hosted actor with its mailbox and per-round outgoing buffers.
#[derive(Debug)]
struct Slot<A: Actor> {
    actor: A,
    inbox: VecDeque<A::Msg>,
    sends: Vec<(ActorId, A::Msg)>,
    timers: Vec<(u64, ActorId, A::Msg)>,
}

/// Counters describing one reactor run (cumulative across
/// [`run_until_idle`](Reactor::run_until_idle) calls).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Rounds executed.
    pub rounds: u64,
    /// Messages delivered to mailboxes (including timer deliveries).
    pub messages: u64,
    /// Timer entries fired.
    pub timers_fired: u64,
}

/// The event loop: owns every actor, their mailboxes, and the timer wheel.
///
/// See the crate docs for the execution model and determinism contract.
#[derive(Debug)]
pub struct Reactor<A: Actor> {
    slots: Vec<Slot<A>>,
    wheel: TimerWheel<A::Msg>,
    now: u64,
    pending: usize,
    stats: ReactorStats,
}

impl<A: Actor> Default for Reactor<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Actor> Reactor<A> {
    /// Creates an empty reactor at logical time zero.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            wheel: TimerWheel::new(),
            now: 0,
            pending: 0,
            stats: ReactorStats::default(),
        }
    }

    /// Registers an actor, returning its id (dense, in registration
    /// order). No OS thread is spawned — the actor is polled in place.
    pub fn add_actor(&mut self, actor: A) -> ActorId {
        self.slots.push(Slot {
            actor,
            inbox: VecDeque::new(),
            sends: Vec::new(),
            timers: Vec::new(),
        });
        ActorId(self.slots.len() - 1)
    }

    /// Number of hosted actors.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the reactor hosts no actors.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Run counters so far.
    pub fn stats(&self) -> ReactorStats {
        self.stats
    }

    /// Shared access to an actor (e.g. to read results after a run).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn actor(&self, id: ActorId) -> &A {
        &self.slots[id.0].actor
    }

    /// Exclusive access to an actor (e.g. for out-of-band state changes
    /// between runs; prefer messages).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn actor_mut(&mut self, id: ActorId) -> &mut A {
        &mut self.slots[id.0].actor
    }

    /// Iterates actors in id order.
    pub fn actors(&self) -> impl Iterator<Item = &A> {
        self.slots.iter().map(|s| &s.actor)
    }

    /// Consumes the reactor, returning the actors in id order.
    pub fn into_actors(self) -> Vec<A> {
        self.slots.into_iter().map(|s| s.actor).collect()
    }

    /// Delivers `msg` to `to` from outside the actor graph (processed in
    /// the next round).
    ///
    /// # Panics
    ///
    /// Panics if `to` does not name a registered actor.
    pub fn inject(&mut self, to: ActorId, msg: A::Msg) {
        assert!(
            to.0 < self.slots.len(),
            "inject to unknown {to} ({} actors)",
            self.slots.len()
        );
        self.slots[to.0].inbox.push_back(msg);
        self.pending += 1;
        self.stats.messages += 1;
    }

    /// Schedules `msg` for delivery to `to` after `delay` ticks, from
    /// outside the actor graph. A zero delay is an [`inject`](Self::inject).
    ///
    /// # Panics
    ///
    /// Panics if `to` does not name a registered actor.
    pub fn schedule(&mut self, delay: u64, to: ActorId, msg: A::Msg) {
        if delay == 0 {
            self.inject(to, msg);
            return;
        }
        assert!(
            to.0 < self.slots.len(),
            "schedule to unknown {to} ({} actors)",
            self.slots.len()
        );
        self.wheel.schedule(self.now + delay, to, msg);
    }

    /// Runs rounds (and advances logical time through the wheel) until no
    /// messages and no timers remain, then returns the cumulative stats.
    pub fn run_until_idle(&mut self) -> ReactorStats {
        loop {
            if self.pending > 0 {
                self.round();
                continue;
            }
            let Some(deadline) = self.wheel.next_deadline() else { break };
            // `>=` (not `>`): the wheel clamps stale deadlines to its
            // current tick, which can equal the reactor's `now`.
            debug_assert!(deadline >= self.now, "timer scheduled in the past");
            self.now = self.now.max(deadline);
            for (to, msg) in self.wheel.fire_due(self.now) {
                self.slots[to.0].inbox.push_back(msg);
                self.pending += 1;
                self.stats.timers_fired += 1;
                self.stats.messages += 1;
            }
        }
        self.stats
    }

    /// Executes one round: every actor drains its mailbox (sharded across
    /// `rths_par` workers when `RTHS_THREADS` > 1), then the buffered
    /// sends are merged into destination mailboxes in sender-index order.
    fn round(&mut self) {
        let now = self.now;
        let actors = self.slots.len();
        rths_par::par_chunks_mut(&mut self.slots, |offset, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                if slot.inbox.is_empty() {
                    continue;
                }
                let Slot { actor, inbox, sends, timers } = slot;
                let mut ctx = Ctx { now, me: ActorId(offset + k), actors, sends, timers };
                while let Some(msg) = inbox.pop_front() {
                    actor.on_message(msg, &mut ctx);
                }
            }
        });
        let mut delivered = 0usize;
        for i in 0..self.slots.len() {
            let mut sends = std::mem::take(&mut self.slots[i].sends);
            for (to, msg) in sends.drain(..) {
                self.slots[to.0].inbox.push_back(msg);
                delivered += 1;
            }
            self.slots[i].sends = sends;
            let mut timers = std::mem::take(&mut self.slots[i].timers);
            for (fire_at, to, msg) in timers.drain(..) {
                self.wheel.schedule(fire_at, to, msg);
            }
            self.slots[i].timers = timers;
        }
        self.pending = delivered;
        self.stats.rounds += 1;
        self.stats.messages += delivered as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Worker-count sweeps go through the scoped `rths_par` override: it
    // is thread-local, so tests never mutate the process environment
    // (`std::env::set_var` is racy under the multithreaded test harness
    // and `unsafe` in newer toolchains). The `RTHS_THREADS` variable
    // remains the outermost default for unswept runs.
    use rths_par::with_threads;

    /// Test actor: accumulates a hash of received values and forwards a
    /// mixed value to a topology-determined neighbour while `hops` remain.
    struct Mixer {
        neighbour: ActorId,
        log: Vec<u64>,
    }

    #[derive(Debug, PartialEq, Eq)]
    struct Hop {
        value: u64,
        hops: u32,
    }

    impl Actor for Mixer {
        type Msg = Hop;
        fn on_message(&mut self, msg: Hop, ctx: &mut Ctx<'_, Hop>) {
            self.log.push(msg.value);
            if msg.hops > 0 {
                let value = msg.value.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
                ctx.send(self.neighbour, Hop { value, hops: msg.hops - 1 });
            }
        }
    }

    fn mixer_ring(n: usize, stride: usize) -> Reactor<Mixer> {
        let mut reactor = Reactor::new();
        for i in 0..n {
            reactor
                .add_actor(Mixer { neighbour: ActorId((i * stride + 1) % n), log: Vec::new() });
        }
        reactor
    }

    #[test]
    fn ping_pong_terminates_with_full_log() {
        let mut reactor = mixer_ring(2, 1);
        reactor.inject(ActorId(0), Hop { value: 1, hops: 9 });
        let stats = reactor.run_until_idle();
        let total: usize = reactor.actors().map(|a| a.log.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(stats.messages, 10);
        assert!(stats.rounds >= 10, "each hop needs its own round");
    }

    #[test]
    fn self_send_is_deferred_to_next_round() {
        struct Selfie {
            rounds_seen: Vec<u64>,
        }
        impl Actor for Selfie {
            type Msg = u32;
            fn on_message(&mut self, msg: u32, ctx: &mut Ctx<'_, u32>) {
                self.rounds_seen.push(ctx.now());
                if msg > 0 {
                    ctx.send(ctx.me(), msg - 1);
                }
            }
        }
        let mut reactor = Reactor::new();
        let id = reactor.add_actor(Selfie { rounds_seen: Vec::new() });
        reactor.inject(id, 3);
        let stats = reactor.run_until_idle();
        assert_eq!(reactor.actor(id).rounds_seen.len(), 4);
        // Four separate rounds: a self-send is never handled re-entrantly.
        assert_eq!(stats.rounds, 4);
    }

    #[test]
    fn timers_advance_logical_time() {
        struct Echo {
            fired_at: Vec<u64>,
        }
        impl Actor for Echo {
            type Msg = u64;
            fn on_message(&mut self, delay: u64, ctx: &mut Ctx<'_, u64>) {
                self.fired_at.push(ctx.now());
                if delay > 0 {
                    ctx.send_after(delay, ctx.me(), delay - 1);
                }
            }
        }
        let mut reactor = Reactor::new();
        let id = reactor.add_actor(Echo { fired_at: Vec::new() });
        reactor.inject(id, 3);
        let stats = reactor.run_until_idle();
        // Injected at t=0, then timers at t=3, t=3+2, t=5+1.
        assert_eq!(reactor.actor(id).fired_at, vec![0, 3, 5, 6]);
        assert_eq!(reactor.now(), 6);
        assert_eq!(stats.timers_fired, 3);
    }

    #[test]
    fn external_schedule_delivers_later() {
        let mut reactor = mixer_ring(3, 1);
        reactor.schedule(5, ActorId(2), Hop { value: 7, hops: 0 });
        reactor.run_until_idle();
        assert_eq!(reactor.actor(ActorId(2)).log, vec![7]);
        assert_eq!(reactor.now(), 5);
    }

    #[test]
    fn identical_at_any_worker_count() {
        // A 300-actor mesh with long forwarding chains: every actor's full
        // receive log must be bit-identical at 1, 2, and 4 workers.
        let run = |threads: usize| {
            with_threads(threads, || {
                let mut reactor = mixer_ring(300, 7);
                for i in 0..300 {
                    reactor.inject(ActorId(i), Hop { value: i as u64, hops: 40 });
                }
                reactor.run_until_idle();
                reactor.into_actors().into_iter().map(|a| a.log).collect::<Vec<_>>()
            })
        };
        let base = run(1);
        assert_eq!(run(2), base, "2 workers diverged");
        assert_eq!(run(4), base, "4 workers diverged");
    }

    #[test]
    fn merge_order_is_sender_index_order() {
        // Three senders forward to the same sink within one round; the
        // sink must receive them in sender-index order at any worker
        // count (the determinism contract's load-bearing property).
        let mut reactor = Reactor::new();
        for _ in 0..4usize {
            reactor.add_actor(Mixer { neighbour: ActorId(3), log: Vec::new() });
        }
        for i in 0..3 {
            reactor.inject(ActorId(i), Hop { value: 10 + i as u64, hops: 1 });
        }
        reactor.run_until_idle();
        let expect: Vec<u64> = (0..3)
            .map(|i| (10 + i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
            .collect();
        assert_eq!(reactor.actor(ActorId(3)).log, expect);
    }

    #[test]
    #[should_panic(expected = "unknown actor-7")]
    fn inject_to_unknown_actor_panics() {
        let mut reactor = mixer_ring(2, 1);
        reactor.inject(ActorId(7), Hop { value: 0, hops: 0 });
    }

    #[test]
    fn idle_reactor_is_a_noop() {
        let mut reactor = mixer_ring(5, 1);
        let stats = reactor.run_until_idle();
        assert_eq!(stats, ReactorStats::default());
        assert_eq!(reactor.now(), 0);
        assert_eq!(reactor.len(), 5);
        assert!(!reactor.is_empty());
    }
}
