//! Deterministic event-loop actor runtime for RTHS.
//!
//! `rths_net`'s original runtime proves the paper's deployment claim with
//! one OS thread per peer/helper, which caps demonstrable populations at a
//! few hundred actors. This crate hosts **thousands of actors per thread**
//! instead: every peer, helper, tracker, and coordinator becomes a
//! poll-driven state machine implementing [`Actor`], scheduled by a
//! [`Reactor`] that owns their mailboxes and a logical-time [`TimerWheel`].
//! No actor ever blocks; the only OS threads are the optional `rths_par`
//! workers the reactor shards rounds across.
//!
//! # Execution model
//!
//! The reactor executes **rounds**. In one round, every actor with a
//! non-empty mailbox drains it, handling each message with
//! [`Actor::on_message`]. Outgoing sends made through [`Ctx`] are *not*
//! delivered immediately — they are buffered per sender and merged into the
//! destination mailboxes **in sender-index order** after the round. When no
//! mailbox has messages, logical time jumps to the next [`TimerWheel`]
//! deadline and the due timer messages are delivered, in schedule order.
//! [`Reactor::run_until_idle`] repeats this until there are neither
//! messages nor timers left.
//!
//! # Mailbox rings
//!
//! Mailboxes are not per-actor queues: actors are grouped into
//! contiguous shards of [`SHARD_SPAN`] and each shard owns **one
//! power-of-two message ring** with per-actor head/len cursors — a
//! delivery batch is packed contiguously per destination, a round drains
//! each actor's span in place. Per-actor memory is two `u32` cursors
//! instead of a `VecDeque` handle plus a private heap block, which is
//! what keeps 10⁵-actor meshes cache- and allocator-friendly. See
//! [`reactor`](mod@crate::reactor)'s module docs for the layout.
//!
//! # Determinism contract
//!
//! Delivery order is a pure function of the actor graph: sender index,
//! per-sender send order, and timer schedule order. Because the merge is
//! index-ordered (shards merge in shard order, actors within a shard run
//! in index order), sharding a round's processing across `RTHS_THREADS`
//! workers (via [`rths_par::par_sharded`]) cannot reorder anything —
//! a run is **bit-for-bit identical at any worker count and any shard
//! span**, which is what lets `rths_net`'s reactor backend reproduce
//! both the simulator and the thread-per-actor backend exactly (see
//! `tests/sim_net_equivalence.rs` in the workspace root).
//!
//! # Multi-process partitions
//!
//! A mesh can be sharded across OS processes: each process hosts a
//! [`Reactor::partitioned`] owning a contiguous, span-aligned global
//! actor range, and the [`bridge`] module drives all partitions in
//! lockstep — each round splits into a drain phase (remote-destined
//! sends extracted as [`RemoteBatch`]es) and a merge phase (local and
//! routed remote batches placed in global sender-shard order), so the
//! N-process run remains bit-identical to the single-process one. The
//! plain reactor is the 1-partition special case of the same code path.
//!
//! # Example
//!
//! ```
//! use rths_reactor::{Actor, ActorId, Ctx, Reactor};
//!
//! struct Counter {
//!     seen: u64,
//! }
//!
//! impl Actor for Counter {
//!     type Msg = u64;
//!     fn on_message(&mut self, msg: u64, ctx: &mut Ctx<'_, u64>) {
//!         self.seen += msg;
//!         if msg > 1 {
//!             // Halve and echo to ourselves one logical tick later.
//!             ctx.send_after(1, ctx.me(), msg / 2);
//!         }
//!     }
//! }
//!
//! let mut reactor = Reactor::new();
//! let id = reactor.add_actor(Counter { seen: 0 });
//! reactor.inject(id, 8);
//! reactor.run_until_idle();
//! assert_eq!(reactor.actor(id).seen, 8 + 4 + 2 + 1);
//! assert_eq!(reactor.now(), 3); // three timer hops
//! ```

#![forbid(unsafe_code)]

pub mod bridge;
mod reactor;
mod wheel;

pub use reactor::{Actor, ActorId, Ctx, Reactor, ReactorStats, RemoteBatch, SHARD_SPAN};
pub use wheel::TimerWheel;
