//! Lockstep bridge driving one actor mesh split across several
//! [`Reactor`] partitions — in-process or, through caller-supplied
//! links, across OS processes.
//!
//! # Topology
//!
//! A star: the **controller** owns rank 0's partition *and* one link per
//! follower rank. Followers talk only to the controller, which routes
//! every cross-rank batch; rank-to-rank traffic never needs direct
//! connections (a controller-plane/data-plane split in the atm0s-sdn
//! sense, with the step protocol as the control plane).
//!
//! # Step protocol
//!
//! Each single-reactor scheduler iteration becomes one fenced step:
//!
//! * **Round** (some partition has pending mail):
//!   [`Step::Drain`] carries routed remote deliveries to stage, every
//!   rank runs [`Reactor::drain_phase`] and replies
//!   [`Reply::DrainDone`] with its remote-destined batches; the
//!   controller routes them by destination rank and issues
//!   [`Step::Merge`], after which every rank runs
//!   [`Reactor::merge_phase`] and fences with [`Reply::Fence`].
//! * **Timers** (no mail anywhere): the controller picks the global
//!   minimum wheel deadline, every rank runs [`Reactor::advance_to`],
//!   and remotely owned fired messages come back in
//!   [`Reply::TimersDone`] to be staged with the next round's
//!   [`Step::Drain`].
//! * **Idle** (no mail, no deadlines): the controller sends
//!   [`Step::Shutdown`] and [`drive`] returns; what happens next (e.g.
//!   collecting results over the same connections) is the caller's
//!   protocol.
//!
//! # Determinism
//!
//! Bit-equivalence with the single-process reactor holds because every
//! ordering decision is reproduced, not approximated:
//!
//! * remote batches keep their **global sender-shard index** and are
//!   routed in ascending order, so [`Reactor::merge_phase`] interleaves
//!   them into destination rings exactly where one big reactor's merge
//!   loop would have visited those sending shards;
//! * a sender shard's per-destination subsequences preserve send order,
//!   and per-destination-actor mailbox order is all the merge contract
//!   promises — the split loses nothing;
//! * fired timers are staged destination-side in source-rank order
//!   (wheel order within a rank). This is identical to the single
//!   wheel's global sequence order provided same-deadline timers are
//!   not scheduled from different ranks — trivially true for
//!   `rths_net`, where only the rank-0 coordinator schedules timers.
//!   Meshes that schedule same-deadline timers from several ranks would
//!   need a global sequence merge here instead.

use crate::reactor::{Actor, ActorId, Reactor, RemoteBatch};

/// The contiguous partition layout of a global actor mesh: rank `r`
/// owns actor ids `[start(r), start(r + 1))`, each a multiple of the
/// mailbox span, so no shard ever straddles two ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    span: usize,
    /// `ranks + 1` fence posts: `starts[r]` is rank `r`'s first global
    /// actor id, `starts[ranks]` the global actor total.
    starts: Vec<usize>,
}

impl ShardMap {
    /// Splits `global_total` actors across `ranks` processes: shards
    /// (`span`-actor blocks) are divided as evenly as possible, earlier
    /// ranks taking the remainder. Small meshes may leave high ranks
    /// empty — they still fence every step, they just own no actors.
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is zero or `span` is not a power of two.
    pub fn contiguous(global_total: usize, span: usize, ranks: usize) -> Self {
        assert!(ranks >= 1, "need at least one rank");
        assert!(span.is_power_of_two(), "shard span must be a power of two");
        let shards = global_total.div_ceil(span);
        let per = shards / ranks;
        let extra = shards % ranks;
        let mut starts = Vec::with_capacity(ranks + 1);
        let mut shard_acc = 0usize;
        for r in 0..ranks {
            starts.push((shard_acc * span).min(global_total));
            shard_acc += per + usize::from(r < extra);
        }
        starts.push(global_total);
        Self { span, starts }
    }

    /// Number of ranks (processes) in the layout.
    pub fn ranks(&self) -> usize {
        self.starts.len() - 1
    }

    /// Mailbox span the layout is aligned to.
    pub fn span(&self) -> usize {
        self.span
    }

    /// Total actors across all ranks.
    pub fn global_total(&self) -> usize {
        self.starts[self.ranks()]
    }

    /// First global actor id owned by `rank`.
    pub fn start(&self, rank: usize) -> usize {
        self.starts[rank]
    }

    /// Number of actors owned by `rank`.
    pub fn len(&self, rank: usize) -> usize {
        self.starts[rank + 1] - self.starts[rank]
    }

    /// Whether `rank` owns no actors (legal for high ranks of a small
    /// mesh).
    pub fn is_empty(&self, rank: usize) -> bool {
        self.len(rank) == 0
    }

    /// The rank owning global actor id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the mesh.
    pub fn rank_of(&self, id: ActorId) -> usize {
        let ranks = self.ranks();
        for r in 0..ranks {
            if id.0 >= self.starts[r] && id.0 < self.starts[r + 1] {
                return r;
            }
        }
        panic!("{id} outside the {}-actor mesh", self.global_total());
    }
}

/// Controller → follower step frames (one reply each, except
/// [`Shutdown`](Step::Shutdown) which ends the loop).
#[derive(Debug)]
pub enum Step<M> {
    /// Stage routed remote deliveries (possibly none), then run
    /// [`Reactor::drain_phase`]; reply [`Reply::DrainDone`].
    Drain {
        /// Remote-origin deliveries for this rank, in source-rank order
        /// (wheel order within a source).
        staged: Vec<(ActorId, M)>,
    },
    /// Run [`Reactor::merge_phase`] with these routed batches; reply
    /// [`Reply::Fence`].
    Merge {
        /// Batches destined to this rank, ascending by global sender
        /// shard.
        batches: Vec<RemoteBatch<M>>,
    },
    /// Advance logical time to the global minimum deadline; reply
    /// [`Reply::TimersDone`].
    Timers {
        /// The fleet-wide earliest wheel deadline.
        deadline: u64,
    },
    /// The mesh is idle; leave the step loop.
    Shutdown,
}

/// Follower → controller replies.
#[derive(Debug)]
pub enum Reply<M> {
    /// Drain finished; these batches need routing.
    DrainDone {
        /// Remote-destined batches, ascending by global sender shard.
        out: Vec<RemoteBatch<M>>,
    },
    /// Merge finished (also sent once on `follow` entry, fencing the
    /// initial state).
    Fence {
        /// Locally pending deliveries after the merge.
        pending: usize,
        /// Earliest local wheel deadline.
        next_deadline: Option<u64>,
    },
    /// Timers fired; `fired` needs routing.
    TimersDone {
        /// Fired deliveries owned by other ranks, in wheel order.
        fired: Vec<(ActorId, M)>,
        /// Locally pending deliveries after staging own fired timers.
        pending: usize,
        /// Earliest remaining local wheel deadline.
        next_deadline: Option<u64>,
    },
}

impl<M> Reply<M> {
    /// Discriminant name for protocol-violation diagnostics (avoids a
    /// `Debug` bound on the message type).
    fn kind(&self) -> &'static str {
        match self {
            Reply::DrainDone { .. } => "DrainDone",
            Reply::Fence { .. } => "Fence",
            Reply::TimersDone { .. } => "TimersDone",
        }
    }
}

/// The controller's half of one follower connection.
///
/// Implementations decide the transport: in-memory channels for tests,
/// length-prefixed frames over a Unix socket for `rths_net::multiproc`.
/// Both directions are allowed to panic on a broken peer — a dead
/// follower is unrecoverable mid-step.
pub trait ControllerLink<M> {
    /// Ships one step to the follower.
    fn send_step(&mut self, step: Step<M>);
    /// Blocks for the follower's next reply.
    fn recv_reply(&mut self) -> Reply<M>;
}

/// The follower's half of its controller connection.
pub trait FollowerLink<M> {
    /// Blocks for the controller's next step.
    fn recv_step(&mut self) -> Step<M>;
    /// Ships one reply to the controller.
    fn send_reply(&mut self, reply: Reply<M>);
}

/// Per-rank fence state the controller tracks between steps.
#[derive(Debug, Clone, Copy)]
struct FenceState {
    pending: usize,
    next_deadline: Option<u64>,
}

/// Drives the whole mesh to idleness from the controller: `local` is
/// rank 0's partition, `links[r - 1]` connects rank `r`. Returns once
/// every partition has neither pending mail nor timers, after sending
/// each follower [`Step::Shutdown`].
///
/// With zero links this is exactly
/// [`run_until_idle`](Reactor::run_until_idle) on the phase-split API —
/// the 1-process special case stays on the same code path.
///
/// # Panics
///
/// Panics if `local` is not rank 0 of `map`, if a follower replies out
/// of protocol, or if a message addresses an actor outside the mesh.
pub fn drive<A: Actor, L: ControllerLink<A::Msg>>(
    local: &mut Reactor<A>,
    links: &mut [L],
    map: &ShardMap,
) {
    let ranks = map.ranks();
    assert_eq!(links.len() + 1, ranks, "one link per non-zero rank");
    assert_eq!(local.base(), map.start(0), "local reactor is not rank 0");
    let mut fences: Vec<FenceState> = links
        .iter_mut()
        .map(|link| match link.recv_reply() {
            Reply::Fence { pending, next_deadline } => FenceState { pending, next_deadline },
            other => panic!("expected the initial fence, got {}", other.kind()),
        })
        .collect();
    // Remote-fired timer deliveries awaiting the next round, per rank.
    let mut held: Vec<Vec<(ActorId, A::Msg)>> = (0..ranks).map(|_| Vec::new()).collect();
    loop {
        let in_flight: usize = held.iter().map(Vec::len).sum();
        let remote_pending: usize = fences.iter().map(|f| f.pending).sum();
        if local.pending() + remote_pending + in_flight > 0 {
            // Round step: drain everywhere, route, merge everywhere.
            for (i, link) in links.iter_mut().enumerate() {
                link.send_step(Step::Drain { staged: std::mem::take(&mut held[i + 1]) });
            }
            local.stage_external(std::mem::take(&mut held[0]));
            let mut outs: Vec<Vec<RemoteBatch<A::Msg>>> = Vec::with_capacity(ranks);
            outs.push(local.drain_phase());
            for link in links.iter_mut() {
                match link.recv_reply() {
                    Reply::DrainDone { out } => outs.push(out),
                    other => panic!("expected DrainDone, got {}", other.kind()),
                }
            }
            let mut routed = route_batches(map, outs);
            let local_batches = std::mem::take(&mut routed[0]);
            for (i, link) in links.iter_mut().enumerate() {
                link.send_step(Step::Merge { batches: std::mem::take(&mut routed[i + 1]) });
            }
            local.merge_phase(local_batches);
            for (i, link) in links.iter_mut().enumerate() {
                match link.recv_reply() {
                    Reply::Fence { pending, next_deadline } => {
                        fences[i] = FenceState { pending, next_deadline };
                    }
                    other => panic!("expected Fence, got {}", other.kind()),
                }
            }
        } else {
            // Timers step: jump every rank to the global minimum
            // deadline; nothing pending means nothing can schedule in
            // between, so the minimum is exact.
            let deadline = std::iter::once(local.next_deadline())
                .chain(fences.iter().map(|f| f.next_deadline))
                .flatten()
                .min();
            let Some(deadline) = deadline else { break };
            for link in links.iter_mut() {
                link.send_step(Step::Timers { deadline });
            }
            // Source-rank order (rank 0 first): equivalent to global
            // wheel order under the same-deadline constraint in the
            // module docs.
            let mut fired_all: Vec<Vec<(ActorId, A::Msg)>> = Vec::with_capacity(ranks);
            fired_all.push(local.advance_to(deadline));
            for (i, link) in links.iter_mut().enumerate() {
                match link.recv_reply() {
                    Reply::TimersDone { fired, pending, next_deadline } => {
                        fences[i] = FenceState { pending, next_deadline };
                        fired_all.push(fired);
                    }
                    other => panic!("expected TimersDone, got {}", other.kind()),
                }
            }
            for fired in fired_all {
                for (to, msg) in fired {
                    held[map.rank_of(to)].push((to, msg));
                }
            }
        }
    }
    for link in links.iter_mut() {
        link.send_step(Step::Shutdown);
    }
}

/// Runs one follower rank's step loop until [`Step::Shutdown`]. Fences
/// the initial state first, so [`drive`] sees pre-staged work (normally
/// none — injections happen on the controller).
pub fn follow<A: Actor, L: FollowerLink<A::Msg>>(reactor: &mut Reactor<A>, link: &mut L) {
    link.send_reply(Reply::Fence {
        pending: reactor.pending(),
        next_deadline: reactor.next_deadline(),
    });
    loop {
        match link.recv_step() {
            Step::Drain { staged } => {
                reactor.stage_external(staged);
                let out = reactor.drain_phase();
                link.send_reply(Reply::DrainDone { out });
            }
            Step::Merge { batches } => {
                reactor.merge_phase(batches);
                link.send_reply(Reply::Fence {
                    pending: reactor.pending(),
                    next_deadline: reactor.next_deadline(),
                });
            }
            Step::Timers { deadline } => {
                let fired = reactor.advance_to(deadline);
                link.send_reply(Reply::TimersDone {
                    fired,
                    pending: reactor.pending(),
                    next_deadline: reactor.next_deadline(),
                });
            }
            Step::Shutdown => break,
        }
    }
}

/// Splits every rank's drain output by destination rank. `outs` is
/// indexed by source rank; since source ranks own ascending shard
/// ranges and each rank's batches arrive ascending, visiting sources in
/// rank order keeps every destination's list ascending by global sender
/// shard — the order [`Reactor::merge_phase`] requires.
fn route_batches<M>(
    map: &ShardMap,
    outs: Vec<Vec<RemoteBatch<M>>>,
) -> Vec<Vec<RemoteBatch<M>>> {
    let ranks = map.ranks();
    let mut routed: Vec<Vec<RemoteBatch<M>>> = (0..ranks).map(|_| Vec::new()).collect();
    for out in outs {
        for batch in out {
            let mut per_rank: Vec<Vec<(ActorId, M)>> = (0..ranks).map(|_| Vec::new()).collect();
            for (to, msg) in batch.msgs {
                per_rank[map.rank_of(to)].push((to, msg));
            }
            for (rank, msgs) in per_rank.into_iter().enumerate() {
                if !msgs.is_empty() {
                    routed[rank].push(RemoteBatch { sender_shard: batch.sender_shard, msgs });
                }
            }
        }
    }
    routed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reactor::Ctx;
    use std::sync::mpsc::{channel, Receiver, Sender};

    /// In-memory link pair over mpsc channels (each side blocks on the
    /// other, mirroring a socket's recv semantics).
    struct ChanController<M> {
        tx: Sender<Step<M>>,
        rx: Receiver<Reply<M>>,
    }
    struct ChanFollower<M> {
        rx: Receiver<Step<M>>,
        tx: Sender<Reply<M>>,
    }

    fn chan_link<M>() -> (ChanController<M>, ChanFollower<M>) {
        let (step_tx, step_rx) = channel();
        let (reply_tx, reply_rx) = channel();
        (
            ChanController { tx: step_tx, rx: reply_rx },
            ChanFollower { rx: step_rx, tx: reply_tx },
        )
    }

    impl<M> ControllerLink<M> for ChanController<M> {
        fn send_step(&mut self, step: Step<M>) {
            self.tx.send(step).expect("follower hung up");
        }
        fn recv_reply(&mut self) -> Reply<M> {
            self.rx.recv().expect("follower hung up")
        }
    }

    impl<M> FollowerLink<M> for ChanFollower<M> {
        fn recv_step(&mut self) -> Step<M> {
            self.rx.recv().expect("controller hung up")
        }
        fn send_reply(&mut self, reply: Reply<M>) {
            self.tx.send(reply).expect("controller hung up")
        }
    }

    /// Test actor exercising both sends and timers: forwards a mixed
    /// value around a stride ring, every third hop through the wheel.
    struct Mixer {
        neighbour: ActorId,
        log: Vec<(u64, u64)>,
    }

    #[derive(Debug)]
    struct Hop {
        value: u64,
        hops: u32,
    }

    impl Actor for Mixer {
        type Msg = Hop;
        fn on_message(&mut self, msg: Hop, ctx: &mut Ctx<'_, Hop>) {
            self.log.push((ctx.now(), msg.value));
            if msg.hops > 0 {
                let value = msg.value.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
                let next = Hop { value, hops: msg.hops - 1 };
                if msg.hops.is_multiple_of(3) {
                    ctx.send_after(1 + (msg.value % 4), self.neighbour, next);
                } else {
                    ctx.send(self.neighbour, next);
                }
            }
        }
    }

    const ACTORS: usize = 37;
    const SPAN: usize = 4;

    fn build(rank: usize, map: &ShardMap) -> Reactor<Mixer> {
        let mut reactor = Reactor::partitioned(map.span(), map.start(rank), ACTORS);
        for i in map.start(rank)..map.start(rank) + map.len(rank) {
            reactor.add_actor(Mixer {
                neighbour: ActorId((i * 11 + 1) % ACTORS),
                log: Vec::new(),
            });
        }
        reactor
    }

    /// Reference run: one plain reactor, same mesh.
    fn single_run() -> Vec<Vec<(u64, u64)>> {
        let mut reactor = Reactor::with_shard_span(SPAN);
        for i in 0..ACTORS {
            reactor.add_actor(Mixer {
                neighbour: ActorId((i * 11 + 1) % ACTORS),
                log: Vec::new(),
            });
        }
        for i in (0..ACTORS).step_by(5) {
            reactor.inject(ActorId(i), Hop { value: i as u64, hops: 30 });
        }
        reactor.run_until_idle();
        reactor.into_actors().into_iter().map(|a| a.log).collect()
    }

    /// Same mesh across `ranks` in-process partitions, followers on
    /// threads; note: timers here are scheduled by actors on *every*
    /// rank, but each hop chain is strictly sequential (one message in
    /// flight per chain), so no two ranks ever fire the same deadline
    /// into the same destination round — the documented constraint
    /// holds.
    fn bridged_run(ranks: usize) -> Vec<Vec<(u64, u64)>> {
        let map = ShardMap::contiguous(ACTORS, SPAN, ranks);
        let mut local = build(0, &map);
        for i in (0..ACTORS).step_by(5) {
            if map.rank_of(ActorId(i)) == 0 {
                local.inject(ActorId(i), Hop { value: i as u64, hops: 30 });
            }
        }
        let mut controllers = Vec::new();
        let mut followers = Vec::new();
        for _ in 1..ranks {
            let (c, f) = chan_link();
            controllers.push(c);
            followers.push(f);
        }
        let mut remote_logs: Vec<Vec<Vec<(u64, u64)>>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = followers
                .into_iter()
                .enumerate()
                .map(|(i, mut link)| {
                    let map = map.clone();
                    scope.spawn(move || {
                        let rank = i + 1;
                        let mut reactor = build(rank, &map);
                        for j in (0..ACTORS).step_by(5) {
                            if map.rank_of(ActorId(j)) == rank {
                                reactor.inject(ActorId(j), Hop { value: j as u64, hops: 30 });
                            }
                        }
                        follow(&mut reactor, &mut link);
                        reactor.into_actors().into_iter().map(|a| a.log).collect::<Vec<_>>()
                    })
                })
                .collect();
            // If `drive` panics, drop the controller links *before*
            // joining so blocked followers error out instead of
            // deadlocking the scope join.
            let drove = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                drive(&mut local, &mut controllers, &map);
            }));
            drop(controllers);
            for handle in handles {
                match handle.join() {
                    Ok(logs) => remote_logs.push(logs),
                    Err(_) if drove.is_err() => {} // controller panic is the root cause
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
            if let Err(panic) = drove {
                std::panic::resume_unwind(panic);
            }
        });
        let mut all: Vec<Vec<(u64, u64)>> =
            local.into_actors().into_iter().map(|a| a.log).collect();
        for logs in remote_logs {
            all.extend(logs);
        }
        all
    }

    #[test]
    fn contiguous_map_covers_the_mesh() {
        let map = ShardMap::contiguous(ACTORS, SPAN, 3);
        assert_eq!(map.ranks(), 3);
        assert_eq!(map.global_total(), ACTORS);
        assert_eq!(map.start(0), 0);
        for r in 0..3 {
            assert_eq!(map.start(r) % SPAN, 0, "rank {r} start unaligned");
            for id in map.start(r)..map.start(r) + map.len(r) {
                assert_eq!(map.rank_of(ActorId(id)), r);
            }
        }
        assert_eq!((0..3).map(|r| map.len(r)).sum::<usize>(), ACTORS);
    }

    #[test]
    fn tiny_mesh_leaves_high_ranks_empty() {
        let map = ShardMap::contiguous(3, 4, 4);
        assert_eq!(map.len(0), 3);
        for r in 1..4 {
            assert!(map.is_empty(r), "rank {r} should be empty");
        }
        assert_eq!(map.rank_of(ActorId(2)), 0);
    }

    #[test]
    fn two_partitions_match_the_single_reactor_exactly() {
        assert_eq!(bridged_run(2), single_run());
    }

    #[test]
    fn four_partitions_match_the_single_reactor_exactly() {
        assert_eq!(bridged_run(4), single_run());
    }

    #[test]
    fn more_ranks_than_shards_still_terminates() {
        // 16 ranks over a 37-actor mesh at span 4: several ranks own
        // nothing and must idle through every fence without deadlock.
        assert_eq!(bridged_run(16), single_run());
    }
}
