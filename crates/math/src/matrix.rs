//! A dense, row-major `f64` matrix.
//!
//! The workspace deliberately avoids heavyweight linear-algebra
//! dependencies; every consumer (regret matrices, Markov kernels, simplex
//! tableaus) needs only a handful of dense operations on small-to-medium
//! matrices, which this module provides with predictable performance.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64` values.
///
/// # Example
///
/// ```
/// use rths_math::Matrix;
///
/// let identity = Matrix::identity(3);
/// let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
/// assert_eq!(&m * &identity, m);
/// ```
#[derive(Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "need at least one column");
        let mut m = Self::zeros(rows.len(), cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "row {i} has inconsistent length");
            m.data[i * cols..(i + 1) * cols].copy_from_slice(row);
        }
        m
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Flat row-major view of the underlying data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix, returning the flat row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Fills every entry with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Multiplies every entry by `factor` in place.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Returns a new matrix scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        let mut out = self.clone();
        out.scale(factor);
        out
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must equal matrix cols");
        (0..self.rows).map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum()).collect()
    }

    /// Row-vector–matrix product `v * self`.
    ///
    /// Useful for propagating probability distributions through a Markov
    /// transition kernel (`π' = π P`).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows()`.
    pub fn vec_mul(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "vector length must equal matrix rows");
        let mut out = vec![0.0; self.cols];
        for (r, &vr) in v.iter().enumerate() {
            if vr == 0.0 {
                continue;
            }
            for (c, out_c) in out.iter_mut().enumerate() {
                *out_c += vr * self[(r, c)];
            }
        }
        out
    }

    /// Maximum entry; `NaN`s are ignored.
    ///
    /// Returns `f64::NEG_INFINITY` if all entries are NaN.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().filter(|v| !v.is_nan()).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum entry; `NaN`s are ignored.
    ///
    /// Returns `f64::INFINITY` if all entries are NaN.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().filter(|v| !v.is_nan()).fold(f64::INFINITY, f64::min)
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm (`sqrt(Σ a_ij²)`).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute difference between two matrices of equal shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns `true` if every row sums to 1 (± `tol`) and all entries are
    /// non-negative — i.e. the matrix is a valid stochastic (Markov) kernel.
    pub fn is_row_stochastic(&self, tol: f64) -> bool {
        (0..self.rows).all(|r| {
            let row = self.row(r);
            row.iter().all(|&v| v >= -tol) && (row.iter().sum::<f64>() - 1.0).abs() <= tol
        })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in add");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in sub");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree in mul");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        out
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  [")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_requested_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = Matrix::zeros(0, 3);
    }

    #[test]
    fn identity_multiplication_is_noop() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(&m * &i, m);
        assert_eq!(&i * &m, m);
    }

    #[test]
    fn from_rows_round_trips_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent length")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn transpose_swaps_indices() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(m[(r, c)], t[(c, r)]);
            }
        }
    }

    #[test]
    fn mul_vec_matches_manual_computation() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn vec_mul_propagates_distribution() {
        // Doubly stochastic kernel keeps the uniform distribution invariant.
        let p = Matrix::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]);
        let pi = p.vec_mul(&[0.5, 0.5]);
        assert!((pi[0] - 0.5).abs() < 1e-12);
        assert!((pi[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn matrix_product_matches_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = &a * &b;
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn add_sub_are_inverse() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 4.0]]);
        let b = Matrix::from_rows(&[&[3.0, 1.0], &[-1.0, 2.0]]);
        let sum = &a + &b;
        let back = &sum - &b;
        assert!(back.max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn scale_and_scaled_agree() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut b = a.clone();
        b.scale(2.0);
        assert_eq!(b, a.scaled(2.0));
        assert_eq!(b.sum(), 20.0);
    }

    #[test]
    fn min_max_ignore_nan() {
        let mut m = Matrix::from_rows(&[&[1.0, f64::NAN], &[3.0, -2.0]]);
        assert_eq!(m.max(), 3.0);
        assert_eq!(m.min(), -2.0);
        m.fill(f64::NAN);
        assert_eq!(m.max(), f64::NEG_INFINITY);
        assert_eq!(m.min(), f64::INFINITY);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        let i = Matrix::identity(4);
        assert!((i.frobenius_norm() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stochastic_check_accepts_kernel_and_rejects_non_kernel() {
        let p = Matrix::from_rows(&[&[0.9, 0.1], &[0.3, 0.7]]);
        assert!(p.is_row_stochastic(1e-12));
        let q = Matrix::from_rows(&[&[0.9, 0.2], &[0.3, 0.7]]);
        assert!(!q.is_row_stochastic(1e-12));
        let neg = Matrix::from_rows(&[&[1.1, -0.1], &[0.3, 0.7]]);
        assert!(!neg.is_row_stochastic(1e-12));
    }

    #[test]
    fn map_inplace_applies_function() {
        let mut m = Matrix::from_rows(&[&[-1.0, 2.0], &[-3.0, 4.0]]);
        m.map_inplace(|v| v.max(0.0));
        assert_eq!(m, Matrix::from_rows(&[&[0.0, 2.0], &[0.0, 4.0]]));
    }

    #[test]
    fn debug_format_is_nonempty() {
        let m = Matrix::zeros(1, 1);
        assert!(!format!("{m:?}").is_empty());
    }

    #[test]
    fn into_vec_round_trip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.clone().into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }
}
