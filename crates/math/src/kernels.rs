//! Slice-level f64 kernels for the batched learner hot loops.
//!
//! These are the elementwise building blocks `rths_core::slab` runs over
//! contiguous T-matrix columns: no indexing indirection, no bounds checks
//! inside the loop after the initial slice formation, so LLVM
//! autovectorizes them. Each kernel performs **exactly** the per-entry
//! expression of the scalar learner path (`rths_core::compact`) — the
//! float op *order within an entry* is preserved, and entries are
//! independent, so results are bit-for-bit identical to the scalar loops.

/// In-place scale: `xs[i] *= factor` for every entry.
///
/// The batched form of `Matrix::scale` restricted to one column — the
/// exponential decay `T ← (1−ε)·T` applied column-contiguously.
#[inline]
pub fn scale(xs: &mut [f64], factor: f64) {
    for x in xs {
        *x *= factor;
    }
}

/// In-place axpy: `y[i] += a * x[i]` for every entry.
///
/// The rank-1 column update of the proxy matrix (`T[:, j] += scale · p`)
/// with the same fused expression shape as the scalar loop
/// (`t[(r, j)] += scale * probs[r]`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "axpy slices must be index-aligned");
    for (y, &x) in y.iter_mut().zip(x) {
        *y += a * x;
    }
}

/// Max of the clamped shifted differences: the largest
/// `(factor * (col[i] - diag[i])).max(0.0)` over the slice.
///
/// One column's contribution to the learner's virtual-play regret
/// maximum: `col` is column `k` of a column-major T-matrix, `diag` the
/// gathered diagonal, so entry `i` is `Q(i, k) = (factor ·
/// (T[i,k] − T[i,i]))⁺`. The diagonal entry `i == k` needs no
/// special-casing: `col[k] − diag[k]` is exactly `+0.0` for any finite
/// value (and the per-entry `.max(0.0)` maps a non-finite `NaN` to `0.0`
/// the same way the scalar path's literal `0.0` push does), matching the
/// scalar `if j == k { 0.0 }` arm bit-for-bit. Every term is `≥ +0.0` or
/// skipped-as-NaN, so the fold order cannot change the result.
///
/// Returns `f64::NEG_INFINITY` on an empty slice.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn shifted_regret_max(col: &[f64], diag: &[f64], factor: f64) -> f64 {
    assert_eq!(col.len(), diag.len(), "regret-max slices must be index-aligned");
    let mut max = f64::NEG_INFINITY;
    for (&c, &d) in col.iter().zip(diag) {
        max = max.max((factor * (c - d)).max(0.0));
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_matches_the_scalar_loop_bitwise() {
        let mut xs = vec![1.5, -2.25, 0.0, 1e-300, 7.0];
        let mut expected = xs.clone();
        for x in &mut expected {
            *x *= 0.99;
        }
        scale(&mut xs, 0.99);
        for (a, b) in xs.iter().zip(&expected) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn axpy_matches_the_scalar_loop_bitwise() {
        let mut y = vec![0.25, -1.0, 3.5, 0.0];
        let x = vec![0.1, 0.2, 0.3, 0.4];
        let a = 137.5;
        let mut expected = y.clone();
        for (e, &xv) in expected.iter_mut().zip(&x) {
            *e += a * xv;
        }
        axpy(&mut y, a, &x);
        for (got, want) in y.iter().zip(&expected) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "index-aligned")]
    fn axpy_rejects_length_mismatch() {
        axpy(&mut [0.0, 0.0], 1.0, &[1.0]);
    }

    #[test]
    fn shifted_regret_max_handles_diagonal_and_negatives() {
        // col == diag entrywise at the diagonal index → exact +0.0 term.
        let col = [3.0, 5.0, 1.0];
        let diag = [3.0, 2.0, 4.0];
        let q = shifted_regret_max(&col, &diag, 0.5);
        // Entries: (0.5·0)⁺ = 0, (0.5·3)⁺ = 1.5, (0.5·−3)⁺ = 0.
        assert_eq!(q.to_bits(), 1.5f64.to_bits());
        assert!(shifted_regret_max(&[], &[], 1.0).is_infinite());
        // All-clamped column folds to exactly +0.0.
        assert_eq!(shifted_regret_max(&[1.0], &[9.0], 1.0).to_bits(), 0.0f64.to_bits());
    }
}
