//! Exponentially recency-weighted averaging.
//!
//! Regret *tracking* differs from regret *matching* exactly here: instead of
//! the uniform average `(1/n)Σ u^τ` over all history, it uses the
//! constant-step-size average
//!
//! ```text
//! Û^n = Σ_{τ≤n} ε(1-ε)^{n-τ} u^τ  =  (1-ε)·Û^{n-1} + ε·u^n
//! ```
//!
//! which "gradually lets go of the past" (paper §II, citing Sutton & Barto).
//! [`Ewma`] implements the recursive form; [`weighted_sum`] implements the
//! explicit sum for cross-validation in tests.

/// Exponentially weighted moving average with constant step size `ε`.
///
/// # Example
///
/// ```
/// use rths_math::Ewma;
///
/// let mut avg = Ewma::new(0.5);
/// avg.update(10.0);
/// avg.update(20.0);
/// // (1-0.5)*((1-0.5)*0 + 0.5*10) + 0.5*20 = 12.5
/// assert_eq!(avg.value(), 12.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ewma {
    epsilon: f64,
    value: f64,
    count: u64,
}

impl Ewma {
    /// Creates an average with step size `epsilon`, initialised to 0.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < epsilon <= 1`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0, 1]");
        Self { epsilon, value: 0.0, count: 0 }
    }

    /// Creates an average seeded with an initial value.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < epsilon <= 1`.
    pub fn with_initial(epsilon: f64, initial: f64) -> Self {
        let mut e = Self::new(epsilon);
        e.value = initial;
        e
    }

    /// Folds one observation into the average and returns the new value.
    pub fn update(&mut self, x: f64) -> f64 {
        self.value = (1.0 - self.epsilon) * self.value + self.epsilon * x;
        self.count += 1;
        self.value
    }

    /// Applies only the decay step — used when a stage elapses without an
    /// observation (e.g. the learner's action was not played).
    pub fn decay(&mut self) {
        self.value *= 1.0 - self.epsilon;
        self.count += 1;
    }

    /// Current value of the average.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Step size `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of updates (including pure decays) applied so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The effective window length `1/ε`: observations older than a few
    /// windows have negligible weight.
    pub fn effective_window(&self) -> f64 {
        1.0 / self.epsilon
    }
}

/// Explicit (non-recursive) exponentially weighted sum
/// `Σ_τ ε(1-ε)^{n-τ} x_τ` over `xs = [x_1 … x_n]`.
///
/// Exists to cross-validate the recursive [`Ewma`] in tests and to mirror
/// the paper's Eq. (3-2) verbatim.
pub fn weighted_sum(epsilon: f64, xs: &[f64]) -> f64 {
    assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0, 1]");
    let n = xs.len();
    xs.iter()
        .enumerate()
        .map(|(idx, &x)| {
            let age = (n - 1 - idx) as i32;
            epsilon * (1.0 - epsilon).powi(age) * x
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recursive_matches_explicit_sum() {
        let eps = 0.1;
        let xs = [3.0, -1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut e = Ewma::new(eps);
        for &x in &xs {
            e.update(x);
        }
        assert!((e.value() - weighted_sum(eps, &xs)).abs() < 1e-12);
    }

    #[test]
    fn epsilon_one_tracks_last_value() {
        let mut e = Ewma::new(1.0);
        e.update(5.0);
        e.update(-2.0);
        assert_eq!(e.value(), -2.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1]")]
    fn zero_epsilon_rejected() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1]")]
    fn oversized_epsilon_rejected() {
        let _ = Ewma::new(1.5);
    }

    #[test]
    fn constant_input_converges_to_that_constant() {
        let mut e = Ewma::new(0.2);
        for _ in 0..200 {
            e.update(7.0);
        }
        assert!((e.value() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn decay_shrinks_value_geometrically() {
        let mut e = Ewma::with_initial(0.25, 8.0);
        e.decay();
        assert_eq!(e.value(), 6.0);
        e.decay();
        assert_eq!(e.value(), 4.5);
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn effective_window_is_inverse_epsilon() {
        assert_eq!(Ewma::new(0.05).effective_window(), 20.0);
    }

    #[test]
    fn bounded_input_gives_bounded_average() {
        // |Û| ≤ max|u| for zero-initialised EWMA, a key stability property
        // that the paper's undamped Eq. (3-5) violates.
        let mut e = Ewma::new(0.3);
        for i in 0..1000 {
            e.update(if i % 2 == 0 { 1.0 } else { -1.0 });
            assert!(e.value().abs() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn tracks_regime_shift_within_window() {
        let mut e = Ewma::new(0.1);
        for _ in 0..100 {
            e.update(1.0);
        }
        for _ in 0..100 {
            e.update(5.0);
        }
        // After ~10 windows the old regime is forgotten.
        assert!((e.value() - 5.0).abs() < 1e-3);
    }
}
