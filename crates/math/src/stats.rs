//! Summary statistics used by the evaluation harness.
//!
//! The paper's evaluation reports load balance across helpers (Fig. 3),
//! bandwidth fairness across peers (Fig. 4), and time series of regret and
//! server workload (Figs. 1, 5). The functions here compute the scalar
//! summaries those figures are built from, most importantly
//! [`jain_index`] — the standard fairness measure for rate allocations.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Population variance (divides by `n`); 0 for slices shorter than 2.
pub fn variance(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return 0.0;
    }
    let m = mean(v);
    v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
}

/// Population standard deviation.
pub fn std_dev(v: &[f64]) -> f64 {
    variance(v).sqrt()
}

/// Coefficient of variation (`σ/μ`); 0 if the mean is 0.
pub fn coefficient_of_variation(v: &[f64]) -> f64 {
    let m = mean(v);
    if m == 0.0 {
        0.0
    } else {
        std_dev(v) / m
    }
}

/// Jain's fairness index: `(Σx)² / (n · Σx²)`.
///
/// Ranges from `1/n` (one user gets everything) to `1.0` (perfectly equal
/// allocation). Returns 1.0 for an empty or all-zero allocation, which is
/// the conventional "vacuously fair" reading.
///
/// # Example
///
/// ```
/// let perfectly_fair = rths_math::stats::jain_index(&[5.0, 5.0, 5.0]);
/// assert!((perfectly_fair - 1.0).abs() < 1e-12);
/// let unfair = rths_math::stats::jain_index(&[10.0, 0.0, 0.0]);
/// assert!((unfair - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn jain_index(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 1.0;
    }
    let s: f64 = v.iter().sum();
    let sq: f64 = v.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        1.0
    } else {
        (s * s) / (v.len() as f64 * sq)
    }
}

/// Linear-interpolation quantile (`q` in `[0,1]`) of an unsorted slice.
///
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
pub fn quantile(v: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    if v.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = v.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (the 0.5 quantile).
pub fn median(v: &[f64]) -> Option<f64> {
    quantile(v, 0.5)
}

/// Max-min spread; 0 for an empty slice.
pub fn range(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = v.iter().copied().fold(f64::INFINITY, f64::min);
    max - min
}

/// A running mean/min/max/variance accumulator (Welford's algorithm).
///
/// Used by the simulator's metrics collectors where storing every sample
/// would be wasteful.
///
/// # Example
///
/// ```
/// let mut acc = rths_math::stats::Accumulator::new();
/// for x in [1.0, 2.0, 3.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.mean(), 2.0);
/// assert_eq!(acc.count(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `+∞` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-∞` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_data() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), 5.0);
        assert_eq!(variance(&v), 4.0);
        assert_eq!(std_dev(&v), 2.0);
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(range(&[]), 0.0);
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(jain_index(&[]), 1.0);
    }

    #[test]
    fn jain_bounds() {
        assert!((jain_index(&[1.0; 10]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(4.0));
        assert_eq!(median(&v), Some(2.5));
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn quantile_rejects_bad_level() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn cov_of_constant_data_is_zero() {
        assert_eq!(coefficient_of_variation(&[3.0, 3.0, 3.0]), 0.0);
        assert_eq!(coefficient_of_variation(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn accumulator_matches_batch_stats() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut acc = Accumulator::new();
        for &x in &v {
            acc.push(x);
        }
        assert!((acc.mean() - mean(&v)).abs() < 1e-12);
        assert!((acc.variance() - variance(&v)).abs() < 1e-12);
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
        assert_eq!(acc.count(), 8);
    }

    #[test]
    fn accumulator_merge_equals_single_pass() {
        let v = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 4.0];
        let (left, right) = v.split_at(3);
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        left.iter().for_each(|&x| a.push(x));
        right.iter().for_each(|&x| b.push(x));
        a.merge(&b);

        let mut full = Accumulator::new();
        v.iter().for_each(|&x| full.push(x));
        assert!((a.mean() - full.mean()).abs() < 1e-12);
        assert!((a.variance() - full.variance()).abs() < 1e-12);
        assert_eq!(a.count(), full.count());
    }

    #[test]
    fn accumulator_merge_with_empty_is_identity() {
        let mut a = Accumulator::new();
        a.push(1.0);
        let before = a.clone();
        a.merge(&Accumulator::new());
        assert_eq!(a, before);

        let mut empty = Accumulator::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
