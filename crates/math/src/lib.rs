//! Dense linear algebra and statistics substrate for the RTHS reproduction.
//!
//! This crate provides the small numeric toolbox shared by every other crate
//! in the workspace:
//!
//! * [`Matrix`] — a dense, row-major `f64` matrix used for regret matrices
//!   (`rths-core`), Markov transition kernels (`rths-stoch`), and simplex
//!   tableaus (`rths-lp`).
//! * [`stats`] — summary statistics, [Jain's fairness
//!   index](stats::jain_index), and quantiles used by the evaluation
//!   harness.
//! * [`ewma`] — the exponentially recency-weighted averaging scheme that is
//!   the mathematical heart of regret *tracking* (Sutton & Barto's
//!   constant-step-size averaging, reference \[15\] in the paper).
//! * [`assert`](mod@assert) — approximate floating-point comparison
//!   helpers used across the workspace test suites.
//!
//! # Example
//!
//! ```
//! use rths_math::Matrix;
//!
//! let mut m = Matrix::zeros(2, 2);
//! m[(0, 1)] = 3.0;
//! let t = m.transpose();
//! assert_eq!(t[(1, 0)], 3.0);
//! ```

#![forbid(unsafe_code)]

pub mod assert;
pub mod ewma;
pub mod kernels;
pub mod matrix;
pub mod stats;
pub mod vector;

pub use ewma::Ewma;
pub use matrix::Matrix;
