//! Approximate floating-point comparison helpers for tests.
//!
//! Centralised so that every crate in the workspace uses the same notion of
//! "approximately equal" and prints the same diagnostics on failure.

/// Returns `true` if `a` and `b` differ by at most `tol` (absolute).
///
/// Two non-finite values compare equal only if they are identical
/// (`inf == inf`, `-inf == -inf`); NaN never matches.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        return true;
    }
    (a - b).abs() <= tol
}

/// Returns `true` if `a` and `b` agree to relative tolerance `rel`
/// (falling back to absolute comparison near zero).
pub fn approx_eq_rel(a: f64, b: f64, rel: f64) -> bool {
    if a == b {
        return true;
    }
    let scale = a.abs().max(b.abs());
    if scale < 1e-12 {
        return (a - b).abs() <= rel;
    }
    (a - b).abs() <= rel * scale
}

/// Asserts element-wise approximate equality of two slices.
///
/// # Panics
///
/// Panics with a diagnostic if lengths differ or any pair differs by more
/// than `tol`.
pub fn assert_slices_close(a: &[f64], b: &[f64], tol: f64) {
    assert_eq!(a.len(), b.len(), "slice lengths differ: {} vs {}", a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(approx_eq(*x, *y, tol), "slices differ at index {i}: {x} vs {y} (tol {tol})");
    }
}

/// Asserts `a ≈ b` within absolute tolerance `tol`, with a diagnostic.
///
/// # Panics
///
/// Panics if the values differ by more than `tol`.
#[macro_export]
macro_rules! assert_close {
    ($a:expr, $b:expr, $tol:expr) => {{
        let (a, b, tol) = ($a, $b, $tol);
        assert!(
            $crate::assert::approx_eq(a, b, tol),
            "assert_close failed: {} vs {} (tol {}, diff {})",
            a,
            b,
            tol,
            (a - b).abs()
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_equality_always_passes() {
        assert!(approx_eq(1.0, 1.0, 0.0));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY, 0.0));
    }

    #[test]
    fn nan_never_matches() {
        assert!(!approx_eq(f64::NAN, f64::NAN, 1.0));
        assert!(!approx_eq(f64::NAN, 0.0, 1.0));
    }

    #[test]
    fn tolerance_is_respected() {
        assert!(approx_eq(1.0, 1.05, 0.1));
        assert!(!approx_eq(1.0, 1.2, 0.1));
    }

    #[test]
    fn relative_comparison_scales() {
        assert!(approx_eq_rel(1000.0, 1001.0, 0.01));
        assert!(!approx_eq_rel(1.0, 1.1, 0.01));
        assert!(approx_eq_rel(0.0, 1e-13, 1e-9));
    }

    #[test]
    fn macro_works_in_function_scope() {
        assert_close!(2.0, 2.0 + 1e-12, 1e-9);
    }

    #[test]
    #[should_panic(expected = "assert_close failed")]
    fn macro_panics_on_mismatch() {
        assert_close!(1.0, 2.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "slices differ at index 1")]
    fn slice_assert_reports_index() {
        assert_slices_close(&[1.0, 2.0], &[1.0, 3.0], 0.1);
    }

    #[test]
    fn slice_assert_accepts_close_slices() {
        assert_slices_close(&[1.0, 2.0], &[1.0 + 1e-12, 2.0 - 1e-12], 1e-9);
    }
}
