//! Free functions on `&[f64]` slices.
//!
//! These are the vector operations used throughout the workspace where a
//! full [`Matrix`](crate::Matrix) would be overkill: dot products,
//! normalisation of probability vectors, and argmax/argmin with
//! deterministic tie-breaking (lowest index wins), which matters for
//! reproducible simulations.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// assert_eq!(rths_math::vector::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Sum of a slice.
pub fn sum(v: &[f64]) -> f64 {
    v.iter().sum()
}

/// Index of the maximum element, ties broken toward the lowest index.
///
/// Returns `None` for an empty slice or if every element is NaN.
pub fn argmax(v: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in v.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, bx)) if bx >= x => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum element, ties broken toward the lowest index.
///
/// Returns `None` for an empty slice or if every element is NaN.
pub fn argmin(v: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in v.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, bx)) if bx <= x => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// L1 norm (sum of absolute values).
pub fn l1_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).sum()
}

/// L∞ norm (largest absolute value); 0 for an empty slice.
pub fn linf_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).fold(0.0, f64::max)
}

/// Largest absolute element-wise difference between two slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff requires equal lengths");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

/// Normalises `v` in place so it sums to 1.
///
/// If the sum is zero (or not finite), `v` is set to the uniform
/// distribution instead — the standard safe fallback when a learner's
/// regrets are all zero.
///
/// # Panics
///
/// Panics if `v` is empty.
pub fn normalize(v: &mut [f64]) {
    assert!(!v.is_empty(), "cannot normalize an empty vector");
    let s = sum(v);
    if s > 0.0 && s.is_finite() {
        for x in v.iter_mut() {
            *x /= s;
        }
    } else {
        let u = 1.0 / v.len() as f64;
        v.fill(u);
    }
}

/// Checks that `v` is a probability distribution: entries in `[-tol, 1+tol]`
/// and total within `tol` of 1.
pub fn is_distribution(v: &[f64], tol: f64) -> bool {
    !v.is_empty()
        && v.iter().all(|&x| x >= -tol && x <= 1.0 + tol && x.is_finite())
        && (sum(v) - 1.0).abs() <= tol
}

/// Projects `v` onto the probability simplex by clamping negatives to zero
/// and renormalising. This is not the Euclidean projection; it is the cheap
/// repair used after floating-point drift.
///
/// # Panics
///
/// Panics if `v` is empty.
pub fn clamp_to_simplex(v: &mut [f64]) {
    for x in v.iter_mut() {
        if !x.is_finite() || *x < 0.0 {
            *x = 0.0;
        }
    }
    normalize(v);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN, 2.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN]), None);
    }

    #[test]
    fn argmin_breaks_ties_low() {
        assert_eq!(argmin(&[4.0, 1.0, 1.0]), Some(1));
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn norms_are_consistent() {
        let v = [3.0, -4.0];
        assert_eq!(l1_norm(&v), 7.0);
        assert_eq!(linf_norm(&v), 4.0);
        assert_eq!(linf_norm(&[]), 0.0);
    }

    #[test]
    fn normalize_produces_distribution() {
        let mut v = vec![2.0, 2.0, 4.0];
        normalize(&mut v);
        assert!(is_distribution(&v, 1e-12));
        assert!((v[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_falls_back_to_uniform() {
        let mut v = vec![0.0, 0.0];
        normalize(&mut v);
        assert_eq!(v, vec![0.5, 0.5]);
    }

    #[test]
    fn clamp_to_simplex_fixes_negatives_and_nan() {
        let mut v = vec![-0.1, f64::NAN, 0.3];
        clamp_to_simplex(&mut v);
        assert!(is_distribution(&v, 1e-12));
        assert_eq!(v[0], 0.0);
        assert_eq!(v[1], 0.0);
        assert!((v[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn is_distribution_rejects_bad_inputs() {
        assert!(!is_distribution(&[], 1e-9));
        assert!(!is_distribution(&[0.5, 0.6], 1e-9));
        assert!(!is_distribution(&[1.5, -0.5], 1e-9));
        assert!(is_distribution(&[0.25; 4], 1e-9));
    }

    #[test]
    fn max_abs_diff_is_symmetric() {
        let a = [1.0, 2.0];
        let b = [1.5, 1.0];
        assert_eq!(max_abs_diff(&a, &b), max_abs_diff(&b, &a));
        assert_eq!(max_abs_diff(&a, &b), 1.0);
    }
}
