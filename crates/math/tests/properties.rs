//! Property-based tests for the math substrate.

use proptest::prelude::*;
use rths_math::vector;
use rths_math::{ewma, stats, Matrix};

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6..1e6f64, 1..max_len)
}

fn positive_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1e-6..1e6f64, 1..max_len)
}

proptest! {
    #[test]
    fn jain_index_is_within_bounds(v in positive_vec(64)) {
        let j = stats::jain_index(&v);
        let n = v.len() as f64;
        prop_assert!(j >= 1.0 / n - 1e-9, "jain {j} below 1/n");
        prop_assert!(j <= 1.0 + 1e-9, "jain {j} above 1");
    }

    #[test]
    fn jain_index_is_scale_invariant(v in positive_vec(32), k in 1e-3..1e3f64) {
        let scaled: Vec<f64> = v.iter().map(|x| x * k).collect();
        let a = stats::jain_index(&v);
        let b = stats::jain_index(&scaled);
        prop_assert!((a - b).abs() < 1e-6, "jain not scale invariant: {a} vs {b}");
    }

    #[test]
    fn normalize_yields_distribution(mut v in positive_vec(64)) {
        vector::normalize(&mut v);
        prop_assert!(vector::is_distribution(&v, 1e-9));
    }

    #[test]
    fn clamp_to_simplex_handles_arbitrary_input(mut v in finite_vec(64)) {
        vector::clamp_to_simplex(&mut v);
        prop_assert!(vector::is_distribution(&v, 1e-9));
    }

    #[test]
    fn ewma_recursive_equals_explicit(eps in 0.01..1.0f64, xs in finite_vec(64)) {
        let mut e = rths_math::Ewma::new(eps);
        for &x in &xs {
            e.update(x);
        }
        let explicit = ewma::weighted_sum(eps, &xs);
        let scale = explicit.abs().max(1.0);
        prop_assert!((e.value() - explicit).abs() / scale < 1e-9);
    }

    #[test]
    fn ewma_stays_within_input_hull(eps in 0.01..1.0f64, xs in prop::collection::vec(-1.0..1.0f64, 1..128)) {
        let mut e = rths_math::Ewma::new(eps);
        for &x in &xs {
            e.update(x);
            prop_assert!(e.value().abs() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn accumulator_agrees_with_batch(v in finite_vec(128)) {
        let mut acc = stats::Accumulator::new();
        for &x in &v {
            acc.push(x);
        }
        let scale = stats::mean(&v).abs().max(1.0);
        prop_assert!((acc.mean() - stats::mean(&v)).abs() / scale < 1e-9);
        let var_scale = stats::variance(&v).max(1.0);
        prop_assert!((acc.variance() - stats::variance(&v)).abs() / var_scale < 1e-6);
    }

    #[test]
    fn transpose_is_involution(rows in 1usize..8, cols in 1usize..8, seed in any::<u64>()) {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let data: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
        let m = Matrix::from_vec(rows, cols, data);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matrix_vec_mul_linear(a in -10.0..10.0f64) {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = [a, 2.0 * a];
        let mv = m.mul_vec(&v);
        let unit = m.mul_vec(&[1.0, 2.0]);
        prop_assert!((mv[0] - a * unit[0]).abs() < 1e-9 * (1.0 + unit[0].abs() * a.abs()));
        prop_assert!((mv[1] - a * unit[1]).abs() < 1e-9 * (1.0 + unit[1].abs() * a.abs()));
    }

    #[test]
    fn quantile_is_monotone(v in finite_vec(64), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = stats::quantile(&v, lo).unwrap();
        let b = stats::quantile(&v, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn argmax_returns_maximal_element(v in finite_vec(64)) {
        let i = vector::argmax(&v).unwrap();
        for &x in &v {
            prop_assert!(v[i] >= x);
        }
    }
}
