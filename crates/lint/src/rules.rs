//! The determinism rule set and the per-file check engine.
//!
//! Every rule is grounded in a hazard this workspace actually hit (or
//! structurally pins against regression):
//!
//! * **R1 `env-mutation`** — `std::env::set_var`/`remove_var` are
//!   process-global and race concurrent readers under the multithreaded
//!   test harness; PR 4 fixed exactly such a race and three sites crept
//!   back. Banned everywhere except the one serialized guard,
//!   `crates/par/src/env.rs`.
//! * **R2 `hash-order`** — `HashMap`/`HashSet` iteration order is
//!   nondeterministic, so a float reduction folded over one feeds
//!   hash-order into state. Banned in state-feeding crates; the harness
//!   crates (`bench`, `obs`) and this linter are exempt.
//! * **R3 `wall-clock`** — `Instant::now`/`SystemTime` outside the
//!   observability/bench allowlist violates the timing-is-read-never-
//!   fed-back contract the obs layer is built on.
//! * **R4 `entropy-rng`** — `thread_rng`/`from_entropy`/`OsRng` seed
//!   from the OS; every RNG stream in the workspace must derive from
//!   the run seed or replays are impossible. Banned everywhere.
//! * **R5 `unsafe-safety`** — every `unsafe` token needs a `// SAFETY:`
//!   comment within the two lines above it (or on its line), and every
//!   crate root must carry `#![forbid(unsafe_code)]` so the rule stays
//!   structural while the workspace is unsafe-free.
//!
//! # The escape hatch
//!
//! A violation can be suppressed by a **plain** (non-doc) comment on the
//! same line or the line directly above:
//!
//! ```text
//! // rths: allow(<rule-id>): <justification, at least 8 characters>
//! ```
//!
//! The justification is mandatory; an allow with a bad rule id or a
//! missing/short justification is itself a diagnostic (`allow-syntax`),
//! and an allow that suppresses nothing is a diagnostic (`stale-allow`)
//! — so the escape hatch can never rot silently. Doc comments are never
//! parsed as allows, which is what lets this paragraph exist.

use crate::lexer::{lex, Comment, Lexed};
use crate::report::Diagnostic;

/// Minimum justification length for an allow comment: long enough that
/// "ok" or "todo" cannot pass review as a reason.
pub const MIN_JUSTIFICATION: usize = 8;

/// The five determinism rules, in severity-of-history order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    EnvMutation,
    HashOrder,
    WallClock,
    EntropyRng,
    UnsafeSafety,
}

/// Every rule, in the order reports list them.
pub const ALL_RULES: [Rule; 5] =
    [Rule::EnvMutation, Rule::HashOrder, Rule::WallClock, Rule::EntropyRng, Rule::UnsafeSafety];

impl Rule {
    /// The stable id used in diagnostics, allow comments, and the JSON
    /// report.
    pub fn id(self) -> &'static str {
        match self {
            Rule::EnvMutation => "env-mutation",
            Rule::HashOrder => "hash-order",
            Rule::WallClock => "wall-clock",
            Rule::EntropyRng => "entropy-rng",
            Rule::UnsafeSafety => "unsafe-safety",
        }
    }

    /// Parses an allow-comment rule id.
    pub fn from_id(id: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|r| r.id() == id)
    }

    /// One-line description for `--rules` output and the JSON report.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::EnvMutation => {
                "no std::env::set_var/remove_var outside the serialized guard rths_par::env"
            }
            Rule::HashOrder => {
                "no HashMap/HashSet in state-feeding crates (nondeterministic iteration order)"
            }
            Rule::WallClock => {
                "no Instant::now/SystemTime outside crates/obs and crates/bench (timing is read, never fed back)"
            }
            Rule::EntropyRng => {
                "no entropy-seeded RNG (thread_rng/from_entropy/OsRng); streams derive from the run seed"
            }
            Rule::UnsafeSafety => {
                "every `unsafe` needs a // SAFETY: comment; every crate root needs #![forbid(unsafe_code)]"
            }
        }
    }

    /// Whether the rule is checked at all for the file at workspace-
    /// relative path `rel` (forward-slash separated).
    fn applies_to(self, rel: &str) -> bool {
        match self {
            // The one sanctioned mutation site: the serialized env guard.
            Rule::EnvMutation => rel != "crates/par/src/env.rs",
            // Harness/tooling crates never feed simulation state; the
            // linter itself is tooling too.
            Rule::HashOrder => {
                !rel.starts_with("crates/bench/")
                    && !rel.starts_with("crates/obs/")
                    && !rel.starts_with("crates/lint/")
            }
            // The observability layer exists to read the clock, and the
            // bench harness times runs; neither feeds results back.
            Rule::WallClock => {
                !rel.starts_with("crates/obs/") && !rel.starts_with("crates/bench/")
            }
            Rule::EntropyRng | Rule::UnsafeSafety => true,
        }
    }
}

/// Whether `rel` is a crate root that must carry
/// `#![forbid(unsafe_code)]` (the umbrella `src/lib.rs` or any
/// `crates/<name>/src/lib.rs`).
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"))
}

/// The outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Rule violations that survived suppression.
    pub violations: Vec<Diagnostic>,
    /// Violations suppressed by a valid allow comment.
    pub suppressed: Vec<Diagnostic>,
    /// Allow comments that suppressed nothing (`stale-allow`).
    pub stale_allows: Vec<Diagnostic>,
    /// Malformed allow comments (`allow-syntax`).
    pub bad_allows: Vec<Diagnostic>,
}

impl FileReport {
    /// True when the file carries no violations and no allow problems.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stale_allows.is_empty() && self.bad_allows.is_empty()
    }
}

/// A parsed, valid allow comment awaiting a violation to suppress.
struct Allow {
    rule: Rule,
    /// Line the comment ends on; it covers that line and the next.
    end_line: u32,
    used: bool,
}

/// Lints one file's source. `rel` is the workspace-relative path with
/// forward slashes — rule scoping and the crate-root check key off it.
pub fn check_file(rel: &str, source: &str) -> FileReport {
    let lexed = lex(source);
    let mut report = FileReport::default();
    let mut allows = parse_allows(rel, &lexed.comments, &mut report.bad_allows);
    let mut candidates: Vec<(Rule, u32, String)> = Vec::new();

    for rule in ALL_RULES {
        if rule.applies_to(rel) {
            scan_rule(rule, rel, &lexed, &mut candidates);
        }
    }

    for (rule, line, message) in candidates {
        let diag = Diagnostic { file: rel.to_string(), line, rule: rule.id(), message };
        // First unused allow in range wins; each allow covers its own
        // line and the one below, and may suppress several violations
        // of its rule on those lines.
        let hit = allows
            .iter_mut()
            .find(|a| a.rule == rule && (line == a.end_line || line == a.end_line + 1));
        match hit {
            Some(allow) => {
                allow.used = true;
                report.suppressed.push(diag);
            }
            None => report.violations.push(diag),
        }
    }

    for allow in allows.iter().filter(|a| !a.used) {
        report.stale_allows.push(Diagnostic {
            file: rel.to_string(),
            line: allow.end_line,
            rule: "stale-allow",
            message: format!(
                "allow({}) suppresses nothing on line {} or {} — remove it",
                allow.rule.id(),
                allow.end_line,
                allow.end_line + 1
            ),
        });
    }

    report.violations.sort_by_key(|d| d.line);
    report
}

/// Extracts allow comments. Only **plain** comments participate; the
/// marker must open the comment (`// rths: allow(...)`), so prose that
/// mentions the syntax mid-sentence stays prose.
fn parse_allows(rel: &str, comments: &[Comment], bad: &mut Vec<Diagnostic>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for comment in comments.iter().filter(|c| !c.doc) {
        let body = comment.text.trim();
        let Some(rest) = body.strip_prefix("rths:") else {
            continue;
        };
        let mut push_bad = |message: String| {
            bad.push(Diagnostic {
                file: rel.to_string(),
                line: comment.line,
                rule: "allow-syntax",
                message,
            });
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            push_bad("expected `rths: allow(<rule-id>): <justification>`".to_string());
            continue;
        };
        let Some(close) = rest.find(')') else {
            push_bad("unclosed rule id: expected `allow(<rule-id>)`".to_string());
            continue;
        };
        let id = rest[..close].trim();
        let Some(rule) = Rule::from_id(id) else {
            let known: Vec<&str> = ALL_RULES.iter().map(|r| r.id()).collect();
            push_bad(format!("unknown rule `{id}` (known: {})", known.join(", ")));
            continue;
        };
        let after = rest[close + 1..].trim_start();
        let justification = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if justification.len() < MIN_JUSTIFICATION {
            push_bad(format!(
                "allow({id}) needs a justification of at least {MIN_JUSTIFICATION} characters \
                 after a colon",
            ));
            continue;
        }
        allows.push(Allow { rule, end_line: comment.end_line, used: false });
    }
    allows
}

/// Appends `(rule, line, message)` candidates for one rule over one
/// lexed file.
fn scan_rule(rule: Rule, rel: &str, lexed: &Lexed, out: &mut Vec<(Rule, u32, String)>) {
    match rule {
        Rule::EnvMutation => {
            for (i, token) in lexed.tokens.iter().enumerate() {
                if let Some(name @ ("set_var" | "remove_var")) = lexed.ident(i) {
                    out.push((
                        rule,
                        token.line,
                        format!(
                            "`{name}` mutates the process environment (racy under the \
                             multithreaded harness); route through `rths_par::env::with_var`"
                        ),
                    ));
                }
            }
        }
        Rule::HashOrder => {
            for (i, token) in lexed.tokens.iter().enumerate() {
                if let Some(name @ ("HashMap" | "HashSet" | "hash_map" | "hash_set")) =
                    lexed.ident(i)
                {
                    out.push((
                        rule,
                        token.line,
                        format!(
                            "`{name}` in a state-feeding crate: iteration order is \
                             nondeterministic; use BTreeMap/BTreeSet or an index-keyed Vec"
                        ),
                    ));
                }
            }
        }
        Rule::WallClock => {
            for (i, token) in lexed.tokens.iter().enumerate() {
                match lexed.ident(i) {
                    Some("SystemTime") => out.push((
                        rule,
                        token.line,
                        "`SystemTime` outside the obs/bench allowlist: wall-clock time must \
                         never reach simulation state"
                            .to_string(),
                    )),
                    Some("Instant")
                        if lexed.punct(i + 1, ':')
                            && lexed.punct(i + 2, ':')
                            && lexed.ident(i + 3) == Some("now") =>
                    {
                        out.push((
                            rule,
                            token.line,
                            "`Instant::now` outside the obs/bench allowlist: timing is \
                             read-only observability and must never feed back"
                                .to_string(),
                        ));
                    }
                    _ => {}
                }
            }
        }
        Rule::EntropyRng => {
            for (i, token) in lexed.tokens.iter().enumerate() {
                if let Some(name @ ("thread_rng" | "from_entropy" | "OsRng")) = lexed.ident(i) {
                    out.push((
                        rule,
                        token.line,
                        format!(
                            "`{name}` seeds from OS entropy: every stream must derive from \
                             the run seed or trajectories cannot replay"
                        ),
                    ));
                }
            }
        }
        Rule::UnsafeSafety => {
            for (i, token) in lexed.tokens.iter().enumerate() {
                if lexed.ident(i) == Some("unsafe") {
                    let line = token.line;
                    let documented = lexed.comments.iter().any(|c| {
                        c.text.contains("SAFETY:")
                            && c.end_line <= line
                            && c.end_line + 2 >= line
                    });
                    if !documented {
                        out.push((
                            rule,
                            line,
                            "`unsafe` without a `// SAFETY:` comment directly above it"
                                .to_string(),
                        ));
                    }
                }
            }
            if is_crate_root(rel) {
                let has_forbid = (0..lexed.tokens.len()).any(|i| {
                    lexed.ident(i) == Some("forbid")
                        && lexed.punct(i + 1, '(')
                        && lexed.ident(i + 2) == Some("unsafe_code")
                });
                if !has_forbid {
                    out.push((
                        rule,
                        1,
                        "crate root is missing `#![forbid(unsafe_code)]` — the workspace is \
                         unsafe-free and stays that way structurally"
                            .to_string(),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IN_SCOPE: &str = "crates/sim/src/example.rs";

    #[test]
    fn rule_ids_round_trip() {
        for rule in ALL_RULES {
            assert_eq!(Rule::from_id(rule.id()), Some(rule));
        }
        assert_eq!(Rule::from_id("no-such-rule"), None);
    }

    #[test]
    fn violation_lines_are_exact() {
        let src = "fn f() {\n    let a = 1;\n    std::env::set_var(\"K\", \"v\");\n}\n";
        let report = check_file(IN_SCOPE, src);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].line, 3);
        assert_eq!(report.violations[0].rule, "env-mutation");
    }

    #[test]
    fn sanctioned_env_guard_is_exempt() {
        let src =
            "fn apply() { std::env::set_var(\"K\", \"v\"); std::env::remove_var(\"K\"); }";
        assert_eq!(check_file("crates/par/src/env.rs", src).violations.len(), 0);
        assert_eq!(check_file(IN_SCOPE, src).violations.len(), 2);
    }

    #[test]
    fn wall_clock_scope_allowlists_obs_and_bench() {
        let src = "fn t() -> std::time::Instant { std::time::Instant::now() }";
        assert_eq!(check_file(IN_SCOPE, src).violations.len(), 1);
        assert!(check_file("crates/obs/src/span.rs", src).is_clean());
        assert!(check_file("crates/bench/src/bin/bench_x.rs", src).is_clean());
        // The bare `Instant` type (no ::now) is fine anywhere: passing
        // an origin around is not reading the clock.
        let ty_only = "fn keep(t: std::time::Instant) -> std::time::Instant { t }";
        assert!(check_file(IN_SCOPE, ty_only).is_clean());
    }

    #[test]
    fn hash_order_scope_exempts_harness_crates() {
        let src = "use std::collections::HashMap;";
        assert_eq!(check_file(IN_SCOPE, src).violations.len(), 1);
        assert!(check_file("crates/bench/src/util.rs", src).is_clean());
        assert!(check_file("crates/obs/src/util.rs", src).is_clean());
    }

    #[test]
    fn allow_must_open_the_comment_and_doc_comments_never_arm() {
        // Mid-sentence mention: not an allow, and the violation stands.
        let prose = "// the syntax is rths: allow(env-mutation): like this\n\
                     fn f() { std::env::set_var(\"K\", \"v\"); }\n";
        let report = check_file(IN_SCOPE, prose);
        assert_eq!(report.violations.len(), 1);
        assert!(report.bad_allows.is_empty());
        // Doc comment with perfectly valid allow syntax: ignored.
        let doc = "/// rths: allow(env-mutation): documented example, not a directive\n\
                   fn f() { std::env::set_var(\"K\", \"v\"); }\n";
        let report = check_file(IN_SCOPE, doc);
        assert_eq!(report.violations.len(), 1);
        assert!(report.stale_allows.is_empty());
    }

    #[test]
    fn one_allow_can_cover_same_line_or_next_line() {
        let above = "// rths: allow(env-mutation): fixture exercising the line-above form\n\
                     fn f() { std::env::set_var(\"K\", \"v\"); }\n";
        let report = check_file(IN_SCOPE, above);
        assert!(report.violations.is_empty());
        assert_eq!(report.suppressed.len(), 1);
        let trailing = "fn f() { std::env::set_var(\"K\", \"v\"); } // rths: allow(env-mutation): trailing form\n";
        let report = check_file(IN_SCOPE, trailing);
        assert!(report.violations.is_empty());
        assert_eq!(report.suppressed.len(), 1);
        // Two lines below: out of range, violation survives, allow stale.
        let far = "// rths: allow(env-mutation): too far away to apply\n\n\
                   fn f() { std::env::set_var(\"K\", \"v\"); }\n";
        let report = check_file(IN_SCOPE, far);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.stale_allows.len(), 1);
    }

    #[test]
    fn crate_roots_must_forbid_unsafe_code() {
        let bare = "pub fn f() {}";
        let report = check_file("crates/fake/src/lib.rs", bare);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "unsafe-safety");
        assert_eq!(report.violations[0].line, 1);
        let fixed = "#![forbid(unsafe_code)]\npub fn f() {}";
        assert!(check_file("crates/fake/src/lib.rs", fixed).is_clean());
        // Non-root files carry no such obligation.
        assert!(check_file("crates/fake/src/other.rs", bare).is_clean());
        assert!(check_file("src/lib.rs", bare).violations.len() == 1);
    }

    #[test]
    fn safety_comment_window_is_two_lines() {
        let ok = "fn f(p: *const u8) -> u8 {\n    // SAFETY: fixture — caller upholds validity.\n    unsafe { *p }\n}";
        assert!(check_file(IN_SCOPE, ok).is_clean());
        let gap = "fn f(p: *const u8) -> u8 {\n    // SAFETY: fixture — caller upholds validity.\n\n\n    unsafe { *p }\n}";
        assert_eq!(check_file(IN_SCOPE, gap).violations.len(), 1);
    }
}
