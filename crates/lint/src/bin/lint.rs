//! The `lint` binary: walks a workspace tree, prints diagnostics, and
//! optionally writes the machine-readable JSON report.
//!
//! ```text
//! cargo run -p rths_lint --bin lint -- [--json <path>] [--rules] [<root>]
//! ```
//!
//! * `<root>` defaults to the current directory (CI runs from the repo
//!   root).
//! * `--json <path>` writes the report JSON (also honoured via the
//!   `RTHS_LINT_JSON` environment variable, flag wins).
//! * `--rules` prints the rule table and exits.
//!
//! Exit codes: `0` clean, `1` violations / stale allows / malformed
//! allows, `2` usage or I/O error — so CI can gate on the plain exit
//! status.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json_path = std::env::var("RTHS_LINT_JSON").ok().map(PathBuf::from);
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(path) => json_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("lint: --json requires a path");
                    return ExitCode::from(2);
                }
            },
            "--rules" => {
                for rule in rths_lint::ALL_RULES {
                    println!("{:<14} {}", rule.id(), rule.summary());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: lint [--json <path>] [--rules] [<root>]");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("lint: unknown flag `{flag}` (try --help)");
                return ExitCode::from(2);
            }
            path => root = PathBuf::from(path),
        }
    }

    let report = match rths_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("lint: cannot walk {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    for diag in report.violations.iter().chain(&report.bad_allows).chain(&report.stale_allows) {
        println!("{diag}");
    }

    if let Some(path) = json_path {
        if let Err(err) = std::fs::write(&path, report.to_json()) {
            eprintln!("lint: cannot write {}: {err}", path.display());
            return ExitCode::from(2);
        }
        println!("report: {}", path.display());
    }

    println!(
        "lint: {} files, {} violation(s), {} suppressed by allow, {} stale allow(s), \
         {} malformed allow(s)",
        report.files_scanned,
        report.violations.len(),
        report.suppressed.len(),
        report.stale_allows.len(),
        report.bad_allows.len()
    );
    if report.is_clean() {
        println!("lint: clean — the bit-equivalence contract holds statically");
        ExitCode::SUCCESS
    } else {
        println!("lint: FAILED — fix the sites above or justify with `// rths: allow(<rule>): <why>`");
        ExitCode::from(1)
    }
}
