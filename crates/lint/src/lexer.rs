//! A hand-rolled Rust lexer, just deep enough to lint on.
//!
//! The rule engine needs exactly two things a `grep` cannot give it:
//! **identifier tokens with line numbers** (so `set_var` inside a string
//! literal, a comment, or a raw string never fires a rule) and **the
//! comment stream** (so `// SAFETY:` and `// rths: allow(...)` comments
//! can be associated with the code lines they annotate). Everything else
//! — numeric literal grammar, operator splitting, keyword
//! classification — is deliberately loose: a banned name is a banned
//! name whether it lexes as a keyword or an identifier.
//!
//! What *is* handled precisely, because getting it wrong produces false
//! positives or (worse) false negatives:
//!
//! * string literals with escapes (`"a \" set_var"`),
//! * raw strings with any hash depth (`r#"..."#`, `br##"..."##`) — no
//!   escape processing, terminated only by a quote followed by the
//!   opening hash count,
//! * byte strings and byte char literals (`b"..."`, `b'\''`),
//! * line and **nested** block comments (Rust block comments nest),
//! * doc-vs-plain comment classification (`///`, `//!`, `/**`, `/*!`) —
//!   allow-comments are only recognized in plain comments, so prose
//!   *describing* the escape-hatch syntax can never arm it,
//! * raw identifiers (`r#unsafe` is an identifier named `unsafe`, not
//!   the `unsafe` keyword),
//! * char literals vs lifetimes (`'a'` vs `'a`, including `'\''`).

/// A lexed token: the classification plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
}

/// Token classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// A plain identifier or keyword (`set_var`, `unsafe`, `HashMap`).
    Ident(String),
    /// A raw identifier: `r#name` (never matches keyword-based rules).
    RawIdent(String),
    /// A single punctuation character (`::` is two `:` puncts).
    Punct(char),
    /// Any literal; the payload text is irrelevant to every rule.
    Literal(Lit),
}

/// Literal flavor (kept for lexer tests; rules ignore all of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lit {
    Str,
    RawStr,
    ByteStr,
    Char,
    Num,
    Lifetime,
}

/// A comment with its delimiters stripped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Text between the delimiters (after `//` / inside `/* */`).
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (== `line` for line comments).
    pub end_line: u32,
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`).
    pub doc: bool,
}

/// The full lex of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// The identifier name at token index `i`, if that token is a plain
    /// (non-raw) identifier.
    pub fn ident(&self, i: usize) -> Option<&str> {
        match self.tokens.get(i) {
            Some(Token { kind: Tok::Ident(name), .. }) => Some(name),
            _ => None,
        }
    }

    /// Whether token `i` is the punctuation character `c`.
    pub fn punct(&self, i: usize, c: char) -> bool {
        matches!(self.tokens.get(i), Some(Token { kind: Tok::Punct(p), .. }) if *p == c)
    }
}

/// Lexes `src`, never failing: malformed input (unterminated literals,
/// stray punctuation) degrades to best-effort tokens rather than an
/// error, because a linter must keep scanning the rest of the tree.
pub fn lex(src: &str) -> Lexed {
    Lexer { chars: src.chars().collect(), i: 0, line: 1, out: Lexed::default() }.run()
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).copied()
    }

    /// Consumes one char, counting newlines.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(c) = c {
            self.i += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: Tok, line: u32) {
        self.out.tokens.push(Token { kind, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(Lit::Str),
                '\'' => self.quote(),
                c if c.is_whitespace() => {
                    self.bump();
                }
                c if is_ident_start(c) => self.ident_or_prefixed_literal(),
                c if c.is_ascii_digit() => self.number(),
                c => {
                    let line = self.line;
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        // `///` and `//!` are doc comments; `////...` is plain again.
        let doc = match self.peek(0) {
            Some('!') => true,
            Some('/') => self.peek(1) != Some('/'),
            _ => false,
        };
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { text, line, end_line: line, doc });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        // `/**` and `/*!` are doc comments, except the empty `/**/`.
        let doc = match self.peek(0) {
            Some('!') => true,
            Some('*') => self.peek(1) != Some('/'),
            _ => false,
        };
        let mut text = String::new();
        let mut depth = 1usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        let end_line = self.line;
        self.out.comments.push(Comment { text, line, end_line, doc });
    }

    /// An escape-aware double-quoted literal (plain or byte string);
    /// assumes the cursor sits on the opening quote.
    fn string(&mut self, kind: Lit) {
        let line = self.line;
        self.bump();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(Tok::Literal(kind), line);
    }

    /// A raw (byte) string: cursor on the opening quote, `hashes` already
    /// consumed. No escapes; ends at `"` followed by `hashes` `#`s.
    fn raw_string(&mut self, hashes: usize, kind: Lit) {
        let line = self.line;
        self.bump();
        while let Some(c) = self.bump() {
            if c == '"' && (0..hashes).all(|k| self.peek(k) == Some('#')) {
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(Tok::Literal(kind), line);
    }

    /// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char literal);
    /// cursor on the opening quote.
    fn quote(&mut self) {
        let line = self.line;
        if self.peek(1) == Some('\\') {
            // Escaped char literal: consume up to the closing quote.
            self.bump(); // '
            self.bump(); // backslash
            self.bump(); // escaped char
            while let Some(c) = self.bump() {
                if c == '\'' {
                    break;
                }
            }
            self.push(Tok::Literal(Lit::Char), line);
            return;
        }
        if self.peek(1).is_some_and(is_ident_start) {
            // Scan the identifier run after the quote: a closing quote
            // right after it means a char literal, otherwise a lifetime.
            let mut k = 2;
            while self.peek(k).is_some_and(is_ident_continue) {
                k += 1;
            }
            if self.peek(k) == Some('\'') {
                for _ in 0..=k {
                    self.bump();
                }
                self.push(Tok::Literal(Lit::Char), line);
            } else {
                self.bump(); // '
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                self.push(Tok::Literal(Lit::Lifetime), line);
            }
            return;
        }
        // `'('`, `'"'`, … — a one-char literal of a non-ident char.
        self.bump(); // '
        self.bump(); // the char
        if self.peek(0) == Some('\'') {
            self.bump();
        }
        self.push(Tok::Literal(Lit::Char), line);
    }

    /// An identifier, unless it is the prefix of a raw string (`r"`,
    /// `r#"`), raw identifier (`r#name`), byte string (`b"`), byte char
    /// (`b'`), or raw byte string (`br"`, `br#"`).
    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let start = self.i;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let word: String = self.chars[start..self.i].iter().collect();
        match (word.as_str(), self.peek(0)) {
            ("r", Some('"')) => self.raw_string(0, Lit::RawStr),
            ("br", Some('"')) => self.raw_string(0, Lit::RawStr),
            ("r" | "br", Some('#')) => {
                let mut hashes = 0;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    self.raw_string(hashes, Lit::RawStr);
                } else if word == "r" && self.peek(1).is_some_and(is_ident_start) {
                    // Raw identifier: r#name.
                    self.bump(); // #
                    let name_start = self.i;
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    let name: String = self.chars[name_start..self.i].iter().collect();
                    self.push(Tok::RawIdent(name), line);
                } else {
                    self.push(Tok::Ident(word), line);
                }
            }
            ("b", Some('"')) => self.string(Lit::ByteStr),
            ("b", Some('\'')) => self.quote(),
            _ => self.push(Tok::Ident(word), line),
        }
    }

    /// Loose numeric literal: consumes alphanumerics/underscores, a dot
    /// only when followed by a digit (so `0..n` stays a range), and an
    /// exponent sign right after `e`/`E`.
    fn number(&mut self) {
        let line = self.line;
        let mut prev = '0';
        while let Some(c) = self.peek(0) {
            let keep = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()))
                || ((c == '+' || c == '-') && (prev == 'e' || prev == 'E'));
            if !keep {
                break;
            }
            prev = c;
            self.bump();
        }
        self.push(Tok::Literal(Lit::Num), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(name) => Some(name),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn banned_names_inside_strings_are_not_idents() {
        let src = r#"let x = "std::env::set_var(\"a\", b) and HashMap";"#;
        assert_eq!(idents(src), ["let", "x"]);
    }

    #[test]
    fn banned_names_inside_comments_are_not_idents() {
        let src =
            "// set_var here\n/* HashMap /* nested Instant::now */ thread_rng */\nfn f() {}";
        assert_eq!(idents(src), ["fn", "f"]);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[1].line, 2);
        assert!(lexed.comments[1].text.contains("nested Instant::now"));
    }

    #[test]
    fn raw_strings_with_hashes_hide_their_contents() {
        let src = r###"const A: &str = r#"quote " then set_var"#; fn g() {}"###;
        assert_eq!(idents(src), ["const", "A", "str", "fn", "g"]);
        // A quote+hash inside a deeper raw string does not terminate it.
        let src2 = "const B: &str = r##\"inner \"# still OsRng inside\"##; fn h() {}";
        assert_eq!(idents(src2), ["const", "B", "str", "fn", "h"]);
    }

    #[test]
    fn byte_strings_and_byte_chars_lex_as_literals() {
        let src = "const A: &[u8] = b\"set_var\"; const B: u8 = b'\\''; fn f() {}";
        assert_eq!(idents(src), ["const", "A", "u8", "const", "B", "u8", "fn", "f"]);
    }

    #[test]
    fn raw_identifier_is_not_the_keyword() {
        let lexed = lex("fn r#unsafe() {} fn r#type() {}");
        let raw: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                Tok::RawIdent(name) => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(raw, ["unsafe", "type"]);
        assert!(!idents("fn r#unsafe() {}").contains(&"unsafe".to_string()));
    }

    #[test]
    fn lifetimes_and_char_literals_disambiguate() {
        let lexed = lex("fn f<'a>(x: &'a u64) -> char { 'x' } const Q: char = '\\'';");
        let lits: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                Tok::Literal(l) => Some(l),
                _ => None,
            })
            .collect();
        assert_eq!(lits, [Lit::Lifetime, Lit::Lifetime, Lit::Char, Lit::Char]);
        // `'static` in statics: lifetime, not an unterminated char.
        assert_eq!(idents("fn g(x: &'static str) {}"), ["fn", "g", "x", "str"]);
    }

    #[test]
    fn doc_comments_are_classified() {
        let lexed = lex("/// doc\n//! inner doc\n// plain\n//// plain again\n/** doc */\n/*! doc */\n/* plain */\n/**/");
        let docs: Vec<bool> = lexed.comments.iter().map(|c| c.doc).collect();
        assert_eq!(docs, [true, true, false, false, true, true, false, false]);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "const A: &str = \"line\nbreak\";\n/* two\nlines */\nfn f() {}\n";
        let lexed = lex(src);
        let f = lexed
            .tokens
            .iter()
            .find(|t| matches!(&t.kind, Tok::Ident(n) if n == "fn"))
            .expect("fn token");
        assert_eq!(f.line, 5);
        let block = &lexed.comments[0];
        assert_eq!((block.line, block.end_line), (3, 4));
    }

    #[test]
    fn ranges_do_not_glue_to_numbers() {
        let src = "for i in 0..n { let x = 1.5e-3; }";
        assert_eq!(idents(src), ["for", "i", "in", "n", "let", "x"]);
        let lexed = lex(src);
        let dots = lexed.tokens.iter().filter(|t| matches!(t.kind, Tok::Punct('.'))).count();
        assert_eq!(dots, 2, "0..n must lex as Num, '.', '.', Ident");
    }
}
