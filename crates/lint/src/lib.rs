//! `rths_lint` — the workspace determinism lint.
//!
//! The cardinal invariant of this repository is that the simulator, the
//! threaded actor runtime, and the reactor produce `f64::to_bits`-
//! identical trajectories at any `RTHS_THREADS`. That contract was
//! enforced only *dynamically* (equivalence suites, obs-neutrality),
//! which means a nondeterminism hazard merges silently until some test
//! seed happens to trip it. This crate makes the contract a **static
//! property of the source**: a dependency-free analysis pass with a
//! hand-rolled Rust lexer ([`lexer`]) and a small rule engine
//! ([`rules`]) that walks every workspace `.rs` file ([`walk`]) and
//! reports `file:line:rule` diagnostics plus a machine-readable JSON
//! report ([`report`]).
//!
//! Run it locally with:
//!
//! ```text
//! cargo run -p rths_lint --bin lint
//! ```
//!
//! and see the README's "Static analysis: the determinism lint" section
//! for the rule table and the escape-hatch policy. The pass is wired
//! into CI as a hard gate, and `cargo test` runs it over the real tree
//! too (`tests/workspace_clean.rs`), so the tier-1 suite itself rejects
//! new hazards.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use std::io;
use std::path::Path;

pub use report::{Diagnostic, LintReport};
pub use rules::{check_file, FileReport, Rule, ALL_RULES};

/// Lints a single file's source text. `rel` is the workspace-relative
/// path with forward slashes — rule scoping keys off it. This is the
/// entry point the fixture tests drive.
pub fn lint_source(rel: &str, source: &str) -> FileReport {
    rules::check_file(rel, source)
}

/// Walks the workspace tree at `root` and lints every `.rs` file,
/// aggregating per-file results into one [`LintReport`] (files in
/// sorted path order, so output is byte-stable).
///
/// # Errors
///
/// Returns the first I/O error from the directory walk; unreadable or
/// non-UTF-8 file *contents* degrade to lossy text rather than aborting
/// the run.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport { root: root.display().to_string(), ..LintReport::default() };
    for path in walk::workspace_rs_files(root)? {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        let bytes = std::fs::read(&path)?;
        let source = String::from_utf8_lossy(&bytes);
        let file = rules::check_file(&rel, &source);
        report.files_scanned += 1;
        report.violations.extend(file.violations);
        report.suppressed.extend(file.suppressed);
        report.stale_allows.extend(file.stale_allows);
        report.bad_allows.extend(file.bad_allows);
    }
    Ok(report)
}
