//! Deterministic workspace walker.
//!
//! Collects every `.rs` file under the root in **sorted path order**
//! (so diagnostics and the JSON report are byte-stable run to run),
//! skipping trees that are not workspace source:
//!
//! * `target/` — build output,
//! * `vendor/` — offline stand-ins for crates.io dependencies (excluded
//!   from the workspace; they are third-party idiom, not our contract),
//! * `.git/` and every other dot-directory,
//! * any `tests/fixtures/` directory — lint fixtures *contain* seeded
//!   violations on purpose and are test data, never compiled.

use std::io;
use std::path::{Path, PathBuf};

/// Returns every lintable `.rs` file under `root`, sorted.
pub fn workspace_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    visit(root, &mut files)?;
    files.sort();
    Ok(files)
}

fn visit(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name.starts_with('.') || name == "target" || name == "vendor" {
                continue;
            }
            if name == "fixtures" && dir.file_name().is_some_and(|d| d == "tests") {
                continue;
            }
            visit(&path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walker_skips_vendor_target_and_fixture_dirs() {
        // The lint crate's own tree is the probe: its tests/fixtures
        // directory exists and holds .rs files, none of which may be
        // collected; src/*.rs must all be there, sorted.
        let crate_root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = workspace_rs_files(crate_root).unwrap();
        assert!(!files.is_empty());
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk order must be sorted");
        for f in &files {
            let s = f.to_string_lossy().replace('\\', "/");
            assert!(!s.contains("/tests/fixtures/"), "fixture file collected: {s}");
        }
        assert!(files.iter().any(|f| f.ends_with("src/lexer.rs")));
        assert!(files.iter().any(|f| f.ends_with("src/bin/lint.rs")));
    }
}
