//! Diagnostics and the machine-readable JSON report.
//!
//! The JSON writer is hand-rolled (the no-registry build bans external
//! crates) and emits a fixed, versioned shape so CI tooling can consume
//! the artifact without guessing:
//!
//! ```json
//! {
//!   "version": 1,
//!   "root": "…", "files_scanned": 87, "clean": true,
//!   "rules": [{"id": "env-mutation", "summary": "…"}, …],
//!   "violations":   [{"file": "…", "line": 3, "rule": "…", "message": "…"}, …],
//!   "suppressed":   […],
//!   "stale_allows": […],
//!   "bad_allows":   […]
//! }
//! ```

use crate::rules::ALL_RULES;

/// One `file:line:rule` finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Stable rule id (`env-mutation`, …, or the meta rules
    /// `stale-allow` / `allow-syntax`).
    pub rule: &'static str,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// The aggregated outcome of linting a workspace tree.
#[derive(Debug, Default)]
pub struct LintReport {
    /// The root the walk started from, as given.
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Violations that survived suppression — any entry fails the run.
    pub violations: Vec<Diagnostic>,
    /// Violations suppressed by a valid, justified allow comment.
    pub suppressed: Vec<Diagnostic>,
    /// Allow comments that suppressed nothing — fail the run (the
    /// self-check that rejects rotted escape hatches).
    pub stale_allows: Vec<Diagnostic>,
    /// Malformed allow comments — fail the run.
    pub bad_allows: Vec<Diagnostic>,
}

impl LintReport {
    /// A run passes only with zero violations, zero stale allows, and
    /// zero malformed allows.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stale_allows.is_empty() && self.bad_allows.is_empty()
    }

    /// Serializes the report (stable shape, see module docs).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"root\": \"{}\",\n", esc(&self.root)));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str("  \"rules\": [\n");
        for (i, rule) in ALL_RULES.into_iter().enumerate() {
            let comma = if i + 1 < ALL_RULES.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"summary\": \"{}\"}}{comma}\n",
                rule.id(),
                esc(rule.summary())
            ));
        }
        out.push_str("  ],\n");
        push_diag_array(&mut out, "violations", &self.violations, ",");
        push_diag_array(&mut out, "suppressed", &self.suppressed, ",");
        push_diag_array(&mut out, "stale_allows", &self.stale_allows, ",");
        push_diag_array(&mut out, "bad_allows", &self.bad_allows, "");
        out.push_str("}\n");
        out
    }
}

fn push_diag_array(out: &mut String, key: &str, diags: &[Diagnostic], trailing: &str) {
    if diags.is_empty() {
        out.push_str(&format!("  \"{key}\": []{trailing}\n"));
        return;
    }
    out.push_str(&format!("  \"{key}\": [\n"));
    for (i, d) in diags.iter().enumerate() {
        let comma = if i + 1 < diags.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{comma}\n",
            esc(&d.file),
            d.line,
            d.rule,
            esc(&d.message)
        ));
    }
    out.push_str(&format!("  ]{trailing}\n"));
}

/// JSON string escaping: backslash, quote, and control characters.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shape() {
        let report = LintReport {
            root: "a\\b".to_string(),
            files_scanned: 2,
            violations: vec![Diagnostic {
                file: "crates/x/src/lib.rs".to_string(),
                line: 7,
                rule: "wall-clock",
                message: "uses \"quotes\"\nand a newline".to_string(),
            }],
            ..LintReport::default()
        };
        let json = report.to_json();
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"root\": \"a\\\\b\""));
        assert!(json.contains("\\\"quotes\\\"\\nand a newline"));
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"stale_allows\": []"));
        // Every rule appears in the rules table.
        for rule in ALL_RULES {
            assert!(json.contains(rule.id()), "missing rule {} in table", rule.id());
        }
    }

    #[test]
    fn empty_report_is_clean() {
        let report = LintReport { root: ".".into(), ..LintReport::default() };
        assert!(report.is_clean());
        assert!(report.to_json().contains("\"clean\": true"));
    }
}
