//! The lint must pass on the repository itself: zero violations, zero
//! stale or malformed allows. This is the same check CI runs via the
//! `lint` binary; keeping it as a cargo test means `cargo test -q`
//! alone already enforces the contract.

use std::path::Path;

#[test]
fn repository_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = rths_lint::lint_workspace(&root).expect("walk workspace");

    assert!(
        report.files_scanned > 40,
        "walker found only {} files — skip rules are too aggressive",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "determinism lint failed:\n{}",
        report
            .violations
            .iter()
            .chain(&report.stale_allows)
            .chain(&report.bad_allows)
            .map(|d| format!("  {d}\n"))
            .collect::<String>()
    );

    // The bit-equivalence contract is enforced, not suppressed: the two
    // rules that guard it directly must have no escape hatches in use.
    for d in &report.suppressed {
        assert!(
            d.rule != "env-mutation" && d.rule != "hash-order",
            "suppressed core rule: {d}"
        );
    }
}
