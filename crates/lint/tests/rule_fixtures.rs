//! Fixture-based coverage for every lint rule: a positive fixture that
//! must fire, a negative fixture that must not, and an allow fixture
//! that must suppress — plus the lexer-torture fixture (banned names
//! hidden in strings, raw strings, nested comments, raw identifiers)
//! and the stale/malformed-allow self-checks.
//!
//! Fixtures live in `tests/fixtures/` as `.rs` *data* files: the
//! workspace walker skips that directory (they contain violations on
//! purpose), and cargo never compiles them. Each is linted under a
//! synthetic in-scope path so rule scoping behaves as it would in a
//! state-feeding crate.

use rths_lint::{lint_source, FileReport};

/// A workspace-relative path inside a state-feeding crate: every rule
/// applies there (and it is not a crate root, so R5's structural
/// forbid-check stays out of the picture).
const IN_SCOPE: &str = "crates/sim/src/fixture.rs";

fn lint(source: &str) -> FileReport {
    lint_source(IN_SCOPE, source)
}

fn rules_of(report: &FileReport) -> Vec<&'static str> {
    report.violations.iter().map(|d| d.rule).collect()
}

#[test]
fn env_mutation_positive_negative_allow() {
    let fire = lint(include_str!("fixtures/env_mutation_fire.rs"));
    assert_eq!(rules_of(&fire), ["env-mutation", "env-mutation"]);
    assert_eq!(fire.violations[0].line, 4, "set_var site");
    assert_eq!(fire.violations[1].line, 8, "remove_var site");

    let clean = lint(include_str!("fixtures/env_mutation_clean.rs"));
    assert!(clean.is_clean(), "false positives: {:?}", clean.violations);
    assert!(clean.suppressed.is_empty(), "nothing should need suppressing");

    let allow = lint(include_str!("fixtures/env_mutation_allow.rs"));
    assert!(allow.violations.is_empty(), "allow failed: {:?}", allow.violations);
    assert_eq!(allow.suppressed.len(), 1);
    assert!(allow.stale_allows.is_empty() && allow.bad_allows.is_empty());
}

#[test]
fn hash_order_positive_negative_allow() {
    let fire = lint(include_str!("fixtures/hash_order_fire.rs"));
    assert_eq!(rules_of(&fire), ["hash-order"; 3]);
    assert_eq!(
        fire.violations.iter().map(|d| d.line).collect::<Vec<_>>(),
        [3, 5, 6],
        "use decl, return type, constructor"
    );

    let clean = lint(include_str!("fixtures/hash_order_clean.rs"));
    assert!(clean.is_clean(), "false positives: {:?}", clean.violations);

    let allow = lint(include_str!("fixtures/hash_order_allow.rs"));
    assert!(allow.violations.is_empty(), "allow failed: {:?}", allow.violations);
    assert_eq!(allow.suppressed.len(), 1);
    assert!(allow.stale_allows.is_empty());
}

#[test]
fn wall_clock_positive_negative_allow() {
    let fire = lint(include_str!("fixtures/wall_clock_fire.rs"));
    assert_eq!(rules_of(&fire), ["wall-clock"; 3]);
    assert_eq!(fire.violations.iter().map(|d| d.line).collect::<Vec<_>>(), [5, 8, 9]);

    let clean = lint(include_str!("fixtures/wall_clock_clean.rs"));
    assert!(clean.is_clean(), "false positives: {:?}", clean.violations);

    let allow = lint(include_str!("fixtures/wall_clock_allow.rs"));
    assert!(allow.violations.is_empty(), "allow failed: {:?}", allow.violations);
    assert_eq!(allow.suppressed.len(), 1);
}

#[test]
fn wall_clock_fixture_is_exempt_under_obs_and_bench_paths() {
    let source = include_str!("fixtures/wall_clock_fire.rs");
    assert!(lint_source("crates/obs/src/fixture.rs", source).is_clean());
    assert!(lint_source("crates/bench/src/bin/fixture.rs", source).is_clean());
}

#[test]
fn entropy_rng_positive_negative() {
    let fire = lint(include_str!("fixtures/entropy_rng_fire.rs"));
    assert_eq!(rules_of(&fire), ["entropy-rng"; 3]);
    assert_eq!(fire.violations.iter().map(|d| d.line).collect::<Vec<_>>(), [5, 9, 13]);
    // R4 has no allowlist: it fires even under harness paths.
    let in_bench = lint_source(
        "crates/bench/src/bin/fixture.rs",
        include_str!("fixtures/entropy_rng_fire.rs"),
    );
    assert_eq!(in_bench.violations.len(), 3);

    let clean = lint(include_str!("fixtures/entropy_rng_clean.rs"));
    assert!(clean.is_clean(), "false positives: {:?}", clean.violations);
}

#[test]
fn unsafe_safety_positive_negative_allow() {
    let fire = lint(include_str!("fixtures/unsafe_safety_fire.rs"));
    assert_eq!(rules_of(&fire), ["unsafe-safety"]);
    assert_eq!(fire.violations[0].line, 4);

    let clean = lint(include_str!("fixtures/unsafe_safety_clean.rs"));
    assert!(clean.is_clean(), "false positives: {:?}", clean.violations);

    let allow = lint(include_str!("fixtures/unsafe_safety_allow.rs"));
    assert!(allow.violations.is_empty(), "allow failed: {:?}", allow.violations);
    assert_eq!(allow.suppressed.len(), 1);
}

#[test]
fn stale_allow_is_rejected_by_the_self_check() {
    let report = lint(include_str!("fixtures/stale_allow.rs"));
    assert!(report.violations.is_empty());
    assert_eq!(report.stale_allows.len(), 1);
    assert_eq!(report.stale_allows[0].rule, "stale-allow");
    assert_eq!(report.stale_allows[0].line, 4);
    assert!(!report.is_clean(), "a stale allow must fail the run");
}

#[test]
fn malformed_allows_are_diagnosed_and_suppress_nothing() {
    let report = lint(include_str!("fixtures/bad_allow.rs"));
    assert_eq!(report.bad_allows.len(), 3, "{:?}", report.bad_allows);
    assert!(report.bad_allows.iter().all(|d| d.rule == "allow-syntax"));
    // The SystemTime uses next to the first bad allow still fire.
    assert_eq!(rules_of(&report), ["wall-clock", "wall-clock"]);
    assert!(!report.is_clean());
}

#[test]
fn lexer_tricky_fixture_is_fully_clean() {
    let report = lint(include_str!("fixtures/lexer_tricky.rs"));
    assert!(
        report.is_clean() && report.suppressed.is_empty(),
        "banned names leaked out of literals/comments: {:?} {:?}",
        report.violations,
        report.bad_allows
    );
}
