// Fixture: R4 must fire three times — thread_rng line 5, from_entropy
// line 9, OsRng line 13.

pub fn roll() -> u64 {
    rand::thread_rng().gen()
}

pub fn fresh() -> rand::rngs::StdRng {
    rand::rngs::StdRng::from_entropy()
}

pub fn os_backed() -> u8 {
    let _rng = rand::rngs::OsRng;
    0
}
