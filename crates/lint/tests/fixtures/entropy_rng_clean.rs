// Fixture: R4 must stay silent — seed-derived streams only.

use rand::SeedableRng;

pub fn stream(run_seed: u64, entity: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(run_seed ^ entity.rotate_left(17))
}

pub const WHY: &str = "thread_rng and from_entropy cannot replay a run";
