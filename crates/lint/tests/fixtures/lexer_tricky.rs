//! Fixture: every banned name below sits inside a string, raw string,
//! comment, or raw identifier — the whole file must lint clean. Doc
//! comments may even mention std::env::set_var and HashMap iteration.

pub const PLAIN: &str = "set_var inside a plain string with \\\" escape";
pub const RAW: &str = r#"raw string with "quotes", thread_rng, and a // fake comment"#;
pub const DEEP: &str = r##"deeper raw: HashMap, a "# fake close, SystemTime"##;
pub const BYTES: &[u8] = b"bytes mentioning from_entropy and remove_var";
pub const QUOTE: char = '"';
pub const ESCAPED: char = '\'';

/* block comment with SystemTime
   /* nested: Instant::now() and OsRng */
   still inside the outer comment: HashSet */
pub fn lifetimes<'a>(x: &'a u64) -> &'a u64 {
    // line comment: unsafe { set_var } is not code
    x
}

pub fn r#unsafe() -> u64 {
    0
}
