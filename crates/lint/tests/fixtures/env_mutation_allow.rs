// Fixture: a justified allow suppresses R1 (one suppressed, zero
// violations, zero stale).

pub fn legacy_bootstrap() {
    // rths: allow(env-mutation): fixture exercising the escape hatch end to end.
    std::env::set_var("RTHS_FIXTURE_ONLY", "1");
}
