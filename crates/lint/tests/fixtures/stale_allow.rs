// Fixture: the self-check must flag this — the allow below suppresses
// nothing (the clock read it once justified is long gone).

// rths: allow(wall-clock): nothing below reads the clock anymore, this rotted.
pub fn pure() -> u64 {
    7
}
