// Fixture: a justified allow suppresses R3 for the demo timer.

pub fn demo_throughput() -> std::time::Duration {
    // rths: allow(wall-clock): fixture — timing printed to the console, never fed into state.
    let start = std::time::Instant::now();
    start.elapsed()
}
