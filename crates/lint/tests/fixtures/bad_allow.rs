// Fixture: malformed allows — each is an `allow-syntax` diagnostic and
// suppresses nothing, so the SystemTime uses below still fire.

// rths: allow(wall-clock)
pub fn a() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

// rths: allow(not-a-rule): the rule id does not exist at all.
pub fn b() -> u64 {
    9
}

// rths: allow(wall-clock): short
pub fn c() -> u64 {
    11
}
