// Fixture: a justified allow suppresses R5 (grandfathered block whose
// safety argument lives in the module docs instead).

pub fn read(p: *const u8) -> u8 {
    // rths: allow(unsafe-safety): fixture — safety argument documented at module level.
    unsafe { *p }
}
