// Fixture: R2 must fire three times — HashMap on lines 3, 5, and 6.

use std::collections::HashMap;

pub fn count(xs: &[u32]) -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
