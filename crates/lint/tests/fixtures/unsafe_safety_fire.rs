// Fixture: R5 must fire — an unsafe block with no SAFETY comment.

pub fn read(p: *const u8) -> u8 {
    unsafe { *p }
}
