// Fixture: R5 must stay silent — the unsafe block is documented, and
// `r#unsafe` is an identifier, not the keyword.

pub fn read(p: *const u8) -> u8 {
    // SAFETY: fixture — the caller guarantees `p` is valid for reads.
    unsafe { *p }
}

pub fn r#unsafe() -> u8 {
    7
}
