// Fixture: R3 must fire three times — Instant::now on line 5,
// SystemTime on lines 8 (return type) and 9 (call).

pub fn elapsed_marker() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn epoch() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
