// Fixture: R1 must stay silent — the sanctioned guard is named, the
// banned symbol appears only in comments and string literals.

/// Pins a variable through the serialized guard (never call set_var).
pub fn configure<R>(f: impl FnOnce() -> R) -> R {
    rths_par::env::with_var("RTHS_THREADS", Some("2"), f)
}

pub const POLICY: &str = "std::env::set_var is banned; remove_var too";
