// Fixture: a justified allow suppresses R2 for the use declaration.

// rths: allow(hash-order): fixture — scratch set is drained unordered, order never observed.
use std::collections::HashSet;

pub fn distinct(xs: &[u32]) -> usize {
    let set: std::collections::BTreeSet<u32> = xs.iter().copied().collect();
    set.len()
}
