// Fixture: R3 must stay silent — logical time only, and the `Instant`
// type without `::now` is just a value being carried around.

pub fn advance(tick: u64) -> u64 {
    tick + 1
}

pub fn keep(origin: std::time::Instant) -> std::time::Instant {
    origin
}

pub const NOTE: &str = "Instant::now and SystemTime are fine in strings";
