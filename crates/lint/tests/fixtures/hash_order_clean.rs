// Fixture: R2 must stay silent — BTreeMap iterates deterministically,
// and "HashMap" appears only inside this comment and a string.

use std::collections::BTreeMap;

pub fn count(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

pub const WHY: &str = "a HashMap here would feed hash order into state";
