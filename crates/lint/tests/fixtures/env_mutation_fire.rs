// Fixture: R1 must fire twice (set_var line 4, remove_var line 8).

pub fn configure(threads: usize) {
    std::env::set_var("RTHS_THREADS", threads.to_string());
}

pub fn reset() {
    std::env::remove_var("RTHS_THREADS");
}
