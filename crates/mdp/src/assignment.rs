//! Exact welfare-optimal peer→helper load vectors.
//!
//! With capacities `C_j` and (optionally) a per-peer demand cap `d`, the
//! welfare of placing `n_j` peers on helper `j` is
//!
//! ```text
//! w_j(n_j) = n_j · min(d, C_j/n_j) = min(n_j·d, C_j)        (capped)
//! w_j(n_j) = C_j · [n_j > 0]                                 (uncapped)
//! ```
//!
//! Both are concave in `n_j`, so total welfare `Σ_j w_j(n_j)` subject to
//! `Σ_j n_j = N` is maximised by **greedy marginal allocation**: place
//! peers one at a time on the helper with the largest marginal welfare
//! gain. [`optimal_loads`] implements the greedy; [`optimal_loads_dp`] is
//! an independent `O(H·N²)` dynamic program used to cross-validate it.

/// An optimal assignment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Peers per helper.
    pub loads: Vec<usize>,
    /// Total social welfare of the assignment.
    pub welfare: f64,
}

/// Welfare contributed by one helper of capacity `cap` serving `load`
/// peers under optional per-peer `demand`.
pub fn helper_welfare(cap: f64, load: usize, demand: Option<f64>) -> f64 {
    if load == 0 {
        return 0.0;
    }
    match demand {
        Some(d) => (load as f64 * d).min(cap),
        None => cap,
    }
}

/// Greedy marginal allocation of `num_peers` peers over `capacities`.
///
/// Optimal for concave per-helper welfare (validated against
/// [`optimal_loads_dp`] by property tests). Ties break toward the lowest
/// helper index, making results deterministic.
///
/// # Panics
///
/// Panics if `capacities` is empty or contains negative/non-finite
/// values, or if `demand` is non-positive.
pub fn optimal_loads(capacities: &[f64], num_peers: usize, demand: Option<f64>) -> Allocation {
    assert!(!capacities.is_empty(), "need at least one helper");
    assert!(
        capacities.iter().all(|c| c.is_finite() && *c >= 0.0),
        "capacities must be finite and non-negative"
    );
    if let Some(d) = demand {
        assert!(d > 0.0 && d.is_finite(), "demand must be positive and finite");
    }
    let h = capacities.len();
    let mut loads = vec![0usize; h];
    let mut welfare = 0.0;
    for _ in 0..num_peers {
        let mut best = 0usize;
        let mut best_gain = f64::NEG_INFINITY;
        for j in 0..h {
            let gain = helper_welfare(capacities[j], loads[j] + 1, demand)
                - helper_welfare(capacities[j], loads[j], demand);
            if gain > best_gain + 1e-12 {
                best_gain = gain;
                best = j;
            }
        }
        loads[best] += 1;
        welfare += best_gain.max(0.0);
    }
    // Recompute welfare from scratch to avoid accumulation drift.
    let welfare_exact: f64 =
        loads.iter().zip(capacities).map(|(&n, &c)| helper_welfare(c, n, demand)).sum();
    debug_assert!((welfare - welfare_exact).abs() < 1e-6);
    Allocation { loads, welfare: welfare_exact }
}

/// Exact optimum by dynamic programming over helpers: `best[j][n]` is the
/// maximum welfare of distributing `n` peers over the first `j` helpers.
///
/// `O(H·N²)` time — slower than the greedy but makes no structural
/// assumption, so it certifies the greedy's optimality in tests.
///
/// # Panics
///
/// Same contract as [`optimal_loads`].
pub fn optimal_loads_dp(
    capacities: &[f64],
    num_peers: usize,
    demand: Option<f64>,
) -> Allocation {
    assert!(!capacities.is_empty(), "need at least one helper");
    let h = capacities.len();
    let neg = f64::NEG_INFINITY;
    // dp[n] = best welfare using helpers processed so far with n peers.
    let mut dp = vec![neg; num_peers + 1];
    dp[0] = 0.0;
    // choice[j][n] = peers given to helper j in the optimum for prefix j, total n.
    let mut choice = vec![vec![0usize; num_peers + 1]; h];
    for j in 0..h {
        let mut next = vec![neg; num_peers + 1];
        for used in 0..=num_peers {
            if dp[used] == neg {
                continue;
            }
            for take in 0..=(num_peers - used) {
                let w = dp[used] + helper_welfare(capacities[j], take, demand);
                if w > next[used + take] {
                    next[used + take] = w;
                    choice[j][used + take] = take;
                }
            }
        }
        dp = next;
    }
    // Backtrack.
    let mut loads = vec![0usize; h];
    let mut remaining = num_peers;
    for j in (0..h).rev() {
        let take = choice[j][remaining];
        loads[j] = take;
        remaining -= take;
    }
    debug_assert_eq!(remaining, 0);
    Allocation { loads, welfare: dp[num_peers] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncapped_covers_all_helpers_when_possible() {
        let a = optimal_loads(&[700.0, 800.0, 900.0], 5, None);
        assert!(a.loads.iter().all(|&l| l >= 1));
        assert_eq!(a.welfare, 2400.0);
        assert_eq!(a.loads.iter().sum::<usize>(), 5);
    }

    #[test]
    fn uncapped_with_fewer_peers_picks_top_capacities() {
        let a = optimal_loads(&[700.0, 800.0, 900.0], 2, None);
        // Two peers cover the two largest helpers.
        assert_eq!(a.welfare, 1700.0);
        assert_eq!(a.loads, vec![0, 1, 1]);
    }

    #[test]
    fn zero_peers_zero_welfare() {
        let a = optimal_loads(&[500.0], 0, None);
        assert_eq!(a.welfare, 0.0);
        assert_eq!(a.loads, vec![0]);
    }

    #[test]
    fn capped_welfare_saturates_at_capacity() {
        // demand 400, capacity 900: 1 peer -> 400, 2 -> 800, 3 -> 900.
        let a1 = optimal_loads(&[900.0], 1, Some(400.0));
        assert_eq!(a1.welfare, 400.0);
        let a2 = optimal_loads(&[900.0], 2, Some(400.0));
        assert_eq!(a2.welfare, 800.0);
        let a3 = optimal_loads(&[900.0], 3, Some(400.0));
        assert_eq!(a3.welfare, 900.0);
    }

    #[test]
    fn capped_distributes_before_saturating() {
        // Two helpers 800/800, demand 300: 4 peers -> 2+2, welfare 1200.
        let a = optimal_loads(&[800.0, 800.0], 4, Some(300.0));
        assert_eq!(a.loads, vec![2, 2]);
        assert_eq!(a.welfare, 1200.0);
        // 6 peers: 3 per helper would give min(900,800)=800 each → 1600.
        let a6 = optimal_loads(&[800.0, 800.0], 6, Some(300.0));
        assert_eq!(a6.welfare, 1600.0);
    }

    #[test]
    fn greedy_matches_dp_on_examples() {
        let cases: &[(&[f64], usize, Option<f64>)] = &[
            (&[700.0, 800.0, 900.0], 10, None),
            (&[700.0, 800.0, 900.0], 10, Some(400.0)),
            (&[100.0, 900.0], 7, Some(150.0)),
            (&[500.0, 500.0, 500.0, 500.0], 3, None),
            (&[123.0], 9, Some(37.0)),
        ];
        for &(caps, n, d) in cases {
            let g = optimal_loads(caps, n, d);
            let dp = optimal_loads_dp(caps, n, d);
            assert!(
                (g.welfare - dp.welfare).abs() < 1e-9,
                "caps {caps:?} n={n} d={d:?}: greedy {} vs dp {}",
                g.welfare,
                dp.welfare
            );
        }
    }

    #[test]
    fn dp_backtrack_is_consistent() {
        let dp = optimal_loads_dp(&[700.0, 800.0, 900.0], 10, Some(400.0));
        assert_eq!(dp.loads.iter().sum::<usize>(), 10);
        let recomputed: f64 = dp
            .loads
            .iter()
            .zip([700.0, 800.0, 900.0])
            .map(|(&n, c)| helper_welfare(c, n, Some(400.0)))
            .sum();
        assert!((recomputed - dp.welfare).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_helper_does_not_change_welfare() {
        // Surplus peers may land on the dead helper (all marginal gains
        // are zero at that point) but welfare must equal the live helper.
        let a = optimal_loads(&[0.0, 800.0], 3, None);
        assert_eq!(a.welfare, 800.0);
        assert!(a.loads[1] >= 1, "live helper must be covered: {:?}", a.loads);
    }

    #[test]
    #[should_panic(expected = "demand must be positive")]
    fn zero_demand_rejected() {
        let _ = optimal_loads(&[800.0], 1, Some(0.0));
    }

    #[test]
    fn helper_welfare_formulas() {
        assert_eq!(helper_welfare(800.0, 0, None), 0.0);
        assert_eq!(helper_welfare(800.0, 5, None), 800.0);
        assert_eq!(helper_welfare(800.0, 2, Some(300.0)), 600.0);
        assert_eq!(helper_welfare(800.0, 4, Some(300.0)), 800.0);
    }
}
