//! A general finite Markov decision process and its classic solvers.
//!
//! §IV.A frames the centralized benchmark "as a cooperative optimization
//! problem based on the Markov Decision Process (MDP) framework". The
//! occupation-measure LP in [`crate::occupation`] is one solution route;
//! this module provides the dynamic-programming routes — **value
//! iteration** (discounted) and **relative value iteration** (average
//! reward, the criterion the paper's infinite-horizon objective
//! `lim sup (1/N)Σ E[u]` actually uses) — for *any* finite MDP, plus a
//! builder for the helper-selection instance. The three routes
//! cross-validate each other in tests.

use rths_math::Matrix;

use crate::assignment::helper_welfare;

/// Errors from MDP construction or solving.
#[derive(Debug, Clone, PartialEq)]
pub enum MdpError {
    /// A transition matrix is not row-stochastic or has the wrong shape.
    BadTransition {
        /// Offending action index.
        action: usize,
    },
    /// Shape mismatch between rewards and transitions.
    ShapeMismatch,
    /// Iterative solver failed to converge within the iteration budget.
    NoConvergence,
}

impl std::fmt::Display for MdpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MdpError::BadTransition { action } => {
                write!(f, "transition kernel for action {action} is not row-stochastic")
            }
            MdpError::ShapeMismatch => write!(f, "reward/transition shapes disagree"),
            MdpError::NoConvergence => write!(f, "dynamic programming did not converge"),
        }
    }
}

impl std::error::Error for MdpError {}

/// A finite MDP with dense per-action transition kernels.
#[derive(Debug, Clone)]
pub struct FiniteMdp {
    num_states: usize,
    num_actions: usize,
    /// `transitions[a]` is the S×S kernel under action `a`.
    transitions: Vec<Matrix>,
    /// `rewards[(s, a)]` is the expected one-step reward.
    rewards: Matrix,
}

/// Solution of a discounted MDP.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscountedSolution {
    /// Optimal value per state.
    pub values: Vec<f64>,
    /// A greedy optimal action per state.
    pub policy: Vec<usize>,
    /// Sweeps performed.
    pub iterations: usize,
}

/// Solution of an average-reward MDP (unichain assumption).
#[derive(Debug, Clone, PartialEq)]
pub struct AverageSolution {
    /// Optimal long-run average reward (gain).
    pub gain: f64,
    /// Differential values (bias), normalised so `bias[0] = 0`.
    pub bias: Vec<f64>,
    /// A gain-optimal action per state.
    pub policy: Vec<usize>,
    /// Sweeps performed.
    pub iterations: usize,
}

impl FiniteMdp {
    /// Creates an MDP.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::BadTransition`] or [`MdpError::ShapeMismatch`]
    /// on malformed inputs.
    ///
    /// # Panics
    ///
    /// Panics if there are zero states or zero actions.
    pub fn new(transitions: Vec<Matrix>, rewards: Matrix) -> Result<Self, MdpError> {
        assert!(!transitions.is_empty(), "need at least one action");
        let num_actions = transitions.len();
        let num_states = transitions[0].rows();
        assert!(num_states > 0, "need at least one state");
        for (a, t) in transitions.iter().enumerate() {
            if t.shape() != (num_states, num_states) || !t.is_row_stochastic(1e-9) {
                return Err(MdpError::BadTransition { action: a });
            }
        }
        if rewards.shape() != (num_states, num_actions) {
            return Err(MdpError::ShapeMismatch);
        }
        Ok(Self { num_states, num_actions, transitions, rewards })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of actions.
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// One-step reward `r(s, a)`.
    pub fn reward(&self, state: usize, action: usize) -> f64 {
        self.rewards[(state, action)]
    }

    /// Q-value backup `r(s,a) + γ·Σ_s' P(s'|s,a)·v(s')`.
    fn q_value(&self, state: usize, action: usize, gamma: f64, values: &[f64]) -> f64 {
        let row = self.transitions[action].row(state);
        self.rewards[(state, action)] + gamma * rths_math::vector::dot(row, values)
    }

    /// Discounted value iteration to within `tol` of the fixed point.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::NoConvergence`] if `max_iters` sweeps do not
    /// reach the tolerance.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= gamma < 1` and `tol > 0`.
    pub fn value_iteration(
        &self,
        gamma: f64,
        tol: f64,
        max_iters: usize,
    ) -> Result<DiscountedSolution, MdpError> {
        assert!((0.0..1.0).contains(&gamma), "gamma must be in [0,1)");
        assert!(tol > 0.0, "tolerance must be positive");
        let mut values = vec![0.0; self.num_states];
        for sweep in 1..=max_iters {
            let mut next = vec![0.0; self.num_states];
            let mut delta = 0.0f64;
            for s in 0..self.num_states {
                let best = (0..self.num_actions)
                    .map(|a| self.q_value(s, a, gamma, &values))
                    .fold(f64::NEG_INFINITY, f64::max);
                delta = delta.max((best - values[s]).abs());
                next[s] = best;
            }
            values = next;
            // Standard stopping rule: contraction bound on the remaining
            // error.
            if delta * gamma / (1.0 - gamma) < tol {
                let policy = self.greedy_policy(gamma, &values);
                return Ok(DiscountedSolution { values, policy, iterations: sweep });
            }
        }
        Err(MdpError::NoConvergence)
    }

    /// Greedy policy with respect to `values`.
    fn greedy_policy(&self, gamma: f64, values: &[f64]) -> Vec<usize> {
        (0..self.num_states)
            .map(|s| {
                let mut best_a = 0;
                let mut best_q = f64::NEG_INFINITY;
                for a in 0..self.num_actions {
                    let q = self.q_value(s, a, gamma, values);
                    if q > best_q + 1e-12 {
                        best_q = q;
                        best_a = a;
                    }
                }
                best_a
            })
            .collect()
    }

    /// Relative value iteration for the long-run average reward
    /// criterion (unichain MDPs): iterates `v ← T v − (T v)(s₀)` until
    /// the span of the increment contracts below `tol`.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::NoConvergence`] if the span does not contract
    /// within `max_iters` sweeps.
    ///
    /// # Panics
    ///
    /// Panics unless `tol > 0`.
    pub fn relative_value_iteration(
        &self,
        tol: f64,
        max_iters: usize,
    ) -> Result<AverageSolution, MdpError> {
        assert!(tol > 0.0, "tolerance must be positive");
        // Aperiodicity transform: mix each kernel with the identity so
        // periodic chains converge too (gain is unchanged).
        let tau = 0.5;
        let mut values = vec![0.0; self.num_states];
        for sweep in 1..=max_iters {
            let mut backed = vec![0.0; self.num_states];
            for s in 0..self.num_states {
                let best = (0..self.num_actions)
                    .map(|a| {
                        let row = self.transitions[a].row(s);
                        let expect = rths_math::vector::dot(row, &values);
                        self.rewards[(s, a)] + tau * expect + (1.0 - tau) * values[s]
                    })
                    .fold(f64::NEG_INFINITY, f64::max);
                backed[s] = best;
            }
            let increments: Vec<f64> = backed.iter().zip(&values).map(|(b, v)| b - v).collect();
            let span = increments.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                - increments.iter().copied().fold(f64::INFINITY, f64::min);
            let anchor = backed[0];
            for (v, b) in values.iter_mut().zip(&backed) {
                *v = b - anchor;
            }
            if span < tol {
                let gain = rths_math::stats::mean(&increments);
                // Greedy policy for the average criterion uses the same
                // transformed backup.
                let policy = (0..self.num_states)
                    .map(|s| {
                        let mut best_a = 0;
                        let mut best_q = f64::NEG_INFINITY;
                        for a in 0..self.num_actions {
                            let row = self.transitions[a].row(s);
                            let q = self.rewards[(s, a)]
                                + tau * rths_math::vector::dot(row, &values)
                                + (1.0 - tau) * values[s];
                            if q > best_q + 1e-12 {
                                best_q = q;
                                best_a = a;
                            }
                        }
                        best_a
                    })
                    .collect();
                return Ok(AverageSolution { gain, bias: values, policy, iterations: sweep });
            }
        }
        Err(MdpError::NoConvergence)
    }
}

/// Builds the helper-selection MDP of §IV.A: states are joint helper
/// bandwidth levels (product chain), actions are load vectors (how many
/// peers each helper serves), rewards are social welfare, and
/// transitions are *uncontrolled* (assignments do not influence
/// bandwidth evolution).
///
/// # Panics
///
/// Panics on inconsistent shapes, or if the instance would be too large
/// (`|Y| > 10_000` or more than `100_000` load vectors).
pub fn helper_selection_mdp(
    levels: &[Vec<f64>],
    kernels: &[Matrix],
    num_peers: usize,
    demand: Option<f64>,
) -> Result<FiniteMdp, MdpError> {
    assert_eq!(levels.len(), kernels.len(), "one kernel per helper");
    assert!(!levels.is_empty(), "need at least one helper");
    let h = levels.len();
    let num_y: usize = levels.iter().map(|l| l.len()).product();
    assert!(num_y <= 10_000, "joint state space too large: {num_y}");

    // Enumerate load vectors with Σ n_j = num_peers.
    let mut loads: Vec<Vec<usize>> = Vec::new();
    let mut stack = vec![0usize; h];
    enumerate_loads(&mut loads, &mut stack, 0, num_peers);
    assert!(loads.len() <= 100_000, "too many assignments: {}", loads.len());

    // Joint transition kernel: product of per-helper kernels,
    // independent of the action.
    let mut joint = Matrix::zeros(num_y, num_y);
    for y in 0..num_y {
        let from = decode_state(y, levels);
        for y2 in 0..num_y {
            let to = decode_state(y2, levels);
            let mut p = 1.0;
            for j in 0..h {
                p *= kernels[j][(from[j], to[j])];
            }
            joint[(y, y2)] = p;
        }
    }

    // Rewards: welfare of each load vector under each joint state's
    // capacities.
    let mut rewards = Matrix::zeros(num_y, loads.len());
    for y in 0..num_y {
        let idx = decode_state(y, levels);
        let caps: Vec<f64> = (0..h).map(|j| levels[j][idx[j]]).collect();
        for (a, load) in loads.iter().enumerate() {
            let w: f64 =
                load.iter().zip(&caps).map(|(&n, &c)| helper_welfare(c, n, demand)).sum();
            rewards[(y, a)] = w;
        }
    }

    let transitions = vec![joint; loads.len()];
    FiniteMdp::new(transitions, rewards)
}

fn enumerate_loads(out: &mut Vec<Vec<usize>>, stack: &mut Vec<usize>, j: usize, left: usize) {
    if j == stack.len() - 1 {
        stack[j] = left;
        out.push(stack.clone());
        return;
    }
    for take in 0..=left {
        stack[j] = take;
        enumerate_loads(out, stack, j + 1, left - take);
    }
}

fn decode_state(mut y: usize, levels: &[Vec<f64>]) -> Vec<usize> {
    let h = levels.len();
    let mut idx = vec![0usize; h];
    for j in (0..h).rev() {
        idx[j] = y % levels[j].len();
        y /= levels[j].len();
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rths_stoch::markov::MarkovChain;

    /// Two-state, two-action MDP with a known discounted solution:
    /// action 0 stays (reward 1 in state 0, 0 in state 1), action 1
    /// jumps to the other state (reward 0 everywhere).
    fn toy() -> FiniteMdp {
        let stay = Matrix::identity(2);
        let jump = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let rewards = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]);
        FiniteMdp::new(vec![stay, jump], rewards).unwrap()
    }

    #[test]
    fn toy_value_iteration() {
        let mdp = toy();
        let sol = mdp.value_iteration(0.9, 1e-10, 10_000).unwrap();
        // State 0: stay forever -> 1/(1-0.9) = 10.
        assert!((sol.values[0] - 10.0).abs() < 1e-6, "v0 = {}", sol.values[0]);
        // State 1: jump (1 step, no reward), then stay: 0.9 * 10 = 9.
        assert!((sol.values[1] - 9.0).abs() < 1e-6, "v1 = {}", sol.values[1]);
        assert_eq!(sol.policy, vec![0, 1]);
    }

    #[test]
    fn toy_average_reward() {
        let mdp = toy();
        let sol = mdp.relative_value_iteration(1e-10, 100_000).unwrap();
        // Long-run: sit in state 0 earning 1 per step.
        assert!((sol.gain - 1.0).abs() < 1e-6, "gain = {}", sol.gain);
        assert_eq!(sol.policy[0], 0);
        assert_eq!(sol.policy[1], 1);
    }

    #[test]
    fn rejects_bad_transition() {
        let bad = Matrix::from_rows(&[&[0.9, 0.2], &[0.5, 0.5]]);
        let r = Matrix::zeros(2, 1);
        assert_eq!(
            FiniteMdp::new(vec![bad], r).unwrap_err(),
            MdpError::BadTransition { action: 0 }
        );
    }

    #[test]
    fn rejects_shape_mismatch() {
        let t = Matrix::identity(2);
        let r = Matrix::zeros(3, 1);
        assert_eq!(FiniteMdp::new(vec![t], r).unwrap_err(), MdpError::ShapeMismatch);
    }

    #[test]
    fn helper_mdp_gain_matches_decomposed_optimum() {
        // 2 helpers on the paper ladder, 3 peers, uncapped: the
        // average-reward optimum must equal Σ_y π(y)·W*(y) — computed
        // independently by the welfare module.
        let chain = MarkovChain::sticky_birth_death(3, 0.9, 0);
        let levels = vec![vec![700.0, 800.0, 900.0]; 2];
        let kernels = vec![chain.transition().clone(); 2];
        let mdp = helper_selection_mdp(&levels, &kernels, 3, None).unwrap();
        assert_eq!(mdp.num_states(), 9);
        assert_eq!(mdp.num_actions(), 4); // load vectors (0,3),(1,2),(2,1),(3,0)

        let sol = mdp.relative_value_iteration(1e-9, 200_000).unwrap();
        let pi = chain.stationary_distribution().unwrap();
        let expected = crate::welfare::expected_optimal_welfare_exact(
            &levels,
            &vec![pi.clone(); 2],
            3,
            None,
            1000,
        );
        assert!(
            (sol.gain - expected).abs() < 1e-6,
            "RVI gain {} vs decomposed {expected}",
            sol.gain
        );
    }

    #[test]
    fn helper_mdp_gain_matches_decomposed_capped() {
        let chain = MarkovChain::sticky_birth_death(2, 0.8, 0);
        let levels = vec![vec![600.0, 900.0], vec![500.0, 800.0]];
        let kernels = vec![chain.transition().clone(); 2];
        let mdp = helper_selection_mdp(&levels, &kernels, 4, Some(300.0)).unwrap();
        let sol = mdp.relative_value_iteration(1e-9, 200_000).unwrap();
        let pi = chain.stationary_distribution().unwrap();
        let expected = crate::welfare::expected_optimal_welfare_exact(
            &levels,
            &vec![pi.clone(); 2],
            4,
            Some(300.0),
            1000,
        );
        assert!(
            (sol.gain - expected).abs() < 1e-6,
            "RVI gain {} vs decomposed {expected}",
            sol.gain
        );
    }

    #[test]
    fn helper_mdp_policy_is_statewise_optimal_assignment() {
        // Transitions are uncontrolled, so the optimal policy must pick a
        // welfare-maximising load vector in every state.
        let chain = MarkovChain::sticky_birth_death(2, 0.7, 0);
        let levels = vec![vec![400.0, 900.0]; 2];
        let kernels = vec![chain.transition().clone(); 2];
        let mdp = helper_selection_mdp(&levels, &kernels, 2, None).unwrap();
        let sol = mdp.relative_value_iteration(1e-9, 200_000).unwrap();
        for s in 0..mdp.num_states() {
            let chosen = mdp.reward(s, sol.policy[s]);
            let best = (0..mdp.num_actions())
                .map(|a| mdp.reward(s, a))
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(
                (chosen - best).abs() < 1e-9,
                "state {s}: chose reward {chosen}, best {best}"
            );
        }
    }

    #[test]
    fn discounted_and_average_agree_for_uncontrolled_instance() {
        // With uncontrolled transitions, (1-γ)·V_γ(s) -> gain as γ -> 1.
        let chain = MarkovChain::sticky_birth_death(2, 0.8, 0);
        let levels = vec![vec![700.0, 900.0]; 2];
        let kernels = vec![chain.transition().clone(); 2];
        let mdp = helper_selection_mdp(&levels, &kernels, 2, None).unwrap();
        let avg = mdp.relative_value_iteration(1e-9, 200_000).unwrap();
        let disc = mdp.value_iteration(0.999, 1e-9, 200_000).unwrap();
        let approx_gain = (1.0 - 0.999) * disc.values[0];
        assert!(
            (approx_gain - avg.gain).abs() < 0.01 * avg.gain,
            "(1-γ)V = {approx_gain} vs gain {}",
            avg.gain
        );
    }

    #[test]
    fn value_iteration_iterations_reported() {
        let sol = toy().value_iteration(0.5, 1e-8, 1000).unwrap();
        assert!(sol.iterations > 1 && sol.iterations < 1000);
    }

    #[test]
    fn no_convergence_is_reported() {
        let mdp = toy();
        assert_eq!(mdp.value_iteration(0.99, 1e-12, 3).unwrap_err(), MdpError::NoConvergence);
    }

    #[test]
    fn load_enumeration_counts_compositions() {
        // C(N+H-1, H-1) compositions: N=3, H=3 -> C(5,2) = 10.
        let chain = MarkovChain::sticky_birth_death(1, 0.5, 0);
        let levels = vec![vec![500.0]; 3];
        let kernels = vec![chain.transition().clone(); 3];
        let mdp = helper_selection_mdp(&levels, &kernels, 3, None).unwrap();
        assert_eq!(mdp.num_actions(), 10);
    }
}
