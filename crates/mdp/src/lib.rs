//! Centralized MDP benchmark for helper selection (paper §IV.A).
//!
//! The paper benchmarks RTHS against a *cooperative* optimum: a single
//! controller (the streaming server) that observes the full helper
//! bandwidth state `y` and assigns every peer to a helper. Formally this
//! is an average-reward MDP whose optimal stationary policy is found by a
//! linear program over **occupation measures** `ρ(y, x)`:
//!
//! ```text
//! max  Σ_y Σ_x u(y,x)·ρ(y,x)
//! s.t. Σ_x ρ(y,x) = π(y)   ∀y      (marginals match the stationary dist)
//!      Σ_{y,x} ρ(y,x) = 1,  ρ ≥ 0
//! ```
//!
//! Because helper-state dynamics are uncontrolled (the chains evolve
//! independently of assignments), the LP decomposes per state: the optimal
//! policy plays a welfare-maximising assignment in every state, and the
//! optimal value is `Σ_y π(y)·W*(y)`. This crate provides all three
//! computation paths, which cross-validate each other in tests:
//!
//! 1. [`occupation`] — the literal LP, solved exactly with `rths-lp`
//!    (exponential in peers/helpers; used at toy scale as ground truth);
//! 2. [`assignment`] — exact per-state optimal load vectors via greedy
//!    marginal allocation (optimal because per-helper welfare is concave
//!    in load), cross-checked against an `O(H·N²)` dynamic program;
//! 3. [`welfare`] — the expected optimum `Σ_y π(y)·W*(y)`, computed by
//!    exact enumeration of the joint state space when it is small and by
//!    stationary Monte Carlo otherwise.
//!
//! # Example
//!
//! ```
//! use rths_mdp::assignment::optimal_loads;
//!
//! // 10 peers, helpers at 700/800/900 kbps, uncapped demand: any
//! // covering assignment attains welfare 2400.
//! let alloc = optimal_loads(&[700.0, 800.0, 900.0], 10, None);
//! assert_eq!(alloc.welfare, 2400.0);
//! assert!(alloc.loads.iter().all(|&l| l > 0));
//! ```

#![forbid(unsafe_code)]

pub mod assignment;
pub mod benchmark;
pub mod finite;
pub mod occupation;
pub mod welfare;

pub use assignment::{optimal_loads, Allocation};
pub use benchmark::MdpBenchmark;
pub use finite::{helper_selection_mdp, FiniteMdp};
pub use occupation::OccupationLp;
