//! High-level benchmark facade used by the figure harnesses.
//!
//! Wraps the Markov bandwidth models from `rths-stoch` and picks the right
//! computation path (exact enumeration vs Monte Carlo) automatically.

use rand::Rng;
use rths_stoch::bandwidth::MarkovBandwidth;

use crate::welfare;

/// Threshold on `|Y|` below which exact enumeration is used.
const EXACT_STATE_LIMIT: usize = 60_000;

/// The centralized MDP benchmark for a concrete system instance.
#[derive(Debug, Clone)]
pub struct MdpBenchmark {
    levels: Vec<Vec<f64>>,
    stationary: Vec<Vec<f64>>,
    num_peers: usize,
    demand: Option<f64>,
}

impl MdpBenchmark {
    /// Builds the benchmark from per-helper Markov bandwidth processes.
    ///
    /// # Panics
    ///
    /// Panics if `helpers` is empty or a helper's chain has no stationary
    /// distribution (reducible chain), or `demand` is non-positive.
    pub fn from_processes(
        helpers: &[MarkovBandwidth],
        num_peers: usize,
        demand: Option<f64>,
    ) -> Self {
        assert!(!helpers.is_empty(), "need at least one helper");
        if let Some(d) = demand {
            assert!(d > 0.0 && d.is_finite(), "demand must be positive and finite");
        }
        let levels: Vec<Vec<f64>> = helpers.iter().map(|h| h.levels().to_vec()).collect();
        let stationary: Vec<Vec<f64>> = helpers
            .iter()
            .map(|h| {
                h.chain()
                    .stationary_distribution()
                    .expect("helper bandwidth chain must be irreducible")
            })
            .collect();
        Self { levels, stationary, num_peers, demand }
    }

    /// Builds the benchmark from explicit ladders and stationary vectors.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch (validated downstream).
    pub fn from_parts(
        levels: Vec<Vec<f64>>,
        stationary: Vec<Vec<f64>>,
        num_peers: usize,
        demand: Option<f64>,
    ) -> Self {
        assert_eq!(levels.len(), stationary.len(), "one stationary dist per helper");
        Self { levels, stationary, num_peers, demand }
    }

    /// Number of peers in the instance.
    pub fn num_peers(&self) -> usize {
        self.num_peers
    }

    /// Size of the joint helper state space `|Y|`.
    pub fn num_states(&self) -> usize {
        self.levels.iter().map(|l| l.len()).product()
    }

    /// The optimal expected social welfare (`R(s*)` in §IV.A): exact when
    /// `|Y|` is small, Monte Carlo (100k samples) otherwise.
    pub fn optimal_welfare<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.num_states() <= EXACT_STATE_LIMIT {
            welfare::expected_optimal_welfare_exact(
                &self.levels,
                &self.stationary,
                self.num_peers,
                self.demand,
                EXACT_STATE_LIMIT,
            )
        } else {
            welfare::expected_optimal_welfare_mc(
                &self.levels,
                &self.stationary,
                self.num_peers,
                self.demand,
                100_000,
                rng,
            )
        }
    }

    /// Per-peer fair share of the optimum — the benchmark line for the
    /// per-peer utility comparison (Fig. 2 normalised per peer).
    pub fn optimal_per_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.num_peers == 0 {
            return 0.0;
        }
        self.optimal_welfare(rng) / self.num_peers as f64
    }

    /// Optimal loads for a *specific* capacity realisation — the
    /// state-wise policy the LP would prescribe.
    pub fn optimal_loads_for(&self, capacities: &[f64]) -> crate::assignment::Allocation {
        crate::assignment::optimal_loads(capacities, self.num_peers, self.demand)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rths_stoch::rng::seeded_rng;

    #[test]
    fn paper_small_scale_benchmark() {
        // Fig. 2 configuration: N = 10 peers, H = 4 helpers.
        let mut rng = seeded_rng(1);
        let helpers: Vec<MarkovBandwidth> =
            (0..4).map(|_| MarkovBandwidth::paper_default(&mut rng)).collect();
        let bench = MdpBenchmark::from_processes(&helpers, 10, None);
        assert_eq!(bench.num_states(), 81);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(2);
        let w = bench.optimal_welfare(&mut rng2);
        // Uncapped + covered: Σ_j E[C_j] = 4 × 800.
        assert!((w - 3200.0).abs() < 1e-6, "welfare {w}");
        assert!((bench.optimal_per_peer(&mut rng2) - 320.0).abs() < 1e-6);
    }

    #[test]
    fn large_scale_falls_back_to_monte_carlo() {
        let mut rng = seeded_rng(3);
        let helpers: Vec<MarkovBandwidth> =
            (0..12).map(|_| MarkovBandwidth::paper_default(&mut rng)).collect();
        let bench = MdpBenchmark::from_processes(&helpers, 60, None);
        assert!(bench.num_states() > EXACT_STATE_LIMIT);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(4);
        let w = bench.optimal_welfare(&mut rng2);
        // Covered & uncapped: expectation is 12 × 800 exactly; MC noise
        // only.
        assert!((w - 9600.0).abs() < 30.0, "welfare {w}");
    }

    #[test]
    fn capped_benchmark_bounded_by_total_demand() {
        let mut rng = seeded_rng(5);
        let helpers: Vec<MarkovBandwidth> =
            (0..4).map(|_| MarkovBandwidth::paper_default(&mut rng)).collect();
        let bench = MdpBenchmark::from_processes(&helpers, 6, Some(400.0));
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(6);
        let w = bench.optimal_welfare(&mut rng2);
        assert!(w <= 2400.0 + 1e-9, "welfare {w} above total demand");
        assert!(w > 2000.0, "welfare {w} suspiciously low");
    }

    #[test]
    fn optimal_loads_for_state_covers_helpers() {
        let bench = MdpBenchmark::from_parts(vec![vec![800.0]; 3], vec![vec![1.0]; 3], 7, None);
        let alloc = bench.optimal_loads_for(&[700.0, 900.0, 800.0]);
        assert_eq!(alloc.loads.iter().sum::<usize>(), 7);
        assert!(alloc.loads.iter().all(|&l| l > 0));
        assert_eq!(alloc.welfare, 2400.0);
    }

    #[test]
    fn zero_peers_edge_case() {
        let bench = MdpBenchmark::from_parts(vec![vec![800.0]], vec![vec![1.0]], 0, None);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        assert_eq!(bench.optimal_welfare(&mut rng), 0.0);
        assert_eq!(bench.optimal_per_peer(&mut rng), 0.0);
    }
}
