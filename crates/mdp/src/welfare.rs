//! Expected optimal welfare `Σ_y π(y)·W*(y)` at scale.
//!
//! When the joint state space `|Y| = Π_j L_j` is small we enumerate it
//! exactly; otherwise we estimate by Monte Carlo over the (independent)
//! stationary distributions. Both paths reuse the per-state greedy
//! assignment optimum from [`crate::assignment`].

use rand::Rng;

use crate::assignment::optimal_loads;

/// Exact expected optimum by full enumeration of the joint state space.
///
/// # Panics
///
/// Panics if shapes are inconsistent, a stationary vector is not a
/// distribution, or `|Y|` exceeds `limit`.
pub fn expected_optimal_welfare_exact(
    levels: &[Vec<f64>],
    stationary: &[Vec<f64>],
    num_peers: usize,
    demand: Option<f64>,
    limit: usize,
) -> f64 {
    assert_eq!(levels.len(), stationary.len(), "one stationary dist per helper");
    assert!(!levels.is_empty(), "need at least one helper");
    let num_y: usize = levels.iter().map(|l| l.len()).product();
    assert!(num_y <= limit, "joint state space {num_y} exceeds limit {limit}");
    for (j, (l, pi)) in levels.iter().zip(stationary).enumerate() {
        assert_eq!(l.len(), pi.len(), "helper {j}: levels/stationary length mismatch");
        assert!(
            rths_math::vector::is_distribution(pi, 1e-9),
            "helper {j}: stationary vector is not a distribution"
        );
    }
    let h = levels.len();
    let mut total = 0.0;
    let mut caps = vec![0.0; h];
    for y in 0..num_y {
        let mut prob = 1.0;
        let mut rem = y;
        for j in (0..h).rev() {
            let s = rem % levels[j].len();
            rem /= levels[j].len();
            prob *= stationary[j][s];
            caps[j] = levels[j][s];
        }
        total += prob * optimal_loads(&caps, num_peers, demand).welfare;
    }
    total
}

/// Monte Carlo estimate of the expected optimum: sample each helper's
/// state independently from its stationary distribution, `samples` times.
///
/// # Panics
///
/// Same shape contract as [`expected_optimal_welfare_exact`]; also panics
/// if `samples == 0`.
pub fn expected_optimal_welfare_mc<R: Rng + ?Sized>(
    levels: &[Vec<f64>],
    stationary: &[Vec<f64>],
    num_peers: usize,
    demand: Option<f64>,
    samples: usize,
    rng: &mut R,
) -> f64 {
    assert_eq!(levels.len(), stationary.len(), "one stationary dist per helper");
    assert!(!levels.is_empty(), "need at least one helper");
    assert!(samples > 0, "need at least one sample");
    let h = levels.len();
    let mut caps = vec![0.0; h];
    let mut total = 0.0;
    for _ in 0..samples {
        for j in 0..h {
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            let mut state = levels[j].len() - 1;
            for (s, &p) in stationary[j].iter().enumerate() {
                acc += p;
                if u < acc {
                    state = s;
                    break;
                }
            }
            caps[j] = levels[j][state];
        }
        total += optimal_loads(&caps, num_peers, demand).welfare;
    }
    total / samples as f64
}

/// Uncapped closed form when every helper is covered (`num_peers >= H`):
/// the optimum is simply `Σ_j E[C_j]`.
pub fn expected_optimal_welfare_uncapped_covered(
    levels: &[Vec<f64>],
    stationary: &[Vec<f64>],
) -> f64 {
    levels.iter().zip(stationary).map(|(l, pi)| rths_math::vector::dot(l, pi)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn paper_ladders(h: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let levels = vec![vec![700.0, 800.0, 900.0]; h];
        // Sticky birth-death stationary over 3 states: [0.25, 0.5, 0.25].
        let stationary = vec![vec![0.25, 0.5, 0.25]; h];
        (levels, stationary)
    }

    #[test]
    fn exact_matches_closed_form_when_covered() {
        let (levels, pi) = paper_ladders(4);
        let exact = expected_optimal_welfare_exact(&levels, &pi, 10, None, 100);
        let closed = expected_optimal_welfare_uncapped_covered(&levels, &pi);
        assert!((exact - closed).abs() < 1e-9, "{exact} vs {closed}");
        assert!((exact - 3200.0).abs() < 1e-9);
    }

    #[test]
    fn monte_carlo_approximates_exact() {
        let (levels, pi) = paper_ladders(3);
        let exact = expected_optimal_welfare_exact(&levels, &pi, 5, Some(400.0), 100);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mc = expected_optimal_welfare_mc(&levels, &pi, 5, Some(400.0), 40_000, &mut rng);
        assert!((mc - exact).abs() < 0.01 * exact, "mc {mc} vs exact {exact}");
    }

    #[test]
    fn capped_expected_welfare_is_below_uncapped() {
        let (levels, pi) = paper_ladders(3);
        let capped = expected_optimal_welfare_exact(&levels, &pi, 4, Some(400.0), 100);
        let uncapped = expected_optimal_welfare_exact(&levels, &pi, 4, None, 100);
        assert!(capped <= uncapped + 1e-9);
        // 4 peers at 400 kbps each can use at most 1600.
        assert!(capped <= 1600.0 + 1e-9);
    }

    #[test]
    fn under_covered_uncapped_takes_top_peers() {
        // 1 peer over 2 iid helpers: E[max(C1, C2)].
        let levels = vec![vec![700.0, 900.0]; 2];
        let pi = vec![vec![0.5, 0.5]; 2];
        let exact = expected_optimal_welfare_exact(&levels, &pi, 1, None, 10);
        // max: 700 w.p. 0.25, else 900 -> 850.
        assert!((exact - 850.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "exceeds limit")]
    fn limit_is_enforced() {
        let (levels, pi) = paper_ladders(8);
        let _ = expected_optimal_welfare_exact(&levels, &pi, 10, None, 100);
    }
}
