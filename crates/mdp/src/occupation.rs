//! The literal occupation-measure LP of §IV.A.
//!
//! Variables are `ρ(y, x)` for every joint helper state `y ∈ Y` (product
//! of per-helper bandwidth levels) and every assignment `x ∈ X = H^N`.
//! The LP is exponential in both `N` and `H`, so this path is reserved
//! for toy instances where it serves as ground truth for the decomposed
//! solvers ([`crate::assignment`], [`crate::welfare`]).

use rths_lp::{LinearProgram, LpError, Relation};

/// Exact solver for the occupation-measure LP.
#[derive(Debug, Clone)]
pub struct OccupationLp {
    /// Per-helper bandwidth ladders: `levels[j][s]` is helper `j`'s
    /// capacity in its state `s`.
    levels: Vec<Vec<f64>>,
    /// Per-helper stationary distributions over those states.
    stationary: Vec<Vec<f64>>,
    num_peers: usize,
    demand: Option<f64>,
}

/// Result of solving the occupation LP.
#[derive(Debug, Clone, PartialEq)]
pub struct OccupationSolution {
    /// Optimal expected social welfare (the paper's `R(s*)`).
    pub welfare: f64,
    /// Number of LP variables (`|Y|·|X|`), for reporting.
    pub num_variables: usize,
}

impl OccupationLp {
    /// Creates the LP description.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent, any stationary vector is not a
    /// distribution, or `demand` is non-positive.
    pub fn new(
        levels: Vec<Vec<f64>>,
        stationary: Vec<Vec<f64>>,
        num_peers: usize,
        demand: Option<f64>,
    ) -> Self {
        assert_eq!(levels.len(), stationary.len(), "one stationary dist per helper");
        assert!(!levels.is_empty(), "need at least one helper");
        for (j, (l, pi)) in levels.iter().zip(&stationary).enumerate() {
            assert_eq!(l.len(), pi.len(), "helper {j}: levels/stationary length mismatch");
            assert!(!l.is_empty(), "helper {j} has no states");
            assert!(
                rths_math::vector::is_distribution(pi, 1e-9),
                "helper {j}: stationary vector is not a distribution"
            );
        }
        if let Some(d) = demand {
            assert!(d > 0.0 && d.is_finite(), "demand must be positive and finite");
        }
        Self { levels, stationary, num_peers, demand }
    }

    /// Number of joint helper states `|Y|`.
    pub fn num_states(&self) -> usize {
        self.levels.iter().map(|l| l.len()).product()
    }

    /// Number of assignments `|X| = H^N`.
    pub fn num_assignments(&self) -> usize {
        self.levels.len().pow(self.num_peers as u32)
    }

    /// Solves the LP exactly.
    ///
    /// # Errors
    ///
    /// Propagates solver errors; the LP is feasible by construction, so an
    /// error indicates numerical trouble.
    ///
    /// # Panics
    ///
    /// Panics if the instance exceeds 200_000 variables — use the
    /// decomposed solvers instead.
    pub fn solve(&self) -> Result<OccupationSolution, LpError> {
        let h = self.levels.len();
        let num_y = self.num_states();
        let num_x = self.num_assignments();
        let num_vars = num_y * num_x;
        assert!(
            num_vars <= 200_000,
            "occupation LP with {num_vars} variables is too large; use rths_mdp::welfare"
        );

        // Enumerate joint states with their stationary probabilities.
        let mut pi_y = vec![0.0; num_y];
        let mut caps_y: Vec<Vec<f64>> = vec![Vec::new(); num_y];
        for y in 0..num_y {
            let mut prob = 1.0;
            let mut caps = Vec::with_capacity(h);
            let mut rem = y;
            for j in (0..h).rev() {
                let s = rem % self.levels[j].len();
                rem /= self.levels[j].len();
                prob *= self.stationary[j][s];
                caps.push(self.levels[j][s]);
            }
            caps.reverse();
            pi_y[y] = prob;
            caps_y[y] = caps;
        }

        // Welfare u(y, x) for every variable.
        let mut costs = vec![0.0; num_vars];
        for (y, caps) in caps_y.iter().enumerate() {
            for x in 0..num_x {
                let mut loads = vec![0usize; h];
                let mut rem = x;
                for _ in 0..self.num_peers {
                    loads[rem % h] += 1;
                    rem /= h;
                }
                let welfare: f64 = loads
                    .iter()
                    .zip(caps)
                    .map(|(&n, &c)| crate::assignment::helper_welfare(c, n, self.demand))
                    .sum();
                costs[y * num_x + x] = welfare;
            }
        }

        let mut lp = LinearProgram::maximize(costs);
        // Marginal constraints Σ_x ρ(y,x) = π(y). (These imply Σρ = 1.)
        for y in 0..num_y {
            let mut row = vec![0.0; num_vars];
            for x in 0..num_x {
                row[y * num_x + x] = 1.0;
            }
            lp.add_constraint(row, Relation::Eq, pi_y[y])?;
        }
        let sol = lp.solve()?;
        Ok(OccupationSolution { welfare: sol.objective(), num_variables: num_vars })
    }

    /// The decomposed optimum `Σ_y π(y)·W*(y)` computed state-by-state
    /// with the greedy assignment solver — mathematically equal to the LP
    /// optimum (asserted in tests), but polynomial-time.
    pub fn decomposed_welfare(&self) -> f64 {
        let h = self.levels.len();
        let num_y = self.num_states();
        let mut total = 0.0;
        for y in 0..num_y {
            let mut prob = 1.0;
            let mut caps = Vec::with_capacity(h);
            let mut rem = y;
            for j in (0..h).rev() {
                let s = rem % self.levels[j].len();
                rem /= self.levels[j].len();
                prob *= self.stationary[j][s];
                caps.push(self.levels[j][s]);
            }
            caps.reverse();
            let alloc = crate::assignment::optimal_loads(&caps, self.num_peers, self.demand);
            total += prob * alloc.welfare;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_helper_instance(num_peers: usize, demand: Option<f64>) -> OccupationLp {
        OccupationLp::new(
            vec![vec![700.0, 900.0], vec![800.0]],
            vec![vec![0.5, 0.5], vec![1.0]],
            num_peers,
            demand,
        )
    }

    #[test]
    fn shapes_are_reported() {
        let lp = two_helper_instance(3, None);
        assert_eq!(lp.num_states(), 2);
        assert_eq!(lp.num_assignments(), 8);
    }

    #[test]
    fn lp_matches_decomposed_uncapped() {
        let lp = two_helper_instance(3, None);
        let sol = lp.solve().unwrap();
        let dec = lp.decomposed_welfare();
        assert!((sol.welfare - dec).abs() < 1e-6, "lp {} vs decomposed {dec}", sol.welfare);
        // By hand: E[C1] = 800, C2 = 800; with 3 peers both always covered:
        // E[W*] = E[C1] + C2 = 1600.
        assert!((sol.welfare - 1600.0).abs() < 1e-6);
    }

    #[test]
    fn lp_matches_decomposed_capped() {
        let lp = two_helper_instance(3, Some(400.0));
        let sol = lp.solve().unwrap();
        let dec = lp.decomposed_welfare();
        assert!((sol.welfare - dec).abs() < 1e-6, "lp {} vs decomposed {dec}", sol.welfare);
        // By hand, per state: caps (700,800): best 3-peer split is 1/2 or
        // 2/1: w = min(400,700)+min(800,800)=400+800=1200 for (1,2);
        // (2,1): min(800,700)+400=1100. So 1200. caps (900,800):
        // (1,2)=400+800=1200, (2,1)=800+400=1200 -> 1200.
        // E[W*] = 1200.
        assert!((sol.welfare - 1200.0).abs() < 1e-6);
    }

    #[test]
    fn single_peer_chooses_best_expected_helper() {
        let lp = OccupationLp::new(
            vec![vec![700.0, 900.0], vec![850.0]],
            vec![vec![0.5, 0.5], vec![1.0]],
            1,
            None,
        );
        let sol = lp.solve().unwrap();
        // Per state: max(700,850)=850; max(900,850)=900 -> E = 875.
        assert!((sol.welfare - 875.0).abs() < 1e-6);
    }

    #[test]
    fn three_level_paper_ladder() {
        // One helper with the paper's ladder and uniform-ish stationary
        // (birth-death 0.98 stay has stationary [0.25, 0.5, 0.25]).
        let lp = OccupationLp::new(
            vec![vec![700.0, 800.0, 900.0]],
            vec![vec![0.25, 0.5, 0.25]],
            2,
            None,
        );
        let sol = lp.solve().unwrap();
        assert!((sol.welfare - 800.0).abs() < 1e-6, "welfare {}", sol.welfare);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_instance_is_rejected() {
        let lp = OccupationLp::new(
            vec![vec![700.0, 800.0, 900.0]; 6],
            vec![vec![0.25, 0.5, 0.25]; 6],
            8,
            None,
        );
        let _ = lp.solve();
    }

    #[test]
    #[should_panic(expected = "not a distribution")]
    fn bad_stationary_rejected() {
        let _ = OccupationLp::new(vec![vec![800.0]], vec![vec![0.7]], 1, None);
    }
}
