//! Property tests: the three MDP solution paths agree.

use proptest::prelude::*;
use rths_mdp::assignment::{optimal_loads, optimal_loads_dp};
use rths_mdp::occupation::OccupationLp;
use rths_mdp::welfare::{
    expected_optimal_welfare_exact, expected_optimal_welfare_uncapped_covered,
};

fn caps() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(50.0..1000.0f64, 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn greedy_equals_dp_uncapped(c in caps(), n in 0usize..25) {
        let g = optimal_loads(&c, n, None);
        let dp = optimal_loads_dp(&c, n, None);
        prop_assert!((g.welfare - dp.welfare).abs() < 1e-9,
            "greedy {} vs dp {}", g.welfare, dp.welfare);
        prop_assert_eq!(g.loads.iter().sum::<usize>(), n);
    }

    #[test]
    fn greedy_equals_dp_capped(c in caps(), n in 0usize..25, d in 10.0..500.0f64) {
        let g = optimal_loads(&c, n, Some(d));
        let dp = optimal_loads_dp(&c, n, Some(d));
        prop_assert!((g.welfare - dp.welfare).abs() < 1e-9,
            "greedy {} vs dp {}", g.welfare, dp.welfare);
    }

    #[test]
    fn welfare_is_monotone_in_peers(c in caps(), n in 0usize..20, d in 10.0..500.0f64) {
        let w1 = optimal_loads(&c, n, Some(d)).welfare;
        let w2 = optimal_loads(&c, n + 1, Some(d)).welfare;
        prop_assert!(w2 >= w1 - 1e-9);
    }

    #[test]
    fn welfare_bounded_by_capacity_and_demand(c in caps(), n in 0usize..25, d in 10.0..500.0f64) {
        let w = optimal_loads(&c, n, Some(d)).welfare;
        let cap_total: f64 = c.iter().sum();
        prop_assert!(w <= cap_total + 1e-9);
        prop_assert!(w <= n as f64 * d + 1e-9);
    }

    #[test]
    fn occupation_lp_equals_decomposed(
        l1 in prop::collection::vec(100.0..900.0f64, 1..3),
        l2 in prop::collection::vec(100.0..900.0f64, 1..3),
        n in 1usize..4,
    ) {
        let uniform = |k: usize| vec![1.0 / k as f64; k];
        let lp = OccupationLp::new(
            vec![l1.clone(), l2.clone()],
            vec![uniform(l1.len()), uniform(l2.len())],
            n,
            None,
        );
        let sol = lp.solve().unwrap();
        let dec = lp.decomposed_welfare();
        prop_assert!((sol.welfare - dec).abs() < 1e-6,
            "lp {} vs decomposed {dec}", sol.welfare);
    }

    #[test]
    fn exact_welfare_matches_closed_form_when_covered(
        h in 1usize..5,
        extra_peers in 0usize..10,
    ) {
        let levels = vec![vec![700.0, 800.0, 900.0]; h];
        let pi = vec![vec![0.25, 0.5, 0.25]; h];
        let n = h + extra_peers; // coverage guaranteed
        let exact = expected_optimal_welfare_exact(&levels, &pi, n, None, 100_000);
        let closed = expected_optimal_welfare_uncapped_covered(&levels, &pi);
        prop_assert!((exact - closed).abs() < 1e-6);
    }
}
