//! Property-based round trips for the multi-process wire codec.
//!
//! The multiproc backend's bit-equivalence guarantee reduces to one
//! codec property: `decode(encode(x))` reproduces `x` **exactly**, with
//! every `f64` surviving as its raw bit pattern (`to_bits` equality —
//! NaN payloads and `-0.0` included, which `PartialEq` would miss).
//! Because the encoder is deterministic, re-encoding the decoded value
//! and comparing bytes checks exactly that, uniformly over every frame
//! shape. The strict-decoder half — truncated or garbage bodies are
//! rejected, never misread — is covered both here (every strict prefix
//! of a valid body fails) and by the unit tests in `rths_net::wire`.
//!
//! The vendored proptest has no `prop_oneof!`, so variant coverage comes
//! from a drawn tag index dispatching over a pool of raw draws; every
//! `f64` field is built with `f64::from_bits(any::<u64>())` so the whole
//! bit domain (NaN payloads, infinities, subnormals, `-0.0`) is on the
//! table.

use proptest::prelude::*;
use rths_net::wire::{decode_frame, encode_frame, Frame, WorkerSummary};
use rths_net::NetMsg;
use rths_reactor::bridge::{Reply, Step};
use rths_reactor::{ActorId, RemoteBatch};

/// One message, any variant, fields drawn from the raw pool.
fn arb_net_msg() -> impl Strategy<Value = NetMsg> {
    (0u8..13, any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()).prop_map(
        |(tag, a, b, c, d, flag)| match tag {
            0 => NetMsg::Run { epochs: a },
            1 => NetMsg::Publish,
            2 => NetMsg::Directory { helper_base: a as usize, num_helpers: b as usize },
            3 => NetMsg::Published,
            4 => NetMsg::NextEpoch,
            5 => NetMsg::Tick { epoch: a },
            6 => NetMsg::Request { peer: a, epoch: b, lost: flag },
            7 => NetMsg::Settle { epoch: a },
            8 => NetMsg::Rate { epoch: a, kbps: f64::from_bits(b) },
            9 => NetMsg::Selected { peer: a, epoch: b, helper: c as usize },
            10 => NetMsg::HelperReport {
                helper: a as usize,
                epoch: b,
                load: c as usize,
                capacity: f64::from_bits(d),
            },
            11 => NetMsg::Observed {
                peer: a,
                epoch: b,
                rate: f64::from_bits(c),
                estimate: f64::from_bits(d),
            },
            _ => NetMsg::SetOnline(flag),
        },
    )
}

fn arb_addressed() -> impl Strategy<Value = Vec<(ActorId, NetMsg)>> {
    prop::collection::vec((any::<usize>(), arb_net_msg()), 0..8)
        .prop_map(|msgs| msgs.into_iter().map(|(to, msg)| (ActorId(to), msg)).collect())
}

fn arb_batches() -> impl Strategy<Value = Vec<RemoteBatch<NetMsg>>> {
    prop::collection::vec((any::<usize>(), arb_addressed()), 0..5).prop_map(|batches| {
        batches
            .into_iter()
            .map(|(sender_shard, msgs)| RemoteBatch { sender_shard, msgs })
            .collect()
    })
}

/// Any protocol frame except `Config` (whose payload is a full
/// `SimConfig` — exercised by the dedicated unit round trip in
/// `rths_net::wire::tests`, since a *valid* config is far from an
/// arbitrary bit pattern).
fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        0u8..9,
        arb_addressed(),
        arb_batches(),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        prop::option::of(any::<u64>()),
        prop::collection::vec((any::<u64>(), any::<u64>()), 0..6),
    )
        .prop_map(|(tag, addressed, batches, (a, b, c), opt, raw_peers)| {
            let peers: Vec<(f64, f64)> = raw_peers
                .into_iter()
                .map(|(x, y)| (f64::from_bits(x), f64::from_bits(y)))
                .collect();
            match tag {
                0 => Frame::Hello { rank: a as usize },
                1 => Frame::Step(Step::Drain { staged: addressed }),
                2 => Frame::Step(Step::Merge { batches }),
                3 => Frame::Step(Step::Timers { deadline: a }),
                4 => Frame::Step(Step::Shutdown),
                5 => Frame::Reply(Reply::DrainDone { out: batches }),
                6 => Frame::Reply(Reply::Fence { pending: a as usize, next_deadline: opt }),
                7 => Frame::Reply(Reply::TimersDone {
                    fired: addressed,
                    pending: a as usize,
                    next_deadline: opt,
                }),
                _ => Frame::Summary(WorkerSummary { control: a, data: b, rss_kb: c, peers }),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// decode ∘ encode is the identity on every frame, bit-for-bit:
    /// re-encoding the decoded frame yields the same bytes, so every
    /// field — including arbitrary-bit f64s — survived exactly.
    #[test]
    fn every_frame_reencodes_to_identical_bytes(frame in arb_frame()) {
        let body = encode_frame(&frame);
        let decoded = decode_frame(&body).expect("valid encoding must decode");
        prop_assert_eq!(&encode_frame(&decoded), &body);
    }

    /// A single message survives a Drain frame with `to_bits`-exact
    /// payloads — the field-level statement of the byte-level property
    /// above, checked on the one variant-rich type the protocol ships
    /// every epoch.
    #[test]
    fn net_msg_payload_bits_survive(msg in arb_net_msg()) {
        let frame = Frame::Step(Step::Drain { staged: vec![(ActorId(7), msg)] });
        let body = encode_frame(&frame);
        let decoded = decode_frame(&body).expect("valid encoding must decode");
        prop_assert_eq!(&encode_frame(&decoded), &body);
    }

    /// Strict decoding: no strict prefix of a valid body decodes. A
    /// codec that tolerated truncation could silently drop trailing
    /// messages of a batch — a determinism bug, not a transport bug.
    #[test]
    fn no_strict_prefix_of_a_frame_decodes(frame in arb_frame()) {
        let body = encode_frame(&frame);
        for cut in 0..body.len() {
            prop_assert!(
                decode_frame(&body[..cut]).is_err(),
                "prefix of length {} decoded", cut
            );
        }
    }

    /// Trailing garbage after a complete frame body is rejected too:
    /// frame boundaries come from the length prefix alone, so any
    /// slack means the sender and receiver disagree about the length.
    #[test]
    fn trailing_garbage_is_rejected(frame in arb_frame(), junk in any::<u8>()) {
        let mut body = encode_frame(&frame);
        body.push(junk);
        prop_assert!(decode_frame(&body).is_err());
    }
}
