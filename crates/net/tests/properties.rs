//! Property-based tests for the decentralized runtime.

use proptest::prelude::*;
use rths_net::{NetConfig, NetRuntime};
use rths_sim::{BandwidthSpec, ImpairmentPlan, SimConfig};

fn config(n: usize, h: usize, seed: u64, demand: Option<f64>) -> SimConfig {
    let mut b = SimConfig::builder(n, vec![BandwidthSpec::Paper { stay: 0.95 }; h]).seed(seed);
    if let Some(d) = demand {
        b = b.demand(d);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn runtime_is_deterministic(
        n in 2usize..12,
        h in 1usize..5,
        seed in any::<u64>(),
    ) {
        let run = || NetRuntime::new(NetConfig::from_sim(config(n, h, seed, None))).run(30);
        let a = run();
        let b = run();
        prop_assert_eq!(a.metrics.welfare.values(), b.metrics.welfare.values());
        prop_assert_eq!(a.peer_mean_rates, b.peer_mean_rates);
    }

    #[test]
    fn lossy_runs_are_deterministic_too(
        seed in any::<u64>(),
        loss in 0.0..0.9f64,
    ) {
        let run = || {
            let plan = ImpairmentPlan::builder(seed ^ 0xABCD)
                .uniform_loss(loss)
                .build()
                .expect("loss is a probability");
            let cfg = NetConfig::from_sim(config(6, 2, seed, Some(300.0)))
                .with_impairments(plan);
            NetRuntime::new(cfg).run(40)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.metrics.welfare.values(), b.metrics.welfare.values());
        prop_assert_eq!(a.metrics.server_load.values(), b.metrics.server_load.values());
    }

    #[test]
    fn loss_is_monotone_in_welfare(seed in 0u64..50) {
        // More loss can never deliver more total rate (deterministic
        // comparison is per-seed noisy, so compare time-averaged welfare
        // with a tolerance).
        let run = |loss: f64| {
            let plan = ImpairmentPlan::builder(7)
                .uniform_loss(loss)
                .build()
                .expect("loss is a probability");
            let cfg = NetConfig::from_sim(config(8, 2, seed, None)).with_impairments(plan);
            let out = NetRuntime::new(cfg).run(150);
            out.metrics.welfare.tail_mean(100)
        };
        let clean = run(0.0);
        let heavy = run(0.6);
        prop_assert!(heavy <= clean * 1.05 + 1e-9,
            "heavy loss delivered more: {heavy} vs {clean}");
    }

    #[test]
    fn conservation_with_demand(
        n in 2usize..10,
        seed in any::<u64>(),
    ) {
        let out =
            NetRuntime::new(NetConfig::from_sim(config(n, 3, seed, Some(350.0)))).run(40);
        for e in 0..40 {
            let w = out.metrics.welfare.values()[e];
            let s = out.metrics.server_load.values()[e];
            prop_assert!((w + s - 350.0 * n as f64).abs() < 1e-6,
                "delivered {w} + server {s} != demand");
        }
    }
}
