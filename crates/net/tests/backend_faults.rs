//! Loss-impairment coverage on the reactor backend.
//!
//! The fault model must be backend-invariant: a dropped data-plane
//! payload ("the connection exists but the stream never arrives") reaches
//! the peer's learner as a **zero-rate observation**, whichever runtime
//! hosts the actors. These tests pin that three ways: at the machine
//! level (a lost reply is bit-identical to `observe(0.0)`), at the system
//! level (lossy reactor runs reproduce lossy threaded runs bit-for-bit),
//! and at the boundary (full loss starves everyone on both backends).
//!
//! Loss plans are built with `ImpairmentPlan::builder` directly; the
//! uniform-loss model replicates the legacy `FaultPlan` hash stream
//! bit-for-bit (asserted by `rths_sim::impairment`'s compatibility
//! tests), so these runs reproduce the pre-migration ones exactly.

use rths_core::Learner;
use rths_net::machines::{HelperMachine, PeerMachine};
use rths_net::{Backend, ImpairmentPlan, NetConfig};
use rths_sim::helper::{Helper, HelperId};
use rths_sim::{BandwidthSpec, Scenario, SimConfig};
use rths_stoch::bandwidth::ConstantBandwidth;

fn bits(series: &[f64]) -> Vec<u64> {
    series.iter().map(|v| v.to_bits()).collect()
}

fn uniform_loss(loss: f64, seed: u64) -> ImpairmentPlan {
    ImpairmentPlan::builder(seed).uniform_loss(loss).build().unwrap()
}

fn lossy_config(seed: u64, loss: f64) -> NetConfig {
    let sim = SimConfig::builder(12, vec![BandwidthSpec::Paper { stay: 0.95 }; 3])
        .demand(350.0)
        .seed(seed)
        .build();
    NetConfig::from_sim(sim).with_impairments(uniform_loss(loss, seed ^ 0xF00D))
}

#[test]
fn dropped_reply_is_exactly_a_zero_rate_observation() {
    // Twin peers with identical RNG streams: one is served through a
    // helper that drops its payload, the other observes an explicit 0.0.
    // Their learner states must end bit-identical.
    let sim = Scenario::paper_small().seed(31).build();
    let mut dropped = PeerMachine::from_config(&sim, 4, 2, uniform_loss(1.0, 1));
    let mut explicit = PeerMachine::from_config(&sim, 4, 2, ImpairmentPlan::none());
    let mut helper: HelperMachine<()> = HelperMachine::new(Helper::with_seed(
        HelperId(0),
        Box::new(ConstantBandwidth::new(800.0)),
        0,
    ));

    for epoch in 0..50 {
        let sel = dropped.on_tick(epoch);
        assert!(sel.lost, "loss=1.0 must drop every epoch");
        helper.on_tick();
        helper.on_request(dropped.id(), sel.lost, ());
        let mut delivered = f64::NAN;
        let _ = helper.on_settle(|_, kbps, ()| delivered = kbps);
        assert_eq!(delivered, 0.0, "lost payload must surface as rate 0");
        let observed = dropped.on_rate(delivered);

        let _ = explicit.on_tick(epoch);
        let twin_observed = explicit.on_rate(0.0);
        assert_eq!(observed.to_bits(), twin_observed.to_bits());
    }
    assert_eq!(
        bits(dropped.peer().learner().probabilities()),
        bits(explicit.peer().learner().probabilities()),
        "learner state diverged from the explicit zero-rate twin"
    );
    assert_eq!(dropped.peer().mean_rate(), 0.0);
}

#[test]
fn lossy_reactor_reproduces_lossy_threaded_run() {
    // Partial loss: the fault draw is a pure function of (seed, peer,
    // epoch), so the reactor and threaded backends must drop the same
    // payloads and end in identical learner/metric states.
    for loss in [0.15, 0.5] {
        let threaded = rths_net::run(lossy_config(77, loss), 120);
        let reactor = rths_net::run(lossy_config(77, loss).with_backend(Backend::Reactor), 120);
        assert_eq!(
            bits(threaded.metrics.welfare.values()),
            bits(reactor.metrics.welfare.values()),
            "loss={loss}: welfare diverged"
        );
        assert_eq!(
            bits(threaded.metrics.server_load.values()),
            bits(reactor.metrics.server_load.values()),
            "loss={loss}: server load diverged"
        );
        assert_eq!(
            bits(&threaded.peer_mean_rates),
            bits(&reactor.peer_mean_rates),
            "loss={loss}: per-peer mean rates diverged"
        );
        assert_eq!(
            bits(&threaded.peer_continuity),
            bits(&reactor.peer_continuity),
            "loss={loss}: continuity diverged"
        );
        assert_eq!(threaded.messages, reactor.messages, "loss={loss}: accounting diverged");
    }
}

#[test]
fn full_loss_starves_everyone_on_the_reactor() {
    let out = rths_net::run(lossy_config(9, 1.0).with_backend(Backend::Reactor), 40);
    for &w in out.metrics.welfare.values() {
        assert_eq!(w, 0.0);
    }
    assert!(out.peer_mean_rates.iter().all(|&r| r == 0.0));
    // Demand is set, so continuity collapses too.
    assert!(out.peer_continuity.iter().all(|&c| c == 0.0));
}

#[test]
fn loss_and_jitter_compose_on_the_reactor() {
    // Jitter delays deliveries through the timer wheel; loss drops
    // payloads. Jitter must still change nothing, even combined with
    // loss.
    let plain = rths_net::run(lossy_config(5, 0.3).with_backend(Backend::Reactor), 80);
    let config = lossy_config(5, 0.3);
    let jittery_plan = config.impairments.with_jitter(150);
    let jittery = rths_net::run(
        lossy_config(5, 0.3).with_backend(Backend::Reactor).with_impairments(jittery_plan),
        80,
    );
    assert_eq!(
        bits(plain.metrics.welfare.values()),
        bits(jittery.metrics.welfare.values()),
        "jitter changed a lossy reactor run"
    );
}
