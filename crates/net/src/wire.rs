//! Dependency-free binary wire codec for the multi-process reactor.
//!
//! Everything that crosses a process boundary — protocol messages
//! ([`NetMsg`]), bridge lockstep frames ([`Step`]/[`Reply`]), the worker
//! bootstrap configuration, and the end-of-run summary — is encoded here
//! as a **length-prefixed frame**:
//!
//! ```text
//! [u32 LE body length] [version u8] [tag u8] [payload …]
//! ```
//!
//! Design rules, all in service of the bit-equivalence contract:
//!
//! * **Floats travel as `f64::to_bits`**, little-endian. A rate that is
//!   `-0.0` or a NaN with a particular payload decodes to *exactly* the
//!   same bits on the far side — no text formatting, no float
//!   arithmetic, no locale.
//! * **No implicit defaults on decode.** Booleans must be literally `0`
//!   or `1`, options must be present-or-absent bytes, and a frame must
//!   be consumed exactly (trailing bytes are an error), so a corrupted
//!   or truncated frame is rejected instead of half-applied.
//! * **Versioned header.** The first body byte is [`WIRE_VERSION`]; a
//!   mixed-version mesh fails loudly at the first frame rather than
//!   producing subtly different trajectories.
//! * The thread-backend's `reply: Sender<PeerMsg>` channel handle does
//!   not exist here: the reactor mesh already routes replies by the
//!   sender's stable actor id (`NetMsg::Request { peer, .. }`), which is
//!   a plain `u64` on the wire.
//!
//! The codec is hand-rolled over `std` only — the workspace vendors its
//! few dependencies and the wire format must not grow one.

use std::io::{Read, Write};

use rths_reactor::bridge::{Reply, Step};
use rths_reactor::{ActorId, RemoteBatch};
use rths_sim::impairment::LossModel;
use rths_sim::{BandwidthSpec, ImpairmentPlan, LearnerSpec, SimConfig};

use crate::reactor_backend::NetMsg;
use crate::runtime::NetConfig;

/// Wire format version; bumped on any layout change.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on a frame body (bytes). A drain batch for a 10⁵-actor
/// mesh is a few megabytes; anything near this cap is corruption.
pub const MAX_FRAME: usize = 256 << 20;

/// Decode failure. Encoding is infallible (memory aside); decoding
/// rejects anything that is not an exact image of an encoded value.
#[derive(Debug)]
pub enum WireError {
    /// Frame ended before the value it promised.
    Truncated,
    /// Version byte mismatch (argument: the byte found).
    BadVersion(u8),
    /// Unknown tag for the named sum type.
    BadTag(&'static str, u8),
    /// A boolean byte that was neither 0 nor 1.
    BadBool(u8),
    /// Frame decoded but left unconsumed bytes behind.
    Trailing(usize),
    /// Declared frame length exceeds [`MAX_FRAME`].
    Oversize(u64),
    /// Structurally valid frame with semantically invalid content
    /// (e.g. a config with no helpers).
    Invalid(&'static str),
    /// Transport error while reading a frame.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadVersion(v) => {
                write!(f, "wire version {v} (expected {WIRE_VERSION})")
            }
            WireError::BadTag(what, tag) => write!(f, "unknown {what} tag {tag}"),
            WireError::BadBool(b) => write!(f, "invalid boolean byte {b}"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after frame"),
            WireError::Oversize(n) => write!(f, "frame length {n} exceeds {MAX_FRAME}"),
            WireError::Invalid(what) => write!(f, "invalid frame content: {what}"),
            WireError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Primitive encode/decode
// ---------------------------------------------------------------------

/// Append-only body builder; starts with the version + tag header.
#[derive(Debug)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Starts a frame body with the given outer tag.
    pub fn new(tag: u8) -> Self {
        Self { buf: vec![WIRE_VERSION, tag] }
    }

    /// Finishes the body (no length prefix; see [`write_frame`]).
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` as u64 (the format is 64-bit regardless of host).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// `f64` as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Strict boolean byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Option presence byte followed by the value when present.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.bool(false),
            Some(v) => {
                self.bool(true);
                self.u64(v);
            }
        }
    }

    /// Option presence byte followed by the value when present.
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.bool(false),
            Some(v) => {
                self.bool(true);
                self.f64(v);
            }
        }
    }

    /// Sequence length header (u64 count; items follow).
    pub fn seq(&mut self, len: usize) {
        self.usize(len);
    }
}

/// Cursor over a frame body; every read is bounds-checked.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Opens a frame body: checks the version byte, returns the outer
    /// tag and a cursor positioned at the payload.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] on a short header, [`WireError::BadVersion`]
    /// on a version mismatch.
    pub fn open(body: &'a [u8]) -> Result<(u8, Self), WireError> {
        if body.len() < 2 {
            return Err(WireError::Truncated);
        }
        if body[0] != WIRE_VERSION {
            return Err(WireError::BadVersion(body[0]));
        }
        Ok((body[1], Self { buf: body, pos: 2 }))
    }

    /// Asserts the frame is fully consumed.
    ///
    /// # Errors
    ///
    /// [`WireError::Trailing`] when bytes remain.
    pub fn close(self) -> Result<(), WireError> {
        let left = self.buf.len() - self.pos;
        if left != 0 {
            return Err(WireError::Trailing(left));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Raw byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of frame.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian u64.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of frame.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    /// u64 narrowed to `usize` (the mesh sizes fit by construction).
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of frame, [`WireError::Oversize`]
    /// if the value does not fit a `usize`.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::Oversize(v))
    }

    /// `f64` from its exact bit pattern.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of frame.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Strict boolean byte.
    ///
    /// # Errors
    ///
    /// [`WireError::BadBool`] on any byte other than 0/1.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::BadBool(b)),
        }
    }

    /// Optional u64.
    ///
    /// # Errors
    ///
    /// Propagates the presence byte's and value's errors.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        Ok(if self.bool()? { Some(self.u64()?) } else { None })
    }

    /// Optional f64.
    ///
    /// # Errors
    ///
    /// Propagates the presence byte's and value's errors.
    pub fn opt_f64(&mut self) -> Result<Option<f64>, WireError> {
        Ok(if self.bool()? { Some(self.f64()?) } else { None })
    }

    /// Sequence length header, capped so a corrupt count cannot trigger
    /// a huge allocation (every item is at least one byte).
    ///
    /// # Errors
    ///
    /// [`WireError::Oversize`] when the count exceeds the remaining
    /// frame bytes.
    pub fn seq(&mut self) -> Result<usize, WireError> {
        let n = self.usize()?;
        if n > self.buf.len() - self.pos {
            return Err(WireError::Oversize(n as u64));
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------
// NetMsg
// ---------------------------------------------------------------------

fn put_net_msg(w: &mut WireWriter, msg: &NetMsg) {
    match msg {
        NetMsg::Run { epochs } => {
            w.u8(0);
            w.u64(*epochs);
        }
        NetMsg::Publish => w.u8(1),
        NetMsg::Directory { helper_base, num_helpers } => {
            w.u8(2);
            w.usize(*helper_base);
            w.usize(*num_helpers);
        }
        NetMsg::Published => w.u8(3),
        NetMsg::NextEpoch => w.u8(4),
        NetMsg::Tick { epoch } => {
            w.u8(5);
            w.u64(*epoch);
        }
        NetMsg::Request { peer, epoch, lost } => {
            w.u8(6);
            w.u64(*peer);
            w.u64(*epoch);
            w.bool(*lost);
        }
        NetMsg::Settle { epoch } => {
            w.u8(7);
            w.u64(*epoch);
        }
        NetMsg::Rate { epoch, kbps } => {
            w.u8(8);
            w.u64(*epoch);
            w.f64(*kbps);
        }
        NetMsg::Selected { peer, epoch, helper } => {
            w.u8(9);
            w.u64(*peer);
            w.u64(*epoch);
            w.usize(*helper);
        }
        NetMsg::HelperReport { helper, epoch, load, capacity } => {
            w.u8(10);
            w.usize(*helper);
            w.u64(*epoch);
            w.usize(*load);
            w.f64(*capacity);
        }
        NetMsg::Observed { peer, epoch, rate, estimate } => {
            w.u8(11);
            w.u64(*peer);
            w.u64(*epoch);
            w.f64(*rate);
            w.f64(*estimate);
        }
        NetMsg::SetOnline(online) => {
            w.u8(12);
            w.bool(*online);
        }
    }
}

fn get_net_msg(r: &mut WireReader<'_>) -> Result<NetMsg, WireError> {
    Ok(match r.u8()? {
        0 => NetMsg::Run { epochs: r.u64()? },
        1 => NetMsg::Publish,
        2 => NetMsg::Directory { helper_base: r.usize()?, num_helpers: r.usize()? },
        3 => NetMsg::Published,
        4 => NetMsg::NextEpoch,
        5 => NetMsg::Tick { epoch: r.u64()? },
        6 => NetMsg::Request { peer: r.u64()?, epoch: r.u64()?, lost: r.bool()? },
        7 => NetMsg::Settle { epoch: r.u64()? },
        8 => NetMsg::Rate { epoch: r.u64()?, kbps: r.f64()? },
        9 => NetMsg::Selected { peer: r.u64()?, epoch: r.u64()?, helper: r.usize()? },
        10 => NetMsg::HelperReport {
            helper: r.usize()?,
            epoch: r.u64()?,
            load: r.usize()?,
            capacity: r.f64()?,
        },
        11 => NetMsg::Observed {
            peer: r.u64()?,
            epoch: r.u64()?,
            rate: r.f64()?,
            estimate: r.f64()?,
        },
        12 => NetMsg::SetOnline(r.bool()?),
        tag => return Err(WireError::BadTag("NetMsg", tag)),
    })
}

fn put_addressed(w: &mut WireWriter, msgs: &[(ActorId, NetMsg)]) {
    w.seq(msgs.len());
    for (to, msg) in msgs {
        w.usize(to.0);
        put_net_msg(w, msg);
    }
}

fn get_addressed(r: &mut WireReader<'_>) -> Result<Vec<(ActorId, NetMsg)>, WireError> {
    let n = r.seq()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let to = ActorId(r.usize()?);
        out.push((to, get_net_msg(r)?));
    }
    Ok(out)
}

fn put_batches(w: &mut WireWriter, batches: &[RemoteBatch<NetMsg>]) {
    w.seq(batches.len());
    for batch in batches {
        w.usize(batch.sender_shard);
        put_addressed(w, &batch.msgs);
    }
}

fn get_batches(r: &mut WireReader<'_>) -> Result<Vec<RemoteBatch<NetMsg>>, WireError> {
    let n = r.seq()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let sender_shard = r.usize()?;
        out.push(RemoteBatch { sender_shard, msgs: get_addressed(r)? });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Configuration payloads
// ---------------------------------------------------------------------

fn put_bandwidth_spec(w: &mut WireWriter, spec: &BandwidthSpec) {
    match spec {
        BandwidthSpec::Paper { stay } => {
            w.u8(0);
            w.f64(*stay);
        }
        BandwidthSpec::Ladder { levels, stay } => {
            w.u8(1);
            w.seq(levels.len());
            for &level in levels {
                w.f64(level);
            }
            w.f64(*stay);
        }
        BandwidthSpec::Constant(level) => {
            w.u8(2);
            w.f64(*level);
        }
        BandwidthSpec::RandomWalk { initial, min, max, step, move_prob } => {
            w.u8(3);
            w.f64(*initial);
            w.f64(*min);
            w.f64(*max);
            w.f64(*step);
            w.f64(*move_prob);
        }
        BandwidthSpec::GilbertElliott { good, bad, p_gb, p_bg } => {
            w.u8(4);
            w.f64(*good);
            w.f64(*bad);
            w.f64(*p_gb);
            w.f64(*p_bg);
        }
        BandwidthSpec::RegimeShift { before, after, at } => {
            w.u8(5);
            w.f64(*before);
            w.f64(*after);
            w.u64(*at);
        }
        BandwidthSpec::Trace(samples) => {
            w.u8(6);
            w.seq(samples.len());
            for &sample in samples {
                w.f64(sample);
            }
        }
    }
}

fn get_f64_vec(r: &mut WireReader<'_>) -> Result<Vec<f64>, WireError> {
    let n = r.seq()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.f64()?);
    }
    Ok(out)
}

fn get_bandwidth_spec(r: &mut WireReader<'_>) -> Result<BandwidthSpec, WireError> {
    Ok(match r.u8()? {
        0 => BandwidthSpec::Paper { stay: r.f64()? },
        1 => BandwidthSpec::Ladder { levels: get_f64_vec(r)?, stay: r.f64()? },
        2 => BandwidthSpec::Constant(r.f64()?),
        3 => BandwidthSpec::RandomWalk {
            initial: r.f64()?,
            min: r.f64()?,
            max: r.f64()?,
            step: r.f64()?,
            move_prob: r.f64()?,
        },
        4 => BandwidthSpec::GilbertElliott {
            good: r.f64()?,
            bad: r.f64()?,
            p_gb: r.f64()?,
            p_bg: r.f64()?,
        },
        5 => BandwidthSpec::RegimeShift { before: r.f64()?, after: r.f64()?, at: r.u64()? },
        6 => BandwidthSpec::Trace(get_f64_vec(r)?),
        tag => return Err(WireError::BadTag("BandwidthSpec", tag)),
    })
}

fn put_learner_spec(w: &mut WireWriter, spec: &LearnerSpec) {
    use rths_sim::Algorithm;
    w.u8(match spec.algorithm {
        Algorithm::Rths => 0,
        Algorithm::RegretMatching => 1,
        Algorithm::HistoryRths => 2,
        Algorithm::Exp3 => 3,
    });
    w.f64(spec.epsilon);
    w.f64(spec.delta);
    w.opt_f64(spec.mu);
    w.bool(spec.conditional);
}

fn get_learner_spec(r: &mut WireReader<'_>) -> Result<LearnerSpec, WireError> {
    use rths_sim::Algorithm;
    let algorithm = match r.u8()? {
        0 => Algorithm::Rths,
        1 => Algorithm::RegretMatching,
        2 => Algorithm::HistoryRths,
        3 => Algorithm::Exp3,
        tag => return Err(WireError::BadTag("Algorithm", tag)),
    };
    Ok(LearnerSpec {
        algorithm,
        epsilon: r.f64()?,
        delta: r.f64()?,
        mu: r.opt_f64()?,
        conditional: r.bool()?,
    })
}

fn put_impairments(w: &mut WireWriter, plan: &ImpairmentPlan) {
    w.u64(plan.seed());
    match plan.loss() {
        LossModel::None => w.u8(0),
        LossModel::Uniform { loss } => {
            w.u8(1);
            w.f64(*loss);
        }
        LossModel::GilbertElliott { p_enter_bad, p_exit_bad, bad_loss, good_loss } => {
            w.u8(2);
            w.f64(*p_enter_bad);
            w.f64(*p_exit_bad);
            w.f64(*bad_loss);
            w.f64(*good_loss);
        }
    }
    w.u64(plan.jitter_us());
    match plan.latency() {
        None => w.bool(false),
        Some(lat) => {
            w.bool(true);
            w.seq(lat.ticks.len());
            for &t in &lat.ticks {
                w.u64(t);
            }
            w.f64(lat.stay);
        }
    }
    match plan.token_bucket() {
        None => w.bool(false),
        Some(tb) => {
            w.bool(true);
            w.f64(tb.rate_kbps);
            w.f64(tb.burst_kbits);
        }
    }
    match plan.link_bandwidth() {
        None => w.bool(false),
        Some(bw) => {
            w.bool(true);
            w.seq(bw.levels.len());
            for &level in &bw.levels {
                w.f64(level);
            }
            w.f64(bw.stay);
        }
    }
}

fn get_impairments(r: &mut WireReader<'_>) -> Result<ImpairmentPlan, WireError> {
    let seed = r.u64()?;
    let mut builder = ImpairmentPlan::builder(seed);
    match r.u8()? {
        0 => {}
        1 => builder = builder.uniform_loss(r.f64()?),
        2 => builder = builder.gilbert_loss(r.f64()?, r.f64()?, r.f64()?, r.f64()?),
        tag => return Err(WireError::BadTag("LossModel", tag)),
    }
    let jitter_us = r.u64()?;
    if jitter_us > 0 {
        builder = builder.jitter_us(jitter_us);
    }
    if r.bool()? {
        let n = r.seq()?;
        let mut ticks = Vec::with_capacity(n);
        for _ in 0..n {
            ticks.push(r.u64()?);
        }
        builder = builder.latency(ticks, r.f64()?);
    }
    if r.bool()? {
        builder = builder.token_bucket(r.f64()?, r.f64()?);
    }
    if r.bool()? {
        builder = builder.link_bandwidth(get_f64_vec(r)?, r.f64()?);
    }
    builder.build().map_err(|_| WireError::Invalid("impairment plan out of range"))
}

/// Everything a worker process needs to rebuild its partition of the
/// mesh: the run configuration plus the shard-map parameters (the map
/// itself is recomputed — it is a pure function of these).
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// The run configuration (backend/trace fields are not transported:
    /// a worker always hosts a reactor partition and never traces).
    pub config: NetConfig,
    /// Mailbox shard span of every partition.
    pub span: usize,
    /// Total process count (ranks).
    pub processes: usize,
}

fn put_worker_config(w: &mut WireWriter, wc: &WorkerConfig) {
    let sim = &wc.config.sim;
    w.usize(wc.span);
    w.usize(wc.processes);
    w.bool(wc.config.track_estimate);
    w.usize(sim.num_peers);
    w.seq(sim.helpers.len());
    for spec in &sim.helpers {
        put_bandwidth_spec(w, spec);
    }
    w.opt_f64(sim.demand);
    put_learner_spec(w, &sim.learner);
    w.u64(sim.seed);
    w.u64(sim.record_joint_from);
    w.bool(sim.record_peer_rates);
    put_impairments(w, &sim.impairment);
    put_impairments(w, &wc.config.impairments);
}

fn get_worker_config(r: &mut WireReader<'_>) -> Result<WorkerConfig, WireError> {
    let span = r.usize()?;
    let processes = r.usize()?;
    let track_estimate = r.bool()?;
    let num_peers = r.usize()?;
    let n = r.seq()?;
    let mut helpers = Vec::with_capacity(n);
    for _ in 0..n {
        helpers.push(get_bandwidth_spec(r)?);
    }
    if helpers.is_empty() {
        return Err(WireError::Invalid("config with no helpers"));
    }
    let demand = r.opt_f64()?;
    let learner = get_learner_spec(r)?;
    let seed = r.u64()?;
    let record_joint_from = r.u64()?;
    let record_peer_rates = r.bool()?;
    let sim_impairment = get_impairments(r)?;
    let net_impairments = get_impairments(r)?;
    let mut builder = SimConfig::builder(num_peers, helpers)
        .learner(learner)
        .seed(seed)
        .record_joint_from(record_joint_from)
        .record_peer_rates(record_peer_rates)
        .impairment(sim_impairment);
    if let Some(demand) = demand {
        builder = builder.demand(demand);
    }
    let config = NetConfig::from_sim(builder.build())
        .with_impairments(net_impairments)
        .with_track_estimate(track_estimate);
    Ok(WorkerConfig { config, span, processes })
}

/// End-of-run report a worker sends back after `Shutdown`.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSummary {
    /// Control-plane messages counted by the worker's actors.
    pub control: u64,
    /// Data-plane messages counted by the worker's actors.
    pub data: u64,
    /// The worker process's peak RSS (`VmHWM`, kB; 0 if unreadable).
    pub rss_kb: u64,
    /// Per-peer `(mean_rate, continuity)` in ascending peer-id order.
    pub peers: Vec<(f64, f64)>,
}

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

/// Every frame of the multi-process protocol.
#[derive(Debug)]
pub enum Frame {
    /// Worker → controller, first frame on connect.
    Hello {
        /// The worker's rank (from `RTHS_MP_RANK`).
        rank: usize,
    },
    /// Controller → worker: build your partition.
    Config(Box<WorkerConfig>),
    /// Controller → worker lockstep step.
    Step(Step<NetMsg>),
    /// Worker → controller lockstep reply.
    Reply(Reply<NetMsg>),
    /// Worker → controller, after `Shutdown`: final report.
    Summary(WorkerSummary),
}

const TAG_HELLO: u8 = 0;
const TAG_CONFIG: u8 = 1;
const TAG_DRAIN: u8 = 2;
const TAG_MERGE: u8 = 3;
const TAG_TIMERS: u8 = 4;
const TAG_SHUTDOWN: u8 = 5;
const TAG_DRAIN_DONE: u8 = 6;
const TAG_FENCE: u8 = 7;
const TAG_TIMERS_DONE: u8 = 8;
const TAG_SUMMARY: u8 = 9;

/// Encodes a frame body (version + tag + payload, no length prefix).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut w;
    match frame {
        Frame::Hello { rank } => {
            w = WireWriter::new(TAG_HELLO);
            w.usize(*rank);
        }
        Frame::Config(wc) => {
            w = WireWriter::new(TAG_CONFIG);
            put_worker_config(&mut w, wc);
        }
        Frame::Step(step) => match step {
            Step::Drain { staged } => {
                w = WireWriter::new(TAG_DRAIN);
                put_addressed(&mut w, staged);
            }
            Step::Merge { batches } => {
                w = WireWriter::new(TAG_MERGE);
                put_batches(&mut w, batches);
            }
            Step::Timers { deadline } => {
                w = WireWriter::new(TAG_TIMERS);
                w.u64(*deadline);
            }
            Step::Shutdown => {
                w = WireWriter::new(TAG_SHUTDOWN);
            }
        },
        Frame::Reply(reply) => match reply {
            Reply::DrainDone { out } => {
                w = WireWriter::new(TAG_DRAIN_DONE);
                put_batches(&mut w, out);
            }
            Reply::Fence { pending, next_deadline } => {
                w = WireWriter::new(TAG_FENCE);
                w.usize(*pending);
                w.opt_u64(*next_deadline);
            }
            Reply::TimersDone { fired, pending, next_deadline } => {
                w = WireWriter::new(TAG_TIMERS_DONE);
                put_addressed(&mut w, fired);
                w.usize(*pending);
                w.opt_u64(*next_deadline);
            }
        },
        Frame::Summary(summary) => {
            w = WireWriter::new(TAG_SUMMARY);
            w.u64(summary.control);
            w.u64(summary.data);
            w.u64(summary.rss_kb);
            w.seq(summary.peers.len());
            for &(rate, continuity) in &summary.peers {
                w.f64(rate);
                w.f64(continuity);
            }
        }
    }
    w.finish()
}

/// Decodes a frame body produced by [`encode_frame`].
///
/// # Errors
///
/// Any [`WireError`] when the body is not an exact encoding.
pub fn decode_frame(body: &[u8]) -> Result<Frame, WireError> {
    let (tag, mut r) = WireReader::open(body)?;
    let frame = match tag {
        TAG_HELLO => Frame::Hello { rank: r.usize()? },
        TAG_CONFIG => Frame::Config(Box::new(get_worker_config(&mut r)?)),
        TAG_DRAIN => Frame::Step(Step::Drain { staged: get_addressed(&mut r)? }),
        TAG_MERGE => Frame::Step(Step::Merge { batches: get_batches(&mut r)? }),
        TAG_TIMERS => Frame::Step(Step::Timers { deadline: r.u64()? }),
        TAG_SHUTDOWN => Frame::Step(Step::Shutdown),
        TAG_DRAIN_DONE => Frame::Reply(Reply::DrainDone { out: get_batches(&mut r)? }),
        TAG_FENCE => {
            Frame::Reply(Reply::Fence { pending: r.usize()?, next_deadline: r.opt_u64()? })
        }
        TAG_TIMERS_DONE => Frame::Reply(Reply::TimersDone {
            fired: get_addressed(&mut r)?,
            pending: r.usize()?,
            next_deadline: r.opt_u64()?,
        }),
        TAG_SUMMARY => {
            let control = r.u64()?;
            let data = r.u64()?;
            let rss_kb = r.u64()?;
            let n = r.seq()?;
            let mut peers = Vec::with_capacity(n);
            for _ in 0..n {
                peers.push((r.f64()?, r.f64()?));
            }
            Frame::Summary(WorkerSummary { control, data, rss_kb, peers })
        }
        tag => return Err(WireError::BadTag("Frame", tag)),
    };
    r.close()?;
    Ok(frame)
}

/// Writes one length-prefixed frame and flushes.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), WireError> {
    let body = encode_frame(frame);
    debug_assert!(body.len() <= MAX_FRAME, "outgoing frame exceeds MAX_FRAME");
    let len = u32::try_from(body.len()).map_err(|_| WireError::Oversize(body.len() as u64))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// Transport errors, [`WireError::Oversize`] on a corrupt length, or
/// any decode error.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, WireError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversize(len as u64));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    decode_frame(&body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: &Frame) -> Frame {
        let body = encode_frame(frame);
        decode_frame(&body).expect("roundtrip decode")
    }

    #[test]
    fn hello_and_shutdown_roundtrip() {
        match roundtrip(&Frame::Hello { rank: 7 }) {
            Frame::Hello { rank } => assert_eq!(rank, 7),
            other => panic!("decoded {other:?}"),
        }
        assert!(matches!(roundtrip(&Frame::Step(Step::Shutdown)), Frame::Step(Step::Shutdown)));
    }

    #[test]
    fn nan_payload_survives_bitwise() {
        let weird = f64::from_bits(0x7FF8_DEAD_BEEF_CAFE); // NaN with payload
        let frame = Frame::Step(Step::Drain {
            staged: vec![(ActorId(3), NetMsg::Rate { epoch: 9, kbps: weird })],
        });
        match roundtrip(&frame) {
            Frame::Step(Step::Drain { staged }) => {
                assert_eq!(staged.len(), 1);
                match &staged[0] {
                    (to, NetMsg::Rate { epoch, kbps }) => {
                        assert_eq!(to.0, 3);
                        assert_eq!(*epoch, 9);
                        assert_eq!(kbps.to_bits(), 0x7FF8_DEAD_BEEF_CAFE);
                    }
                    other => panic!("decoded {other:?}"),
                }
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn negative_zero_survives_bitwise() {
        let frame = Frame::Reply(Reply::TimersDone {
            fired: vec![(ActorId(0), NetMsg::Rate { epoch: 1, kbps: -0.0 })],
            pending: 0,
            next_deadline: None,
        });
        match roundtrip(&frame) {
            Frame::Reply(Reply::TimersDone { fired, .. }) => match &fired[0].1 {
                NetMsg::Rate { kbps, .. } => {
                    assert_eq!(kbps.to_bits(), (-0.0f64).to_bits());
                }
                other => panic!("decoded {other:?}"),
            },
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let body = encode_frame(&Frame::Step(Step::Timers { deadline: 123_456 }));
        for cut in 0..body.len() {
            let err = decode_frame(&body[..cut]).expect_err("truncation must fail");
            assert!(matches!(err, WireError::Truncated), "cut at {cut} gave {err:?}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = encode_frame(&Frame::Hello { rank: 1 });
        body.push(0);
        assert!(matches!(
            decode_frame(&body).expect_err("trailing must fail"),
            WireError::Trailing(1)
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut body = encode_frame(&Frame::Hello { rank: 1 });
        body[0] = WIRE_VERSION + 1;
        assert!(matches!(
            decode_frame(&body).expect_err("version must fail"),
            WireError::BadVersion(v) if v == WIRE_VERSION + 1
        ));
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let body = vec![WIRE_VERSION, 0xEE];
        assert!(matches!(
            decode_frame(&body).expect_err("tag must fail"),
            WireError::BadTag("Frame", 0xEE)
        ));
        // Unknown inner NetMsg tag.
        let mut w = WireWriter::new(TAG_DRAIN);
        w.seq(1);
        w.usize(4);
        w.u8(0xAB);
        assert!(matches!(
            decode_frame(&w.finish()).expect_err("msg tag must fail"),
            WireError::BadTag("NetMsg", 0xAB)
        ));
    }

    #[test]
    fn garbage_bool_is_rejected() {
        let mut w = WireWriter::new(TAG_DRAIN);
        w.seq(1);
        w.usize(2);
        w.u8(6); // Request
        w.u64(1);
        w.u64(2);
        w.u8(7); // lost: neither 0 nor 1
        assert!(matches!(
            decode_frame(&w.finish()).expect_err("bool must fail"),
            WireError::BadBool(7)
        ));
    }

    #[test]
    fn corrupt_sequence_count_is_rejected() {
        let mut w = WireWriter::new(TAG_DRAIN);
        w.u64(u64::MAX / 2); // absurd element count
        assert!(matches!(
            decode_frame(&w.finish()).expect_err("count must fail"),
            WireError::Oversize(_)
        ));
    }

    #[test]
    fn oversize_length_prefix_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut bytes.as_slice()).expect_err("length must fail");
        assert!(matches!(err, WireError::Oversize(_)), "got {err:?}");
    }

    #[test]
    fn worker_config_roundtrips_exactly() {
        let plan = ImpairmentPlan::builder(77)
            .gilbert_loss(0.05, 0.4, 0.9, 0.01)
            .jitter_us(250)
            .latency(vec![0, 2, 5], 0.8)
            .token_bucket(900.0, 1800.0)
            .link_bandwidth(vec![300.0, 600.0, 900.0], 0.7)
            .build()
            .unwrap();
        let sim = SimConfig::builder(
            12,
            vec![BandwidthSpec::Paper { stay: 0.98 }, BandwidthSpec::Trace(vec![100.0, 250.5])],
        )
        .demand(640.0)
        .seed(42)
        .record_joint_from(5)
        .record_peer_rates(true)
        .impairment(plan.clone())
        .build();
        let config = NetConfig::from_sim(sim).with_impairments(plan).with_track_estimate(false);
        let wc = WorkerConfig { config, span: 8, processes: 4 };
        match roundtrip(&Frame::Config(Box::new(wc.clone()))) {
            Frame::Config(got) => {
                assert_eq!(got.span, 8);
                assert_eq!(got.processes, 4);
                assert_eq!(got.config.sim, wc.config.sim);
                assert_eq!(got.config.impairments, wc.config.impairments);
                assert!(!got.config.track_estimate);
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn summary_roundtrips_exactly() {
        let summary = WorkerSummary {
            control: 10,
            data: 20,
            rss_kb: 4096,
            peers: vec![(512.25, 0.875), (-0.0, 1.0)],
        };
        match roundtrip(&Frame::Summary(summary.clone())) {
            Frame::Summary(got) => {
                assert_eq!(got.control, summary.control);
                assert_eq!(got.data, summary.data);
                assert_eq!(got.rss_kb, summary.rss_kb);
                assert_eq!(got.peers.len(), 2);
                for (a, b) in got.peers.iter().zip(&summary.peers) {
                    assert_eq!(a.0.to_bits(), b.0.to_bits());
                    assert_eq!(a.1.to_bits(), b.1.to_bits());
                }
            }
            other => panic!("decoded {other:?}"),
        }
    }
}
