//! Wire messages between actors.
//!
//! Control-plane messages (ticks, requests, settles) are reliable and
//! FIFO per channel — the guarantee a TCP connection gives a real overlay.
//! Data-plane loss is modelled by the `lost` flag on a request (see
//! [`crate::fault`]): the connection exists but the stream payload never
//! arrives, so the peer observes rate 0 for the epoch.

use crossbeam::channel::Sender;

/// Messages a helper actor receives.
#[derive(Debug)]
pub enum HelperMsg {
    /// New epoch: advance the local bandwidth process.
    Tick {
        /// Epoch number.
        epoch: u64,
    },
    /// A peer asks to stream this epoch.
    Request {
        /// Requesting peer id.
        peer: u64,
        /// Epoch number.
        epoch: u64,
        /// Where to deliver the resulting rate.
        reply: Sender<PeerMsg>,
        /// Data-plane fault: connection counted, payload lost.
        lost: bool,
    },
    /// All requests for the epoch are in; allocate and reply.
    Settle {
        /// Epoch number.
        epoch: u64,
    },
    /// Availability change (failure injection).
    SetOnline(bool),
    /// Terminate the actor.
    Shutdown,
}

/// Messages a peer actor receives.
#[derive(Debug)]
pub enum PeerMsg {
    /// New epoch: choose a helper.
    Tick {
        /// Epoch number.
        epoch: u64,
    },
    /// The realized streaming rate from the chosen helper.
    Rate {
        /// Epoch number.
        epoch: u64,
        /// Delivered rate (kbps), before any demand cap.
        kbps: f64,
    },
    /// Terminate the actor.
    Shutdown,
}

/// Messages the coordinator receives (observability plane).
#[derive(Debug)]
pub enum CoordMsg {
    /// A peer committed to a helper this epoch.
    Selected {
        /// Peer id.
        peer: u64,
        /// Epoch number.
        epoch: u64,
        /// Chosen helper index.
        helper: usize,
    },
    /// A peer observed its realized (demand-capped) rate.
    Observed {
        /// Peer id.
        peer: u64,
        /// Epoch number.
        epoch: u64,
        /// Realized rate after the demand cap.
        rate: f64,
        /// The learner's internal regret estimate after the observation
        /// (virtual-play `Q` maximum; `0.0` when tracking is disabled).
        estimate: f64,
    },
    /// A helper settled the epoch.
    HelperReport {
        /// Helper index.
        helper: usize,
        /// Epoch number.
        epoch: u64,
        /// Number of connected peers.
        load: usize,
        /// Capacity this epoch (kbps).
        capacity: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_debuggable_and_send() {
        fn assert_send<T: Send>() {}
        assert_send::<HelperMsg>();
        assert_send::<PeerMsg>();
        assert_send::<CoordMsg>();
        let m = PeerMsg::Rate { epoch: 3, kbps: 100.0 };
        assert!(format!("{m:?}").contains("Rate"));
    }
}
