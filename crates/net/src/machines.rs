//! Transport-agnostic protocol state machines.
//!
//! The epoch protocol — tick, select, settle, observe — is one algorithm
//! with two transports: the thread-per-actor runtime ([`crate::runtime`])
//! and the reactor backend ([`crate::reactor_backend`]). Everything that
//! determines *results* lives here, once: helper capacity dynamics, peer
//! learning, demand capping, and the coordinator's metric arithmetic.
//! The backends are thin shells that move these machines' inputs and
//! outputs over channels or mailboxes, which is what makes the
//! bit-for-bit equivalence test across backends structural rather than
//! coincidental.

use rths_sim::helper::{Helper, HelperId};
use rths_sim::peer::{Peer, PeerId};
use rths_sim::regret::RegretLedger;
use rths_sim::server::StreamingServer;
use rths_sim::{ImpairmentPlan, LinkShaper, SimConfig, SimMetrics};
use rths_stoch::rng::entity_rng;

/// Instantiates the helper set exactly as `rths_sim::System::new` does:
/// processes drawn from the master RNG in helper-index order. Returns the
/// helpers plus the summed minimum capacity (the Fig. 5 deficit bound).
pub fn instantiate_helpers(sim: &SimConfig) -> (Vec<Helper>, f64) {
    let mut master_rng = rths_stoch::rng::seeded_rng(sim.seed);
    let mut min_total = 0.0;
    let helpers: Vec<Helper> = sim
        .helpers
        .iter()
        .enumerate()
        .map(|(j, spec)| {
            let helper = Helper::with_seed(
                HelperId(j as u32),
                spec.instantiate(&mut master_rng),
                sim.seed,
            );
            min_total += helper.min_capacity();
            helper
        })
        .collect();
    (helpers, min_total)
}

/// Instantiates peer `id` exactly as `rths_sim::System::new` does (same
/// learner spec, same per-entity RNG stream).
pub fn instantiate_peer(sim: &SimConfig, id: u64, num_helpers: usize) -> Peer {
    let learner = sim
        .learner
        .instantiate(num_helpers, sim.rate_scale())
        .expect("learner spec validated by construction");
    Peer::new(PeerId(id), learner, entity_rng(sim.seed, id), 0, 0)
}

/// What a peer decided this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// Chosen helper index.
    pub helper: usize,
    /// Data-plane fault: the request will connect but the payload is lost.
    pub lost: bool,
}

/// The peer-side state machine: owns the learner, its RNG stream, the
/// demand cap, and the edge end of the impairment layer (its link
/// shaper). Feedback is strictly local — a rate per epoch.
#[derive(Debug)]
pub struct PeerMachine {
    peer: Peer,
    demand: Option<f64>,
    impairments: ImpairmentPlan,
    shaper: LinkShaper,
    /// The `(helper, epoch)` of the in-flight request, consumed by the
    /// rate delivery — shaping decisions are per-link, so the peer must
    /// remember which link the reply rides.
    inflight: Option<(usize, u64)>,
}

impl PeerMachine {
    /// Wraps a live peer under the given impairment plan.
    pub fn new(peer: Peer, demand: Option<f64>, impairments: ImpairmentPlan) -> Self {
        Self { peer, demand, impairments, shaper: LinkShaper::new(), inflight: None }
    }

    /// Builds the peer for `id` from the simulation config.
    pub fn from_config(
        sim: &SimConfig,
        id: u64,
        num_helpers: usize,
        impairments: ImpairmentPlan,
    ) -> Self {
        Self::new(instantiate_peer(sim, id, num_helpers), sim.demand, impairments)
    }

    /// Stable peer id.
    pub fn id(&self) -> u64 {
        self.peer.id().0
    }

    /// The impairment plan driving this peer's loss/shaping/jitter.
    pub fn impairments(&self) -> &ImpairmentPlan {
        &self.impairments
    }

    /// Epoch start: samples the learner and decides whether this epoch's
    /// payload is lost (deterministic per `(peer, helper, epoch)` link).
    pub fn on_tick(&mut self, epoch: u64) -> Selection {
        let helper = self.peer.choose_helper();
        let lost = self.impairments.is_lost(self.peer.id().0, helper, epoch);
        self.inflight = Some((helper, epoch));
        Selection { helper, lost }
    }

    /// Delivers the raw rate from the helper; shapes it through the
    /// link's impairments (bandwidth cap, token bucket), applies the
    /// demand cap, feeds the learner, and returns the realized
    /// (observed) rate — the exact pipeline order of
    /// `rths_sim::System::step_epoch`, which is what keeps impaired runs
    /// bit-identical across backends.
    pub fn on_rate(&mut self, kbps: f64) -> f64 {
        let kbps = match self.inflight.take() {
            Some((helper, epoch)) if self.impairments.affects_rates() => {
                self.shaper.shape(&self.impairments, self.peer.id().0, helper, epoch, kbps)
            }
            _ => kbps,
        };
        let (rate, satisfied) = match self.demand {
            Some(d) => {
                let r = kbps.min(d);
                (r, r >= d - 1e-9)
            }
            None => (kbps, true),
        };
        self.peer.deliver(rate, satisfied);
        rate
    }

    /// The wrapped peer (final reporting).
    pub fn peer(&self) -> &Peer {
        &self.peer
    }

    /// Unwraps the peer (final reporting).
    pub fn into_peer(self) -> Peer {
        self.peer
    }
}

/// A helper's per-epoch settlement summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Settlement {
    /// Number of connected peers this epoch.
    pub load: usize,
    /// Capacity this epoch (kbps; 0 while offline).
    pub capacity: f64,
}

/// The helper-side state machine: a bandwidth process plus the even-split
/// allocation over whatever requests arrived. Generic over a per-request
/// attachment `T` so transports can stash a reply route (a channel sender
/// for threads, nothing for the reactor, which addresses by peer id).
#[derive(Debug)]
pub struct HelperMachine<T = ()> {
    helper: Helper,
    pending: Vec<(u64, bool, T)>,
}

impl<T> HelperMachine<T> {
    /// Wraps a live helper.
    pub fn new(helper: Helper) -> Self {
        Self { helper, pending: Vec::new() }
    }

    /// Epoch start: advances the private bandwidth process.
    pub fn on_tick(&mut self) {
        self.helper.step();
    }

    /// Records one streaming request for the current epoch.
    pub fn on_request(&mut self, peer: u64, lost: bool, attachment: T) {
        self.pending.push((peer, lost, attachment));
    }

    /// Settles the epoch: splits capacity over the recorded requests,
    /// invoking `reply(peer, kbps, attachment)` per requester in arrival
    /// order (0 kbps when the payload was lost), and returns the summary.
    pub fn on_settle(&mut self, mut reply: impl FnMut(u64, f64, T)) -> Settlement {
        let load = self.pending.len();
        let share = self.helper.share(load);
        for (peer, lost, attachment) in self.pending.drain(..) {
            reply(peer, if lost { 0.0 } else { share }, attachment);
        }
        Settlement { load, capacity: self.helper.capacity() }
    }

    /// Availability change (failure injection).
    pub fn set_online(&mut self, online: bool) {
        self.helper.set_online(online);
    }
}

/// Reusable per-epoch coordinator buffers — cleared and refilled in place
/// so steady-state epochs allocate nothing (the same discipline
/// `rths_sim::System` adopted for its engines).
#[derive(Debug, Default)]
struct CoordScratch {
    /// Chosen helper per peer.
    chosen: Vec<usize>,
    /// Reported load per helper.
    loads: Vec<usize>,
    /// Reported capacity per helper.
    capacities: Vec<f64>,
    /// Observed (demand-capped) rate per peer.
    rates: Vec<f64>,
    /// Counterfactual join rate per helper.
    join_rates: Vec<f64>,
    /// Unmet demand per peer.
    residuals: Vec<f64>,
}

/// The coordinator's state machine: an epoch-progress tracker plus the
/// metric arithmetic of `rths_sim::System::step_epoch`, fed purely by
/// observability-plane messages. It observes but never instructs — no
/// assignment decision flows through it.
#[derive(Debug)]
pub struct CoordinatorMachine {
    num_peers: usize,
    num_helpers: usize,
    demand: Option<f64>,
    helper_min_total: f64,
    epoch: u64,
    metrics: SimMetrics,
    server: StreamingServer,
    /// Stretch-folded true-regret accounting — `O(n·h)` memory instead
    /// of the historical dense `n·h²` table (~650 MB at 2×10⁴ peers ×
    /// 64 helpers, ~3.3 GB at 10⁵), sharing the exact record arithmetic
    /// of the simulator's peer store (see `rths_sim::regret`).
    regret: RegretLedger,
    /// Per-shard maxima scratch for the sharded regret record phase.
    shard_max: Vec<f64>,
    /// Epoch fold of the learner-reported internal regret estimates
    /// (order-insensitive max over non-negatives).
    worst_estimate: f64,
    last_helper: Vec<Option<usize>>,
    scratch: CoordScratch,
    selected: usize,
    reports: usize,
    observed: usize,
}

impl CoordinatorMachine {
    /// Creates the coordinator for a fixed population.
    pub fn new(sim: &SimConfig, helper_min_total: f64) -> Self {
        let n = sim.num_peers;
        let h = sim.helpers.len();
        let mut regret = RegretLedger::new(&[h]);
        for _ in 0..n {
            regret.add_peer();
        }
        Self {
            num_peers: n,
            num_helpers: h,
            demand: sim.demand,
            helper_min_total,
            epoch: 0,
            metrics: SimMetrics::new(h),
            server: StreamingServer::new(),
            regret,
            shard_max: Vec::new(),
            worst_estimate: 0.0,
            last_helper: vec![None; n],
            scratch: CoordScratch::default(),
            selected: 0,
            reports: 0,
            observed: 0,
        }
    }

    /// Epoch about to run (0-based).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Epochs completed so far.
    pub fn epochs_done(&self) -> u64 {
        self.epoch
    }

    /// Resets per-epoch progress and scratch (no allocation in steady
    /// state: buffers retain their capacity across epochs).
    pub fn begin_epoch(&mut self) {
        let CoordScratch { chosen, loads, capacities, rates, join_rates, residuals } =
            &mut self.scratch;
        chosen.clear();
        chosen.resize(self.num_peers, 0);
        loads.clear();
        loads.resize(self.num_helpers, 0);
        capacities.clear();
        capacities.resize(self.num_helpers, 0.0);
        rates.clear();
        rates.resize(self.num_peers, 0.0);
        join_rates.clear();
        residuals.clear();
        self.selected = 0;
        self.reports = 0;
        self.observed = 0;
        self.worst_estimate = 0.0;
    }

    /// A peer committed to a helper.
    pub fn on_selected(&mut self, peer: u64, helper: usize) {
        self.scratch.chosen[peer as usize] = helper;
        self.selected += 1;
    }

    /// All peers have committed — helpers may settle.
    pub fn settle_ready(&self) -> bool {
        self.selected == self.num_peers
    }

    /// A helper settled the epoch.
    pub fn on_helper_report(&mut self, helper: usize, load: usize, capacity: f64) {
        self.scratch.loads[helper] = load;
        self.scratch.capacities[helper] = capacity;
        self.reports += 1;
    }

    /// A peer observed its realized rate. `estimate` is the peer's
    /// learner-reported internal regret estimate (its virtual-play `Q`
    /// maximum; `0.0` when estimate tracking is disabled) — folded into
    /// the epoch's `worst_regret_estimate` with an order-insensitive max
    /// over non-negatives, so arrival order cannot perturb the series.
    pub fn on_observed(&mut self, peer: u64, rate: f64, estimate: f64) {
        self.scratch.rates[peer as usize] = rate;
        self.worst_estimate = self.worst_estimate.max(estimate);
        self.observed += 1;
    }

    /// Every report and observation for the epoch is in.
    pub fn epoch_complete(&self) -> bool {
        self.reports == self.num_helpers && self.observed == self.num_peers
    }

    /// Records the epoch's metrics — mirroring
    /// `rths_sim::System::step_epoch` arithmetic exactly, in the same
    /// index-ordered float reduction order (and the exact same
    /// stretch-folded regret record function, see `rths_sim::regret`).
    ///
    /// # Panics
    ///
    /// Panics if the epoch is not [`complete`](Self::epoch_complete).
    pub fn finish_epoch(&mut self) {
        assert!(self.epoch_complete(), "finish_epoch before all reports arrived");
        let n = self.num_peers;
        let h = self.num_helpers;
        let demand = self.demand;
        let CoordScratch { chosen, loads, capacities, rates, join_rates, residuals } =
            &mut self.scratch;

        join_rates.extend((0..h).map(|j| {
            let raw = capacities[j] / (loads[j] + 1) as f64;
            match demand {
                Some(d) => raw.min(d),
                None => raw,
            }
        }));
        let mut welfare = 0.0;
        for &rate in rates.iter() {
            welfare += rate;
            residuals.push(match demand {
                Some(d) => (d - rate).max(0.0),
                None => 0.0,
            });
        }
        // Stretch-folded true regret, sharded over contiguous peer
        // ranges with a shard-ordered max reduction. The worker count is
        // capped so each shard amortizes its spawn
        // (`rths_par::MIN_ITEMS_PER_WORKER`); the result is bit-identical
        // at any shard count.
        self.regret.advance_epoch(&[0, h], join_rates);
        let shards = rths_par::threads().min(n / rths_par::MIN_ITEMS_PER_WORKER).max(1);
        let emp = self.regret.record_all_max(chosen, rates, shards, &mut self.shard_max);
        let total_demand = demand.unwrap_or(0.0) * n as f64;
        let helper_now: f64 = capacities.iter().sum();
        let server_epoch = self.server.settle_epoch(
            residuals,
            total_demand,
            self.helper_min_total,
            helper_now,
        );

        self.metrics.welfare.push(welfare);
        self.metrics.server_load.push(server_epoch.load);
        self.metrics.min_deficit.push(server_epoch.min_deficit);
        self.metrics.current_deficit.push(server_epoch.current_deficit);
        self.metrics.population.push(n as f64);
        self.metrics.jain.push(rths_math::stats::jain_index(rates));
        self.metrics.worst_empirical_regret.push(emp);
        // The estimate series is the learner-reported virtual-play `Q`
        // maxima the peers attach to their observations — the same
        // derivation the simulator's observe phase uses, not a copy of
        // the empirical series (the two agree only in the limit).
        self.metrics.worst_regret_estimate.push(self.worst_estimate);
        let mut switched = 0usize;
        for (last, &now) in self.last_helper.iter_mut().zip(chosen.iter()) {
            if let Some(prev) = *last {
                if prev != now {
                    switched += 1;
                }
            }
            *last = Some(now);
        }
        self.metrics.switches.push(switched as f64);
        for (series, &l) in self.metrics.helper_loads.iter_mut().zip(loads.iter()) {
            series.push(l as f64);
        }
        self.epoch += 1;
    }

    /// Final summaries from the peers' own accounting, producing the same
    /// metric bundle the simulator returns.
    pub fn finalize(self, peers: &[Peer]) -> (SimMetrics, Vec<f64>, Vec<f64>) {
        self.finalize_summaries(peers.iter().map(|p| (p.mean_rate(), p.continuity())))
    }

    /// Like [`finalize`](Self::finalize), but from pre-extracted per-peer
    /// `(mean_rate, continuity)` pairs in ascending peer-id order — the
    /// form the multi-process runtime ships across process boundaries,
    /// where the `Peer` values themselves live in worker processes.
    pub fn finalize_summaries(
        mut self,
        peers: impl IntoIterator<Item = (f64, f64)>,
    ) -> (SimMetrics, Vec<f64>, Vec<f64>) {
        let denom = self.epoch.max(1) as f64;
        self.metrics.mean_helper_loads = self
            .metrics
            .helper_loads
            .iter()
            .map(|s| s.values().iter().sum::<f64>() / denom)
            .collect();
        let (rates, continuity): (Vec<f64>, Vec<f64>) = peers.into_iter().unzip();
        self.metrics.mean_peer_rates = rates.clone();
        self.metrics.peer_continuity = continuity.clone();
        (self.metrics, rates, continuity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rths_sim::{BandwidthSpec, Scenario, SimConfig};

    fn small_sim() -> SimConfig {
        SimConfig::builder(4, vec![BandwidthSpec::Constant(800.0); 2]).seed(3).build()
    }

    #[test]
    fn helpers_instantiate_in_sim_order() {
        let sim = Scenario::paper_small().seed(11).build();
        let (helpers, min_total) = instantiate_helpers(&sim);
        assert_eq!(helpers.len(), sim.helpers.len());
        let expected: f64 = helpers.iter().map(Helper::min_capacity).sum();
        assert_eq!(min_total, expected);
    }

    #[test]
    fn peer_machine_caps_demand_and_feeds_learner() {
        let sim = SimConfig::builder(2, vec![BandwidthSpec::Constant(800.0); 2])
            .demand(300.0)
            .seed(1)
            .build();
        let mut m = PeerMachine::from_config(&sim, 0, 2, ImpairmentPlan::none());
        let sel = m.on_tick(0);
        assert!(sel.helper < 2);
        assert!(!sel.lost);
        assert_eq!(m.on_rate(800.0), 300.0);
        assert_eq!(m.peer().mean_rate(), 300.0);
        assert_eq!(m.peer().continuity(), 1.0);
        // Under the cap: unsatisfied epoch.
        let _ = m.on_tick(1);
        assert_eq!(m.on_rate(100.0), 100.0);
        assert_eq!(m.into_peer().continuity(), 0.5);
    }

    #[test]
    fn peer_machine_marks_lost_epochs() {
        let sim = small_sim();
        let mut m = PeerMachine::from_config(
            &sim,
            1,
            2,
            ImpairmentPlan::builder(9).uniform_loss(1.0).build().unwrap(),
        );
        assert!(m.on_tick(0).lost);
    }

    #[test]
    fn peer_machine_shapes_rates_like_a_link_shaper() {
        // The machine's pipeline must equal a bare LinkShaper fed the
        // same (link, epoch, offered) sequence — that is the contract
        // the sim↔net equivalence rests on.
        let plan = ImpairmentPlan::builder(7)
            .token_bucket(300.0, 500.0)
            .link_bandwidth(vec![200.0, 400.0, 800.0], 0.9)
            .build()
            .unwrap();
        let sim = small_sim();
        let mut m = PeerMachine::from_config(&sim, 0, 2, plan.clone());
        let mut reference = LinkShaper::new();
        for epoch in 0..40 {
            let sel = m.on_tick(epoch);
            let offered = 700.0 + epoch as f64;
            let expected = reference.shape(&plan, 0, sel.helper, epoch, offered);
            assert_eq!(m.on_rate(offered).to_bits(), expected.to_bits(), "epoch {epoch}");
        }
    }

    #[test]
    fn helper_machine_splits_capacity_in_arrival_order() {
        let (helpers, _) = instantiate_helpers(&small_sim());
        let mut m: HelperMachine<&str> =
            HelperMachine::new(helpers.into_iter().next().unwrap());
        m.on_tick();
        m.on_request(7, false, "a");
        m.on_request(3, true, "b");
        let mut replies = Vec::new();
        let settlement = m.on_settle(|peer, kbps, tag| replies.push((peer, kbps, tag)));
        assert_eq!(settlement.load, 2);
        assert_eq!(replies.len(), 2);
        assert_eq!(replies[0].0, 7);
        assert_eq!(replies[0].1, 400.0);
        // Lost payload: connection counted, rate zero.
        assert_eq!(replies[1], (3, 0.0, "b"));
        // Next epoch starts empty.
        let empty = m.on_settle(|_, _, _| panic!("no pending requests"));
        assert_eq!(empty.load, 0);
    }

    #[test]
    fn coordinator_tracks_epoch_progress() {
        let sim = small_sim();
        let mut c = CoordinatorMachine::new(&sim, 1600.0);
        c.begin_epoch();
        assert!(!c.settle_ready());
        for p in 0..4 {
            c.on_selected(p, (p % 2) as usize);
        }
        assert!(c.settle_ready());
        assert!(!c.epoch_complete());
        c.on_helper_report(0, 2, 800.0);
        c.on_helper_report(1, 2, 800.0);
        for p in 0..4 {
            c.on_observed(p, 400.0, 0.5 + p as f64 / 10.0);
        }
        assert!(c.epoch_complete());
        c.finish_epoch();
        assert_eq!(c.epochs_done(), 1);
        let (metrics, rates, continuity) = c.finalize(&[]);
        assert_eq!(metrics.welfare.values(), &[1600.0]);
        assert_eq!(metrics.helper_loads[0].values(), &[2.0]);
        // The estimate series is the max of the peers' reported internal
        // estimates (0.5..0.8 above) — not a copy of the empirical one.
        assert_eq!(metrics.worst_regret_estimate.values(), &[0.8]);
        assert_ne!(
            metrics.worst_regret_estimate.values()[0],
            metrics.worst_empirical_regret.values()[0],
            "estimate must be learner-derived, not the empirical value"
        );
        assert!(rates.is_empty() && continuity.is_empty());
    }

    #[test]
    #[should_panic(expected = "finish_epoch before all reports")]
    fn premature_finish_panics() {
        let sim = small_sim();
        let mut c = CoordinatorMachine::new(&sim, 0.0);
        c.begin_epoch();
        c.finish_epoch();
    }
}
