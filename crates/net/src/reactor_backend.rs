//! The event-loop backend: the whole actor mesh on one `rths_reactor`.
//!
//! Every peer, helper, the tracker, and the coordinator from the threaded
//! runtime becomes a poll-driven [`Actor`] hosted by a single
//! [`Reactor`], so one process (indeed, one thread — plus optional
//! `RTHS_THREADS` workers the reactor shards rounds across) hosts
//! thousands of actors instead of a thousand OS threads.
//!
//! The protocol and all result-bearing arithmetic are the shared
//! [`crate::machines`]; this module only adds addressing:
//!
//! * actor 0 is the coordinator, actor 1 the tracker, then `h` helpers,
//!   then `n` peers (ids dense, in that order);
//! * peers learn the helper address range from the tracker during a
//!   bootstrap handshake — the same directory-not-controller role the
//!   threaded [`crate::tracker::Tracker`] plays;
//! * [`ImpairmentPlan`] drops ride the `lost` request flag exactly as in
//!   the threaded backend, rate shaping happens inside the shared
//!   [`PeerMachine`], and jitter/latency become *timer-wheel delivery
//!   delays* (same per-`(actor, epoch)` draw) instead of thread sleeps.
//!
//! With equal seeds the backend reproduces the simulator and the threaded
//! runtime bit-for-bit at any `RTHS_THREADS`; the workspace-level
//! `sim_net_equivalence` test pins that three-way equality.

use std::sync::{Arc, Mutex};

use rths_core::{LearnerSlab, SlabLearner};
use rths_obs as obs;
use rths_reactor::{Actor, ActorId, Ctx, Reactor, ReactorStats, SHARD_SPAN};
use rths_sim::peer::{Peer, PeerId};
use rths_sim::{Algorithm, AnyLearner, ImpairmentPlan};
use rths_stoch::rng::entity_rng;

use crate::machines::{instantiate_helpers, CoordinatorMachine, HelperMachine, PeerMachine};
use crate::runtime::{MessageTotals, NetConfig, NetOutcome};

/// Jitter stream offset for helper actors — matches the threaded
/// backend's `0x4000_0000 + index` convention so faulty runs draw the
/// same delays on both backends.
const HELPER_JITTER_BASE: u64 = 0x4000_0000;

/// Wire messages of the reactor mesh (one enum multiplexing every role).
#[derive(Debug)]
pub enum NetMsg {
    /// Driver → coordinator: run this many further epochs.
    Run {
        /// Epochs to execute.
        epochs: u64,
    },
    /// Coordinator → tracker: publish the helper directory to all peers.
    Publish,
    /// Tracker → peer: the helper address range (bootstrap response).
    Directory {
        /// Actor id of helper 0.
        helper_base: usize,
        /// Number of helpers.
        num_helpers: usize,
    },
    /// Tracker → coordinator: every peer has been sent the directory.
    Published,
    /// Coordinator → coordinator (via the timer wheel): start the next
    /// epoch one logical tick later — the epoch barrier lives on the
    /// wheel.
    NextEpoch,
    /// Coordinator → helper/peer: new epoch.
    Tick {
        /// Epoch number.
        epoch: u64,
    },
    /// Peer → helper: one streaming request.
    Request {
        /// Requesting peer id.
        peer: u64,
        /// Epoch number.
        epoch: u64,
        /// Data-plane fault: connection counted, payload lost.
        lost: bool,
    },
    /// Coordinator → helper: all requests are in; allocate and reply.
    Settle {
        /// Epoch number.
        epoch: u64,
    },
    /// Helper → peer: the realized streaming rate.
    Rate {
        /// Epoch number.
        epoch: u64,
        /// Delivered rate (kbps), before any demand cap.
        kbps: f64,
    },
    /// Peer → coordinator: committed to a helper.
    Selected {
        /// Peer id.
        peer: u64,
        /// Epoch number.
        epoch: u64,
        /// Chosen helper index.
        helper: usize,
    },
    /// Helper → coordinator: settled the epoch.
    HelperReport {
        /// Helper index.
        helper: usize,
        /// Epoch number.
        epoch: u64,
        /// Connected peers.
        load: usize,
        /// Capacity this epoch (kbps).
        capacity: f64,
    },
    /// Peer → coordinator: observed the realized rate.
    Observed {
        /// Peer id.
        peer: u64,
        /// Epoch number.
        epoch: u64,
        /// Realized (demand-capped) rate.
        rate: f64,
        /// The learner's internal regret estimate after the observation
        /// (`0.0` when tracking is disabled).
        estimate: f64,
    },
    /// Driver → helper: availability change (failure injection).
    SetOnline(bool),
}

/// The coordinator actor: drives epochs with the shared
/// [`CoordinatorMachine`] and the timer wheel as its barrier clock.
#[derive(Debug)]
pub struct CoordNode {
    machine: CoordinatorMachine,
    remaining: u64,
    bootstrapped: bool,
    tracker: ActorId,
    helper_base: usize,
    num_helpers: usize,
    peer_base: usize,
    num_peers: usize,
    impairments: ImpairmentPlan,
    control: u64,
}

impl CoordNode {
    fn start_epoch(&mut self, ctx: &mut Ctx<'_, NetMsg>) {
        self.machine.begin_epoch();
        let epoch = self.machine.epoch();
        if obs::enabled() {
            // Tag subsequent reactor-round spans (mailbox sort/deliver/
            // drain, timer flush) with the epoch now in flight. Rounds
            // read the tag at round start, so a round straddling the
            // boundary carries the previous epoch's tag.
            obs::set_epoch(epoch);
        }
        for j in 0..self.num_helpers {
            self.control += 1;
            let delay = self.impairments.jitter_ticks(HELPER_JITTER_BASE + j as u64, epoch);
            ctx.send_after(delay, ActorId(self.helper_base + j), NetMsg::Tick { epoch });
        }
        for i in 0..self.num_peers {
            self.control += 1;
            let delay = self.impairments.jitter_ticks(i as u64, epoch);
            ctx.send_after(delay, ActorId(self.peer_base + i), NetMsg::Tick { epoch });
        }
    }

    fn maybe_finish_epoch(&mut self, ctx: &mut Ctx<'_, NetMsg>) {
        if !self.machine.epoch_complete() {
            return;
        }
        self.machine.finish_epoch();
        self.remaining -= 1;
        if self.remaining > 0 {
            // Next epoch one logical tick later: the barrier is a timer.
            ctx.send_after(1, ctx.me(), NetMsg::NextEpoch);
        }
    }
}

/// The tracker actor: a directory, not a controller — it hands every
/// peer the helper address range and acks to the coordinator.
#[derive(Debug)]
pub struct TrackerNode {
    coordinator: ActorId,
    helper_base: usize,
    num_helpers: usize,
    peer_base: usize,
    num_peers: usize,
}

/// A helper actor wrapping the shared [`HelperMachine`].
///
/// Jitter can delay an epoch's `Tick` through the timer wheel until
/// *after* the coordinator's `Settle` arrives (timers do not preserve the
/// per-channel FIFO order a thread's inbox gives the threaded backend).
/// The helper therefore tolerates the reordering: a `Settle` that
/// overtakes its epoch's `Tick` is parked in `pending_settle` and
/// replayed the moment the tick lands, so capacity always steps before
/// allocation — on every backend, in every interleaving.
#[derive(Debug)]
pub struct HelperNode {
    machine: HelperMachine<()>,
    index: usize,
    coordinator: ActorId,
    peer_base: usize,
    /// Epoch of the last processed `Tick`.
    ticked_epoch: Option<u64>,
    /// A `Settle` that arrived before its epoch's `Tick`.
    pending_settle: Option<u64>,
    control: u64,
    data: u64,
}

impl HelperNode {
    fn settle(&mut self, epoch: u64, ctx: &mut Ctx<'_, NetMsg>) {
        let HelperNode { machine, peer_base, data, .. } = self;
        let settlement = machine.on_settle(|peer, kbps, ()| {
            *data += 1;
            ctx.send(ActorId(*peer_base + peer as usize), NetMsg::Rate { epoch, kbps });
        });
        self.control += 1;
        ctx.send(
            self.coordinator,
            NetMsg::HelperReport {
                helper: self.index,
                epoch,
                load: settlement.load,
                capacity: settlement.capacity,
            },
        );
    }
}

/// A peer actor wrapping the shared [`PeerMachine`].
#[derive(Debug)]
pub struct PeerNode {
    machine: PeerMachine,
    coordinator: ActorId,
    /// Actor id of helper 0, learned from the tracker at bootstrap.
    helper_base: Option<usize>,
    /// Attach the learner's internal regret estimate to observations.
    track_estimate: bool,
    control: u64,
}

/// Any actor of the mesh (the reactor hosts one concrete type).
// Nearly every instance IS the largest variant (peers outnumber the other
// roles thousands-to-one), so boxing `PeerNode` would buy no memory and
// cost an indirection on the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum NetActor {
    /// The epoch-driving coordinator (boxed: its metrics dwarf the
    /// per-peer state the enum is sized for).
    Coordinator(Box<CoordNode>),
    /// The bootstrap directory.
    Tracker(TrackerNode),
    /// A helper node.
    Helper(HelperNode),
    /// A viewer peer.
    Peer(PeerNode),
}

impl Actor for NetActor {
    type Msg = NetMsg;

    fn on_message(&mut self, msg: NetMsg, ctx: &mut Ctx<'_, NetMsg>) {
        match self {
            NetActor::Coordinator(node) => match msg {
                NetMsg::Run { epochs } => {
                    let idle = node.remaining == 0;
                    node.remaining += epochs;
                    if !node.bootstrapped {
                        ctx.send(node.tracker, NetMsg::Publish);
                    } else if idle && node.remaining > 0 {
                        node.start_epoch(ctx);
                    }
                }
                NetMsg::Published => {
                    node.bootstrapped = true;
                    if node.remaining > 0 {
                        node.start_epoch(ctx);
                    }
                }
                NetMsg::NextEpoch => node.start_epoch(ctx),
                NetMsg::Selected { peer, helper, epoch } => {
                    debug_assert_eq!(epoch, node.machine.epoch());
                    node.machine.on_selected(peer, helper);
                    if node.machine.settle_ready() {
                        for j in 0..node.num_helpers {
                            node.control += 1;
                            ctx.send(ActorId(node.helper_base + j), NetMsg::Settle { epoch });
                        }
                    }
                }
                NetMsg::HelperReport { helper, load, capacity, epoch } => {
                    debug_assert_eq!(epoch, node.machine.epoch());
                    node.machine.on_helper_report(helper, load, capacity);
                    node.maybe_finish_epoch(ctx);
                }
                NetMsg::Observed { peer, rate, estimate, epoch } => {
                    debug_assert_eq!(epoch, node.machine.epoch());
                    node.machine.on_observed(peer, rate, estimate);
                    node.maybe_finish_epoch(ctx);
                }
                other => unreachable!("coordinator got {other:?}"),
            },
            NetActor::Tracker(node) => match msg {
                NetMsg::Publish => {
                    for i in 0..node.num_peers {
                        ctx.send(
                            ActorId(node.peer_base + i),
                            NetMsg::Directory {
                                helper_base: node.helper_base,
                                num_helpers: node.num_helpers,
                            },
                        );
                    }
                    ctx.send(node.coordinator, NetMsg::Published);
                }
                other => unreachable!("tracker got {other:?}"),
            },
            NetActor::Helper(node) => match msg {
                NetMsg::Tick { epoch } => {
                    node.machine.on_tick();
                    node.ticked_epoch = Some(epoch);
                    if node.pending_settle == Some(epoch) {
                        node.pending_settle = None;
                        node.settle(epoch, ctx);
                    }
                }
                NetMsg::Request { peer, lost, .. } => node.machine.on_request(peer, lost, ()),
                NetMsg::Settle { epoch } => {
                    if node.ticked_epoch == Some(epoch) {
                        node.settle(epoch, ctx);
                    } else {
                        // The epoch's tick is still in the timer wheel
                        // (jitter); settle the moment it lands.
                        node.pending_settle = Some(epoch);
                    }
                }
                NetMsg::SetOnline(online) => node.machine.set_online(online),
                other => unreachable!("helper got {other:?}"),
            },
            NetActor::Peer(node) => match msg {
                NetMsg::Directory { helper_base, .. } => {
                    node.helper_base = Some(helper_base);
                }
                NetMsg::Tick { epoch } => {
                    let base = node.helper_base.expect("peer ticked before bootstrap");
                    let selection = node.machine.on_tick(epoch);
                    let id = node.machine.id();
                    node.control += 1;
                    ctx.send(
                        ActorId(base + selection.helper),
                        NetMsg::Request { peer: id, epoch, lost: selection.lost },
                    );
                    node.control += 1;
                    ctx.send(
                        node.coordinator,
                        NetMsg::Selected { peer: id, epoch, helper: selection.helper },
                    );
                }
                NetMsg::Rate { epoch, kbps } => {
                    let rate = node.machine.on_rate(kbps);
                    let estimate = if node.track_estimate {
                        node.machine.peer().max_regret()
                    } else {
                        0.0
                    };
                    node.control += 1;
                    ctx.send(
                        node.coordinator,
                        NetMsg::Observed { peer: node.machine.id(), epoch, rate, estimate },
                    );
                }
                other => unreachable!("peer got {other:?}"),
            },
        }
    }
}

/// The event-loop runtime: hosts the whole mesh on one [`Reactor`].
///
/// Unlike [`NetRuntime`](crate::runtime::NetRuntime) it spawns **no OS
/// threads of its own** — rounds run on the calling thread, sharded
/// across at most `RTHS_THREADS` scoped `rths_par` workers.
pub struct ReactorRuntime {
    reactor: Reactor<NetActor>,
    coordinator: ActorId,
    helper_base: usize,
    num_helpers: usize,
    num_peers: usize,
    trace: bool,
}

impl std::fmt::Debug for ReactorRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorRuntime")
            .field("peers", &self.num_peers)
            .field("helpers", &self.num_helpers)
            .field("logical_time", &self.reactor.now())
            .finish()
    }
}

/// Total actor count of the mesh `config` describes: coordinator,
/// tracker, helpers, peers — ids dense, in that order.
pub(crate) fn mesh_total(config: &NetConfig) -> usize {
    2 + config.sim.helpers.len() + config.sim.num_peers
}

/// Adds the actors with global ids `base .. base + len` to `reactor`,
/// reproducing the full-mesh construction exactly over that range: every
/// caller runs the same master-RNG helper instantiation (RNG order is
/// global state), then keeps only the actors it owns. `span` is the
/// mailbox shard span, used to group slab learners so a slab never
/// crosses a shard (hence never a partition) boundary.
///
/// The single-process runtime is the `base = 0, len = total` case; the
/// multi-process workers call this with their partition range.
pub(crate) fn populate_mesh(
    reactor: &mut Reactor<NetActor>,
    config: &NetConfig,
    span: usize,
    base: usize,
    len: usize,
) {
    let sim = &config.sim;
    let impairments = &config.impairments;
    let h = sim.helpers.len();
    let n = sim.num_peers;
    let helper_base = 2;
    let peer_base = helper_base + h;
    let end = base + len;
    debug_assert!(end <= mesh_total(config), "partition range exceeds the mesh");
    let coordinator = ActorId(0);

    let (helpers, helper_min_total) = instantiate_helpers(sim);
    let mut helpers: Vec<Option<_>> = helpers.into_iter().map(Some).collect();
    for id in base..end.min(peer_base) {
        match id {
            0 => {
                reactor.add_actor(NetActor::Coordinator(Box::new(CoordNode {
                    machine: CoordinatorMachine::new(sim, helper_min_total),
                    remaining: 0,
                    bootstrapped: false,
                    tracker: ActorId(1),
                    helper_base,
                    num_helpers: h,
                    peer_base,
                    num_peers: n,
                    impairments: impairments.clone(),
                    control: 0,
                })));
            }
            1 => {
                reactor.add_actor(NetActor::Tracker(TrackerNode {
                    coordinator,
                    helper_base,
                    num_helpers: h,
                    peer_base,
                    num_peers: n,
                }));
            }
            id => {
                let index = id - helper_base;
                reactor.add_actor(NetActor::Helper(HelperNode {
                    machine: HelperMachine::new(
                        helpers[index].take().expect("helper built once"),
                    ),
                    index,
                    coordinator,
                    peer_base,
                    ticked_epoch: None,
                    pending_settle: None,
                    control: 0,
                    data: 0,
                }));
            }
        }
    }

    // Owned peer index range (peer 0 is actor `peer_base`).
    let p_start = base.saturating_sub(peer_base);
    let p_end = end.saturating_sub(peer_base).min(n);
    if p_start >= p_end {
        return;
    }
    if matches!(sim.learner.algorithm, Algorithm::Rths) {
        // Default-algorithm fast path: instead of 10⁵ per-peer
        // `Matrix::zeros` heap blocks, each mailbox shard's peers
        // share one pre-sized `LearnerSlab` (column-major arena,
        // lazily mapped zero pages — see `rths_core::slab`). A shard
        // is processed by exactly one worker per round, so the slab
        // mutex is uncontended; learners replay the scalar path
        // bit-for-bit, keeping the three-way equivalence intact. The
        // per-channel config is derived once, not once per peer.
        let learner_config = sim
            .learner
            .rths_config(h, sim.rate_scale())
            .expect("learner spec validated by construction");
        let mut start = p_start;
        while start < p_end {
            // Peers sharing a mailbox shard: actor ids
            // `peer_base + start ..` up to the next shard edge.
            let shard_end = ((peer_base + start) / span + 1) * span;
            let slab_end = p_end.min(shard_end - peer_base);
            let slab =
                Arc::new(Mutex::new(LearnerSlab::with_capacity(h.max(1), slab_end - start)));
            for id in start..slab_end {
                let learner = AnyLearner::SlabRths(SlabLearner::new(
                    Arc::clone(&slab),
                    learner_config.clone(),
                ));
                let id = id as u64;
                let peer = Peer::new(PeerId(id), learner, entity_rng(sim.seed, id), 0, 0);
                reactor.add_actor(NetActor::Peer(PeerNode {
                    machine: PeerMachine::new(peer, sim.demand, impairments.clone()),
                    coordinator,
                    helper_base: None,
                    track_estimate: config.track_estimate,
                    control: 0,
                }));
            }
            start = slab_end;
        }
    } else {
        for id in p_start as u64..p_end as u64 {
            reactor.add_actor(NetActor::Peer(PeerNode {
                machine: PeerMachine::from_config(sim, id, h, impairments.clone()),
                coordinator,
                helper_base: None,
                track_estimate: config.track_estimate,
                control: 0,
            }));
        }
    }
}

/// What one partition contributes to the final [`NetOutcome`]: the
/// coordinator machine (rank 0 only), message totals, and per-peer
/// `(mean_rate, continuity)` summaries in ascending peer-id order.
pub(crate) struct PartitionHarvest {
    /// The coordinator's machine, when this partition owned actor 0.
    pub coordinator: Option<CoordinatorMachine>,
    /// Control/data totals over this partition's actors.
    pub messages: MessageTotals,
    /// Per-peer `(mean_rate, continuity)`, ascending peer id.
    pub peers: Vec<(f64, f64)>,
}

/// Consumes a (full or partitioned) mesh reactor and extracts its
/// contribution to the outcome.
pub(crate) fn harvest_partition(reactor: Reactor<NetActor>) -> PartitionHarvest {
    let mut harvest = PartitionHarvest {
        coordinator: None,
        messages: MessageTotals::default(),
        peers: Vec::new(),
    };
    for actor in reactor.into_actors() {
        match actor {
            NetActor::Coordinator(node) => {
                harvest.messages.control += node.control;
                harvest.coordinator = Some(node.machine);
            }
            NetActor::Tracker(_) => {}
            NetActor::Helper(node) => {
                harvest.messages.control += node.control;
                harvest.messages.data += node.data;
            }
            NetActor::Peer(node) => {
                harvest.messages.control += node.control;
                let peer = node.machine.into_peer();
                harvest.peers.push((peer.mean_rate(), peer.continuity()));
            }
        }
    }
    harvest
}

impl ReactorRuntime {
    /// Builds the actor mesh described by `config` (same RNG derivation
    /// order as the simulator and the threaded backend).
    pub fn new(config: NetConfig) -> Self {
        let h = config.sim.helpers.len();
        let n = config.sim.num_peers;
        let mut reactor = Reactor::new();
        let total = mesh_total(&config);
        populate_mesh(&mut reactor, &config, SHARD_SPAN, 0, total);
        Self {
            reactor,
            coordinator: ActorId(0),
            helper_base: 2,
            num_helpers: h,
            num_peers: n,
            trace: config.trace,
        }
    }

    /// Takes a helper offline/online (failure injection); takes effect
    /// before the next epoch's tick, as in the threaded backend.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_helper_online(&mut self, index: usize, online: bool) {
        assert!(index < self.num_helpers, "helper index {index} out of range");
        self.reactor.inject(ActorId(self.helper_base + index), NetMsg::SetOnline(online));
    }

    /// Runs `epochs` further epochs to completion (blocking the calling
    /// thread, which *is* the event loop).
    pub fn run_epochs(&mut self, epochs: u64) {
        self.reactor.inject(self.coordinator, NetMsg::Run { epochs });
        self.reactor.run_until_idle();
    }

    /// Scheduler counters (rounds, messages, timers) so far.
    pub fn stats(&self) -> ReactorStats {
        self.reactor.stats()
    }

    /// Finishes the run: consumes the mesh and aggregates the outcome.
    pub fn finish(self) -> NetOutcome {
        let harvest = harvest_partition(self.reactor);
        let coord = harvest.coordinator.expect("coordinator actor present");
        let epochs = coord.epochs_done();
        let (metrics, peer_mean_rates, peer_continuity) =
            coord.finalize_summaries(harvest.peers);
        NetOutcome {
            epochs,
            metrics,
            peer_mean_rates,
            peer_continuity,
            messages: harvest.messages,
        }
    }

    /// Runs `epochs` epochs and returns the outcome (consuming the
    /// runtime, mirroring `NetRuntime::run`). The reactor's own rounds
    /// record the mailbox spans and message counters, so — unlike the
    /// threaded backend — no protocol-level totals are mirrored here.
    pub fn run(mut self, epochs: u64) -> NetOutcome {
        let _trace_guard = self.trace.then(|| obs::scoped_enable(true));
        if obs::enabled() {
            obs::begin_run("net_reactor");
        }
        self.run_epochs(epochs);
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::NetConfig;
    use rths_sim::{BandwidthSpec, Scenario};

    #[test]
    fn reactor_runs_without_threads() {
        let sim = Scenario::paper_small().seed(1).build();
        let out = ReactorRuntime::new(NetConfig::from_sim(sim)).run(30);
        assert_eq!(out.epochs, 30);
        assert_eq!(out.peer_mean_rates.len(), 10);
        assert_eq!(out.metrics.epochs(), 30);
    }

    #[test]
    fn loads_sum_to_population() {
        let sim = Scenario::paper_small().seed(2).build();
        let out = ReactorRuntime::new(NetConfig::from_sim(sim)).run(20);
        for e in 0..20 {
            let total: f64 = out.metrics.helper_loads.iter().map(|s| s.values()[e]).sum();
            assert_eq!(total, 10.0);
        }
    }

    #[test]
    fn epoch_barrier_rides_the_timer_wheel() {
        let sim = Scenario::paper_small().seed(3).build();
        let mut rt = ReactorRuntime::new(NetConfig::from_sim(sim));
        rt.run_epochs(25);
        // One NextEpoch timer per epoch after the first.
        assert_eq!(rt.stats().timers_fired, 24);
        let out = rt.finish();
        assert_eq!(out.epochs, 25);
    }

    #[test]
    fn incremental_runs_accumulate() {
        let sim = Scenario::paper_small().seed(4).build();
        let mut rt = ReactorRuntime::new(NetConfig::from_sim(sim.clone()));
        rt.run_epochs(30);
        rt.run_epochs(30);
        let split = rt.finish();
        let whole = ReactorRuntime::new(NetConfig::from_sim(sim)).run(60);
        assert_eq!(split.epochs, 60);
        assert_eq!(split.metrics.welfare.values(), whole.metrics.welfare.values());
    }

    #[test]
    fn helper_failure_takes_effect() {
        let sim = rths_sim::SimConfig::builder(6, vec![BandwidthSpec::Constant(800.0); 2])
            .seed(6)
            .build();
        let mut rt = ReactorRuntime::new(NetConfig::from_sim(sim));
        rt.run_epochs(50);
        rt.set_helper_online(0, false);
        rt.run_epochs(300);
        let out = rt.finish();
        let tail = out.metrics.welfare.tail_mean(50);
        assert!(tail <= 800.0 + 1e-9, "tail welfare {tail}");
    }
}
