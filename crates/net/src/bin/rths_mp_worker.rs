//! Worker process of the multi-process reactor backend. Launched by
//! `rths_net::multiproc::run_multiproc`, never by hand: it reads its
//! rank and the controller's socket path from the environment, hosts one
//! partition of the actor mesh, and exits when the controller shuts the
//! mesh down.

fn main() {
    rths_net::multiproc::worker_main();
}
