//! The bootstrap tracker.
//!
//! Deployed P2P streaming systems bootstrap through a tracker: a joining
//! peer asks it for the current helper list and then talks to helpers
//! directly. The tracker never sees payoffs and never assigns peers — it
//! is a *directory*, not a controller, which is what keeps the
//! architecture decentralized. Here the "addresses" it hands out are
//! channel senders.

use crossbeam::channel::Sender;

use crate::message::HelperMsg;

/// Directory of live helper endpoints.
#[derive(Debug, Clone, Default)]
pub struct Tracker {
    helpers: Vec<Sender<HelperMsg>>,
}

impl Tracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a helper endpoint, returning its directory index.
    pub fn register_helper(&mut self, endpoint: Sender<HelperMsg>) -> usize {
        self.helpers.push(endpoint);
        self.helpers.len() - 1
    }

    /// Number of registered helpers.
    pub fn num_helpers(&self) -> usize {
        self.helpers.len()
    }

    /// Bootstrap response for a joining peer: clones of every helper
    /// endpoint. The peer's learner action `a` maps to `helpers[a]`.
    pub fn bootstrap(&self) -> Vec<Sender<HelperMsg>> {
        self.helpers.clone()
    }

    /// Endpoint of one helper (used by the coordinator for failure
    /// injection messages).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn helper(&self, index: usize) -> &Sender<HelperMsg> {
        &self.helpers[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn register_and_bootstrap() {
        let mut t = Tracker::new();
        let (tx1, _rx1) = unbounded();
        let (tx2, _rx2) = unbounded();
        assert_eq!(t.register_helper(tx1), 0);
        assert_eq!(t.register_helper(tx2), 1);
        assert_eq!(t.num_helpers(), 2);
        assert_eq!(t.bootstrap().len(), 2);
    }

    #[test]
    fn bootstrap_endpoints_reach_helpers() {
        let mut t = Tracker::new();
        let (tx, rx) = unbounded();
        t.register_helper(tx);
        let endpoints = t.bootstrap();
        endpoints[0].send(HelperMsg::Shutdown).unwrap();
        assert!(matches!(rx.recv().unwrap(), HelperMsg::Shutdown));
    }
}
