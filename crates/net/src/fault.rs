//! Fault injection for the decentralized runtime.
//!
//! Control traffic stays reliable (it rides crossbeam channels); faults
//! target the *data plane* and *timing*:
//!
//! * [`FaultPlan::loss`] — per-(peer, epoch) probability that the video
//!   payload is lost even though the connection was established: the peer
//!   observes rate 0 for the epoch and its learner treats the helper as
//!   useless — exactly what a throughput collapse looks like from the
//!   edge.
//! * [`FaultPlan::jitter_us`] — random per-message processing delay,
//!   exercising the asynchronous interleavings of the actor mesh. Because
//!   the epoch protocol is a barrier, jitter must not change results — a
//!   property the integration tests assert.
//!
//! Decisions are pure functions of `(seed, peer, epoch)` so faulty runs
//! are as reproducible as clean ones.
//!
//! `FaultPlan` is now the **thin compatibility constructor** over the
//! richer [`rths_sim::ImpairmentPlan`]: the runtimes consume
//! `ImpairmentPlan` ([`crate::NetConfig::with_impairments`]) and every
//! `FaultPlan` converts losslessly via `From` — same hash streams, so a
//! migrated run reproduces the legacy one bit-for-bit.

use rths_sim::ImpairmentPlan;
use rths_stoch::rng::derive_seed;

/// Deterministic fault plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Data-plane loss probability in `[0, 1]`.
    pub loss: f64,
    /// Maximum per-message jitter in microseconds (0 = disabled).
    pub jitter_us: u64,
    /// Seed for fault decisions (independent of the simulation seed).
    pub seed: u64,
}

impl FaultPlan {
    /// No faults at all.
    pub fn none() -> Self {
        Self { loss: 0.0, jitter_us: 0, seed: 0 }
    }

    /// Uniform data-plane loss with probability `loss`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1]`.
    pub fn with_loss(loss: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        Self { loss, jitter_us: 0, seed }
    }

    /// Adds timing jitter up to `jitter_us` microseconds per message.
    #[must_use]
    pub fn with_jitter(mut self, jitter_us: u64) -> Self {
        self.jitter_us = jitter_us;
        self
    }

    /// Whether the payload for `(peer, epoch)` is lost.
    pub fn is_lost(&self, peer: u64, epoch: u64) -> bool {
        if self.loss <= 0.0 {
            return false;
        }
        if self.loss >= 1.0 {
            return true;
        }
        let h = derive_seed(self.seed, derive_seed(peer, epoch));
        (h as f64 / u64::MAX as f64) < self.loss
    }

    /// The deterministic pseudo-random jitter drawn for `(actor, epoch)`,
    /// in microseconds below `jitter_us` (0 when jitter is disabled).
    ///
    /// The threaded backend sleeps this long before processing a tick;
    /// the reactor backend delays the tick's *delivery* by the same
    /// number of logical ticks on its timer wheel. Either way the epoch
    /// barrier absorbs it: jitter must never change results.
    pub fn jitter_ticks(&self, actor: u64, epoch: u64) -> u64 {
        if self.jitter_us == 0 {
            return 0;
        }
        let h = derive_seed(self.seed ^ 0xDEAD_BEEF, derive_seed(actor, epoch));
        h % self.jitter_us
    }

    /// Sleeps a deterministic pseudo-random duration below `jitter_us`
    /// (no-op when jitter is disabled).
    pub fn apply_jitter(&self, actor: u64, epoch: u64) {
        let us = self.jitter_ticks(actor, epoch);
        if us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Lossless upgrade to the unified impairment layer: uniform loss and
/// jitter map onto the `ImpairmentPlan` streams that replicate the
/// legacy hash formulas exactly (asserted by
/// `rths_sim::impairment`'s compatibility tests), so
/// `with_faults(f)` and `with_impairments(f.into())` run identically.
impl From<FaultPlan> for ImpairmentPlan {
    fn from(faults: FaultPlan) -> Self {
        let mut builder = ImpairmentPlan::builder(faults.seed);
        if faults.loss > 0.0 {
            builder = builder.uniform_loss(faults.loss);
        }
        let plan = builder.build().expect("FaultPlan loss is a validated probability");
        if faults.jitter_us > 0 {
            plan.with_jitter(faults.jitter_us)
        } else {
            plan
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_drops() {
        let f = FaultPlan::none();
        for p in 0..50 {
            for e in 0..50 {
                assert!(!f.is_lost(p, e));
            }
        }
    }

    #[test]
    fn full_loss_always_drops() {
        let f = FaultPlan::with_loss(1.0, 7);
        assert!(f.is_lost(3, 9));
    }

    #[test]
    fn loss_rate_is_approximately_honoured() {
        let f = FaultPlan::with_loss(0.3, 42);
        let n = 100_000u64;
        let dropped = (0..n).filter(|&i| f.is_lost(i, i / 7)).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::with_loss(0.5, 1);
        let b = FaultPlan::with_loss(0.5, 1);
        for p in 0..100 {
            assert_eq!(a.is_lost(p, 13), b.is_lost(p, 13));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::with_loss(0.5, 1);
        let b = FaultPlan::with_loss(0.5, 2);
        let n = 1000;
        let disagreements = (0..n).filter(|&p| a.is_lost(p, 0) != b.is_lost(p, 0)).count();
        assert!(disagreements > 100, "only {disagreements} disagreements");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_loss_rejected() {
        let _ = FaultPlan::with_loss(1.5, 0);
    }

    #[test]
    fn jitter_noop_when_disabled() {
        // Just exercises the no-op path.
        FaultPlan::none().apply_jitter(1, 1);
    }

    #[test]
    fn conversion_preserves_every_decision() {
        let faults = FaultPlan::with_loss(0.35, 99).with_jitter(250);
        let plan: ImpairmentPlan = faults.into();
        assert!(!plan.affects_rates() || plan.jitter_us() == 250);
        for peer in 0..200u64 {
            for epoch in [0u64, 1, 13, 999] {
                // Uniform loss ignores the helper index.
                assert_eq!(plan.is_lost(peer, 0, epoch), faults.is_lost(peer, epoch));
                assert_eq!(plan.jitter_ticks(peer, epoch), faults.jitter_ticks(peer, epoch));
            }
        }
    }

    #[test]
    fn none_converts_to_inert_plan() {
        let plan: ImpairmentPlan = FaultPlan::none().into();
        assert!(plan.is_none());
        assert!(!plan.affects_rates());
    }
}
