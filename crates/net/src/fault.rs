//! Fault injection for the decentralized runtime.
//!
//! Control traffic stays reliable (it rides crossbeam channels); faults
//! target the *data plane* and *timing*:
//!
//! * [`FaultPlan::loss`] — per-(peer, epoch) probability that the video
//!   payload is lost even though the connection was established: the peer
//!   observes rate 0 for the epoch and its learner treats the helper as
//!   useless — exactly what a throughput collapse looks like from the
//!   edge.
//! * [`FaultPlan::jitter_us`] — random per-message processing delay,
//!   exercising the asynchronous interleavings of the actor mesh. Because
//!   the epoch protocol is a barrier, jitter must not change results — a
//!   property the integration tests assert.
//!
//! Decisions are pure functions of `(seed, peer, epoch)` so faulty runs
//! are as reproducible as clean ones.
//!
//! The runtimes themselves consume the richer
//! [`rths_sim::ImpairmentPlan`] ([`crate::NetConfig::with_impairments`]),
//! whose uniform-loss and jitter streams replicate these hash formulas
//! bit-for-bit (asserted by `rths_sim::impairment`'s compatibility
//! tests). `FaultPlan` survives as the standalone reference
//! implementation of those formulas; nothing in the runtime path depends
//! on it anymore.

use rths_stoch::rng::derive_seed;

/// Deterministic fault plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Data-plane loss probability in `[0, 1]`.
    pub loss: f64,
    /// Maximum per-message jitter in microseconds (0 = disabled).
    pub jitter_us: u64,
    /// Seed for fault decisions (independent of the simulation seed).
    pub seed: u64,
}

impl FaultPlan {
    /// No faults at all.
    pub fn none() -> Self {
        Self { loss: 0.0, jitter_us: 0, seed: 0 }
    }

    /// Uniform data-plane loss with probability `loss`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1]`.
    pub fn with_loss(loss: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        Self { loss, jitter_us: 0, seed }
    }

    /// Adds timing jitter up to `jitter_us` microseconds per message.
    #[must_use]
    pub fn with_jitter(mut self, jitter_us: u64) -> Self {
        self.jitter_us = jitter_us;
        self
    }

    /// Whether the payload for `(peer, epoch)` is lost.
    pub fn is_lost(&self, peer: u64, epoch: u64) -> bool {
        if self.loss <= 0.0 {
            return false;
        }
        if self.loss >= 1.0 {
            return true;
        }
        let h = derive_seed(self.seed, derive_seed(peer, epoch));
        (h as f64 / u64::MAX as f64) < self.loss
    }

    /// The deterministic pseudo-random jitter drawn for `(actor, epoch)`,
    /// in microseconds below `jitter_us` (0 when jitter is disabled).
    ///
    /// The threaded backend sleeps this long before processing a tick;
    /// the reactor backend delays the tick's *delivery* by the same
    /// number of logical ticks on its timer wheel. Either way the epoch
    /// barrier absorbs it: jitter must never change results.
    pub fn jitter_ticks(&self, actor: u64, epoch: u64) -> u64 {
        if self.jitter_us == 0 {
            return 0;
        }
        let h = derive_seed(self.seed ^ 0xDEAD_BEEF, derive_seed(actor, epoch));
        h % self.jitter_us
    }

    /// Sleeps a deterministic pseudo-random duration below `jitter_us`
    /// (no-op when jitter is disabled).
    pub fn apply_jitter(&self, actor: u64, epoch: u64) {
        let us = self.jitter_ticks(actor, epoch);
        if us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_drops() {
        let f = FaultPlan::none();
        for p in 0..50 {
            for e in 0..50 {
                assert!(!f.is_lost(p, e));
            }
        }
    }

    #[test]
    fn full_loss_always_drops() {
        let f = FaultPlan::with_loss(1.0, 7);
        assert!(f.is_lost(3, 9));
    }

    #[test]
    fn loss_rate_is_approximately_honoured() {
        let f = FaultPlan::with_loss(0.3, 42);
        let n = 100_000u64;
        let dropped = (0..n).filter(|&i| f.is_lost(i, i / 7)).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::with_loss(0.5, 1);
        let b = FaultPlan::with_loss(0.5, 1);
        for p in 0..100 {
            assert_eq!(a.is_lost(p, 13), b.is_lost(p, 13));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::with_loss(0.5, 1);
        let b = FaultPlan::with_loss(0.5, 2);
        let n = 1000;
        let disagreements = (0..n).filter(|&p| a.is_lost(p, 0) != b.is_lost(p, 0)).count();
        assert!(disagreements > 100, "only {disagreements} disagreements");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_loss_rejected() {
        let _ = FaultPlan::with_loss(1.5, 0);
    }

    #[test]
    fn jitter_noop_when_disabled() {
        // Just exercises the no-op path.
        FaultPlan::none().apply_jitter(1, 1);
    }

    #[test]
    fn impairment_plan_replicates_the_legacy_hash_streams() {
        // The unified impairment layer's uniform-loss and jitter streams
        // must keep matching these reference formulas — this is what lets
        // migrated configs reproduce legacy lossy runs bit-for-bit.
        let faults = FaultPlan::with_loss(0.35, 99).with_jitter(250);
        let plan = rths_sim::ImpairmentPlan::builder(99)
            .uniform_loss(0.35)
            .build()
            .unwrap()
            .with_jitter(250);
        for peer in 0..200u64 {
            for epoch in [0u64, 1, 13, 999] {
                // Uniform loss ignores the helper index.
                assert_eq!(plan.is_lost(peer, 0, epoch), faults.is_lost(peer, epoch));
                assert_eq!(plan.jitter_ticks(peer, epoch), faults.jitter_ticks(peer, epoch));
            }
        }
    }
}
