//! The threaded actor runtime.
//!
//! Topology: one thread per helper, one thread per peer, and the calling
//! thread as coordinator. Per epoch the coordinator:
//!
//! 1. `Tick`s every helper (it steps its private bandwidth process) and
//!    every peer (it samples its learner and sends one `Request`);
//! 2. waits for every peer's `Selected` notification;
//! 3. `Settle`s every helper — each splits its capacity over the requests
//!    it received and replies a `Rate` to every requester;
//! 4. waits for every helper's `HelperReport` and every peer's
//!    `Observed`, then records the same metrics `rths_sim::System`
//!    records.
//!
//! Peer learning happens **inside the peer thread** with nothing but the
//! received rate — the coordinator only aggregates for reporting. With
//! faults disabled the run is bit-identical to the simulator; see the
//! `sim_net_equivalence` integration test.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use rths_sim::helper::{Helper, HelperId};
use rths_sim::peer::{Peer, PeerId};
use rths_sim::server::StreamingServer;
use rths_sim::SimConfig;
use rths_sim::SimMetrics;
use rths_stoch::rng::entity_rng;

use crate::fault::FaultPlan;
use crate::message::{CoordMsg, HelperMsg, PeerMsg};
use crate::tracker::Tracker;

/// Configuration of a decentralized run.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// The underlying system configuration (must be churn-free: thread
    /// population is fixed at startup).
    pub sim: SimConfig,
    /// Fault plan (loss / jitter).
    pub faults: FaultPlan,
}

impl NetConfig {
    /// Wraps a simulator configuration with no faults.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has churn enabled — the threaded
    /// runtime keeps a fixed actor population (dynamic membership is the
    /// simulator's job).
    pub fn from_sim(sim: SimConfig) -> Self {
        assert!(
            sim.churn.arrival_rate() == 0.0 && sim.churn.departure_prob() == 0.0,
            "the threaded runtime requires a churn-free configuration"
        );
        Self { sim, faults: FaultPlan::none() }
    }

    /// Adds a fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

/// Message-overhead accounting — evidence for the paper's "low
/// implementation complexity and low communication overhead" claim.
/// Counted at every send site across all actors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MessageTotals {
    /// Control-plane messages: ticks, requests, settles, coordinator
    /// notifications.
    pub control: u64,
    /// Data-plane messages: rate deliveries.
    pub data: u64,
}

impl MessageTotals {
    /// Mean messages per peer per epoch (control + data).
    pub fn per_peer_per_epoch(&self, peers: usize, epochs: u64) -> f64 {
        if peers == 0 || epochs == 0 {
            return 0.0;
        }
        (self.control + self.data) as f64 / peers as f64 / epochs as f64
    }
}

/// Shared atomic counters behind [`MessageTotals`].
#[derive(Debug, Default)]
struct MessageCounters {
    control: AtomicU64,
    data: AtomicU64,
}

impl MessageCounters {
    fn control(&self) {
        self.control.fetch_add(1, Ordering::Relaxed);
    }

    fn data(&self) {
        self.data.fetch_add(1, Ordering::Relaxed);
    }

    fn totals(&self) -> MessageTotals {
        MessageTotals {
            control: self.control.load(Ordering::Relaxed),
            data: self.data.load(Ordering::Relaxed),
        }
    }
}

/// Results of a decentralized run. Field-compatible with the simulator's
/// metrics so the two can be compared directly.
#[derive(Debug, Clone)]
pub struct NetOutcome {
    /// Epochs executed.
    pub epochs: u64,
    /// The same metric bundle the simulator produces.
    pub metrics: SimMetrics,
    /// Lifetime mean rate per peer (peer-id order).
    pub peer_mean_rates: Vec<f64>,
    /// Continuity index per peer (peer-id order).
    pub peer_continuity: Vec<f64>,
    /// Total messages exchanged, by plane.
    pub messages: MessageTotals,
}

/// The runtime: spawns actors on construction, runs epochs on demand, and
/// joins all threads on [`run`](Self::run) completion.
pub struct NetRuntime {
    config: NetConfig,
    tracker: Tracker,
    peer_endpoints: Vec<Sender<PeerMsg>>,
    helper_handles: Vec<JoinHandle<()>>,
    peer_handles: Vec<JoinHandle<Peer>>,
    coord_rx: Receiver<CoordMsg>,
    epoch: u64,
    metrics: SimMetrics,
    server: StreamingServer,
    // Coordinator-side bookkeeping for true regrets and switches.
    regret_sums: Vec<f64>,
    last_helper: Vec<Option<usize>>,
    helper_min_total: f64,
    counters: Arc<MessageCounters>,
}

impl std::fmt::Debug for NetRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetRuntime")
            .field("epoch", &self.epoch)
            .field("peers", &self.peer_endpoints.len())
            .field("helpers", &self.tracker.num_helpers())
            .finish()
    }
}

impl NetRuntime {
    /// Spawns the actor mesh described by `config`.
    pub fn new(config: NetConfig) -> Self {
        let sim = &config.sim;
        let mut master_rng = rths_stoch::rng::seeded_rng(sim.seed);
        let (coord_tx, coord_rx) = unbounded::<CoordMsg>();
        let mut tracker = Tracker::new();
        let mut helper_handles = Vec::new();
        let faults = config.faults;
        let counters = Arc::new(MessageCounters::default());

        // Helper actors. Processes are instantiated from the master RNG in
        // helper order — the exact construction sequence of rths_sim.
        let mut helper_min_total = 0.0;
        for (j, spec) in sim.helpers.iter().enumerate() {
            let process = spec.instantiate(&mut master_rng);
            let helper = Helper::with_seed(HelperId(j as u32), process, sim.seed);
            helper_min_total += helper.min_capacity();
            let (tx, rx) = unbounded::<HelperMsg>();
            tracker.register_helper(tx);
            let coord = coord_tx.clone();
            let counters_h = Arc::clone(&counters);
            helper_handles.push(std::thread::spawn(move || {
                helper_actor(helper, j, rx, coord, faults, counters_h);
            }));
        }

        // Peer actors.
        let rate_scale = sim.rate_scale();
        let mut peer_endpoints = Vec::new();
        let mut peer_handles = Vec::new();
        for id in 0..sim.num_peers as u64 {
            let learner = sim
                .learner
                .instantiate(tracker.num_helpers(), rate_scale)
                .expect("learner spec validated by construction");
            let rng = entity_rng(sim.seed, id);
            let peer = Peer::new(PeerId(id), learner, rng, 0, 0);
            let (tx, rx) = unbounded::<PeerMsg>();
            peer_endpoints.push(tx.clone());
            let helpers = tracker.bootstrap();
            let coord = coord_tx.clone();
            let demand = sim.demand;
            let counters_p = Arc::clone(&counters);
            peer_handles.push(std::thread::spawn(move || {
                peer_actor(peer, id, tx, rx, helpers, coord, demand, faults, counters_p)
            }));
        }

        let h = tracker.num_helpers();
        let n = sim.num_peers;
        Self {
            config,
            tracker,
            peer_endpoints,
            helper_handles,
            peer_handles,
            coord_rx,
            epoch: 0,
            metrics: SimMetrics::new(h),
            server: StreamingServer::new(),
            regret_sums: vec![0.0; n * h * h],
            last_helper: vec![None; n],
            helper_min_total,
            counters,
        }
    }

    /// Takes a helper offline/online mid-run (failure injection).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_helper_online(&mut self, index: usize, online: bool) {
        self.tracker
            .helper(index)
            .send(HelperMsg::SetOnline(online))
            .expect("helper actor alive");
    }

    /// Runs `epochs` epochs, then shuts down all actors and returns the
    /// outcome. The runtime is consumed: every thread is joined.
    pub fn run(mut self, epochs: u64) -> NetOutcome {
        for _ in 0..epochs {
            self.step_epoch();
        }
        // Shutdown protocol.
        for j in 0..self.tracker.num_helpers() {
            let _ = self.tracker.helper(j).send(HelperMsg::Shutdown);
        }
        for tx in &self.peer_endpoints {
            let _ = tx.send(PeerMsg::Shutdown);
        }
        let mut peers = Vec::new();
        for handle in self.peer_handles {
            peers.push(handle.join().expect("peer thread panicked"));
        }
        for handle in self.helper_handles {
            handle.join().expect("helper thread panicked");
        }

        let mut metrics = self.metrics;
        let denom = self.epoch.max(1) as f64;
        metrics.mean_helper_loads = metrics
            .helper_loads
            .iter()
            .map(|s| s.values().iter().sum::<f64>() / denom)
            .collect();
        metrics.mean_peer_rates = peers.iter().map(Peer::mean_rate).collect();
        metrics.peer_continuity = peers.iter().map(Peer::continuity).collect();
        NetOutcome {
            epochs: self.epoch,
            peer_mean_rates: peers.iter().map(Peer::mean_rate).collect(),
            peer_continuity: peers.iter().map(Peer::continuity).collect(),
            metrics,
            messages: self.counters.totals(),
        }
    }

    fn step_epoch(&mut self) {
        let h = self.tracker.num_helpers();
        let n = self.peer_endpoints.len();
        let epoch = self.epoch;

        for j in 0..h {
            self.counters.control();
            self.tracker.helper(j).send(HelperMsg::Tick { epoch }).expect("helper actor alive");
        }
        for tx in &self.peer_endpoints {
            self.counters.control();
            tx.send(PeerMsg::Tick { epoch }).expect("peer actor alive");
        }

        // Phase 1: all peers commit.
        let mut chosen = vec![0usize; n];
        let mut selected = 0usize;
        while selected < n {
            match self.coord_rx.recv().expect("actors alive") {
                CoordMsg::Selected { peer, helper, epoch: e } => {
                    debug_assert_eq!(e, epoch);
                    chosen[peer as usize] = helper;
                    selected += 1;
                }
                other => unreachable!("unexpected message in selection phase: {other:?}"),
            }
        }

        // Phase 2: helpers settle.
        for j in 0..h {
            self.counters.control();
            self.tracker
                .helper(j)
                .send(HelperMsg::Settle { epoch })
                .expect("helper actor alive");
        }
        let mut loads = vec![0usize; h];
        let mut capacities = vec![0.0f64; h];
        let mut rates = vec![0.0f64; n];
        let mut reports = 0usize;
        let mut observed = 0usize;
        while reports < h || observed < n {
            match self.coord_rx.recv().expect("actors alive") {
                CoordMsg::HelperReport { helper, load, capacity, epoch: e } => {
                    debug_assert_eq!(e, epoch);
                    loads[helper] = load;
                    capacities[helper] = capacity;
                    reports += 1;
                }
                CoordMsg::Observed { peer, rate, epoch: e } => {
                    debug_assert_eq!(e, epoch);
                    rates[peer as usize] = rate;
                    observed += 1;
                }
                other => unreachable!("unexpected message in settle phase: {other:?}"),
            }
        }

        // Metrics — mirroring rths_sim::System::step_epoch exactly.
        let demand = self.config.sim.demand;
        let join_rates: Vec<f64> = (0..h)
            .map(|j| {
                let raw = capacities[j] / (loads[j] + 1) as f64;
                match demand {
                    Some(d) => raw.min(d),
                    None => raw,
                }
            })
            .collect();
        let mut welfare = 0.0;
        let mut residuals = Vec::with_capacity(n);
        for i in 0..n {
            let a = chosen[i];
            let rate = rates[i];
            welfare += rate;
            residuals.push(match demand {
                Some(d) => (d - rate).max(0.0),
                None => 0.0,
            });
            let base = i * h * h + a * h;
            for (k, &jr) in join_rates.iter().enumerate() {
                if k != a {
                    self.regret_sums[base + k] += jr - rate;
                }
            }
        }
        let total_demand = demand.unwrap_or(0.0) * n as f64;
        let helper_now: f64 = capacities.iter().sum();
        let server_epoch = self.server.settle_epoch(
            &residuals,
            total_demand,
            self.helper_min_total,
            helper_now,
        );

        self.metrics.welfare.push(welfare);
        self.metrics.server_load.push(server_epoch.load);
        self.metrics.min_deficit.push(server_epoch.min_deficit);
        self.metrics.current_deficit.push(server_epoch.current_deficit);
        self.metrics.population.push(n as f64);
        self.metrics.jain.push(rths_math::stats::jain_index(&rates));
        // Internal learner regrets live in peer threads; the coordinator
        // reports only the empirical series (estimated series is filled
        // with the empirical value so downstream plots stay aligned).
        let max_sum = self.regret_sums.iter().copied().fold(0.0f64, f64::max);
        let emp = max_sum / (epoch + 1) as f64;
        self.metrics.worst_empirical_regret.push(emp);
        self.metrics.worst_regret_estimate.push(emp);
        let mut switched = 0usize;
        for (last, &now) in self.last_helper.iter_mut().zip(&chosen) {
            if let Some(prev) = *last {
                if prev != now {
                    switched += 1;
                }
            }
            *last = Some(now);
        }
        self.metrics.switches.push(switched as f64);
        for (series, &l) in self.metrics.helper_loads.iter_mut().zip(&loads) {
            series.push(l as f64);
        }
        self.epoch += 1;
    }
}

/// Helper actor body.
fn helper_actor(
    mut helper: Helper,
    index: usize,
    inbox: Receiver<HelperMsg>,
    coord: Sender<CoordMsg>,
    faults: FaultPlan,
    counters: Arc<MessageCounters>,
) {
    let mut pending: Vec<(u64, Sender<PeerMsg>, bool)> = Vec::new();
    while let Ok(msg) = inbox.recv() {
        match msg {
            HelperMsg::Tick { epoch } => {
                faults.apply_jitter(0x4000_0000 + index as u64, epoch);
                helper.step();
            }
            HelperMsg::Request { peer, epoch: _, reply, lost } => {
                pending.push((peer, reply, lost));
            }
            HelperMsg::Settle { epoch } => {
                let load = pending.len();
                let share = helper.share(load);
                for (_peer, reply, lost) in pending.drain(..) {
                    let kbps = if lost { 0.0 } else { share };
                    counters.data();
                    // A dead peer endpoint is not our problem (shutdown
                    // race) — ignore send failures.
                    let _ = reply.send(PeerMsg::Rate { epoch, kbps });
                }
                counters.control();
                coord
                    .send(CoordMsg::HelperReport {
                        helper: index,
                        epoch,
                        load,
                        capacity: helper.capacity(),
                    })
                    .expect("coordinator alive");
            }
            HelperMsg::SetOnline(online) => helper.set_online(online),
            HelperMsg::Shutdown => break,
        }
    }
}

/// Peer actor body. Returns the peer state for final reporting.
#[allow(clippy::too_many_arguments)]
fn peer_actor(
    mut peer: Peer,
    id: u64,
    _self_tx: Sender<PeerMsg>,
    inbox: Receiver<PeerMsg>,
    helpers: Vec<Sender<HelperMsg>>,
    coord: Sender<CoordMsg>,
    demand: Option<f64>,
    faults: FaultPlan,
    counters: Arc<MessageCounters>,
) -> Peer {
    // The peer re-attaches its own endpoint to each request; keep one
    // clone for that purpose.
    let self_endpoint = _self_tx;
    while let Ok(msg) = inbox.recv() {
        match msg {
            PeerMsg::Tick { epoch } => {
                faults.apply_jitter(id, epoch);
                let a = peer.choose_helper();
                let lost = faults.is_lost(id, epoch);
                counters.control();
                helpers[a]
                    .send(HelperMsg::Request {
                        peer: id,
                        epoch,
                        reply: self_endpoint.clone(),
                        lost,
                    })
                    .expect("helper actor alive");
                counters.control();
                coord
                    .send(CoordMsg::Selected { peer: id, epoch, helper: a })
                    .expect("coordinator alive");
            }
            PeerMsg::Rate { epoch, kbps } => {
                let (rate, satisfied) = match demand {
                    Some(d) => {
                        let r = kbps.min(d);
                        (r, r >= d - 1e-9)
                    }
                    None => (kbps, true),
                };
                peer.deliver(rate, satisfied);
                counters.control();
                coord
                    .send(CoordMsg::Observed { peer: id, epoch, rate })
                    .expect("coordinator alive");
            }
            PeerMsg::Shutdown => break,
        }
    }
    peer
}

#[cfg(test)]
mod tests {
    use super::*;
    use rths_sim::{BandwidthSpec, Scenario};

    #[test]
    fn runtime_runs_and_joins() {
        let sim = Scenario::paper_small().seed(1).build();
        let out = NetRuntime::new(NetConfig::from_sim(sim)).run(30);
        assert_eq!(out.epochs, 30);
        assert_eq!(out.peer_mean_rates.len(), 10);
        assert_eq!(out.metrics.helper_loads.len(), 4);
        assert_eq!(out.metrics.epochs(), 30);
    }

    #[test]
    fn loads_sum_to_population() {
        let sim = Scenario::paper_small().seed(2).build();
        let out = NetRuntime::new(NetConfig::from_sim(sim)).run(20);
        for e in 0..20 {
            let total: f64 = out.metrics.helper_loads.iter().map(|s| s.values()[e]).sum();
            assert_eq!(total, 10.0);
        }
    }

    #[test]
    fn full_loss_starves_everyone() {
        let sim = rths_sim::SimConfig::builder(4, vec![BandwidthSpec::Constant(800.0); 2])
            .seed(3)
            .build();
        let config = NetConfig::from_sim(sim).with_faults(FaultPlan::with_loss(1.0, 9));
        let out = NetRuntime::new(config).run(10);
        for &w in out.metrics.welfare.values() {
            assert_eq!(w, 0.0);
        }
    }

    #[test]
    fn partial_loss_reduces_welfare() {
        let build = |loss| {
            let sim = rths_sim::SimConfig::builder(8, vec![BandwidthSpec::Constant(800.0); 2])
                .seed(4)
                .build();
            let config = NetConfig::from_sim(sim).with_faults(FaultPlan::with_loss(loss, 5));
            NetRuntime::new(config).run(300)
        };
        let clean = build(0.0);
        let lossy = build(0.3);
        let w_clean = clean.metrics.welfare.tail_mean(100);
        let w_lossy = lossy.metrics.welfare.tail_mean(100);
        assert!(
            w_lossy < w_clean * 0.85,
            "loss had no effect: clean {w_clean}, lossy {w_lossy}"
        );
    }

    #[test]
    fn helper_failure_message_takes_effect() {
        let sim = rths_sim::SimConfig::builder(6, vec![BandwidthSpec::Constant(800.0); 2])
            .seed(6)
            .build();
        let mut rt = NetRuntime::new(NetConfig::from_sim(sim));
        for _ in 0..50 {
            rt.step_epoch();
        }
        rt.set_helper_online(0, false);
        let out = rt.run(300);
        // Welfare in the tail can come only from helper 1.
        let tail = out.metrics.welfare.tail_mean(50);
        assert!(tail <= 800.0 + 1e-9, "tail welfare {tail}");
    }

    #[test]
    fn message_overhead_is_constant_per_peer() {
        // Per epoch and peer: 1 Tick + 1 Request + 1 Selected + 1
        // Observed control messages (+ per-helper Tick/Settle/Report
        // amortised), and exactly 1 data (Rate) message. The paper's
        // low-overhead claim, quantified.
        let sim = Scenario::paper_small().seed(12).build();
        let out = NetRuntime::new(NetConfig::from_sim(sim)).run(100);
        assert_eq!(out.messages.data, 10 * 100);
        // Per peer: Tick + Request + Selected + Observed (4); per
        // helper: Tick + Settle + HelperReport (3).
        let expected_control = (10 * 4 + 4 * 3) * 100;
        assert_eq!(out.messages.control, expected_control as u64);
        let per_peer = out.messages.per_peer_per_epoch(10, 100);
        assert!(per_peer < 7.0, "overhead {per_peer} messages/peer/epoch");
    }

    #[test]
    #[should_panic(expected = "churn-free")]
    fn churny_config_rejected() {
        let sim = Scenario::churn().seed(1).build();
        let _ = NetConfig::from_sim(sim);
    }
}
