//! Backend selection and the thread-per-actor runtime.
//!
//! Topology of the threaded backend: one OS thread per helper, one per
//! peer, and the calling thread as coordinator. Per epoch the coordinator:
//!
//! 1. `Tick`s every helper (it steps its private bandwidth process) and
//!    every peer (it samples its learner and sends one `Request`);
//! 2. waits for every peer's `Selected` notification;
//! 3. `Settle`s every helper — each splits its capacity over the requests
//!    it received and replies a `Rate` to every requester;
//! 4. waits for every helper's `HelperReport` and every peer's
//!    `Observed`, then records the same metrics `rths_sim::System`
//!    records.
//!
//! The protocol logic itself lives in [`crate::machines`]; the thread
//! bodies here only move machine inputs and outputs over channels. Peer
//! learning happens **inside the peer thread** with nothing but the
//! received rate — the coordinator only aggregates for reporting. With
//! faults disabled a run is bit-identical to the simulator *and* to the
//! [`Backend::Reactor`] event-loop backend; see the `sim_net_equivalence`
//! integration test.

use crossbeam::channel::{unbounded, Receiver, Sender};
use rths_obs::{self as obs, Counter, Phase};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use rths_sim::peer::Peer;
use rths_sim::ImpairmentPlan;
use rths_sim::SimConfig;
use rths_sim::SimMetrics;

use crate::machines::{instantiate_helpers, CoordinatorMachine, HelperMachine, PeerMachine};
use crate::message::{CoordMsg, HelperMsg, PeerMsg};
use crate::tracker::Tracker;

/// Which runtime hosts the actor mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// One OS thread per actor ([`NetRuntime`]) — the deployment-shaped
    /// proof, capped at a few hundred actors. **Default.**
    #[default]
    Threaded,
    /// The event-loop runtime
    /// ([`ReactorRuntime`](crate::reactor_backend::ReactorRuntime)):
    /// thousands of poll-driven actors per thread, bit-equivalent to both
    /// the threaded backend and the simulator.
    Reactor,
    /// The multi-process reactor ([`crate::multiproc`]): the mesh
    /// sharded across OS processes over Unix-domain sockets, each
    /// hosting a contiguous partition of mailbox shards — still
    /// bit-equivalent to every other backend.
    Multiproc {
        /// Process count (≥ 1); the calling process is rank 0.
        processes: usize,
    },
}

/// Configuration of a decentralized run.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// The underlying system configuration (must be churn-free: actor
    /// population is fixed at startup).
    pub sim: SimConfig,
    /// Link-impairment plan (loss, shaping, jitter/latency) — shared
    /// with the simulator, so impaired runs stay bit-identical across
    /// all three engines.
    pub impairments: ImpairmentPlan,
    /// Hosting runtime.
    pub backend: Backend,
    /// Whether peers attach their learner's internal regret estimate to
    /// every observation (the `worst_regret_estimate` series). Deriving
    /// it is an `O(m²)` scan of the proxy matrix per peer per epoch —
    /// the same cost trade the simulator's `track_estimate` flag
    /// controls — so throughput benches disable it. **Default: on.**
    pub track_estimate: bool,
    /// Enables `rths_obs` tracing for the duration of the run (epoch
    /// spans, coordinator phase spans, message-volume counters). Tracing
    /// never feeds back into the computation, so traced runs stay
    /// bit-identical to untraced ones. **Default: off.**
    pub trace: bool,
}

impl NetConfig {
    /// Wraps a simulator configuration on the default (threaded)
    /// backend, inheriting the config's own [`SimConfig::impairment`]
    /// plan (none by default).
    ///
    /// # Panics
    ///
    /// Panics if the configuration has churn enabled — the decentralized
    /// runtimes keep a fixed actor population (dynamic membership is the
    /// simulator's job).
    pub fn from_sim(sim: SimConfig) -> Self {
        assert!(
            sim.churn.arrival_rate() == 0.0 && sim.churn.departure_prob() == 0.0,
            "the decentralized runtimes require a churn-free configuration"
        );
        let impairments = sim.impairment.clone();
        Self {
            sim,
            impairments,
            backend: Backend::default(),
            track_estimate: true,
            trace: false,
        }
    }

    /// Sets the link-impairment plan (loss models, token-bucket shaping,
    /// link bandwidth caps, jitter/latency).
    #[must_use]
    pub fn with_impairments(mut self, impairments: ImpairmentPlan) -> Self {
        self.impairments = impairments;
        self
    }

    /// Enables/disables per-peer internal regret estimates (see
    /// [`track_estimate`](Self::track_estimate)).
    #[must_use]
    pub fn with_track_estimate(mut self, track: bool) -> Self {
        self.track_estimate = track;
        self
    }

    /// Selects the hosting backend.
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Enables/disables `rths_obs` tracing for the run (see
    /// [`trace`](Self::trace)).
    #[must_use]
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }
}

/// Runs `epochs` epochs on the backend named by `config.backend` and
/// returns the outcome. The entry point backend-agnostic callers (tests,
/// benches, examples) should use.
pub fn run(config: NetConfig, epochs: u64) -> NetOutcome {
    match config.backend {
        Backend::Threaded => NetRuntime::new(config).run(epochs),
        Backend::Reactor => crate::reactor_backend::ReactorRuntime::new(config).run(epochs),
        Backend::Multiproc { processes } => {
            crate::multiproc::run_multiproc(config, epochs, processes).outcome
        }
    }
}

/// Message-overhead accounting — evidence for the paper's "low
/// implementation complexity and low communication overhead" claim.
/// Counted at every protocol send site across all actors (bootstrap
/// traffic excluded), so both backends report identical totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MessageTotals {
    /// Control-plane messages: ticks, requests, settles, coordinator
    /// notifications.
    pub control: u64,
    /// Data-plane messages: rate deliveries.
    pub data: u64,
}

impl MessageTotals {
    /// Mean messages per peer per epoch (control + data).
    pub fn per_peer_per_epoch(&self, peers: usize, epochs: u64) -> f64 {
        if peers == 0 || epochs == 0 {
            return 0.0;
        }
        (self.control + self.data) as f64 / peers as f64 / epochs as f64
    }
}

/// Shared atomic counters behind [`MessageTotals`].
#[derive(Debug, Default)]
struct MessageCounters {
    control: AtomicU64,
    data: AtomicU64,
}

impl MessageCounters {
    fn control(&self) {
        self.control.fetch_add(1, Ordering::Relaxed);
    }

    fn data(&self) {
        self.data.fetch_add(1, Ordering::Relaxed);
    }

    fn totals(&self) -> MessageTotals {
        MessageTotals {
            control: self.control.load(Ordering::Relaxed),
            data: self.data.load(Ordering::Relaxed),
        }
    }
}

/// Results of a decentralized run. Field-compatible with the simulator's
/// metrics so the two can be compared directly.
#[derive(Debug, Clone)]
pub struct NetOutcome {
    /// Epochs executed.
    pub epochs: u64,
    /// The same metric bundle the simulator produces.
    pub metrics: SimMetrics,
    /// Lifetime mean rate per peer (peer-id order).
    pub peer_mean_rates: Vec<f64>,
    /// Continuity index per peer (peer-id order).
    pub peer_continuity: Vec<f64>,
    /// Total messages exchanged, by plane.
    pub messages: MessageTotals,
}

/// The thread-per-actor runtime: spawns actors on construction, runs
/// epochs on demand, and joins all threads on [`run`](Self::run)
/// completion.
pub struct NetRuntime {
    tracker: Tracker,
    peer_endpoints: Vec<Sender<PeerMsg>>,
    helper_handles: Vec<JoinHandle<()>>,
    peer_handles: Vec<JoinHandle<Peer>>,
    coord_rx: Receiver<CoordMsg>,
    coord: CoordinatorMachine,
    counters: Arc<MessageCounters>,
    trace: bool,
}

impl std::fmt::Debug for NetRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetRuntime")
            .field("epoch", &self.coord.epochs_done())
            .field("peers", &self.peer_endpoints.len())
            .field("helpers", &self.tracker.num_helpers())
            .finish()
    }
}

impl NetRuntime {
    /// Spawns the actor mesh described by `config`.
    pub fn new(config: NetConfig) -> Self {
        let sim = &config.sim;
        let (coord_tx, coord_rx) = unbounded::<CoordMsg>();
        let mut tracker = Tracker::new();
        let mut helper_handles = Vec::new();
        let impairments = &config.impairments;
        let counters = Arc::new(MessageCounters::default());

        // Helper actors. Processes are instantiated from the master RNG in
        // helper order — the exact construction sequence of rths_sim.
        let (helpers, helper_min_total) = instantiate_helpers(sim);
        for (j, helper) in helpers.into_iter().enumerate() {
            let machine: HelperMachine<Sender<PeerMsg>> = HelperMachine::new(helper);
            let (tx, rx) = unbounded::<HelperMsg>();
            tracker.register_helper(tx);
            let coord = coord_tx.clone();
            let counters_h = Arc::clone(&counters);
            let plan = impairments.clone();
            helper_handles.push(std::thread::spawn(move || {
                helper_actor(machine, j, rx, coord, plan, counters_h);
            }));
        }

        // Peer actors (each owns its plan clone — the shaper state inside
        // the machine is per-peer anyway).
        let mut peer_endpoints = Vec::new();
        let mut peer_handles = Vec::new();
        let track_estimate = config.track_estimate;
        for id in 0..sim.num_peers as u64 {
            let machine =
                PeerMachine::from_config(sim, id, tracker.num_helpers(), impairments.clone());
            let (tx, rx) = unbounded::<PeerMsg>();
            peer_endpoints.push(tx.clone());
            let helpers = tracker.bootstrap();
            let coord = coord_tx.clone();
            let counters_p = Arc::clone(&counters);
            peer_handles.push(std::thread::spawn(move || {
                peer_actor(machine, tx, rx, helpers, coord, counters_p, track_estimate)
            }));
        }

        let coord = CoordinatorMachine::new(sim, helper_min_total);
        let trace = config.trace;
        Self {
            tracker,
            peer_endpoints,
            helper_handles,
            peer_handles,
            coord_rx,
            coord,
            counters,
            trace,
        }
    }

    /// Takes a helper offline/online mid-run (failure injection).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_helper_online(&mut self, index: usize, online: bool) {
        self.tracker
            .helper(index)
            .send(HelperMsg::SetOnline(online))
            .expect("helper actor alive");
    }

    /// Runs `epochs` epochs, then shuts down all actors and returns the
    /// outcome. The runtime is consumed: every thread is joined.
    pub fn run(mut self, epochs: u64) -> NetOutcome {
        let _trace_guard = self.trace.then(|| obs::scoped_enable(true));
        if obs::enabled() {
            obs::begin_run("net_threaded");
        }
        for _ in 0..epochs {
            self.step_epoch();
        }
        // Shutdown protocol.
        for j in 0..self.tracker.num_helpers() {
            let _ = self.tracker.helper(j).send(HelperMsg::Shutdown);
        }
        for tx in &self.peer_endpoints {
            let _ = tx.send(PeerMsg::Shutdown);
        }
        let mut peers = Vec::new();
        for handle in self.peer_handles {
            peers.push(handle.join().expect("peer thread panicked"));
        }
        for handle in self.helper_handles {
            handle.join().expect("helper thread panicked");
        }

        let epochs_done = self.coord.epochs_done();
        let (metrics, peer_mean_rates, peer_continuity) = self.coord.finalize(&peers);
        let messages = self.counters.totals();
        if obs::enabled() {
            // Every protocol message sent over a channel is delivered
            // (the shutdown race drops at most trailing Rate replies,
            // which are counted at the send site) — mirror the totals
            // into both counters.
            let sent = messages.control + messages.data;
            obs::counter_add(Counter::MessagesEnqueued, sent);
            obs::counter_add(Counter::MessagesDelivered, sent);
        }
        NetOutcome { epochs: epochs_done, peer_mean_rates, peer_continuity, metrics, messages }
    }

    fn step_epoch(&mut self) {
        let h = self.tracker.num_helpers();
        let epoch = self.coord.epoch();
        if obs::enabled() {
            obs::set_epoch(epoch);
        }
        let t_epoch = obs::span_start();
        self.coord.begin_epoch();

        // Phase 1: tick every actor, then wait for all peers to commit.
        let t_choose = obs::span_start();
        for j in 0..h {
            self.counters.control();
            self.tracker.helper(j).send(HelperMsg::Tick { epoch }).expect("helper actor alive");
        }
        for tx in &self.peer_endpoints {
            self.counters.control();
            tx.send(PeerMsg::Tick { epoch }).expect("peer actor alive");
        }
        while !self.coord.settle_ready() {
            match self.coord_rx.recv().expect("actors alive") {
                CoordMsg::Selected { peer, helper, epoch: e } => {
                    debug_assert_eq!(e, epoch);
                    self.coord.on_selected(peer, helper);
                }
                other => unreachable!("unexpected message in selection phase: {other:?}"),
            }
        }
        if let Some(t) = t_choose {
            obs::span_end(Phase::Choose, epoch, t);
        }

        // Phase 2: helpers settle.
        let t_settle = obs::span_start();
        for j in 0..h {
            self.counters.control();
            self.tracker
                .helper(j)
                .send(HelperMsg::Settle { epoch })
                .expect("helper actor alive");
        }
        while !self.coord.epoch_complete() {
            match self.coord_rx.recv().expect("actors alive") {
                CoordMsg::HelperReport { helper, load, capacity, epoch: e } => {
                    debug_assert_eq!(e, epoch);
                    self.coord.on_helper_report(helper, load, capacity);
                }
                CoordMsg::Observed { peer, rate, estimate, epoch: e } => {
                    debug_assert_eq!(e, epoch);
                    self.coord.on_observed(peer, rate, estimate);
                }
                other => unreachable!("unexpected message in settle phase: {other:?}"),
            }
        }
        self.coord.finish_epoch();
        if let Some(t) = t_settle {
            obs::span_end(Phase::Settle, epoch, t);
        }
        if let Some(t) = t_epoch {
            obs::span_end(Phase::Epoch, epoch, t);
        }
    }
}

/// Helper actor body: a [`HelperMachine`] whose per-request attachment is
/// the requester's reply channel.
fn helper_actor(
    mut machine: HelperMachine<Sender<PeerMsg>>,
    index: usize,
    inbox: Receiver<HelperMsg>,
    coord: Sender<CoordMsg>,
    impairments: ImpairmentPlan,
    counters: Arc<MessageCounters>,
) {
    while let Ok(msg) = inbox.recv() {
        match msg {
            HelperMsg::Tick { epoch } => {
                impairments.apply_jitter(0x4000_0000 + index as u64, epoch);
                machine.on_tick();
            }
            HelperMsg::Request { peer, epoch: _, reply, lost } => {
                machine.on_request(peer, lost, reply);
            }
            HelperMsg::Settle { epoch } => {
                let settlement = machine.on_settle(|_peer, kbps, reply| {
                    counters.data();
                    // A dead peer endpoint is not our problem (shutdown
                    // race) — ignore send failures.
                    let _ = reply.send(PeerMsg::Rate { epoch, kbps });
                });
                counters.control();
                coord
                    .send(CoordMsg::HelperReport {
                        helper: index,
                        epoch,
                        load: settlement.load,
                        capacity: settlement.capacity,
                    })
                    .expect("coordinator alive");
            }
            HelperMsg::SetOnline(online) => machine.set_online(online),
            HelperMsg::Shutdown => break,
        }
    }
}

/// Peer actor body: a [`PeerMachine`] plus the channel plumbing. Returns
/// the peer state for final reporting.
#[allow(clippy::too_many_arguments)]
fn peer_actor(
    mut machine: PeerMachine,
    self_tx: Sender<PeerMsg>,
    inbox: Receiver<PeerMsg>,
    helpers: Vec<Sender<HelperMsg>>,
    coord: Sender<CoordMsg>,
    counters: Arc<MessageCounters>,
    track_estimate: bool,
) -> Peer {
    let id = machine.id();
    while let Ok(msg) = inbox.recv() {
        match msg {
            PeerMsg::Tick { epoch } => {
                machine.impairments().apply_jitter(id, epoch);
                let selection = machine.on_tick(epoch);
                counters.control();
                helpers[selection.helper]
                    .send(HelperMsg::Request {
                        peer: id,
                        epoch,
                        reply: self_tx.clone(),
                        lost: selection.lost,
                    })
                    .expect("helper actor alive");
                counters.control();
                coord
                    .send(CoordMsg::Selected { peer: id, epoch, helper: selection.helper })
                    .expect("coordinator alive");
            }
            PeerMsg::Rate { epoch, kbps } => {
                let rate = machine.on_rate(kbps);
                let estimate = if track_estimate { machine.peer().max_regret() } else { 0.0 };
                counters.control();
                coord
                    .send(CoordMsg::Observed { peer: id, epoch, rate, estimate })
                    .expect("coordinator alive");
            }
            PeerMsg::Shutdown => break,
        }
    }
    machine.into_peer()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rths_sim::{BandwidthSpec, Scenario};

    #[test]
    fn runtime_runs_and_joins() {
        let sim = Scenario::paper_small().seed(1).build();
        let out = NetRuntime::new(NetConfig::from_sim(sim)).run(30);
        assert_eq!(out.epochs, 30);
        assert_eq!(out.peer_mean_rates.len(), 10);
        assert_eq!(out.metrics.helper_loads.len(), 4);
        assert_eq!(out.metrics.epochs(), 30);
    }

    #[test]
    fn loads_sum_to_population() {
        let sim = Scenario::paper_small().seed(2).build();
        let out = NetRuntime::new(NetConfig::from_sim(sim)).run(20);
        for e in 0..20 {
            let total: f64 = out.metrics.helper_loads.iter().map(|s| s.values()[e]).sum();
            assert_eq!(total, 10.0);
        }
    }

    #[test]
    fn full_loss_starves_everyone() {
        let sim = rths_sim::SimConfig::builder(4, vec![BandwidthSpec::Constant(800.0); 2])
            .seed(3)
            .build();
        let plan = ImpairmentPlan::builder(9).uniform_loss(1.0).build().unwrap();
        let config = NetConfig::from_sim(sim).with_impairments(plan);
        let out = NetRuntime::new(config).run(10);
        for &w in out.metrics.welfare.values() {
            assert_eq!(w, 0.0);
        }
    }

    #[test]
    fn partial_loss_reduces_welfare() {
        let build = |loss| {
            let sim = rths_sim::SimConfig::builder(8, vec![BandwidthSpec::Constant(800.0); 2])
                .seed(4)
                .build();
            let plan = ImpairmentPlan::builder(5).uniform_loss(loss).build().unwrap();
            let config = NetConfig::from_sim(sim).with_impairments(plan);
            NetRuntime::new(config).run(300)
        };
        let clean = build(0.0);
        let lossy = build(0.3);
        let w_clean = clean.metrics.welfare.tail_mean(100);
        let w_lossy = lossy.metrics.welfare.tail_mean(100);
        assert!(
            w_lossy < w_clean * 0.85,
            "loss had no effect: clean {w_clean}, lossy {w_lossy}"
        );
    }

    #[test]
    fn from_sim_inherits_the_sim_impairment_plan() {
        let plan = ImpairmentPlan::builder(3).uniform_loss(1.0).build().unwrap();
        let sim = rths_sim::SimConfig::builder(4, vec![BandwidthSpec::Constant(800.0); 2])
            .seed(2)
            .impairment(plan)
            .build();
        let out = NetRuntime::new(NetConfig::from_sim(sim)).run(5);
        // The inherited full-loss plan starves every epoch.
        for &w in out.metrics.welfare.values() {
            assert_eq!(w, 0.0);
        }
    }

    #[test]
    fn helper_failure_message_takes_effect() {
        let sim = rths_sim::SimConfig::builder(6, vec![BandwidthSpec::Constant(800.0); 2])
            .seed(6)
            .build();
        let mut rt = NetRuntime::new(NetConfig::from_sim(sim));
        for _ in 0..50 {
            rt.step_epoch();
        }
        rt.set_helper_online(0, false);
        let out = rt.run(300);
        // Welfare in the tail can come only from helper 1.
        let tail = out.metrics.welfare.tail_mean(50);
        assert!(tail <= 800.0 + 1e-9, "tail welfare {tail}");
    }

    #[test]
    fn message_overhead_is_constant_per_peer() {
        // Per epoch and peer: 1 Tick + 1 Request + 1 Selected + 1
        // Observed control messages (+ per-helper Tick/Settle/Report
        // amortised), and exactly 1 data (Rate) message. The paper's
        // low-overhead claim, quantified.
        let sim = Scenario::paper_small().seed(12).build();
        let out = NetRuntime::new(NetConfig::from_sim(sim)).run(100);
        assert_eq!(out.messages.data, 10 * 100);
        // Per peer: Tick + Request + Selected + Observed (4); per
        // helper: Tick + Settle + HelperReport (3).
        let expected_control = (10 * 4 + 4 * 3) * 100;
        assert_eq!(out.messages.control, expected_control as u64);
        let per_peer = out.messages.per_peer_per_epoch(10, 100);
        assert!(per_peer < 7.0, "overhead {per_peer} messages/peer/epoch");
    }

    #[test]
    fn backend_dispatcher_routes_both_ways() {
        let sim = Scenario::paper_small().seed(21).build();
        let threaded = run(NetConfig::from_sim(sim.clone()), 40);
        let reactor = run(NetConfig::from_sim(sim).with_backend(Backend::Reactor), 40);
        assert_eq!(threaded.epochs, reactor.epochs);
        assert_eq!(
            threaded.metrics.welfare.values(),
            reactor.metrics.welfare.values(),
            "backends diverged"
        );
        assert_eq!(threaded.messages, reactor.messages, "message accounting diverged");
    }

    #[test]
    #[should_panic(expected = "churn-free")]
    fn churny_config_rejected() {
        let sim = Scenario::churn().seed(1).build();
        let _ = NetConfig::from_sim(sim);
    }
}
