//! The multi-process reactor backend: one swarm sharded across OS
//! processes, bit-equivalent to the single-process run.
//!
//! # Topology
//!
//! The parent process is both the **controller** and **rank 0**: it owns
//! the first contiguous range of mailbox shards (which always contains
//! the coordinator and tracker — actors 0 and 1), spawns `N - 1` worker
//! processes, and drives every partition in lockstep through
//! [`rths_reactor::bridge`]. Workers connect back over a Unix-domain
//! socket, announce their rank (`Hello`), receive the full run
//! configuration (`Config`), rebuild *their* partition of the mesh —
//! every rank replays the same master-RNG helper instantiation so RNG
//! streams stay global — and then follow the step protocol:
//!
//! ```text
//! parent                         worker (per round)
//!   Drain {routed fired timers} →
//!                                ← DrainDone {remote-destined batches}
//!   Merge {batches for you}     →
//!                                ← Fence {pending, next deadline}
//! ```
//!
//! The serialized batch unit is the reactor's existing per-shard send
//! buffer ([`rths_reactor::RemoteBatch`]), tagged with its **global**
//! sender shard; the receiving partition merges remote batches
//! interleaved with local ones in ascending global sender-shard order —
//! exactly the order a single reactor would have used, which is the
//! whole determinism argument. The epoch barrier needs no new machinery:
//! the coordinator's `NextEpoch` timer rides rank 0's wheel, and the
//! fence each worker sends after its merge doubles as the
//! `Settle`-style barrier frame (one per remote process per round).
//!
//! Frames are encoded by [`crate::wire`]; floats travel as
//! `f64::to_bits`, so the N-process trajectory is `to_bits`-identical to
//! the 1-process one (pinned by `tests/sim_net_equivalence.rs` at 2 and
//! 4 processes).
//!
//! # Launch plumbing
//!
//! Workers are the tiny `rths_mp_worker` binary, located next to the
//! current executable (or overridden via `RTHS_MP_WORKER`). The socket
//! path and rank are passed through `Command::env` — per-child
//! environment, never a mutation of the parent's (the `rths_lint`
//! env-mutation rule holds; tests that need to override the lookup use
//! the sanctioned `rths_par::env` guard).

use std::io::{BufReader, BufWriter};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::atomic::{AtomicU64, Ordering};

use rths_obs as obs;
use rths_reactor::bridge::{
    drive, follow, ControllerLink, FollowerLink, Reply, ShardMap, Step,
};
use rths_reactor::{ActorId, Reactor, SHARD_SPAN};

use crate::reactor_backend::{harvest_partition, mesh_total, populate_mesh, NetMsg};
use crate::runtime::{NetConfig, NetOutcome};
use crate::wire::{read_frame, write_frame, Frame, WorkerConfig, WorkerSummary};

/// Environment variable carrying the controller's socket path to a
/// worker (set per-child via `Command::env`).
pub const SOCKET_ENV: &str = "RTHS_MP_SOCKET";
/// Environment variable carrying a worker's rank.
pub const RANK_ENV: &str = "RTHS_MP_RANK";
/// Optional override for the worker executable path.
pub const WORKER_ENV: &str = "RTHS_MP_WORKER";

/// Distinguishes concurrently-running controllers' sockets without
/// consulting the wall clock (pid + process-local sequence number).
static SOCKET_SEQ: AtomicU64 = AtomicU64::new(0);

fn socket_path() -> PathBuf {
    let seq = SOCKET_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("rths-mp-{}-{seq}.sock", std::process::id()))
}

fn worker_exe() -> PathBuf {
    if let Ok(path) = std::env::var(WORKER_ENV) {
        return PathBuf::from(path);
    }
    let mut exe = std::env::current_exe().expect("current executable path");
    exe.pop();
    // Test and example binaries live one level down in
    // target/<profile>/{deps,examples}; the worker sits at the profile root.
    if exe.ends_with("deps") || exe.ends_with("examples") {
        exe.pop();
    }
    exe.join("rths_mp_worker")
}

/// This process's peak resident set (`VmHWM`, kB; 0 when unreadable —
/// e.g. on non-Linux hosts).
pub fn peak_rss_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
        }
    }
    0
}

/// A framed Unix-socket connection implementing both bridge link roles.
/// Transport failures panic: a vanished peer process is unrecoverable
/// mid-lockstep, and the bridge traits document panicking links.
struct FrameLink {
    reader: BufReader<UnixStream>,
    writer: BufWriter<UnixStream>,
}

impl FrameLink {
    fn new(stream: UnixStream) -> std::io::Result<Self> {
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { reader, writer: BufWriter::new(stream) })
    }

    fn send(&mut self, frame: &Frame) {
        write_frame(&mut self.writer, frame).expect("peer process reachable");
    }

    fn recv(&mut self) -> Frame {
        read_frame(&mut self.reader).expect("peer process reachable")
    }
}

impl ControllerLink<NetMsg> for FrameLink {
    fn send_step(&mut self, step: Step<NetMsg>) {
        self.send(&Frame::Step(step));
    }

    fn recv_reply(&mut self) -> Reply<NetMsg> {
        match self.recv() {
            Frame::Reply(reply) => reply,
            other => panic!("expected a reply frame, got {other:?}"),
        }
    }
}

impl FollowerLink<NetMsg> for FrameLink {
    fn recv_step(&mut self) -> Step<NetMsg> {
        match self.recv() {
            Frame::Step(step) => step,
            other => panic!("expected a step frame, got {other:?}"),
        }
    }

    fn send_reply(&mut self, reply: Reply<NetMsg>) {
        self.send(&Frame::Reply(reply));
    }
}

/// Outcome of a multi-process run plus per-process memory accounting.
#[derive(Debug, Clone)]
pub struct MultiprocReport {
    /// The merged outcome — bit-identical to the other backends'.
    pub outcome: NetOutcome,
    /// Peak RSS (`VmHWM`, kB) per rank; index 0 is the parent process.
    pub rss_kb: Vec<u64>,
}

impl MultiprocReport {
    /// Summed peak RSS over all ranks (the headline memory figure).
    pub fn total_rss_kb(&self) -> u64 {
        self.rss_kb.iter().sum()
    }

    /// Largest single-process peak RSS.
    pub fn max_rss_kb(&self) -> u64 {
        self.rss_kb.iter().copied().max().unwrap_or(0)
    }
}

/// Runs `epochs` epochs with the mesh sharded across `processes` OS
/// processes at the default [`SHARD_SPAN`] mailbox span. See
/// [`run_multiproc_with_span`].
pub fn run_multiproc(config: NetConfig, epochs: u64, processes: usize) -> MultiprocReport {
    run_multiproc_with_span(config, epochs, processes, SHARD_SPAN)
}

/// Runs `epochs` epochs with the mesh sharded across `processes`
/// partitions of `span`-actor mailbox shards. `processes == 1` runs the
/// same partitioned code path with no children (and no sockets), and is
/// `to_bits`-identical to [`crate::ReactorRuntime`]; so is every higher
/// process count, since delivery order is reconstructed globally.
///
/// Small meshes need a small `span` to actually cross process
/// boundaries (a 16-actor mesh is a single default-span shard);
/// benchmarks use the default span.
///
/// # Panics
///
/// Panics if `processes` is zero, the worker executable cannot be
/// spawned, or a worker dies mid-run.
pub fn run_multiproc_with_span(
    config: NetConfig,
    epochs: u64,
    processes: usize,
    span: usize,
) -> MultiprocReport {
    assert!(processes >= 1, "need at least one process");
    let _trace_guard = config.trace.then(|| obs::scoped_enable(true));
    if obs::enabled() {
        obs::begin_run("net_multiproc");
    }

    let total = mesh_total(&config);
    let map = ShardMap::contiguous(total, span, processes);

    // Launch workers first so they build their partitions while the
    // parent builds its own.
    let mut children: Vec<Child> = Vec::new();
    let mut links: Vec<Option<FrameLink>> = (1..processes).map(|_| None).collect();
    let path = socket_path();
    if processes > 1 {
        let listener = UnixListener::bind(&path)
            .unwrap_or_else(|e| panic!("bind {}: {e}", path.display()));
        let exe = worker_exe();
        for rank in 1..processes {
            children.push(
                Command::new(&exe)
                    .env(SOCKET_ENV, &path)
                    .env(RANK_ENV, rank.to_string())
                    .spawn()
                    .unwrap_or_else(|e| {
                        panic!("spawn {} (are workspace bins built?): {e}", exe.display())
                    }),
            );
        }
        let wc = WorkerConfig { config: config.clone(), span, processes };
        for _ in 1..processes {
            let (stream, _) = listener.accept().expect("worker connection");
            let mut link = FrameLink::new(stream).expect("socket handle clone");
            match link.recv() {
                Frame::Hello { rank } => {
                    assert!(
                        (1..processes).contains(&rank),
                        "worker announced bogus rank {rank}"
                    );
                    let slot = &mut links[rank - 1];
                    assert!(slot.is_none(), "rank {rank} connected twice");
                    link.send(&Frame::Config(Box::new(wc.clone())));
                    *slot = Some(link);
                }
                other => panic!("expected Hello, got {other:?}"),
            }
        }
    }
    let mut links: Vec<FrameLink> = links
        .into_iter()
        .enumerate()
        .map(|(i, l)| l.unwrap_or_else(|| panic!("rank {} never connected", i + 1)))
        .collect();

    // Rank 0's partition (always contains the coordinator, actor 0).
    let mut local = Reactor::partitioned(span, map.start(0), total);
    populate_mesh(&mut local, &config, span, map.start(0), map.len(0));
    local.inject(ActorId(0), NetMsg::Run { epochs });
    drive(&mut local, &mut links, &map);

    // Collection: local harvest plus one Summary frame per worker.
    let mut harvest = harvest_partition(local);
    let coord = harvest.coordinator.take().expect("rank 0 owns the coordinator");
    let mut messages = harvest.messages;
    let mut peers = harvest.peers;
    let mut rss_kb = vec![peak_rss_kb()];
    for link in &mut links {
        match link.recv() {
            Frame::Summary(summary) => {
                messages.control += summary.control;
                messages.data += summary.data;
                rss_kb.push(summary.rss_kb);
                // Ranks own ascending actor ranges, so rank-major
                // concatenation is ascending peer-id order.
                peers.extend(summary.peers);
            }
            other => panic!("expected Summary, got {other:?}"),
        }
    }
    drop(links);
    for child in &mut children {
        let status = child.wait().expect("waiting on worker");
        assert!(status.success(), "worker exited with {status}");
    }
    if processes > 1 {
        let _ = std::fs::remove_file(&path);
    }

    let epochs_done = coord.epochs_done();
    let (metrics, peer_mean_rates, peer_continuity) = coord.finalize_summaries(peers);
    MultiprocReport {
        outcome: NetOutcome {
            epochs: epochs_done,
            metrics,
            peer_mean_rates,
            peer_continuity,
            messages,
        },
        rss_kb,
    }
}

/// Entry point of the `rths_mp_worker` binary: connect back to the
/// controller, rebuild this rank's partition, follow the lockstep
/// protocol, report, exit.
///
/// # Panics
///
/// Panics if the `RTHS_MP_SOCKET`/`RTHS_MP_RANK` environment is missing
/// (the binary is not meant to be run by hand) or the controller
/// vanishes mid-run.
pub fn worker_main() {
    let path = std::env::var(SOCKET_ENV)
        .expect("RTHS_MP_SOCKET not set — rths_mp_worker is launched by run_multiproc");
    let rank: usize = std::env::var(RANK_ENV)
        .expect("RTHS_MP_RANK not set")
        .parse()
        .expect("RTHS_MP_RANK must be a process rank");
    assert!(rank >= 1, "rank 0 is the controller itself");
    let stream = UnixStream::connect(&path).unwrap_or_else(|e| panic!("connect {path}: {e}"));
    let mut link = FrameLink::new(stream).expect("socket handle clone");
    link.send(&Frame::Hello { rank });
    let wc = match link.recv() {
        Frame::Config(wc) => *wc,
        other => panic!("expected Config, got {other:?}"),
    };

    let total = mesh_total(&wc.config);
    let map = ShardMap::contiguous(total, wc.span, wc.processes);
    let mut reactor = Reactor::partitioned(wc.span, map.start(rank), total);
    populate_mesh(&mut reactor, &wc.config, wc.span, map.start(rank), map.len(rank));
    follow(&mut reactor, &mut link);

    let harvest = harvest_partition(reactor);
    assert!(harvest.coordinator.is_none(), "only rank 0 hosts the coordinator");
    link.send(&Frame::Summary(WorkerSummary {
        control: harvest.messages.control,
        data: harvest.messages.data,
        rss_kb: peak_rss_kb(),
        peers: harvest.peers,
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Backend;
    use crate::ReactorRuntime;
    use rths_sim::Scenario;

    fn bits(values: &[f64]) -> Vec<u64> {
        values.iter().map(|v| v.to_bits()).collect()
    }

    fn assert_outcomes_identical(a: &NetOutcome, b: &NetOutcome) {
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(bits(a.metrics.welfare.values()), bits(b.metrics.welfare.values()));
        assert_eq!(bits(&a.peer_mean_rates), bits(&b.peer_mean_rates));
        assert_eq!(bits(&a.peer_continuity), bits(&b.peer_continuity));
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn one_process_is_the_reactor_backend_exactly() {
        let sim = Scenario::paper_small().seed(31).build();
        let single = ReactorRuntime::new(NetConfig::from_sim(sim.clone())).run(40);
        let multi = run_multiproc(NetConfig::from_sim(sim), 40, 1);
        assert_outcomes_identical(&multi.outcome, &single);
        assert_eq!(multi.rss_kb.len(), 1);
    }

    #[test]
    fn two_processes_match_the_single_process_run() {
        let sim = Scenario::paper_small().seed(32).build();
        let single = ReactorRuntime::new(NetConfig::from_sim(sim.clone())).run(40);
        // paper_small is 16 actors: span 4 puts peers on both ranks.
        let multi = run_multiproc_with_span(NetConfig::from_sim(sim), 40, 2, 4);
        assert_outcomes_identical(&multi.outcome, &single);
        assert_eq!(multi.rss_kb.len(), 2);
        assert!(multi.rss_kb.iter().all(|&kb| kb > 0), "rss {:?}", multi.rss_kb);
        assert!(multi.total_rss_kb() >= multi.max_rss_kb());
    }

    #[test]
    fn impaired_runs_cross_process_boundaries_identically() {
        let plan =
            crate::ImpairmentPlan::builder(11).uniform_loss(0.2).jitter_us(5).build().unwrap();
        let sim = Scenario::paper_small().seed(33).build();
        let single = ReactorRuntime::new(
            NetConfig::from_sim(sim.clone()).with_impairments(plan.clone()),
        )
        .run(30);
        let multi =
            run_multiproc_with_span(NetConfig::from_sim(sim).with_impairments(plan), 30, 3, 4);
        assert_outcomes_identical(&multi.outcome, &single);
    }

    #[test]
    fn backend_enum_dispatches_to_multiproc() {
        let sim = Scenario::paper_small().seed(34).build();
        let reactor =
            crate::run(NetConfig::from_sim(sim.clone()).with_backend(Backend::Reactor), 20);
        let multi = crate::run(
            NetConfig::from_sim(sim).with_backend(Backend::Multiproc { processes: 2 }),
            20,
        );
        // Default span keeps this 16-actor mesh on rank 0; the point
        // here is the dispatch path, the bit-equality is pinned above
        // and in the workspace equivalence test.
        assert_outcomes_identical(&multi, &reactor);
    }
}
