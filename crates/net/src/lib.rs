//! Decentralized message-passing runtime for RTHS.
//!
//! The simulator in `rths-sim` runs the whole system in one loop; this
//! crate demonstrates the paper's *deployment claim* — "the dynamic helper
//! selection strategies of each peer rely completely on the peer's local
//! information, and therefore can be implemented in a fully distributed
//! fashion" (§IV) — by running every **peer** and every **helper** as its
//! own OS thread, communicating *only* through message channels:
//!
//! * peers learn which helpers exist from a [`tracker`] (the only
//!   bootstrap service real systems have);
//! * each epoch, a peer samples its RTHS strategy, sends a `Request` to
//!   exactly one helper and receives back a `Rate` — its only feedback;
//! * helpers split their (locally stepped) stochastic capacity over the
//!   requests they happen to receive;
//! * a coordinator drives the epoch barrier and records metrics — it
//!   *observes* but never *instructs*: no assignment decision flows
//!   downward.
//!
//! Because the epoch protocol is a barrier and every actor owns a
//! deterministic RNG stream, a fault-free run reproduces `rths_sim::System`
//! **bit-for-bit** (asserted by integration tests), while the [`fault`]
//! module can additionally drop data-plane deliveries and inject thread
//! timing jitter to exercise the asynchronous paths.
//!
//! # Example
//!
//! ```
//! use rths_net::{NetConfig, NetRuntime};
//! use rths_sim::Scenario;
//!
//! let sim = Scenario::paper_small().seed(11).build();
//! let outcome = NetRuntime::new(NetConfig::from_sim(sim)).run(50);
//! assert_eq!(outcome.epochs, 50);
//! ```

pub mod fault;
pub mod message;
pub mod runtime;
pub mod tracker;

pub use fault::FaultPlan;
pub use message::{CoordMsg, HelperMsg, PeerMsg};
pub use runtime::{NetConfig, NetOutcome, NetRuntime};
pub use tracker::Tracker;
