//! Decentralized message-passing runtimes for RTHS.
//!
//! The simulator in `rths-sim` runs the whole system in one loop; this
//! crate demonstrates the paper's *deployment claim* — "the dynamic helper
//! selection strategies of each peer rely completely on the peer's local
//! information, and therefore can be implemented in a fully distributed
//! fashion" (§IV) — by running every **peer** and every **helper** as its
//! own actor, communicating *only* through messages:
//!
//! * peers learn which helpers exist from a [`tracker`] (the only
//!   bootstrap service real systems have);
//! * each epoch, a peer samples its RTHS strategy, sends a `Request` to
//!   exactly one helper and receives back a `Rate` — its only feedback;
//! * helpers split their (locally stepped) stochastic capacity over the
//!   requests they happen to receive;
//! * a coordinator drives the epoch barrier and records metrics — it
//!   *observes* but never *instructs*: no assignment decision flows
//!   downward.
//!
//! The protocol state machines live in [`machines`]; two interchangeable
//! [`Backend`]s host them:
//!
//! * [`Backend::Threaded`] ([`runtime::NetRuntime`]) — one OS thread per
//!   actor over real channels: the deployment-shaped proof, practical to
//!   a few hundred actors;
//! * [`Backend::Reactor`] ([`reactor_backend::ReactorRuntime`]) — every
//!   actor as a poll-driven state machine on an `rths_reactor` event
//!   loop: thousands of actors per thread, impairment jitter mapped to
//!   timer-wheel delays.
//!
//! Because the epoch protocol is a barrier and every actor owns a
//! deterministic RNG stream, a fault-free run reproduces
//! `rths_sim::System` **bit-for-bit on both backends** (asserted by the
//! `sim_net_equivalence` integration test at several `RTHS_THREADS`
//! settings). Link impairments come from `rths_sim`'s shared
//! `ImpairmentPlan` (Gilbert-Elliott bursty loss, token-bucket policing,
//! Markov link bandwidth/latency, timing jitter), attached via
//! [`NetConfig::with_impairments`] or inherited from the sim config;
//! every impairment decision is a pure function of `(plan seed, link,
//! epoch)`, so impaired runs stay bit-identical across backends too.
//!
//! A third backend, [`Backend::Multiproc`] ([`multiproc`]), shards the
//! reactor mesh across OS processes: the [`wire`] codec serializes the
//! reactor's per-shard send buffers into length-prefixed frames, and a
//! star of Unix-domain sockets replays the in-process bridge protocol
//! verbatim — so an N-process run is `f64::to_bits`-identical to the
//! single-process reactor (and therefore to the sim).
//!
//! # Example
//!
//! ```
//! use rths_net::{Backend, NetConfig};
//! use rths_sim::Scenario;
//!
//! let sim = Scenario::paper_small().seed(11).build();
//! let threaded = rths_net::run(NetConfig::from_sim(sim.clone()), 50);
//! let reactor =
//!     rths_net::run(NetConfig::from_sim(sim).with_backend(Backend::Reactor), 50);
//! assert_eq!(threaded.epochs, 50);
//! assert_eq!(
//!     threaded.metrics.welfare.values(),
//!     reactor.metrics.welfare.values(),
//! );
//! ```

#![forbid(unsafe_code)]

pub mod fault;
pub mod machines;
pub mod message;
pub mod multiproc;
pub mod reactor_backend;
pub mod runtime;
pub mod tracker;
pub mod wire;

pub use fault::FaultPlan;
pub use message::{CoordMsg, HelperMsg, PeerMsg};
pub use multiproc::{run_multiproc, run_multiproc_with_span, MultiprocReport};
// Re-exported so `with_impairments` callers don't need an `rths_sim`
// dependency just for the plan type.
pub use reactor_backend::{NetActor, NetMsg, ReactorRuntime};
pub use rths_sim::ImpairmentPlan;
pub use runtime::{run, Backend, MessageTotals, NetConfig, NetOutcome, NetRuntime};
pub use tracker::Tracker;
