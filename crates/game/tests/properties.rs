//! Property-based tests for the game substrate.

use proptest::prelude::*;
use rths_game::best_response;
use rths_game::equilibrium::{ce_residual, ce_residual_congestion, max_welfare_ce};
use rths_game::normal_form::for_each_profile;
use rths_game::{Game, HelperSelectionGame, JointDistribution, TableGame};

fn capacities() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(100.0..1000.0f64, 2..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sequential_best_response_always_converges_to_nash(
        caps in capacities(),
        n_peers in 1usize..16,
        start_seed in any::<u64>(),
    ) {
        let game = HelperSelectionGame::new(caps);
        let h = game.num_helpers();
        let initial: Vec<usize> =
            (0..n_peers).map(|i| ((start_seed as usize).wrapping_add(i * 7)) % h).collect();
        let trace = best_response::sequential(&game, &initial, 1000);
        prop_assert!(trace.converged, "sequential BR did not converge");
        prop_assert!(game.is_pure_nash(trace.last(), 1e-9));
    }

    #[test]
    fn potential_monotone_under_sequential_br(
        caps in capacities(),
        n_peers in 1usize..12,
    ) {
        let game = HelperSelectionGame::new(caps);
        let initial = vec![0usize; n_peers];
        let trace = best_response::sequential(&game, &initial, 1000);
        let mut phi = f64::NEG_INFINITY;
        for p in &trace.profiles {
            let now = game.potential(&game.loads(p));
            prop_assert!(now >= phi - 1e-9);
            phi = now;
        }
    }

    #[test]
    fn greedy_nash_loads_sum_and_are_nash(
        caps in capacities(),
        n_peers in 0usize..30,
    ) {
        let game = HelperSelectionGame::new(caps);
        let loads = rths_game::equilibrium::nash_loads(&game, n_peers);
        prop_assert_eq!(loads.iter().sum::<usize>(), n_peers);
        let mut profile = Vec::new();
        for (j, &l) in loads.iter().enumerate() {
            profile.extend(std::iter::repeat_n(j, l));
        }
        prop_assert!(game.is_pure_nash(&profile, 1e-9));
    }

    #[test]
    fn max_welfare_ce_dominates_every_pure_nash(
        caps in prop::collection::vec(100.0..1000.0f64, 2..3),
        n_peers in 1usize..4,
    ) {
        let game = HelperSelectionGame::new(caps).with_peers(n_peers);
        let ce = max_welfare_ce(&game).unwrap();
        for ne in rths_game::equilibrium::enumerate_pure_nash(&game, 1e-9) {
            prop_assert!(ce.welfare() >= game.social_welfare(&ne) - 1e-6);
        }
    }

    #[test]
    fn ce_solution_passes_its_own_verification(
        caps in prop::collection::vec(100.0..1000.0f64, 2..3),
        n_peers in 1usize..4,
    ) {
        let game = HelperSelectionGame::new(caps).with_peers(n_peers);
        let ce = max_welfare_ce(&game).unwrap();
        let mut dist = JointDistribution::new();
        for (profile, p) in ce.support() {
            let copies = (p * 100_000.0).round() as u64;
            for _ in 0..copies.max(1) {
                dist.record(profile);
            }
        }
        let report = ce_residual(&game, &dist);
        // Quantisation of probabilities introduces small error.
        prop_assert!(report.max_residual < 1.0, "residual {}", report.max_residual);
    }

    #[test]
    fn fast_and_generic_residuals_agree(
        caps in capacities(),
        n_peers in 1usize..6,
        seeds in prop::collection::vec(any::<u64>(), 1..20),
    ) {
        let game = HelperSelectionGame::new(caps).with_peers(n_peers);
        let h = game.num_helpers();
        let mut dist = JointDistribution::new();
        for s in seeds {
            let profile: Vec<usize> =
                (0..n_peers).map(|i| ((s >> (i * 3)) as usize) % h).collect();
            dist.record(&profile);
        }
        let generic = ce_residual(&game, &dist);
        let fast = ce_residual_congestion(&game, &dist);
        prop_assert!((generic.max_residual - fast.max_residual).abs() < 1e-6);
        prop_assert!((generic.mean_utility - fast.mean_utility).abs() < 1e-6);
    }

    #[test]
    fn social_welfare_equals_busy_capacity_sum(
        caps in capacities(),
        n_peers in 1usize..10,
        seed in any::<u64>(),
    ) {
        let game = HelperSelectionGame::new(caps.clone()).with_peers(n_peers);
        let h = game.num_helpers();
        let profile: Vec<usize> =
            (0..n_peers).map(|i| ((seed >> (i * 4)) as usize) % h).collect();
        let loads = game.loads(&profile);
        let expected: f64 = loads
            .iter()
            .zip(&caps)
            .map(|(&n, &c)| if n > 0 { c } else { 0.0 })
            .sum();
        prop_assert!((game.social_welfare(&profile) - expected).abs() < 1e-9);
    }

    #[test]
    fn table_game_round_trips_profiles(counts in prop::collection::vec(1usize..4, 1..4)) {
        let counts_clone = counts.clone();
        let g = TableGame::from_fn(counts, move |p, prof| {
            // Distinct value per (player, profile) pair.
            prof.iter().enumerate().map(|(i, &a)| (a + 1) * (i + 2)).sum::<usize>() as f64
                + p as f64 * 1000.0
        });
        let mut checked = 0usize;
        for_each_profile(&g, |prof| {
            for p in 0..g.num_players() {
                let expected = prof.iter().enumerate().map(|(i, &a)| (a + 1) * (i + 2)).sum::<usize>() as f64
                    + p as f64 * 1000.0;
                assert!((g.utility(p, prof) - expected).abs() < 1e-12);
            }
            checked += 1;
        });
        prop_assert_eq!(Some(checked), g.num_profiles());
        let _ = counts_clone;
    }
}
