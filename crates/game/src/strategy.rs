//! Mixed strategies and joint (correlated) distributions.

use std::collections::BTreeMap;

use rand::Rng;

/// A probability distribution over one player's actions
/// (the paper's `x_i ∈ χ_i := Δ(A_i)`).
///
/// # Example
///
/// ```
/// use rths_game::MixedStrategy;
///
/// let s = MixedStrategy::uniform(4);
/// assert_eq!(s.probs(), &[0.25; 4]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MixedStrategy {
    probs: Vec<f64>,
}

impl MixedStrategy {
    /// Creates a strategy from raw probabilities, validating they form a
    /// distribution.
    ///
    /// # Panics
    ///
    /// Panics if `probs` is not a probability distribution (tolerance
    /// `1e-9`).
    pub fn new(probs: Vec<f64>) -> Self {
        assert!(
            rths_math::vector::is_distribution(&probs, 1e-9),
            "probabilities must form a distribution: {probs:?}"
        );
        Self { probs }
    }

    /// The uniform strategy over `n` actions.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "need at least one action");
        Self { probs: vec![1.0 / n as f64; n] }
    }

    /// A pure (deterministic) strategy playing `action`.
    ///
    /// # Panics
    ///
    /// Panics if `action >= n` or `n == 0`.
    pub fn pure(n: usize, action: usize) -> Self {
        assert!(action < n, "action out of range");
        let mut probs = vec![0.0; n];
        probs[action] = 1.0;
        Self { probs }
    }

    /// The probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Always `false` (constructors reject empty strategies).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability of `action`.
    ///
    /// # Panics
    ///
    /// Panics if `action` is out of range.
    pub fn prob(&self, action: usize) -> f64 {
        self.probs[action]
    }

    /// Samples an action.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (a, &p) in self.probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return a;
            }
        }
        self.probs.len() - 1
    }

    /// Entropy in nats — 0 for pure strategies, `ln n` for uniform.
    pub fn entropy(&self) -> f64 {
        -self.probs.iter().filter(|&&p| p > 0.0).map(|&p| p * p.ln()).sum::<f64>()
    }

    /// Total variation distance to another strategy of the same size.
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    pub fn tv_distance(&self, other: &Self) -> f64 {
        assert_eq!(self.len(), other.len(), "strategy sizes differ");
        0.5 * self.probs.iter().zip(&other.probs).map(|(a, b)| (a - b).abs()).sum::<f64>()
    }
}

/// An empirical distribution over *joint* action profiles — the object
/// that converges to a correlated equilibrium under regret-based learning
/// (Hart & Mas-Colell's theorem, the paper's convergence target).
///
/// Stored sparsely: only observed profiles are kept, which is what makes
/// CE verification tractable for hundreds of players.
///
/// The support is a `BTreeMap` so [`iter`](Self::iter) and
/// [`marginal`](Self::marginal) walk profiles in lexicographic order —
/// any float reduction folded over the support is therefore independent
/// of the insertion history (a `HashMap` here fed hash-order, i.e.
/// nondeterminism, into downstream sums; the workspace determinism lint
/// now bans hash collections from state-feeding crates outright).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JointDistribution {
    counts: BTreeMap<Vec<usize>, u64>,
    total: u64,
}

impl JointDistribution {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `profile`.
    pub fn record(&mut self, profile: &[usize]) {
        *self.counts.entry(profile.to_vec()).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct profiles observed.
    pub fn support_size(&self) -> usize {
        self.counts.len()
    }

    /// Empirical probability of `profile`.
    pub fn prob(&self, profile: &[usize]) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.counts.get(profile).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Iterates over `(profile, probability)` pairs of the support.
    pub fn iter(&self) -> impl Iterator<Item = (&[usize], f64)> + '_ {
        let total = self.total.max(1) as f64;
        self.counts.iter().map(move |(p, &c)| (p.as_slice(), c as f64 / total))
    }

    /// Marginal distribution of `player`'s action, given that player has
    /// `num_actions` actions.
    ///
    /// # Panics
    ///
    /// Panics if a recorded profile is too short or has an out-of-range
    /// action for `player`.
    pub fn marginal(&self, player: usize, num_actions: usize) -> MixedStrategy {
        let mut probs = vec![0.0; num_actions];
        if self.total == 0 {
            return MixedStrategy::uniform(num_actions.max(1));
        }
        for (profile, &count) in &self.counts {
            probs[profile[player]] += count as f64;
        }
        rths_math::vector::normalize(&mut probs);
        MixedStrategy::new(probs)
    }
}

impl FromIterator<Vec<usize>> for JointDistribution {
    fn from_iter<I: IntoIterator<Item = Vec<usize>>>(iter: I) -> Self {
        let mut d = Self::new();
        for p in iter {
            d.record(&p);
        }
        d
    }
}

impl Extend<Vec<usize>> for JointDistribution {
    fn extend<I: IntoIterator<Item = Vec<usize>>>(&mut self, iter: I) {
        for p in iter {
            self.record(&p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_strategy_properties() {
        let s = MixedStrategy::uniform(5);
        assert_eq!(s.len(), 5);
        assert!((s.entropy() - (5.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn pure_strategy_has_zero_entropy() {
        let s = MixedStrategy::pure(3, 1);
        assert_eq!(s.prob(1), 1.0);
        assert_eq!(s.entropy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "distribution")]
    fn invalid_probs_rejected() {
        let _ = MixedStrategy::new(vec![0.5, 0.6]);
    }

    #[test]
    fn sampling_respects_probabilities() {
        let s = MixedStrategy::new(vec![0.8, 0.2]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = 100_000;
        let zeros = (0..n).filter(|_| s.sample(&mut rng) == 0).count();
        let freq = zeros as f64 / n as f64;
        assert!((freq - 0.8).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn tv_distance_properties() {
        let a = MixedStrategy::pure(2, 0);
        let b = MixedStrategy::pure(2, 1);
        assert_eq!(a.tv_distance(&b), 1.0);
        assert_eq!(a.tv_distance(&a), 0.0);
        let u = MixedStrategy::uniform(2);
        assert!((a.tv_distance(&u) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn joint_distribution_counts() {
        let mut d = JointDistribution::new();
        d.record(&[0, 1]);
        d.record(&[0, 1]);
        d.record(&[1, 0]);
        assert_eq!(d.total(), 3);
        assert_eq!(d.support_size(), 2);
        assert!((d.prob(&[0, 1]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.prob(&[1, 1]), 0.0);
    }

    #[test]
    fn marginal_extraction() {
        let d: JointDistribution =
            vec![vec![0, 1], vec![0, 0], vec![1, 1], vec![0, 1]].into_iter().collect();
        let m0 = d.marginal(0, 2);
        assert!((m0.prob(0) - 0.75).abs() < 1e-12);
        let m1 = d.marginal(1, 2);
        assert!((m1.prob(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution_is_safe() {
        let d = JointDistribution::new();
        assert_eq!(d.total(), 0);
        assert_eq!(d.prob(&[0]), 0.0);
        let m = d.marginal(0, 3);
        assert_eq!(m.probs(), &[1.0 / 3.0; 3]);
    }

    #[test]
    fn support_iterates_in_lexicographic_profile_order() {
        // Two distributions built from opposite insertion orders must
        // expose the identical (sorted) support sequence: iteration
        // order is a function of the *profiles*, never of history.
        let profiles = [vec![2, 0], vec![0, 1], vec![1, 1], vec![0, 0], vec![1, 0], vec![0, 1]];
        let forward: JointDistribution = profiles.iter().cloned().collect();
        let backward: JointDistribution = profiles.iter().rev().cloned().collect();
        let order: Vec<Vec<usize>> = forward.iter().map(|(p, _)| p.to_vec()).collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted, "support must iterate in lexicographic order");
        let backward_order: Vec<Vec<usize>> =
            backward.iter().map(|(p, _)| p.to_vec()).collect();
        assert_eq!(order, backward_order, "iteration order depended on insertion order");
        // And the probabilities ride along identically, bit for bit.
        let probs: Vec<u64> = forward.iter().map(|(_, p)| p.to_bits()).collect();
        let backward_probs: Vec<u64> = backward.iter().map(|(_, p)| p.to_bits()).collect();
        assert_eq!(probs, backward_probs);
    }

    #[test]
    fn extend_accumulates() {
        let mut d = JointDistribution::new();
        d.extend(vec![vec![0], vec![0], vec![1]]);
        assert_eq!(d.total(), 3);
        assert!((d.prob(&[0]) - 2.0 / 3.0).abs() < 1e-12);
    }
}
