//! The helper-selection game as a singleton congestion game.
//!
//! §III.A of the paper: each peer selects exactly one helper `h_j`; its
//! stage utility is the received streaming rate `u_i = C_{h_j} / n_{h_j}`,
//! the helper's capacity split evenly over its current load. Utilities
//! depend on a player's own choice only through the *load vector*, which
//! makes this a **singleton congestion game** (Milchtaich, the paper's
//! reference \[16\], cited to establish pure-Nash existence). Because all peers share
//! the same resource payoff `C_j / n`, the game admits the exact Rosenthal
//! potential `Φ(loads) = Σ_j Σ_{k=1}^{n_j} C_j / k`, and unilateral
//! best-response dynamics therefore terminate in a pure Nash equilibrium.

use crate::normal_form::Game;

/// The paper's helper-selection stage game.
///
/// Optionally caps per-peer utility at a streaming `demand` (peers cannot
/// consume more than the stream bitrate), which is the variant used by the
/// server-workload experiment (Fig. 5).
#[derive(Debug, Clone, PartialEq)]
pub struct HelperSelectionGame {
    capacities: Vec<f64>,
    num_peers: usize,
    demand_cap: Option<f64>,
}

impl HelperSelectionGame {
    /// Creates the game for a *variable* number of peers: the player count
    /// is fixed lazily by the profile length. Use
    /// [`with_peers`](Self::with_peers) when the [`Game`] trait (which
    /// requires a fixed player count) is needed.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty or contains negative/non-finite
    /// entries.
    pub fn new(capacities: Vec<f64>) -> Self {
        assert!(!capacities.is_empty(), "need at least one helper");
        assert!(
            capacities.iter().all(|&c| c.is_finite() && c >= 0.0),
            "capacities must be finite and non-negative"
        );
        Self { capacities, num_peers: 0, demand_cap: None }
    }

    /// Fixes the number of peers (players), enabling the [`Game`] trait.
    #[must_use]
    pub fn with_peers(mut self, num_peers: usize) -> Self {
        self.num_peers = num_peers;
        self
    }

    /// Caps each peer's utility at `demand` kbps
    /// (`u_i = min(demand, C_j / n_j)`).
    ///
    /// # Panics
    ///
    /// Panics if `demand` is negative or non-finite.
    #[must_use]
    pub fn with_demand_cap(mut self, demand: f64) -> Self {
        assert!(demand.is_finite() && demand >= 0.0, "demand must be finite and non-negative");
        self.demand_cap = Some(demand);
        self
    }

    /// Helper capacities.
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// Number of helpers.
    pub fn num_helpers(&self) -> usize {
        self.capacities.len()
    }

    /// The demand cap, if any.
    pub fn demand_cap(&self) -> Option<f64> {
        self.demand_cap
    }

    /// Load vector (peers per helper) induced by `profile`.
    ///
    /// # Panics
    ///
    /// Panics if an action is out of range.
    pub fn loads(&self, profile: &[usize]) -> Vec<usize> {
        let mut loads = vec![0usize; self.capacities.len()];
        for &a in profile {
            assert!(a < loads.len(), "helper index {a} out of range");
            loads[a] += 1;
        }
        loads
    }

    /// Per-peer rate when `load` peers share helper `helper`.
    ///
    /// Returns 0 when `load == 0` (no peer to receive anything).
    pub fn rate(&self, helper: usize, load: usize) -> f64 {
        if load == 0 {
            return 0.0;
        }
        let raw = self.capacities[helper] / load as f64;
        match self.demand_cap {
            Some(d) => raw.min(d),
            None => raw,
        }
    }

    /// Utility of a peer that would join helper `helper` given the loads of
    /// *other* peers (`other_loads[helper]` excludes the peer itself).
    pub fn rate_if_joining(&self, helper: usize, other_load: usize) -> f64 {
        self.rate(helper, other_load + 1)
    }

    /// Rosenthal potential `Φ = Σ_j Σ_{k=1}^{n_j} C_j/k` of a load vector.
    ///
    /// Any unilateral deviation changes a peer's utility by exactly the
    /// change in `Φ` (when no demand cap is set), so sequential
    /// best-response strictly increases `Φ` and must terminate.
    ///
    /// # Panics
    ///
    /// Panics if `loads.len()` differs from the helper count.
    pub fn potential(&self, loads: &[usize]) -> f64 {
        assert_eq!(loads.len(), self.capacities.len(), "load vector length mismatch");
        loads
            .iter()
            .zip(&self.capacities)
            .map(|(&n, &c)| (1..=n).map(|k| c / k as f64).sum::<f64>())
            .sum()
    }

    /// Checks whether `profile` is a pure Nash equilibrium: no peer can
    /// strictly improve by switching helpers (tolerance `tol`).
    #[allow(clippy::needless_range_loop)] // k is a helper id, not a position
    pub fn is_pure_nash(&self, profile: &[usize], tol: f64) -> bool {
        let loads = self.loads(profile);
        for &a in profile {
            let current = self.rate(a, loads[a]);
            for k in 0..self.capacities.len() {
                if k == a {
                    continue;
                }
                if self.rate(k, loads[k] + 1) > current + tol {
                    return false;
                }
            }
        }
        true
    }

    /// Social welfare of a load vector: each helper with `n_j > 0` peers
    /// delivers `n_j · rate(j, n_j)` total (equal to `C_j` uncapped, or
    /// `min(C_j, n_j·demand)` when capped).
    pub fn welfare_of_loads(&self, loads: &[usize]) -> f64 {
        loads.iter().enumerate().map(|(j, &n)| n as f64 * self.rate(j, n)).sum()
    }
}

impl Game for HelperSelectionGame {
    fn num_players(&self) -> usize {
        self.num_peers
    }

    fn num_actions(&self, _player: usize) -> usize {
        self.capacities.len()
    }

    fn utility(&self, player: usize, profile: &[usize]) -> f64 {
        assert!(player < profile.len(), "player index out of range");
        let loads = self.loads(profile);
        self.rate(profile[player], loads[profile[player]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_count_correctly() {
        let g = HelperSelectionGame::new(vec![800.0, 700.0]);
        assert_eq!(g.loads(&[0, 0, 1]), vec![2, 1]);
        assert_eq!(g.loads(&[]), vec![0, 0]);
    }

    #[test]
    fn utility_is_even_split() {
        let g = HelperSelectionGame::new(vec![800.0, 600.0]).with_peers(3);
        // peers 0,1 on helper 0; peer 2 on helper 1.
        let profile = [0, 0, 1];
        assert_eq!(g.utility(0, &profile), 400.0);
        assert_eq!(g.utility(1, &profile), 400.0);
        assert_eq!(g.utility(2, &profile), 600.0);
        assert_eq!(g.social_welfare(&profile), 1400.0);
    }

    #[test]
    fn demand_cap_limits_rate() {
        let g = HelperSelectionGame::new(vec![800.0]).with_demand_cap(300.0);
        assert_eq!(g.rate(0, 1), 300.0); // capped
        assert_eq!(g.rate(0, 4), 200.0); // below cap
        assert_eq!(g.rate(0, 0), 0.0);
    }

    #[test]
    fn potential_deviation_equals_utility_change() {
        // Core potential-game identity: Φ(after) - Φ(before) equals the
        // deviator's utility change.
        let g = HelperSelectionGame::new(vec![900.0, 700.0, 500.0]);
        let before = vec![0usize, 0, 1, 2, 0];
        // Peer 4 moves from helper 0 to helper 1.
        let mut after = before.clone();
        after[4] = 1;

        let u_before = {
            let loads = g.loads(&before);
            g.rate(0, loads[0])
        };
        let u_after = {
            let loads = g.loads(&after);
            g.rate(1, loads[1])
        };
        let phi_delta = g.potential(&g.loads(&after)) - g.potential(&g.loads(&before));
        assert!(
            (phi_delta - (u_after - u_before)).abs() < 1e-9,
            "potential identity violated: {phi_delta} vs {}",
            u_after - u_before
        );
    }

    #[test]
    fn nash_check_accepts_balanced_profile() {
        // Two equal helpers, 4 peers, 2-2 split: nobody gains by moving
        // (moving gives 800/3 < 400).
        let g = HelperSelectionGame::new(vec![800.0, 800.0]);
        assert!(g.is_pure_nash(&[0, 0, 1, 1], 1e-9));
    }

    #[test]
    fn nash_check_rejects_lopsided_profile() {
        // 4 peers all on one of two equal helpers: moving yields 800 > 200.
        let g = HelperSelectionGame::new(vec![800.0, 800.0]);
        assert!(!g.is_pure_nash(&[0, 0, 0, 0], 1e-9));
    }

    #[test]
    fn welfare_of_loads_uncapped_is_sum_of_busy_capacities() {
        let g = HelperSelectionGame::new(vec![900.0, 700.0, 500.0]);
        assert_eq!(g.welfare_of_loads(&[3, 1, 0]), 1600.0);
        assert_eq!(g.welfare_of_loads(&[1, 1, 1]), 2100.0);
    }

    #[test]
    fn welfare_of_loads_capped() {
        let g = HelperSelectionGame::new(vec![900.0]).with_demand_cap(200.0);
        // 2 peers: each gets min(200, 450) = 200 -> welfare 400.
        assert_eq!(g.welfare_of_loads(&[2]), 400.0);
        // 6 peers: each gets min(200, 150) = 150 -> welfare 900.
        assert_eq!(g.welfare_of_loads(&[6]), 900.0);
    }

    #[test]
    fn rate_if_joining_accounts_for_self() {
        let g = HelperSelectionGame::new(vec![600.0]);
        assert_eq!(g.rate_if_joining(0, 0), 600.0);
        assert_eq!(g.rate_if_joining(0, 2), 200.0);
    }

    #[test]
    #[should_panic(expected = "at least one helper")]
    fn empty_capacities_rejected() {
        let _ = HelperSelectionGame::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_profile_panics() {
        let g = HelperSelectionGame::new(vec![800.0]);
        let _ = g.loads(&[1]);
    }
}
