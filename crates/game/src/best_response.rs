//! Best-response dynamics for the helper-selection game.
//!
//! §III.B of the paper argues that myopic best response is dangerous:
//! with two equal helpers and everyone on `h₁`, *simultaneous* best
//! response sends all peers to `h₂`, then back, forever — "switching back
//! and forth … will result in frequent interruption in the streaming
//! flow". [`synchronous`] reproduces exactly that pathology;
//! [`sequential`] (one peer updates at a time) converges because the game
//! has an exact potential. Both serve as baselines against RTHS.

use crate::congestion::HelperSelectionGame;

/// Trace of a best-response run.
#[derive(Debug, Clone, PartialEq)]
pub struct BestResponseTrace {
    /// Profile at every stage, starting with the initial profile.
    pub profiles: Vec<Vec<usize>>,
    /// Number of peers that switched helpers at each transition.
    pub switches: Vec<usize>,
    /// Whether the dynamics reached a fixed point before the stage limit.
    pub converged: bool,
}

impl BestResponseTrace {
    /// The final profile.
    pub fn last(&self) -> &[usize] {
        self.profiles.last().expect("trace always has the initial profile")
    }

    /// Total helper switches over the whole run — the paper's proxy for
    /// streaming interruptions.
    pub fn total_switches(&self) -> usize {
        self.switches.iter().sum()
    }
}

/// Synchronous (simultaneous) best response: every peer switches to the
/// helper that would have been optimal *against the previous profile*.
///
/// With symmetric capacities this oscillates exactly as described in
/// §III.B. Runs for at most `max_stages` transitions.
#[allow(clippy::needless_range_loop)] // k is a helper id, not a position
pub fn synchronous(
    game: &HelperSelectionGame,
    initial: &[usize],
    max_stages: usize,
) -> BestResponseTrace {
    let mut profiles = vec![initial.to_vec()];
    let mut switches = Vec::new();
    let mut converged = false;
    for _ in 0..max_stages {
        let current = profiles.last().expect("non-empty").clone();
        let loads = game.loads(&current);
        let mut next = current.clone();
        for (i, &a) in current.iter().enumerate() {
            // Best response against the *current* loads, counting the peer
            // out of its own helper (the standard deviation payoff).
            let mut best_action = a;
            let mut best_rate = game.rate(a, loads[a]);
            for k in 0..game.num_helpers() {
                if k == a {
                    continue;
                }
                let r = game.rate(k, loads[k] + 1);
                if r > best_rate + 1e-12 {
                    best_rate = r;
                    best_action = k;
                }
            }
            next[i] = best_action;
        }
        let moved = next.iter().zip(&current).filter(|(a, b)| a != b).count();
        switches.push(moved);
        profiles.push(next);
        if moved == 0 {
            converged = true;
            break;
        }
    }
    BestResponseTrace { profiles, switches, converged }
}

/// Sequential (round-robin) best response: peers update one at a time,
/// observing the loads left by earlier movers. Strictly increases the
/// Rosenthal potential, so it terminates in a pure Nash equilibrium.
#[allow(clippy::needless_range_loop)] // k is a helper id, not a position
pub fn sequential(
    game: &HelperSelectionGame,
    initial: &[usize],
    max_rounds: usize,
) -> BestResponseTrace {
    let mut profiles = vec![initial.to_vec()];
    let mut switches = Vec::new();
    let mut converged = false;
    let mut current = initial.to_vec();
    let mut loads = game.loads(&current);
    for _ in 0..max_rounds {
        let mut moved = 0usize;
        for i in 0..current.len() {
            let a = current[i];
            let mut best_action = a;
            let mut best_rate = game.rate(a, loads[a]);
            for k in 0..game.num_helpers() {
                if k == a {
                    continue;
                }
                let r = game.rate(k, loads[k] + 1);
                if r > best_rate + 1e-12 {
                    best_rate = r;
                    best_action = k;
                }
            }
            if best_action != a {
                loads[a] -= 1;
                loads[best_action] += 1;
                current[i] = best_action;
                moved += 1;
            }
        }
        switches.push(moved);
        profiles.push(current.clone());
        if moved == 0 {
            converged = true;
            break;
        }
    }
    BestResponseTrace { profiles, switches, converged }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronous_oscillates_on_symmetric_two_helpers() {
        // The §III.B counter-example: n peers, 2 equal helpers, all on h1.
        let game = HelperSelectionGame::new(vec![800.0, 800.0]);
        let trace = synchronous(&game, &[0; 8], 10);
        assert!(!trace.converged);
        // Period-2 flapping: 0^n -> 1^n -> 0^n -> ...
        assert_eq!(trace.profiles[1], vec![1; 8]);
        assert_eq!(trace.profiles[2], vec![0; 8]);
        assert_eq!(trace.profiles[3], vec![1; 8]);
        // Every peer switches every stage: maximal interruption.
        assert!(trace.switches.iter().all(|&s| s == 8));
    }

    #[test]
    fn sequential_converges_to_pure_nash() {
        let game = HelperSelectionGame::new(vec![800.0, 800.0]);
        let trace = sequential(&game, &[0; 8], 100);
        assert!(trace.converged);
        assert!(game.is_pure_nash(trace.last(), 1e-9));
        // Balanced 4-4 split.
        let loads = game.loads(trace.last());
        assert_eq!(loads, vec![4, 4]);
    }

    #[test]
    fn sequential_respects_heterogeneous_capacities() {
        // Capacities 900/300: NE loads for 8 peers should put ~3x the
        // peers on the big helper (6-2 split: rates 150 each).
        let game = HelperSelectionGame::new(vec![900.0, 300.0]);
        let trace = sequential(&game, &[1; 8], 100);
        assert!(trace.converged);
        assert!(game.is_pure_nash(trace.last(), 1e-9));
        let loads = game.loads(trace.last());
        assert_eq!(loads, vec![6, 2]);
    }

    #[test]
    fn sequential_potential_is_monotone() {
        let game = HelperSelectionGame::new(vec![700.0, 800.0, 900.0]);
        let trace = sequential(&game, &[0; 12], 100);
        let mut last_phi = f64::NEG_INFINITY;
        for p in &trace.profiles {
            let phi = game.potential(&game.loads(p));
            assert!(phi >= last_phi - 1e-9, "potential decreased: {phi} < {last_phi}");
            last_phi = phi;
        }
        assert!(trace.converged);
    }

    #[test]
    fn fixed_point_detected_immediately() {
        let game = HelperSelectionGame::new(vec![800.0, 800.0]);
        // Already at a 2-2 NE.
        let trace = synchronous(&game, &[0, 0, 1, 1], 10);
        assert!(trace.converged);
        assert_eq!(trace.total_switches(), 0);
        assert_eq!(trace.profiles.len(), 2);
    }

    #[test]
    fn total_switches_counts_interruptions() {
        let game = HelperSelectionGame::new(vec![800.0, 800.0]);
        let trace = synchronous(&game, &[0; 4], 5);
        assert_eq!(trace.total_switches(), 4 * 5);
    }

    #[test]
    fn single_helper_trivially_converges() {
        let game = HelperSelectionGame::new(vec![500.0]);
        let trace = synchronous(&game, &[0, 0, 0], 10);
        assert!(trace.converged);
        let seq = sequential(&game, &[0, 0, 0], 10);
        assert!(seq.converged);
    }
}
