//! Finite normal-form games.

/// A finite normal-form game.
///
/// Implementors expose the number of players, each player's action count,
/// and the utility of a player at a pure joint action ("profile"). The
/// trait is object-safe so heterogeneous game collections can be handled
/// uniformly by the equilibrium tooling.
pub trait Game {
    /// Number of players `|N|`.
    fn num_players(&self) -> usize;

    /// Number of actions available to `player`.
    fn num_actions(&self, player: usize) -> usize;

    /// Utility of `player` at the pure profile `profile`
    /// (`profile[i]` is player `i`'s action).
    ///
    /// # Panics
    ///
    /// Implementations may panic if the profile has the wrong length or an
    /// action is out of range.
    fn utility(&self, player: usize, profile: &[usize]) -> f64;

    /// Sum of all players' utilities at `profile` — the social welfare
    /// objective of the paper's cooperative benchmark.
    fn social_welfare(&self, profile: &[usize]) -> f64 {
        (0..self.num_players()).map(|i| self.utility(i, profile)).sum()
    }

    /// Total number of pure profiles `Π_i |A_i|`; `None` on overflow.
    fn num_profiles(&self) -> Option<usize> {
        (0..self.num_players()).try_fold(1usize, |acc, p| acc.checked_mul(self.num_actions(p)))
    }
}

/// Iterates over every pure profile of `game` in lexicographic order,
/// calling `f` on each.
///
/// Intended for small games (equilibrium enumeration, exact CE LPs); the
/// profile count is exponential in the player count.
pub fn for_each_profile<G: Game + ?Sized>(game: &G, mut f: impl FnMut(&[usize])) {
    let n = game.num_players();
    if n == 0 {
        return;
    }
    let sizes: Vec<usize> = (0..n).map(|p| game.num_actions(p)).collect();
    if sizes.contains(&0) {
        return;
    }
    let mut profile = vec![0usize; n];
    loop {
        f(&profile);
        // Odometer increment.
        let mut i = n;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            profile[i] += 1;
            if profile[i] < sizes[i] {
                break;
            }
            profile[i] = 0;
        }
    }
}

/// A normal-form game with explicitly tabulated payoffs.
///
/// Payoffs are stored densely: entry `player * num_profiles + index(profile)`
/// where profiles are indexed lexicographically. Suitable for the small
/// games used in exact-equilibrium tests.
///
/// # Example
///
/// ```
/// use rths_game::{Game, TableGame};
///
/// // Prisoner's dilemma (actions: 0 = cooperate, 1 = defect).
/// let pd = TableGame::two_player(
///     &[&[3.0, 0.0], &[5.0, 1.0]], // row player
///     &[&[3.0, 5.0], &[0.0, 1.0]], // column player
/// );
/// assert_eq!(pd.utility(0, &[1, 0]), 5.0);
/// assert_eq!(pd.utility(1, &[1, 0]), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TableGame {
    action_counts: Vec<usize>,
    payoffs: Vec<f64>, // [player][profile_index]
}

impl TableGame {
    /// Builds a game from a utility closure by tabulating every profile.
    ///
    /// # Panics
    ///
    /// Panics if `action_counts` is empty, any count is zero, or the
    /// profile space overflows `usize`.
    pub fn from_fn(
        action_counts: Vec<usize>,
        utility: impl Fn(usize, &[usize]) -> f64,
    ) -> Self {
        assert!(!action_counts.is_empty(), "need at least one player");
        assert!(action_counts.iter().all(|&c| c > 0), "every player needs an action");
        let num_profiles: usize = action_counts
            .iter()
            .try_fold(1usize, |acc, &c| acc.checked_mul(c))
            .expect("profile space too large to tabulate");
        let players = action_counts.len();
        let mut payoffs = vec![0.0; players * num_profiles];
        let shell = Shell { action_counts: action_counts.clone() };
        let mut idx = 0usize;
        for_each_profile(&shell, |profile| {
            for (p, payoff_row) in payoffs.chunks_mut(num_profiles).enumerate() {
                payoff_row[idx] = utility(p, profile);
            }
            idx += 1;
        });
        Self { action_counts, payoffs }
    }

    /// Convenience constructor for two-player bimatrix games.
    ///
    /// `row[i][j]` is player 0's payoff and `col[i][j]` player 1's when
    /// player 0 plays `i` and player 1 plays `j`.
    ///
    /// # Panics
    ///
    /// Panics on empty or ragged payoff matrices or shape mismatch.
    pub fn two_player(row: &[&[f64]], col: &[&[f64]]) -> Self {
        assert!(!row.is_empty() && !row[0].is_empty(), "row payoffs empty");
        assert_eq!(row.len(), col.len(), "payoff shapes differ");
        let (m, n) = (row.len(), row[0].len());
        for (r, c) in row.iter().zip(col) {
            assert_eq!(r.len(), n, "ragged row payoffs");
            assert_eq!(c.len(), n, "ragged col payoffs");
        }
        let row: Vec<Vec<f64>> = row.iter().map(|r| r.to_vec()).collect();
        let col: Vec<Vec<f64>> = col.iter().map(|c| c.to_vec()).collect();
        Self::from_fn(vec![m, n], move |p, profile| {
            if p == 0 {
                row[profile[0]][profile[1]]
            } else {
                col[profile[0]][profile[1]]
            }
        })
    }

    /// Lexicographic index of `profile`.
    ///
    /// # Panics
    ///
    /// Panics if the profile is malformed.
    pub fn profile_index(&self, profile: &[usize]) -> usize {
        assert_eq!(profile.len(), self.action_counts.len(), "profile length mismatch");
        let mut idx = 0usize;
        for (a, &count) in profile.iter().zip(&self.action_counts) {
            assert!(*a < count, "action {a} out of range");
            idx = idx * count + a;
        }
        idx
    }
}

/// Internal zero-payoff shell used to drive profile iteration while
/// tabulating.
struct Shell {
    action_counts: Vec<usize>,
}

impl Game for Shell {
    fn num_players(&self) -> usize {
        self.action_counts.len()
    }

    fn num_actions(&self, player: usize) -> usize {
        self.action_counts[player]
    }

    fn utility(&self, _player: usize, _profile: &[usize]) -> f64 {
        0.0
    }
}

impl Game for TableGame {
    fn num_players(&self) -> usize {
        self.action_counts.len()
    }

    fn num_actions(&self, player: usize) -> usize {
        self.action_counts[player]
    }

    fn utility(&self, player: usize, profile: &[usize]) -> f64 {
        let num_profiles = self.payoffs.len() / self.action_counts.len();
        self.payoffs[player * num_profiles + self.profile_index(profile)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matching_pennies() -> TableGame {
        TableGame::two_player(&[&[1.0, -1.0], &[-1.0, 1.0]], &[&[-1.0, 1.0], &[1.0, -1.0]])
    }

    #[test]
    fn pennies_payoffs() {
        let g = matching_pennies();
        assert_eq!(g.utility(0, &[0, 0]), 1.0);
        assert_eq!(g.utility(1, &[0, 0]), -1.0);
        assert_eq!(g.utility(0, &[0, 1]), -1.0);
        assert_eq!(g.num_players(), 2);
        assert_eq!(g.num_actions(0), 2);
        assert_eq!(g.num_profiles(), Some(4));
    }

    #[test]
    fn zero_sum_social_welfare_is_zero() {
        let g = matching_pennies();
        for_each_profile(&g, |p| {
            assert_eq!(g.social_welfare(p), 0.0);
        });
    }

    #[test]
    fn profile_iteration_is_exhaustive_and_ordered() {
        let g = TableGame::from_fn(vec![2, 3], |_, _| 0.0);
        let mut seen = Vec::new();
        for_each_profile(&g, |p| seen.push(p.to_vec()));
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[0], vec![0, 0]);
        assert_eq!(seen[1], vec![0, 1]);
        assert_eq!(seen[5], vec![1, 2]);
    }

    #[test]
    fn from_fn_three_players() {
        // Utility = own action index + 10*player.
        let g = TableGame::from_fn(vec![2, 2, 2], |p, prof| prof[p] as f64 + 10.0 * p as f64);
        assert_eq!(g.utility(2, &[0, 1, 1]), 21.0);
        assert_eq!(g.utility(0, &[1, 0, 0]), 1.0);
        assert_eq!(g.num_profiles(), Some(8));
    }

    #[test]
    fn profile_index_is_lexicographic() {
        let g = TableGame::from_fn(vec![3, 2], |_, _| 0.0);
        assert_eq!(g.profile_index(&[0, 0]), 0);
        assert_eq!(g.profile_index(&[0, 1]), 1);
        assert_eq!(g.profile_index(&[1, 0]), 2);
        assert_eq!(g.profile_index(&[2, 1]), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_action_panics() {
        let g = TableGame::from_fn(vec![2, 2], |_, _| 0.0);
        let _ = g.profile_index(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "payoff shapes differ")]
    fn mismatched_bimatrix_panics() {
        let _ = TableGame::two_player(&[&[1.0]], &[&[1.0], &[2.0]]);
    }
}
