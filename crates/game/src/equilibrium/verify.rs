//! Empirical correlated-equilibrium verification.
//!
//! Hart & Mas-Colell's theorem (the paper's convergence guarantee) says
//! the *empirical joint distribution of play* converges to the CE set.
//! Given the [`JointDistribution`] recorded from a learning run, these
//! functions compute the largest violated CE incentive:
//!
//! ```text
//! residual(i, j→k) = Σ_{a : a_i = j} z(a) · [u_i(k, a_-i) − u_i(a)]
//! ```
//!
//! Play is (approximately) a CE when every residual is ≤ 0 (≤ tol). The
//! residual is exactly the long-run average regret of player `i` for not
//! having played `k` whenever it played `j` — the quantity RTHS drives to
//! zero.

use crate::congestion::HelperSelectionGame;
use crate::normal_form::Game;
use crate::strategy::JointDistribution;

/// Result of a CE verification.
#[derive(Debug, Clone, PartialEq)]
pub struct CeReport {
    /// Largest residual over all `(player, j, k)` triples (can be
    /// negative when play is strictly inside the CE polytope).
    pub max_residual: f64,
    /// The triple attaining the maximum: `(player, played, alternative)`.
    pub worst: Option<(usize, usize, usize)>,
    /// Average per-player utility under the empirical distribution, for
    /// scaling the residual into relative terms.
    pub mean_utility: f64,
}

impl CeReport {
    /// Residual divided by mean utility — a scale-free violation measure.
    pub fn relative_residual(&self) -> f64 {
        if self.mean_utility.abs() < 1e-12 {
            self.max_residual
        } else {
            self.max_residual / self.mean_utility.abs()
        }
    }

    /// True if the distribution is an ε-correlated equilibrium.
    pub fn is_approximate_ce(&self, epsilon: f64) -> bool {
        self.max_residual <= epsilon
    }
}

/// Generic CE residual for any finite [`Game`].
///
/// Cost: `O(support · Σ_i |A_i| · cost(utility))`. Fine for small games;
/// use [`ce_residual_congestion`] for large helper-selection instances.
pub fn ce_residual<G: Game + ?Sized>(game: &G, dist: &JointDistribution) -> CeReport {
    let players = game.num_players();
    let mut residuals: Vec<((usize, usize, usize), f64)> = Vec::new();
    let mut mean_utility = 0.0;

    for i in 0..players {
        let actions = game.num_actions(i);
        for j in 0..actions {
            for k in 0..actions {
                if j == k {
                    continue;
                }
                let mut total = 0.0;
                for (profile, z) in dist.iter() {
                    if profile[i] != j {
                        continue;
                    }
                    let u_now = game.utility(i, profile);
                    let mut deviated = profile.to_vec();
                    deviated[i] = k;
                    let u_dev = game.utility(i, &deviated);
                    total += z * (u_dev - u_now);
                }
                residuals.push(((i, j, k), total));
            }
        }
    }
    for (profile, z) in dist.iter() {
        let w: f64 = (0..players).map(|i| game.utility(i, profile)).sum();
        mean_utility += z * w / players.max(1) as f64;
    }

    let (worst, max_residual) = residuals
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("residuals are finite"))
        .map(|(triple, r)| (Some(triple), r))
        .unwrap_or((None, 0.0));
    CeReport { max_residual, worst, mean_utility }
}

/// Fast CE residual for the helper-selection game, exploiting the
/// congestion structure: utilities depend only on the load vector, so each
/// profile in the support costs `O(N + N·H)` instead of `O(N·H·N)`.
///
/// # Panics
///
/// Panics if profiles in `dist` have inconsistent lengths or out-of-range
/// actions.
pub fn ce_residual_congestion(
    game: &HelperSelectionGame,
    dist: &JointDistribution,
) -> CeReport {
    let h = game.num_helpers();
    let mut players = 0usize;
    // residual[(i, j, k)] laid out as i * h * h + j * h + k.
    let mut residuals: Vec<f64> = Vec::new();
    let mut mean_utility = 0.0;

    for (profile, z) in dist.iter() {
        if residuals.is_empty() {
            players = profile.len();
            residuals = vec![0.0; players * h * h];
        }
        assert_eq!(profile.len(), players, "inconsistent profile lengths in distribution");
        let loads = game.loads(profile);
        // Per-helper rates for current and joining loads, computed once.
        let rate_now: Vec<f64> = (0..h).map(|j| game.rate(j, loads[j])).collect();
        let rate_join: Vec<f64> = (0..h).map(|j| game.rate(j, loads[j] + 1)).collect();
        for (i, &j) in profile.iter().enumerate() {
            let u_now = rate_now[j];
            mean_utility += z * u_now / players as f64;
            // Rate on own helper after leaving is irrelevant; deviating to
            // k gives rate with loads[k]+1 peers (self moves there). If
            // k == j the term is zero and skipped.
            let base = i * h * h + j * h;
            for k in 0..h {
                if k == j {
                    continue;
                }
                residuals[base + k] += z * (rate_join[k] - u_now);
            }
        }
    }

    let mut max_residual = f64::NEG_INFINITY;
    let mut worst = None;
    for i in 0..players {
        for j in 0..h {
            for k in 0..h {
                if j == k {
                    continue;
                }
                let r = residuals[i * h * h + j * h + k];
                if r > max_residual {
                    max_residual = r;
                    worst = Some((i, j, k));
                }
            }
        }
    }
    if worst.is_none() {
        max_residual = 0.0;
    }
    CeReport { max_residual, worst, mean_utility }
}

/// Coarse-correlated-equilibrium (CCE) residual for the helper-selection
/// game: the largest gain any player could get by committing to one
/// fixed helper for the whole run,
///
/// ```text
/// residual(i, k) = Σ_a z(a) · [u_i(k, a_-i) − u_i(a)]
/// ```
///
/// This is the *external* (unconditional) regret; driving it to zero is
/// a weaker guarantee than the CE condition (`CCE ⊇ CE`), and the CCE
/// residual is always dominated by the per-pair sums of the CE residual
/// — a relation the property tests check. Reported alongside
/// [`ce_residual_congestion`] to separate "no fixed helper beats my
/// play" from the stronger "no swap rule beats my play".
pub fn cce_residual_congestion(
    game: &HelperSelectionGame,
    dist: &JointDistribution,
) -> CeReport {
    let h = game.num_helpers();
    let mut players = 0usize;
    let mut residuals: Vec<f64> = Vec::new();
    let mut mean_utility = 0.0;

    for (profile, z) in dist.iter() {
        if residuals.is_empty() {
            players = profile.len();
            residuals = vec![0.0; players * h];
        }
        assert_eq!(profile.len(), players, "inconsistent profile lengths in distribution");
        let loads = game.loads(profile);
        let rate_now: Vec<f64> = (0..h).map(|j| game.rate(j, loads[j])).collect();
        let rate_join: Vec<f64> = (0..h).map(|j| game.rate(j, loads[j] + 1)).collect();
        for (i, &j) in profile.iter().enumerate() {
            let u_now = rate_now[j];
            mean_utility += z * u_now / players as f64;
            for k in 0..h {
                // Committing to k: if already there this epoch, the rate
                // is unchanged; otherwise the join rate applies.
                let u_k = if k == j { u_now } else { rate_join[k] };
                residuals[i * h + k] += z * (u_k - u_now);
            }
        }
    }

    let mut max_residual = f64::NEG_INFINITY;
    let mut worst = None;
    for i in 0..players {
        for k in 0..h {
            let r = residuals[i * h + k];
            if r > max_residual {
                max_residual = r;
                // Encode "any played action" as j == k for CCE.
                worst = Some((i, k, k));
            }
        }
    }
    if worst.is_none() {
        max_residual = 0.0;
    }
    CeReport { max_residual, worst, mean_utility }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal_form::TableGame;

    fn chicken() -> TableGame {
        TableGame::two_player(&[&[0.0, 7.0], &[2.0, 6.0]], &[&[0.0, 2.0], &[7.0, 6.0]])
    }

    #[test]
    fn known_ce_of_chicken_passes() {
        // The classic traffic-light CE: 1/3 on (D,C), (C,D), (C,C).
        let g = chicken();
        let mut dist = JointDistribution::new();
        for profile in [[0usize, 1], [1, 0], [1, 1]] {
            for _ in 0..1000 {
                dist.record(&profile);
            }
        }
        let report = ce_residual(&g, &dist);
        assert!(report.is_approximate_ce(1e-9), "residual {}", report.max_residual);
    }

    #[test]
    fn non_ce_of_chicken_fails() {
        // All mass on (D, D): both players regret not chickening out.
        let g = chicken();
        let mut dist = JointDistribution::new();
        dist.record(&[0, 0]);
        let report = ce_residual(&g, &dist);
        assert!(report.max_residual > 1.9, "residual {}", report.max_residual);
        let worst = report.worst.unwrap();
        assert_eq!(worst.1, 0, "worst deviation should leave action 0");
    }

    #[test]
    fn congestion_fast_path_matches_generic() {
        let game = HelperSelectionGame::new(vec![800.0, 600.0, 400.0]).with_peers(4);
        let mut dist = JointDistribution::new();
        let profiles =
            [[0usize, 1, 2, 0], [0, 0, 1, 2], [1, 1, 0, 0], [2, 1, 0, 0], [0, 1, 2, 0]];
        for p in &profiles {
            dist.record(p);
        }
        let generic = ce_residual(&game, &dist);
        let fast = ce_residual_congestion(&game, &dist);
        assert!(
            (generic.max_residual - fast.max_residual).abs() < 1e-9,
            "generic {} vs fast {}",
            generic.max_residual,
            fast.max_residual
        );
        assert!((generic.mean_utility - fast.mean_utility).abs() < 1e-9);
    }

    #[test]
    fn balanced_play_on_equal_helpers_is_ce() {
        let game = HelperSelectionGame::new(vec![800.0, 800.0]).with_peers(4);
        let mut dist = JointDistribution::new();
        // Alternate between the two balanced splits.
        for _ in 0..500 {
            dist.record(&[0, 0, 1, 1]);
            dist.record(&[1, 1, 0, 0]);
        }
        let report = ce_residual_congestion(&game, &dist);
        assert!(report.is_approximate_ce(1e-9), "residual {}", report.max_residual);
        assert!(report.mean_utility > 0.0);
    }

    #[test]
    fn herding_play_is_not_ce() {
        let game = HelperSelectionGame::new(vec![800.0, 800.0]).with_peers(4);
        let mut dist = JointDistribution::new();
        for _ in 0..100 {
            dist.record(&[0, 0, 0, 0]);
            dist.record(&[1, 1, 1, 1]);
        }
        let report = ce_residual_congestion(&game, &dist);
        // Switching away from the herd gains 800/1 - 800/4 = 600 ... but
        // averaged over the stages where the player played that action
        // (half the stages each), the residual is 300 per (j,k) pair.
        assert!(report.max_residual > 250.0, "residual {}", report.max_residual);
    }

    #[test]
    fn empty_distribution_gives_zero_report() {
        let game = HelperSelectionGame::new(vec![800.0, 800.0]).with_peers(2);
        let dist = JointDistribution::new();
        let report = ce_residual_congestion(&game, &dist);
        assert_eq!(report.max_residual, 0.0);
        assert!(report.worst.is_none());
        let generic = ce_residual(&game, &dist);
        assert_eq!(generic.max_residual, 0.0);
    }

    #[test]
    fn cce_residual_of_balanced_play_is_nonpositive() {
        let game = HelperSelectionGame::new(vec![800.0, 800.0]).with_peers(4);
        let mut dist = JointDistribution::new();
        for _ in 0..200 {
            dist.record(&[0, 0, 1, 1]);
            dist.record(&[1, 1, 0, 0]);
        }
        let report = cce_residual_congestion(&game, &dist);
        assert!(report.max_residual <= 1e-9, "residual {}", report.max_residual);
    }

    #[test]
    fn cce_detects_fixed_action_improvement() {
        // Peer 0 always on the congested helper while helper 1 is free:
        // committing to helper 1 is a large fixed-action gain.
        let game = HelperSelectionGame::new(vec![800.0, 800.0]).with_peers(3);
        let mut dist = JointDistribution::new();
        dist.record(&[0, 0, 0]);
        let report = cce_residual_congestion(&game, &dist);
        // Gain = 800/1 - 800/3 ≈ 533.
        assert!(report.max_residual > 500.0, "residual {}", report.max_residual);
    }

    #[test]
    fn cce_residual_bounded_by_ce_pair_count() {
        // CCE residual(i,k) = Σ_j [pairwise terms], so it cannot exceed
        // (number of actions) × the max positive CE residual.
        let game = HelperSelectionGame::new(vec![700.0, 500.0, 300.0]).with_peers(4);
        let mut dist = JointDistribution::new();
        let profiles =
            [[0usize, 1, 2, 0], [1, 1, 0, 2], [2, 0, 0, 1], [0, 0, 1, 1], [2, 2, 1, 0]];
        for p in &profiles {
            dist.record(p);
        }
        let ce = ce_residual_congestion(&game, &dist);
        let cce = cce_residual_congestion(&game, &dist);
        let bound = 3.0 * ce.max_residual.max(0.0) + 1e-9;
        assert!(cce.max_residual <= bound, "cce {} > bound {bound}", cce.max_residual);
    }

    #[test]
    fn relative_residual_scales_by_utility() {
        let report = CeReport { max_residual: 50.0, worst: None, mean_utility: 500.0 };
        assert!((report.relative_residual() - 0.1).abs() < 1e-12);
        let degenerate = CeReport { max_residual: 50.0, worst: None, mean_utility: 0.0 };
        assert_eq!(degenerate.relative_residual(), 50.0);
    }
}
