//! Exact correlated equilibria via linear programming.
//!
//! A distribution `z` over joint profiles is a **correlated equilibrium**
//! (paper Eq. 3-1) iff for every player `i` and every pair of actions
//! `j, k`:
//!
//! ```text
//! Σ_{a : a_i = j} z(a) · [u_i(k, a_-i) − u_i(a)] ≤ 0
//! ```
//!
//! The CE set is a non-empty convex polytope containing all Nash
//! equilibria; the paper argues its convexity "allows for better fairness
//! between the peers". This module computes CEs of small games exactly by
//! optimising a linear objective (social welfare, or nothing) over that
//! polytope with the `rths-lp` simplex solver.

use rths_lp::{LinearProgram, LpError, Relation};

use crate::normal_form::{for_each_profile, Game};

/// A correlated equilibrium of a finite game, as an explicit distribution
/// over lexicographically ordered profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelatedEquilibrium {
    profiles: Vec<Vec<usize>>,
    probs: Vec<f64>,
    welfare: f64,
}

impl CorrelatedEquilibrium {
    /// The supported profiles in lexicographic order (all profiles of the
    /// game, including zero-probability ones).
    pub fn profiles(&self) -> &[Vec<usize>] {
        &self.profiles
    }

    /// Probability of the `idx`-th profile.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Expected social welfare under the equilibrium.
    pub fn welfare(&self) -> f64 {
        self.welfare
    }

    /// Iterates over `(profile, prob)` pairs with positive probability.
    pub fn support(&self) -> impl Iterator<Item = (&[usize], f64)> + '_ {
        self.profiles
            .iter()
            .zip(&self.probs)
            .filter(|(_, &p)| p > 1e-12)
            .map(|(prof, &p)| (prof.as_slice(), p))
    }
}

/// Computes the CE maximising expected social welfare.
///
/// # Errors
///
/// Propagates [`LpError`] from the solver. `LpError::Infeasible` cannot
/// occur for well-formed games (the CE polytope always contains a Nash
/// equilibrium, and a mixed NE always exists); seeing it indicates a
/// malformed game (e.g. zero actions).
pub fn max_welfare_ce<G: Game + ?Sized>(game: &G) -> Result<CorrelatedEquilibrium, LpError> {
    solve_ce(game, true)
}

/// Computes *some* CE (feasibility objective). Useful when only membership
/// in the CE polytope matters.
///
/// # Errors
///
/// Propagates [`LpError`] from the solver (see [`max_welfare_ce`]).
pub fn uniform_ce<G: Game + ?Sized>(game: &G) -> Result<CorrelatedEquilibrium, LpError> {
    solve_ce(game, false)
}

fn solve_ce<G: Game + ?Sized>(
    game: &G,
    maximize_welfare: bool,
) -> Result<CorrelatedEquilibrium, LpError> {
    let mut profiles: Vec<Vec<usize>> = Vec::new();
    for_each_profile(game, |p| profiles.push(p.to_vec()));
    let num_z = profiles.len();
    assert!(num_z > 0, "game has no profiles");

    let costs: Vec<f64> = if maximize_welfare {
        profiles.iter().map(|p| game.social_welfare(p)).collect()
    } else {
        vec![0.0; num_z]
    };

    let mut lp = LinearProgram::maximize(costs);

    // CE incentive constraints: one per (player, j, k≠j).
    let mut scratch: Vec<usize>;
    for i in 0..game.num_players() {
        let actions = game.num_actions(i);
        for j in 0..actions {
            for k in 0..actions {
                if j == k {
                    continue;
                }
                let mut row = vec![0.0; num_z];
                for (idx, profile) in profiles.iter().enumerate() {
                    if profile[i] != j {
                        continue;
                    }
                    let u_now = game.utility(i, profile);
                    scratch = profile.clone();
                    scratch[i] = k;
                    let u_dev = game.utility(i, &scratch);
                    row[idx] = u_dev - u_now;
                }
                lp.add_constraint(row, Relation::Le, 0.0)?;
            }
        }
    }

    // Normalisation: Σ z = 1 (non-negativity is implicit in the solver).
    lp.add_constraint(vec![1.0; num_z], Relation::Eq, 1.0)?;

    let sol = lp.solve()?;
    let probs = sol.x().to_vec();
    let welfare = profiles.iter().zip(&probs).map(|(p, &z)| z * game.social_welfare(p)).sum();
    Ok(CorrelatedEquilibrium { profiles, probs, welfare })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::HelperSelectionGame;
    use crate::equilibrium::verify::ce_residual;
    use crate::normal_form::TableGame;
    use crate::strategy::JointDistribution;

    /// The game of Chicken: the classic example where CE strictly expands
    /// the equilibrium set. Payoffs (row, col):
    ///   dare/dare: (0,0); dare/chicken: (7,2); chicken/dare: (2,7);
    ///   chicken/chicken: (6,6).
    fn chicken() -> TableGame {
        TableGame::two_player(&[&[0.0, 7.0], &[2.0, 6.0]], &[&[0.0, 2.0], &[7.0, 6.0]])
    }

    #[test]
    fn chicken_max_welfare_ce_beats_pure_nash_welfare() {
        let g = chicken();
        let ce = max_welfare_ce(&g).unwrap();
        // Pure NE are (dare, chicken) and (chicken, dare), welfare 9.
        // The welfare-optimal CE mixes in (chicken, chicken) and achieves
        // more than 9 (known optimum: 10.5 with z(CC)=z(CD)=z(DC)=1/3...
        // actually for these payoffs optimum is > 9; we assert strictly).
        assert!(ce.welfare() > 9.0 + 1e-6, "CE welfare {}", ce.welfare());
        // And it must satisfy the CE constraints empirically.
        let mut dist = JointDistribution::new();
        for (profile, p) in ce.support() {
            // Record with resolution proportional to probability.
            let copies = (p * 10_000.0).round() as u64;
            for _ in 0..copies {
                dist.record(profile);
            }
        }
        let report = ce_residual(&g, &dist);
        assert!(report.max_residual < 1e-2, "residual {}", report.max_residual);
    }

    #[test]
    fn prisoners_dilemma_ce_is_defect_defect() {
        let pd =
            TableGame::two_player(&[&[3.0, 0.0], &[5.0, 1.0]], &[&[3.0, 5.0], &[0.0, 1.0]]);
        // Defection strictly dominates, so the unique CE is (D, D).
        let ce = max_welfare_ce(&pd).unwrap();
        let dd_index = 3; // lexicographic: (1,1)
        assert!((ce.probs()[dd_index] - 1.0).abs() < 1e-6, "probs {:?}", ce.probs());
        assert!((ce.welfare() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn uniform_ce_is_feasible_ce() {
        let g = chicken();
        let ce = uniform_ce(&g).unwrap();
        let total: f64 = ce.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(ce.probs().iter().all(|&p| p >= -1e-9));
    }

    #[test]
    fn helper_game_ce_welfare_equals_full_coverage() {
        // 2 peers, 2 helpers 800/600: any profile covering both helpers
        // has welfare 1400; the max-welfare CE must achieve it.
        let g = HelperSelectionGame::new(vec![800.0, 600.0]).with_peers(2);
        let ce = max_welfare_ce(&g).unwrap();
        assert!((ce.welfare() - 1400.0).abs() < 1e-6, "welfare {}", ce.welfare());
    }

    #[test]
    fn ce_welfare_at_least_any_pure_nash() {
        // The CE polytope contains every NE, so max-welfare CE ≥ NE welfare.
        let g = HelperSelectionGame::new(vec![900.0, 300.0]).with_peers(3);
        let ce = max_welfare_ce(&g).unwrap();
        for ne in crate::equilibrium::nash::enumerate_pure_nash(&g, 1e-9) {
            assert!(ce.welfare() >= g.social_welfare(&ne) - 1e-6);
        }
    }

    #[test]
    fn three_by_three_ce_lp_terminates() {
        // Regression: this 27-profile instance (3 peers over helpers
        // [800, 700, 600]) cycled forever when the Bland-mode leaving
        // rule broke ratio ties by pivot magnitude instead of smallest
        // basis index. See rths-lp's simplex::pick_leaving.
        let g = HelperSelectionGame::new(vec![800.0, 700.0, 600.0]).with_peers(3);
        let ce = max_welfare_ce(&g).expect("3x3 CE LP must solve");
        // Full coverage is feasible (3 peers, 3 helpers): welfare 2100.
        assert!((ce.welfare() - 2100.0).abs() < 1e-6, "welfare {}", ce.welfare());
    }

    #[test]
    fn support_skips_zero_probability_profiles() {
        let pd =
            TableGame::two_player(&[&[3.0, 0.0], &[5.0, 1.0]], &[&[3.0, 5.0], &[0.0, 1.0]]);
        let ce = max_welfare_ce(&pd).unwrap();
        let support: Vec<_> = ce.support().collect();
        assert_eq!(support.len(), 1);
        assert_eq!(support[0].0, &[1, 1]);
    }
}
