//! Pure Nash equilibria.

use crate::congestion::HelperSelectionGame;
use crate::normal_form::{for_each_profile, Game};

/// Enumerates every pure Nash equilibrium of a (small) game by exhaustive
/// search over profiles and unilateral deviations.
///
/// Complexity is `O(num_profiles · Σ_i |A_i|)`; intended for games with at
/// most a few thousand profiles (used in tests and exact benchmarks).
pub fn enumerate_pure_nash<G: Game + ?Sized>(game: &G, tol: f64) -> Vec<Vec<usize>> {
    let mut equilibria = Vec::new();
    for_each_profile(game, |profile| {
        if is_pure_nash(game, profile, tol) {
            equilibria.push(profile.to_vec());
        }
    });
    equilibria
}

/// Checks the pure-Nash property of `profile` by testing every unilateral
/// deviation.
pub fn is_pure_nash<G: Game + ?Sized>(game: &G, profile: &[usize], tol: f64) -> bool {
    let mut scratch = profile.to_vec();
    for i in 0..game.num_players() {
        let current = game.utility(i, profile);
        let original = scratch[i];
        for k in 0..game.num_actions(i) {
            if k == original {
                continue;
            }
            scratch[i] = k;
            if game.utility(i, &scratch) > current + tol {
                scratch[i] = original;
                return false;
            }
        }
        scratch[i] = original;
    }
    true
}

/// Computes a Nash-equilibrium *load vector* for the helper-selection game
/// with `num_peers` peers by greedy marginal assignment: repeatedly place
/// the next peer on the helper offering the highest post-join rate.
///
/// For singleton congestion games with non-increasing resource payoffs the
/// greedy profile is a pure Nash equilibrium (a standard result; verified
/// against [`enumerate_pure_nash`] in tests).
#[allow(clippy::needless_range_loop)] // k is a helper id, not a position
pub fn nash_loads(game: &HelperSelectionGame, num_peers: usize) -> Vec<usize> {
    let h = game.num_helpers();
    let mut loads = vec![0usize; h];
    for _ in 0..num_peers {
        let mut best = 0usize;
        let mut best_rate = f64::NEG_INFINITY;
        for j in 0..h {
            let r = game.rate(j, loads[j] + 1);
            if r > best_rate + 1e-12 {
                best_rate = r;
                best = j;
            }
        }
        loads[best] += 1;
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal_form::TableGame;

    #[test]
    fn prisoners_dilemma_has_defect_defect() {
        let pd =
            TableGame::two_player(&[&[3.0, 0.0], &[5.0, 1.0]], &[&[3.0, 5.0], &[0.0, 1.0]]);
        let ne = enumerate_pure_nash(&pd, 1e-9);
        assert_eq!(ne, vec![vec![1, 1]]);
    }

    #[test]
    fn matching_pennies_has_no_pure_nash() {
        let mp =
            TableGame::two_player(&[&[1.0, -1.0], &[-1.0, 1.0]], &[&[-1.0, 1.0], &[1.0, -1.0]]);
        assert!(enumerate_pure_nash(&mp, 1e-9).is_empty());
    }

    #[test]
    fn coordination_game_has_two_equilibria() {
        let coord =
            TableGame::two_player(&[&[2.0, 0.0], &[0.0, 1.0]], &[&[2.0, 0.0], &[0.0, 1.0]]);
        let ne = enumerate_pure_nash(&coord, 1e-9);
        assert_eq!(ne.len(), 2);
        assert!(ne.contains(&vec![0, 0]));
        assert!(ne.contains(&vec![1, 1]));
    }

    #[test]
    fn helper_game_nash_profiles_match_balanced_loads() {
        // 4 peers, two equal helpers: all 2-2 splits are NE.
        let game = HelperSelectionGame::new(vec![800.0, 800.0]).with_peers(4);
        let ne = enumerate_pure_nash(&game, 1e-9);
        assert!(!ne.is_empty());
        for profile in &ne {
            let loads = game.loads(profile);
            assert_eq!(loads, vec![2, 2], "unbalanced NE {profile:?}");
        }
        // C(4,2) = 6 distinct 2-2 assignments.
        assert_eq!(ne.len(), 6);
    }

    #[test]
    fn greedy_loads_form_nash_equilibrium() {
        for caps in [vec![800.0, 800.0], vec![900.0, 300.0], vec![700.0, 800.0, 900.0]] {
            let game = HelperSelectionGame::new(caps.clone());
            for n in 1..=10usize {
                let loads = nash_loads(&game, n);
                assert_eq!(loads.iter().sum::<usize>(), n);
                // Build an explicit profile with those loads and check NE.
                let mut profile = Vec::new();
                for (j, &l) in loads.iter().enumerate() {
                    profile.extend(std::iter::repeat_n(j, l));
                }
                assert!(
                    game.is_pure_nash(&profile, 1e-9),
                    "caps {caps:?}, n={n}: loads {loads:?} not NE"
                );
            }
        }
    }

    #[test]
    fn greedy_loads_proportional_to_capacity() {
        let game = HelperSelectionGame::new(vec![900.0, 300.0]);
        let loads = nash_loads(&game, 8);
        assert_eq!(loads, vec![6, 2]);
    }

    #[test]
    fn is_pure_nash_respects_tolerance() {
        let game = HelperSelectionGame::new(vec![800.0, 800.0 + 1e-12]).with_peers(2);
        // With a generous tolerance the tiny capacity difference is noise.
        assert!(is_pure_nash(&game, &[0, 1], 1e-6));
    }
}
