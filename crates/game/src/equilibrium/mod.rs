//! Equilibrium computation and verification.
//!
//! * [`nash`] — pure Nash enumeration (small games) and equilibrium load
//!   vectors for the helper-selection game.
//! * [`correlated`] — exact correlated equilibria via the LP
//!   characterisation, solved with `rths-lp`.
//! * [`verify`] — *empirical* CE verification: given the joint play
//!   frequencies produced by a learning run, measure how far they are from
//!   the CE polytope. This is the tool that checks the paper's headline
//!   claim (RTHS play converges to the CE set).

pub mod correlated;
pub mod nash;
pub mod verify;

pub use correlated::{max_welfare_ce, uniform_ce, CorrelatedEquilibrium};
pub use nash::{enumerate_pure_nash, nash_loads};
pub use verify::{cce_residual_congestion, ce_residual, ce_residual_congestion, CeReport};
