//! Game-theoretic substrate for the RTHS reproduction.
//!
//! The paper models helper selection as a non-cooperative repeated game
//! (§III.A): players are peers, actions are helpers, and the stage utility
//! of a peer is its received streaming rate `C_h / load_h`. This crate
//! provides the structures that formalisation needs:
//!
//! * [`Game`] — the general finite normal-form interface, with
//!   [`TableGame`] as an explicit-payoff implementation for small games.
//! * [`HelperSelectionGame`] — the paper's game as a *singleton congestion
//!   game* with resource-dependent payoffs, including its Rosenthal-style
//!   potential (the paper invokes potential-game structure via
//!   Milchtaich, reference \[16\], to establish pure-Nash existence).
//! * [`best_response`] — synchronous and sequential best-response
//!   dynamics. Synchronous dynamics reproduce the §III.B oscillation
//!   counter-example that motivates learning instead of myopic switching.
//! * [`equilibrium`] — pure Nash enumeration, exact correlated equilibria
//!   via linear programming, and *empirical* CE verification used to check
//!   that learned play converges to the CE set (the paper's central
//!   claim).
//!
//! # Example: the oscillation example from §III.B
//!
//! ```
//! use rths_game::{HelperSelectionGame, best_response};
//!
//! // n peers, two equal-capacity helpers, everyone starts on helper 0.
//! let game = HelperSelectionGame::new(vec![800.0, 800.0]);
//! let start = vec![0usize; 10];
//! let trace = best_response::synchronous(&game, &start, 6);
//! // All 10 peers flap to helper 1, then back, forever.
//! assert_eq!(trace.profiles[1], vec![1usize; 10]);
//! assert_eq!(trace.profiles[2], vec![0usize; 10]);
//! assert!(!trace.converged);
//! ```

#![forbid(unsafe_code)]

pub mod best_response;
pub mod congestion;
pub mod equilibrium;
pub mod normal_form;
pub mod strategy;

pub use congestion::HelperSelectionGame;
pub use normal_form::{Game, TableGame};
pub use strategy::{JointDistribution, MixedStrategy};
