//! The sharded structure-of-arrays peer store.
//!
//! Both engines ([`crate::System`] and [`crate::MultiChannelSystem`])
//! keep their peer population here instead of a `Vec<Peer>`. The store
//! holds one flat column per field — stable `u64` ids, `u32` channel and
//! helper indices, the per-entity RNG streams, slab-backed learner state
//! (shared [`RthsConfig`] per channel + one slot of the store's
//! [`LearnerSlab`] per peer, see `rths_core::slab` for the column-major
//! arena layout and its batched kernels), the accounting scalars, and the
//! stretch-folded
//! true-regret ledger (one `O(m)` folded row per peer plus a global
//! join-rate prefix, see [`crate::regret`]) — so a million-peer
//! population is a handful of large allocations with unit-stride hot
//! loops instead of a million scattered structs.
//!
//! # Sharding
//!
//! The per-peer phases of an epoch (choose a helper, observe the realized
//! rate) run shard-parallel through [`rths_par::par_sharded`]: peers are
//! partitioned into contiguous index ranges, each shard gets the matching
//! range of **every** column plus its own [`ShardScratch`] (thread-affine
//! load histogram, learner row scratch, metric maxima) and the slice of
//! the per-entity RNG streams its range covers. All order-sensitive float
//! reductions stay index-ordered — either sequentially after the phase or
//! by merging per-shard accumulators that are order-insensitive (integer
//! histograms, `max` folds over non-negative values) in shard order — so
//! the engines are **bit-for-bit identical at any shard count and any
//! `RTHS_THREADS`**.
//!
//! # Stable identity under churn
//!
//! Peer ids are monotone `u64`s, never reused, and travel with their row.
//! Departures compact every column **order-preservingly** (survivors keep
//! their relative order), so a removal can never alias one peer's slot —
//! and therefore its RNG stream, learner state, or regret row — onto
//! another's. The historical `Vec::swap_remove` churn path moved the last
//! peer into the departed peer's index, a re-aliasing hazard that a
//! column store would have turned into silent state corruption; the
//! departure-stability test in `tests/churn_and_failures.rs` pins the
//! fixed behaviour.

use rand::rngs::StdRng;

use rths_core::{Learner, LearnerSlab, RecencyMode, RthsConfig};
use rths_obs::{self as obs, Counter, Gauge, ObsScratch, Phase};
use rths_par::par_sharded;
use rths_stoch::rng::entity_rng;

use crate::config::{Algorithm, AnyLearner, LearnerSpec};
use crate::regret::{self, RegretLedger};

/// Sentinel for "no helper chosen yet" in the `last_helper` column.
pub const NO_HELPER: u32 = u32::MAX;

/// One peer's learner in the store: the default RTHS algorithm keeps its
/// whole state in the store's [`LearnerSlab`] at the peer's slot (the
/// shared per-channel [`RthsConfig`] lives once on the store), so the
/// common case's cell is a unit tag; other algorithms stay self-contained
/// and are boxed.
#[derive(Debug, Clone)]
pub enum LearnerCell {
    /// Slab-backed recursive-RTHS state (the default algorithm); the
    /// state lives at the same slot of the store's learner slab.
    Rths,
    /// Any other algorithm, boxed.
    Boxed(Box<AnyLearner>),
}

/// Read-only view of one peer's learner, dispatching between the slab
/// column and a boxed cell (final reporting, tests).
#[derive(Debug, Clone, Copy)]
pub struct LearnerRef<'a> {
    store: &'a PeerStore,
    slot: usize,
}

impl LearnerRef<'_> {
    /// The current mixed strategy.
    pub fn probabilities(&self) -> &[f64] {
        match &self.store.learners[self.slot] {
            LearnerCell::Rths => self.store.slab.probabilities(self.slot),
            LearnerCell::Boxed(learner) => learner.probabilities(),
        }
    }

    /// Stages observed so far.
    pub fn stage(&self) -> u64 {
        match &self.store.learners[self.slot] {
            LearnerCell::Rths => self.store.slab.stage(self.slot),
            LearnerCell::Boxed(learner) => learner.stage(),
        }
    }
}

/// Thread-affine per-shard scratch, owned by one shard for the duration
/// of a phase and reused across epochs (capacity is retained).
#[derive(Debug, Default)]
pub struct ShardScratch {
    /// The shard's private load histogram (indexing is engine-defined:
    /// `helper` for the single-channel engine, `helper·k + channel` for
    /// the multi-channel engine). Integer counts, so the post-phase merge
    /// in shard order is order-insensitive.
    pub loads: Vec<usize>,
    /// Regret-row scratch shared by the shard's compact learners.
    row: Vec<f64>,
    /// Diagonal scratch for the shard's slab `max_regret` scans.
    diag: Vec<f64>,
    /// Shard-local maximum of the learners' internal regret estimates.
    worst_estimate: f64,
    /// Shard-local maximum of the peers' empirical regrets.
    worst_empirical: f64,
    /// Shard-affine observability scratch (spans + counter deltas),
    /// absorbed into the global registry in shard-index order after the
    /// join. Only touched when tracing is enabled, so the disabled path
    /// stays byte-identical to the pre-observability store.
    obs: ObsScratch,
}

/// The sharded SoA peer population. See the module docs for layout and
/// determinism contract.
#[derive(Debug)]
pub struct PeerStore {
    seed: u64,
    spec: LearnerSpec,
    rate_scale: f64,
    /// Learner action count per channel (`max(1)`-floored, matching the
    /// engines' historical instantiation).
    actions: Vec<u32>,
    /// Shared learner config per channel, used by the compact RTHS cells.
    configs: Vec<RthsConfig>,
    /// Stretch-folded true-regret accounting (slot-aligned columns plus
    /// the global per-channel join-rate prefix and snapshot ring) — see
    /// [`crate::regret`] for the invariant. Replaces the historical
    /// dense `O(n·m²)` per-peer regret matrices.
    regret: RegretLedger,
    /// Fixed shard count for tests/benches; `None` derives it from
    /// [`rths_par::threads`] per phase.
    shard_override: Option<usize>,
    next_id: u64,
    /// Arena of slab-backed learner state in **slot-aligned mode**: slab
    /// slot `i` is peer slot `i` (every spawn allocates a slab slot even
    /// for boxed algorithms so the alignment never drifts), and
    /// departures run the slab's order-preserving compaction alongside
    /// the column compaction below.
    slab: LearnerSlab,
    /// Slab free-list reuses already mirrored into the observability
    /// registry (the slab's counter is cumulative; the registry wants
    /// per-run deltas).
    reuses_reported: u64,
    // === index-aligned SoA columns ===
    ids: Vec<u64>,
    channels: Vec<u32>,
    joined_at: Vec<u64>,
    rngs: Vec<StdRng>,
    learners: Vec<LearnerCell>,
    total_rate: Vec<f64>,
    epochs_online: Vec<u64>,
    epochs_served: Vec<u64>,
    satisfied_epochs: Vec<u64>,
    /// Last chosen helper ([`NO_HELPER`] before the first choice).
    last_helper: Vec<u32>,
    switches: Vec<u64>,
}

impl PeerStore {
    /// Creates an empty store for peers learning over `actions_per_channel`
    /// helper sets (one entry per channel; single-channel engines pass one
    /// entry).
    ///
    /// # Panics
    ///
    /// Panics if the learner spec is invalid or no channel is given.
    pub fn new(
        seed: u64,
        spec: LearnerSpec,
        rate_scale: f64,
        actions_per_channel: &[usize],
    ) -> Self {
        assert!(!actions_per_channel.is_empty(), "need at least one channel");
        let actions: Vec<u32> = actions_per_channel.iter().map(|&m| m.max(1) as u32).collect();
        let configs: Vec<RthsConfig> = actions
            .iter()
            .map(|&m| {
                spec.rths_config(m as usize, rate_scale)
                    .expect("learner spec validated by construction")
            })
            .collect();
        let stride = actions.iter().copied().max().unwrap_or(1) as usize;
        Self {
            seed,
            spec,
            rate_scale,
            actions,
            configs,
            regret: RegretLedger::new(actions_per_channel),
            shard_override: None,
            next_id: 0,
            slab: LearnerSlab::new(stride),
            reuses_reported: 0,
            ids: Vec::new(),
            channels: Vec::new(),
            joined_at: Vec::new(),
            rngs: Vec::new(),
            learners: Vec::new(),
            total_rate: Vec::new(),
            epochs_online: Vec::new(),
            epochs_served: Vec::new(),
            satisfied_epochs: Vec::new(),
            last_helper: Vec::new(),
            switches: Vec::new(),
        }
    }

    /// Pre-creates zeroed backing storage for `additional` more peers.
    /// Call on a freshly built store before the bulk spawn loop: the
    /// learner slab gets its whole T/probs/freq region as one lazily
    /// mapped `alloc_zeroed` (pages commit only as columns are written),
    /// so constructing 10⁵ peers is a handful of large allocations
    /// instead of a per-peer allocation storm.
    pub fn reserve(&mut self, additional: usize) {
        self.slab.reserve(additional);
        self.ids.reserve(additional);
        self.channels.reserve(additional);
        self.joined_at.reserve(additional);
        self.rngs.reserve(additional);
        self.learners.reserve(additional);
        self.total_rate.reserve(additional);
        self.epochs_online.reserve(additional);
        self.epochs_served.reserve(additional);
        self.satisfied_epochs.reserve(additional);
        self.last_helper.reserve(additional);
        self.switches.reserve(additional);
    }

    /// Online peers.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Pins the shard count (tests/benches); `None` restores the default
    /// (derived from [`rths_par::threads`] per phase). Results are
    /// bit-identical at any setting.
    pub fn set_shards(&mut self, shards: Option<usize>) {
        assert!(shards != Some(0), "shard count must be positive");
        self.shard_override = shards;
    }

    /// Learner action count on `channel`.
    pub fn actions_on(&self, channel: usize) -> usize {
        self.actions[channel] as usize
    }

    /// The shared learner config of `channel`.
    pub fn config_of(&self, channel: usize) -> &RthsConfig {
        &self.configs[channel]
    }

    /// Spawns a peer on `channel` at `epoch`, returning its stable id.
    /// The peer's RNG stream is derived from `(seed, id)`, so it is
    /// independent of slot position and churn history.
    pub fn spawn(&mut self, channel: usize, epoch: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let m = self.actions[channel] as usize;
        // Always claim the matching slab slot (even for boxed learners)
        // so slab slots and store slots stay index-aligned.
        let slab_slot = self.slab.alloc(m);
        debug_assert_eq!(slab_slot as usize, self.ids.len(), "slab slot misaligned");
        self.ids.push(id);
        self.channels.push(channel as u32);
        self.joined_at.push(epoch);
        self.rngs.push(entity_rng(self.seed, id));
        self.learners.push(match self.spec.algorithm {
            Algorithm::Rths => LearnerCell::Rths,
            _ => LearnerCell::Boxed(Box::new(
                self.spec
                    .instantiate(m, self.rate_scale)
                    .expect("learner spec validated by construction"),
            )),
        });
        self.total_rate.push(0.0);
        self.epochs_online.push(0);
        self.epochs_served.push(0);
        self.satisfied_epochs.push(0);
        self.last_helper.push(NO_HELPER);
        self.switches.push(0);
        self.regret.add_peer();
        id
    }

    /// Removes the peers in `slots` (slot indices, any order, no
    /// duplicates), compacting every column **order-preservingly**:
    /// surviving peers keep their relative order and their entire row —
    /// id, RNG stream, learner state, regret row, accounting — exactly as
    /// it was. `slots` is sorted in place.
    ///
    /// # Panics
    ///
    /// Panics if a slot is out of range or duplicated.
    pub fn remove_slots(&mut self, slots: &mut [u32]) {
        if slots.is_empty() {
            return;
        }
        let n = self.len();
        slots.sort_unstable();
        assert!((slots[slots.len() - 1] as usize) < n, "slot out of range");
        assert!(slots.windows(2).all(|w| w[0] != w[1]), "duplicate slot");

        let mut next = 0usize;
        let mut write = 0usize;
        for read in 0..n {
            if next < slots.len() && slots[next] as usize == read {
                next += 1;
                continue;
            }
            if write != read {
                self.ids.swap(write, read);
                self.channels.swap(write, read);
                self.joined_at.swap(write, read);
                self.rngs.swap(write, read);
                self.learners.swap(write, read);
                self.total_rate.swap(write, read);
                self.epochs_online.swap(write, read);
                self.epochs_served.swap(write, read);
                self.satisfied_epochs.swap(write, read);
                self.last_helper.swap(write, read);
                self.switches.swap(write, read);
            }
            write += 1;
        }
        self.ids.truncate(write);
        self.channels.truncate(write);
        self.joined_at.truncate(write);
        self.rngs.truncate(write);
        self.learners.truncate(write);
        self.total_rate.truncate(write);
        self.epochs_online.truncate(write);
        self.epochs_served.truncate(write);
        self.satisfied_epochs.truncate(write);
        self.last_helper.truncate(write);
        self.switches.truncate(write);
        // The slab mirrors the column compaction (same order-preserving
        // write-cursor walk), keeping slab slots == store slots.
        self.slab.remove_slots(slots);
        // The ledger compacts its own columns (open stretches fold into
        // nothing for departed peers and stay valid for survivors — the
        // ledger's global prefix/ring state is slot-independent).
        self.regret.remove_slots(slots);
    }

    /// Moves peer `slot` to `channel`, restarting its learner on the new
    /// channel's action set (the peer keeps its identity, RNG stream and
    /// accounting). The true-regret row is *not* touched here: it resets
    /// lazily at the next record if the action count actually changed
    /// (see `regret_len`), so a round-trip migration back to a
    /// same-arity channel keeps its regret history — the historical
    /// semantics.
    pub fn set_channel(&mut self, slot: usize, channel: usize) {
        let new_m = self.actions[channel] as usize;
        // Fold the open stretch against the *old* channel's join-rate
        // prefix before the move — the stretch was accumulated there.
        self.regret.migrate(slot, self.channels[slot] as usize);
        self.channels[slot] = channel as u32;
        match &mut self.learners[slot] {
            LearnerCell::Rths => self.slab.reset_actions(slot, new_m),
            LearnerCell::Boxed(learner) => learner.reset_actions(new_m),
        }
        self.last_helper[slot] = NO_HELPER;
    }

    /// The shard count a phase over `len` items uses right now. Besides
    /// the small-input inline cutoff, workers are capped so each shard
    /// keeps at least [`rths_par::MIN_ITEMS_PER_WORKER`] peers — below
    /// that, spawn overhead exceeds the per-peer phase work and
    /// `BENCH_sim.json` showed multi-thread runs *slower* than
    /// sequential for every population ≤ 4×10³. Results are bit-identical
    /// at any shard count, so the cap is pure scheduling.
    fn shards_for(&self, len: usize) -> usize {
        match self.shard_override {
            Some(n) => n.min(len).max(1),
            // Populations below MIN_ITEMS_PER_WORKER (which subsumes the
            // old MIN_PARALLEL_ITEMS cutoff) collapse to one shard.
            None => rths_par::threads().min(len / rths_par::MIN_ITEMS_PER_WORKER).max(1),
        }
    }

    /// Ensures one scratch slot per shard with a zeroed `loads` histogram
    /// of `loads_len` buckets and reset metric maxima.
    fn prepare_scratch(scratch: &mut Vec<ShardScratch>, shards: usize, loads_len: usize) {
        if scratch.len() < shards {
            scratch.resize_with(shards, ShardScratch::default);
        }
        for s in scratch.iter_mut().take(shards) {
            s.loads.clear();
            s.loads.resize(loads_len, 0);
            s.worst_estimate = 0.0;
            s.worst_empirical = 0.0;
        }
    }

    /// The **choose** phase: every peer samples its learner's mixed
    /// strategy from its own RNG stream and the switch accounting is
    /// updated; `profile[i]` receives the choice (a learner-local action
    /// index). `account` runs once per peer inside its shard with
    /// `(index, choice, channel, aux_slot, shard_loads)` and accumulates
    /// the shard-affine load histogram (and, for the multi-channel
    /// engine, the global helper index in `aux`). After the phase the
    /// per-shard histograms are summed into `loads` in shard order.
    pub fn choose_phase(
        &mut self,
        profile: &mut [u32],
        aux: &mut [u32],
        loads: &mut Vec<usize>,
        loads_len: usize,
        scratch: &mut Vec<ShardScratch>,
        account: impl Fn(usize, u32, u32, &mut u32, &mut [usize]) + Sync,
    ) {
        let n = self.len();
        assert_eq!(profile.len(), n, "profile column must be index-aligned");
        assert_eq!(aux.len(), n, "aux column must be index-aligned");
        let shards = self.shards_for(n);
        Self::prepare_scratch(scratch, shards, loads_len);
        let PeerStore { learners, rngs, last_helper, switches, channels, slab, .. } = self;
        let channels = &*channels;
        par_sharded(
            n,
            shards,
            (
                (&mut learners[..], &mut rngs[..]),
                (&mut last_helper[..], &mut switches[..]),
                (profile, aux),
                slab.split(),
            ),
            &mut scratch[..],
            |shard, ((learners, rngs), (last, switches), (profile, aux), mut slab), s| {
                for i in 0..shard.len() {
                    let choice = match &mut learners[i] {
                        LearnerCell::Rths => slab.select_action(i, &mut rngs[i]),
                        LearnerCell::Boxed(l) => l.select_action(&mut rngs[i]),
                    } as u32;
                    if last[i] != NO_HELPER && last[i] != choice {
                        switches[i] += 1;
                    }
                    last[i] = choice;
                    profile[i] = choice;
                    let abs = shard.start + i;
                    account(abs, choice, channels[abs], &mut aux[i], &mut s.loads);
                }
            },
        );
        loads.clear();
        loads.resize(loads_len, 0);
        for s in scratch.iter().take(shards) {
            for (total, &part) in loads.iter_mut().zip(&s.loads) {
                *total += part;
            }
        }
    }

    /// The **observe** phase: every peer's realized rate is computed by
    /// `rate_of(index, profile[index], channel) -> (rate, satisfied)`,
    /// fed to its learner (bandit feedback), accumulated into the
    /// accounting columns and the stretch-folded true-regret ledger
    /// (against the channel's counterfactual join rates in
    /// `join_rates[join_offsets[c]..join_offsets[c + 1]]` — see
    /// [`crate::regret`]), and written to `delivered[index]`. Returns
    /// the epoch's `(worst_regret_estimate, worst_empirical_regret)`,
    /// folded per-shard and merged in shard order (max over non-negative
    /// values — order-insensitive, so bit-identical at any shard count).
    ///
    /// `track_estimate` controls the first element: deriving a learner's
    /// internal regret estimate is an `O(m²)` scan of its proxy matrix
    /// per peer per epoch, so callers that do not record the series (the
    /// multi-channel engine) pass `false` and receive `0.0`.
    #[allow(clippy::too_many_arguments)]
    pub fn observe_phase(
        &mut self,
        profile: &[u32],
        delivered: &mut [f64],
        join_offsets: &[usize],
        join_rates: &[f64],
        scratch: &mut Vec<ShardScratch>,
        track_estimate: bool,
        rate_of: impl Fn(usize, u32, u32) -> (f64, bool) + Sync,
    ) -> (f64, f64) {
        let n = self.len();
        assert_eq!(profile.len(), n, "profile column must be index-aligned");
        assert_eq!(delivered.len(), n, "delivered column must be index-aligned");
        let shards = self.shards_for(n);
        Self::prepare_scratch(scratch, shards, 0);
        // With the default algorithm in exponential-recency mode, every
        // slab slot observes exactly once per phase, so the per-observe
        // T-decay hoists into one batched column sweep per shard
        // (bit-identical — pinned by the slab's oracle tests).
        let batch_decay = matches!(self.spec.algorithm, Algorithm::Rths)
            && self.configs[0].recency() == RecencyMode::Exponential;
        let keep = 1.0 - self.configs[0].epsilon();
        let PeerStore {
            learners,
            total_rate,
            epochs_online,
            epochs_served,
            satisfied_epochs,
            regret,
            channels,
            configs,
            slab,
            ..
        } = self;
        let channels = &*channels;
        let configs = &*configs;
        // One global prefix update for the whole population, then the
        // per-peer record is O(1) amortized (an O(m) row write only when
        // a stretch closes — arm switch or window fold).
        let tracing = obs::enabled();
        let t_fold = obs::span_start();
        regret.advance_epoch(join_offsets, join_rates);
        if let Some(t) = t_fold {
            obs::span_end(Phase::RegretFold, obs::current_epoch(), t);
        }
        let (ledger_cols, ledger_ctx) = regret.split();
        par_sharded(
            n,
            shards,
            (
                (&mut learners[..], &mut total_rate[..], &mut epochs_online[..]),
                (&mut epochs_served[..], &mut satisfied_epochs[..], delivered),
                ledger_cols,
                slab.split(),
            ),
            &mut scratch[..],
            |shard,
             ((learners, total, online), (served, sat, out), mut ledger, mut slab),
             s| {
                if batch_decay {
                    let t_decay = obs::span_start();
                    let touched = slab.decay(keep);
                    if tracing {
                        s.obs.add(Counter::SlabColumnsTouched, touched);
                        if let Some(t) = t_decay {
                            s.obs.spans.record(Phase::SlabDecay, t);
                        }
                    }
                }
                let t_observe = obs::span_start();
                let mut folds = 0u64;
                for i in 0..shard.len() {
                    let abs = shard.start + i;
                    let channel = channels[abs];
                    let config = &configs[channel as usize];
                    let (rate, satisfied) = rate_of(abs, profile[abs], channel);
                    // Bandit feedback + accounting (Peer::deliver order).
                    match &mut learners[i] {
                        LearnerCell::Rths if batch_decay => {
                            slab.observe_predecayed(i, config, rate, &mut s.row)
                        }
                        LearnerCell::Rths => slab.observe(i, config, rate, &mut s.row),
                        LearnerCell::Boxed(l) => l.observe(rate),
                    }
                    total[i] += rate;
                    online[i] += 1;
                    if rate > 0.0 {
                        served[i] += 1;
                    }
                    if satisfied {
                        sat[i] += 1;
                    }
                    // Stretch-folded true regret against the channel's
                    // counterfactual join rates (lazy arity reset on
                    // channel migration — the historical semantics).
                    let worst = regret::record_counted(
                        &mut ledger,
                        &ledger_ctx,
                        i,
                        channel as usize,
                        profile[abs] as usize,
                        rate,
                        &mut folds,
                    );
                    // Shard-affine metric folds (non-negative maxima).
                    if track_estimate {
                        let estimate = match &mut learners[i] {
                            LearnerCell::Rths => slab.max_regret(i, config, &mut s.diag),
                            LearnerCell::Boxed(l) => l.max_regret(),
                        };
                        s.worst_estimate = s.worst_estimate.max(estimate);
                    }
                    s.worst_empirical = s.worst_empirical.max(worst);
                    out[i] = rate;
                }
                if tracing {
                    if let Some(t) = t_observe {
                        s.obs.spans.record(Phase::SlabObserve, t);
                    }
                    if folds > 0 {
                        s.obs.add(Counter::StretchFolds, folds);
                    }
                }
            },
        );
        if tracing {
            let epoch = obs::current_epoch();
            for (i, s) in scratch.iter_mut().enumerate().take(shards) {
                obs::absorb_scratch(i as u32 + 1, epoch, &mut s.obs);
            }
            let reuses = self.slab.free_list_reuses();
            obs::counter_add(Counter::FreeListReuse, reuses - self.reuses_reported);
            self.reuses_reported = reuses;
            obs::gauge_max(Gauge::SlabRowsHwm, n as u64);
        }
        let mut worst_estimate = 0.0f64;
        let mut worst_empirical = 0.0f64;
        for s in scratch.iter().take(shards) {
            worst_estimate = worst_estimate.max(s.worst_estimate);
            worst_empirical = worst_empirical.max(s.worst_empirical);
        }
        (worst_estimate, worst_empirical)
    }

    // === per-peer accessors (final reporting, tests) ===

    /// Stable id of the peer in `slot`.
    pub fn id(&self, slot: usize) -> u64 {
        self.ids[slot]
    }

    /// Slot of the peer with `id`, if online. Ids are monotone at spawn
    /// and removal is order-preserving, so the column is always sorted —
    /// this is a binary search.
    pub fn slot_of(&self, id: u64) -> Option<usize> {
        debug_assert!(self.ids.windows(2).all(|w| w[0] < w[1]), "ids column not sorted");
        self.ids.binary_search(&id).ok()
    }

    /// Stable ids in slot order.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Channel of the peer in `slot`.
    pub fn channel(&self, slot: usize) -> usize {
        self.channels[slot] as usize
    }

    /// Epoch the peer in `slot` joined.
    pub fn joined_at(&self, slot: usize) -> u64 {
        self.joined_at[slot]
    }

    /// Lifetime mean received rate of the peer in `slot` (kbps).
    pub fn mean_rate(&self, slot: usize) -> f64 {
        if self.epochs_online[slot] == 0 {
            0.0
        } else {
            self.total_rate[slot] / self.epochs_online[slot] as f64
        }
    }

    /// Streaming continuity index of the peer in `slot`.
    pub fn continuity(&self, slot: usize) -> f64 {
        if self.epochs_online[slot] == 0 {
            1.0
        } else {
            self.satisfied_epochs[slot] as f64 / self.epochs_online[slot] as f64
        }
    }

    /// Helper switches of the peer in `slot` (QoE interruption proxy).
    pub fn switches(&self, slot: usize) -> u64 {
        self.switches[slot]
    }

    /// Total helper switches across the population.
    pub fn total_switches(&self) -> u64 {
        self.switches.iter().sum()
    }

    /// Time-averaged worst true regret of the peer in `slot`.
    pub fn empirical_regret(&self, slot: usize) -> f64 {
        self.regret.peer_max(slot, self.channels[slot] as usize)
    }

    /// Recorded regret epochs of the peer in `slot` (the time-average
    /// divisor; resets when the action-set arity changes).
    pub fn regret_stages(&self, slot: usize) -> u64 {
        self.regret.stages(slot)
    }

    /// The learner of the peer in `slot`.
    pub fn learner(&self, slot: usize) -> LearnerRef<'_> {
        assert!(slot < self.learners.len(), "slot out of range");
        LearnerRef { store: self, slot }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LearnerSpec;

    fn store(channels: &[usize]) -> PeerStore {
        PeerStore::new(7, LearnerSpec::default(), 400.0, channels)
    }

    #[test]
    fn spawn_assigns_monotone_ids_and_fresh_state() {
        let mut s = store(&[3]);
        assert!(s.is_empty());
        let a = s.spawn(0, 0);
        let b = s.spawn(0, 5);
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.ids(), &[0, 1]);
        assert_eq!(s.joined_at(1), 5);
        assert_eq!(s.mean_rate(0), 0.0);
        assert_eq!(s.continuity(0), 1.0);
        assert_eq!(s.switches(0), 0);
        assert_eq!(s.learner(0).probabilities(), &[1.0 / 3.0; 3]);
    }

    #[test]
    fn remove_slots_preserves_survivor_order_and_identity() {
        let mut s = store(&[2]);
        for _ in 0..6 {
            s.spawn(0, 0);
        }
        let mut slots = vec![4u32, 1, 2];
        s.remove_slots(&mut slots);
        assert_eq!(s.len(), 3);
        assert_eq!(s.ids(), &[0, 3, 5], "survivors must keep insertion order");
        assert_eq!(s.slot_of(3), Some(1));
        assert_eq!(s.slot_of(4), None);
        // Spawning after churn continues the id sequence (never reuses).
        let next = s.spawn(0, 9);
        assert_eq!(next, 6);
    }

    #[test]
    #[should_panic(expected = "slot out of range")]
    fn remove_slots_rejects_bad_slot() {
        let mut s = store(&[2]);
        s.spawn(0, 0);
        s.remove_slots(&mut [3]);
    }

    #[test]
    #[should_panic(expected = "duplicate slot")]
    fn remove_slots_rejects_duplicates() {
        let mut s = store(&[2]);
        s.spawn(0, 0);
        s.spawn(0, 0);
        s.remove_slots(&mut [1, 1]);
    }

    #[test]
    fn set_channel_resets_learner_lazily_keeps_same_arity_regret() {
        let mut s = store(&[2, 2, 4]);
        s.spawn(0, 0);
        // Record one epoch of regret on channel 0 by driving the phases.
        let mut profile = vec![0u32; 1];
        let mut aux = vec![0u32; 1];
        let (mut loads, mut scratch, mut delivered) = (Vec::new(), Vec::new(), vec![0.0; 1]);
        // Full per-channel join layout every epoch (channels [2, 2, 4]
        // → offsets [0, 2, 4, 8]), as the engines emit it; channels
        // without viewers carry zero join rates.
        let offs = [0usize, 2, 4, 8];
        let mut step = |s: &mut PeerStore, join: &[f64]| {
            s.choose_phase(
                &mut profile,
                &mut aux,
                &mut loads,
                4,
                &mut scratch,
                |_, a, _, _, l| l[a as usize] += 1,
            );
            s.observe_phase(
                &profile,
                &mut delivered,
                &offs,
                join,
                &mut scratch,
                true,
                |_, _, _| (10.0, true),
            );
        };
        step(&mut s, &[900.0, 50.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let recorded = s.empirical_regret(0);
        assert!(recorded > 0.0, "no regret recorded");
        // Round-trip through a same-arity channel: learner restarts, but
        // the regret history survives (the historical lazy semantics —
        // the arity never changed as far as the row is concerned).
        s.set_channel(0, 1);
        assert_eq!(s.channel(0), 1);
        assert_eq!(s.learner(0).probabilities(), &[0.5; 2]);
        assert_eq!(s.empirical_regret(0), recorded, "same-arity migration lost history");
        step(&mut s, &[0.0, 0.0, 900.0, 50.0, 0.0, 0.0, 0.0, 0.0]);
        assert!(s.empirical_regret(0) > 0.0);
        // Different arity: the row resets at the *next record*, not at
        // migration time.
        s.set_channel(0, 2);
        assert_eq!(s.learner(0).probabilities(), &[0.25; 4]);
        assert!(s.empirical_regret(0) > 0.0, "reset should be lazy");
        step(&mut s, &[0.0, 0.0, 0.0, 0.0, 900.0, 500.0, 100.0, 50.0]);
        // One fresh stage on the new 4-action row.
        assert_eq!(s.regret_stages(0), 1, "arity change must restart the stage clock");
    }

    #[test]
    fn phases_run_identically_at_any_shard_count() {
        // A miniature epoch loop driven straight against the store: the
        // choose/observe trajectories must be bit-identical at 1, 2, 4
        // and 7 shards (the engine-level sweep lives in tests/).
        let run = |shards: usize| {
            let mut s = store(&[3]);
            for _ in 0..40 {
                s.spawn(0, 0);
            }
            s.set_shards(Some(shards));
            let mut profile = vec![0u32; 40];
            let mut aux = vec![0u32; 40];
            let mut loads = Vec::new();
            let mut scratch = Vec::new();
            let mut delivered = vec![0.0; 40];
            let mut stats = Vec::new();
            for _ in 0..30 {
                s.choose_phase(
                    &mut profile,
                    &mut aux,
                    &mut loads,
                    3,
                    &mut scratch,
                    |_, choice, _, _, loads| loads[choice as usize] += 1,
                );
                let shares: Vec<f64> = loads
                    .iter()
                    .map(|&l| if l == 0 { 0.0 } else { 900.0 / l as f64 })
                    .collect();
                let join: Vec<f64> = loads.iter().map(|&l| 900.0 / (l + 1) as f64).collect();
                let shares_ref = &shares;
                let (est, emp) = s.observe_phase(
                    &profile,
                    &mut delivered,
                    &[0, 3],
                    &join,
                    &mut scratch,
                    true,
                    |_, a, _| (shares_ref[a as usize], true),
                );
                stats.push((est.to_bits(), emp.to_bits()));
            }
            let probs: Vec<u64> = (0..40)
                .flat_map(|i| s.learner(i).probabilities().to_vec())
                .map(f64::to_bits)
                .collect();
            (stats, probs, delivered.iter().map(|r| r.to_bits()).collect::<Vec<_>>())
        };
        let base = run(1);
        for shards in [2usize, 4, 7] {
            assert_eq!(run(shards), base, "diverged at {shards} shards");
        }
    }
}
