//! Viewer peers.
//!
//! [`Peer`] is the standalone per-peer view: one struct owning its
//! learner, RNG stream and accounting. The simulation engines hold their
//! populations in the sharded SoA [`crate::store::PeerStore`] instead;
//! this type remains the unit the `rths_net` protocol machines host one
//! actor at a time (`PeerMachine`), where a self-contained struct is the
//! right shape.

use rand::rngs::StdRng;

use rths_core::Learner;

use crate::config::AnyLearner;

/// Stable identifier of a peer within a simulation (never reused, even
/// across churn).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PeerId(pub u64);

impl std::fmt::Display for PeerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "peer-{}", self.0)
    }
}

/// A viewing peer: owns its decentralized learner and its private RNG
/// stream (so churn never perturbs other peers' randomness), plus
/// accumulators for per-peer reporting (Fig. 4).
#[derive(Debug)]
pub struct Peer {
    id: PeerId,
    learner: AnyLearner,
    rng: StdRng,
    channel: usize,
    joined_at: u64,
    total_rate: f64,
    epochs_served: u64,
    epochs_online: u64,
    satisfied_epochs: u64,
    last_helper: Option<usize>,
    switches: u64,
}

impl Peer {
    /// Creates a peer joining at `joined_at` on `channel`.
    pub fn new(
        id: PeerId,
        learner: AnyLearner,
        rng: StdRng,
        channel: usize,
        joined_at: u64,
    ) -> Self {
        Self {
            id,
            learner,
            rng,
            channel,
            joined_at,
            total_rate: 0.0,
            epochs_served: 0,
            epochs_online: 0,
            satisfied_epochs: 0,
            last_helper: None,
            switches: 0,
        }
    }

    /// Stable id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The channel this peer watches (0 in single-channel systems).
    pub fn channel(&self) -> usize {
        self.channel
    }

    /// Switches the peer to another channel, resetting its learner for
    /// the new action set.
    pub fn set_channel(&mut self, channel: usize, num_actions: usize) {
        self.channel = channel;
        self.learner.reset_actions(num_actions);
        self.last_helper = None;
    }

    /// Epoch the peer joined.
    pub fn joined_at(&self) -> u64 {
        self.joined_at
    }

    /// Immutable learner access.
    pub fn learner(&self) -> &AnyLearner {
        &self.learner
    }

    /// Mutable learner access (used by churn handling).
    pub fn learner_mut(&mut self) -> &mut AnyLearner {
        &mut self.learner
    }

    /// Samples this epoch's helper choice from the learner.
    pub fn choose_helper(&mut self) -> usize {
        let choice = self.learner.select_action(&mut self.rng);
        if let Some(prev) = self.last_helper {
            if prev != choice {
                self.switches += 1;
            }
        }
        self.last_helper = Some(choice);
        choice
    }

    /// Delivers this epoch's realized rate to the learner and updates the
    /// peer's accounting. `satisfied` means the rate met the demand (or
    /// there was no demand).
    pub fn deliver(&mut self, rate: f64, satisfied: bool) {
        self.learner.observe(rate);
        self.total_rate += rate;
        self.epochs_online += 1;
        if rate > 0.0 {
            self.epochs_served += 1;
        }
        if satisfied {
            self.satisfied_epochs += 1;
        }
    }

    /// Lifetime mean received rate (kbps).
    pub fn mean_rate(&self) -> f64 {
        if self.epochs_online == 0 {
            0.0
        } else {
            self.total_rate / self.epochs_online as f64
        }
    }

    /// Fraction of online epochs where the demand was fully met — the
    /// streaming continuity index.
    pub fn continuity(&self) -> f64 {
        if self.epochs_online == 0 {
            1.0
        } else {
            self.satisfied_epochs as f64 / self.epochs_online as f64
        }
    }

    /// Number of helper switches — the QoE interruption proxy.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Epochs the peer has been online.
    pub fn epochs_online(&self) -> u64 {
        self.epochs_online
    }

    /// Largest internal regret estimate of the peer's learner.
    pub fn max_regret(&self) -> f64 {
        self.learner.max_regret()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LearnerSpec;
    use rand::SeedableRng;

    fn peer(seed: u64) -> Peer {
        let learner = LearnerSpec::default().instantiate(3, 800.0).unwrap();
        Peer::new(PeerId(7), learner, StdRng::seed_from_u64(seed), 0, 5)
    }

    #[test]
    fn new_peer_accounting_is_zeroed() {
        let p = peer(1);
        assert_eq!(p.id(), PeerId(7));
        assert_eq!(p.joined_at(), 5);
        assert_eq!(p.mean_rate(), 0.0);
        assert_eq!(p.continuity(), 1.0);
        assert_eq!(p.switches(), 0);
    }

    #[test]
    fn choose_then_deliver_updates_stats() {
        let mut p = peer(2);
        let h = p.choose_helper();
        assert!(h < 3);
        p.deliver(400.0, true);
        assert_eq!(p.mean_rate(), 400.0);
        assert_eq!(p.continuity(), 1.0);
        assert_eq!(p.epochs_online(), 1);
    }

    #[test]
    fn switches_are_counted() {
        let mut p = peer(3);
        let mut last = p.choose_helper();
        p.deliver(100.0, true);
        let mut expected = 0;
        for _ in 0..50 {
            let h = p.choose_helper();
            p.deliver(100.0, true);
            if h != last {
                expected += 1;
            }
            last = h;
        }
        assert_eq!(p.switches(), expected);
    }

    #[test]
    fn continuity_reflects_unsatisfied_epochs() {
        let mut p = peer(4);
        for i in 0..4 {
            let _ = p.choose_helper();
            p.deliver(100.0, i % 2 == 0);
        }
        assert_eq!(p.continuity(), 0.5);
    }

    #[test]
    fn set_channel_resets_learner() {
        let mut p = peer(5);
        let _ = p.choose_helper();
        p.deliver(10.0, true);
        p.set_channel(2, 5);
        assert_eq!(p.channel(), 2);
        assert_eq!(rths_core::Learner::num_actions(p.learner()), 5);
        // Switch counter must not fire on the first post-reset choice.
        let _ = p.choose_helper();
        p.deliver(10.0, true);
        assert_eq!(p.switches(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(PeerId(3).to_string(), "peer-3");
    }
}
