//! The streaming server.
//!
//! "When the sum of peers' streaming demands exceeds … helpers'
//! provisioned bandwidth, the surplus requests are referred to the
//! streaming server" (§IV). The server therefore absorbs every peer's
//! residual demand `max(0, d_i − r_i)`. Fig. 5 compares this actual load
//! with the **minimum bandwidth deficit**: the surplus that would remain
//! even if every helper's *minimum* bandwidth were fully utilized —
//! `max(0, Σ_i d_i − Σ_j C_j^min)`.

/// Per-epoch server accounting.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServerEpoch {
    /// Actual server load: `Σ_i max(0, d_i − r_i)` (kbps).
    pub load: f64,
    /// Minimum bandwidth deficit bound with helpers at their *minimum*
    /// levels: `max(0, Σ d − Σ C_min)`.
    pub min_deficit: f64,
    /// Deficit bound with the helpers' *current* capacities:
    /// `max(0, Σ d − Σ C(t))` — the tightest achievable load this epoch.
    pub current_deficit: f64,
}

/// The streaming server: computes and accumulates deficit loads.
#[derive(Debug, Clone, Default)]
pub struct StreamingServer {
    total_load: f64,
    epochs: u64,
    peak_load: f64,
}

impl StreamingServer {
    /// Creates an idle server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Settles one epoch.
    ///
    /// * `residuals` — per-peer unmet demand `max(0, d_i − r_i)`.
    /// * `total_demand` — `Σ_i d_i` this epoch.
    /// * `helper_min_capacity` — `Σ_j C_j^min`.
    /// * `helper_current_capacity` — `Σ_j C_j(t)`.
    ///
    /// # Panics
    ///
    /// Panics if any residual is negative or non-finite.
    pub fn settle_epoch(
        &mut self,
        residuals: &[f64],
        total_demand: f64,
        helper_min_capacity: f64,
        helper_current_capacity: f64,
    ) -> ServerEpoch {
        assert!(
            residuals.iter().all(|r| r.is_finite() && *r >= 0.0),
            "residual demands must be finite and non-negative"
        );
        let load: f64 = residuals.iter().sum();
        self.total_load += load;
        self.epochs += 1;
        self.peak_load = self.peak_load.max(load);
        ServerEpoch {
            load,
            min_deficit: (total_demand - helper_min_capacity).max(0.0),
            current_deficit: (total_demand - helper_current_capacity).max(0.0),
        }
    }

    /// Mean server load per epoch so far.
    pub fn mean_load(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.total_load / self.epochs as f64
        }
    }

    /// Largest single-epoch load so far.
    pub fn peak_load(&self) -> f64 {
        self.peak_load
    }

    /// Number of settled epochs.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settle_accumulates() {
        let mut s = StreamingServer::new();
        let e1 = s.settle_epoch(&[100.0, 0.0, 50.0], 1200.0, 1400.0, 1600.0);
        assert_eq!(e1.load, 150.0);
        assert_eq!(e1.min_deficit, 0.0);
        assert_eq!(e1.current_deficit, 0.0);
        let e2 = s.settle_epoch(&[300.0], 2000.0, 1400.0, 1600.0);
        assert_eq!(e2.load, 300.0);
        assert_eq!(e2.min_deficit, 600.0);
        assert_eq!(e2.current_deficit, 400.0);
        assert_eq!(s.mean_load(), 225.0);
        assert_eq!(s.peak_load(), 300.0);
        assert_eq!(s.epochs(), 2);
    }

    #[test]
    fn empty_epoch_is_free() {
        let mut s = StreamingServer::new();
        let e = s.settle_epoch(&[], 0.0, 100.0, 100.0);
        assert_eq!(e.load, 0.0);
        assert_eq!(s.mean_load(), 0.0);
    }

    #[test]
    fn deficit_bounds_are_ordered() {
        // current capacity >= min capacity, so current deficit <= min
        // deficit always.
        let mut s = StreamingServer::new();
        let e = s.settle_epoch(&[10.0], 3000.0, 2100.0, 2400.0);
        assert!(e.current_deficit <= e.min_deficit);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_residual_panics() {
        let mut s = StreamingServer::new();
        let _ = s.settle_epoch(&[-1.0], 0.0, 0.0, 0.0);
    }

    #[test]
    fn idle_server_reports_zero() {
        let s = StreamingServer::new();
        assert_eq!(s.mean_load(), 0.0);
        assert_eq!(s.peak_load(), 0.0);
        assert_eq!(s.epochs(), 0);
    }
}
