//! Video channels.
//!
//! Multi-channel systems (PPLive, UUSee — the paper's motivating
//! deployments) stream many live channels simultaneously; peers watch one
//! channel at a time and channel popularity is Zipf-distributed. The
//! single-channel evaluation of §IV uses one implicit channel; the
//! multi-channel extension ([`crate::multichannel`]) uses these
//! descriptors.

/// A live video channel.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Channel {
    id: usize,
    bitrate: f64,
}

impl Channel {
    /// Creates channel `id` with stream `bitrate` (kbps) — the per-peer
    /// demand of its viewers.
    ///
    /// # Panics
    ///
    /// Panics if `bitrate` is not positive and finite.
    pub fn new(id: usize, bitrate: f64) -> Self {
        assert!(bitrate > 0.0 && bitrate.is_finite(), "bitrate must be positive and finite");
        Self { id, bitrate }
    }

    /// Channel id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Stream bitrate (kbps).
    pub fn bitrate(&self) -> f64 {
        self.bitrate
    }
}

/// Builds `k` channels with identical `bitrate`.
///
/// # Panics
///
/// Panics if `k == 0` or bitrate is invalid.
pub fn uniform_channels(k: usize, bitrate: f64) -> Vec<Channel> {
    assert!(k > 0, "need at least one channel");
    (0..k).map(|id| Channel::new(id, bitrate)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_accessors() {
        let c = Channel::new(3, 450.0);
        assert_eq!(c.id(), 3);
        assert_eq!(c.bitrate(), 450.0);
    }

    #[test]
    fn uniform_channels_builds_k() {
        let cs = uniform_channels(4, 300.0);
        assert_eq!(cs.len(), 4);
        assert!(cs.iter().enumerate().all(|(i, c)| c.id() == i && c.bitrate() == 300.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bitrate_rejected() {
        let _ = Channel::new(0, 0.0);
    }
}
