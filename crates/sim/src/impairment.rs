//! Per-link impairments: bursty loss, rate limiting, and time-varying
//! link bandwidth/latency — shared by the simulator and both `rths_net`
//! backends.
//!
//! The paper's evaluation assumes clean links; the deployments motivating
//! it (PPLive/UUSee-style swarms) see bursty loss, rate-limited last
//! miles, and bandwidth that drifts on the timescale of minutes. An
//! [`ImpairmentPlan`] describes those effects declaratively:
//!
//! * [`LossModel`] — data-plane payload loss, either the legacy uniform
//!   model (bit-compatible with `rths_net`'s `FaultPlan`) or a per-link
//!   **Gilbert–Elliott** two-state burst process;
//! * [`TokenBucketSpec`] — a per-peer token bucket shaping delivered
//!   rates (an ISP-style rate limiter: bursts pass, sustained overuse is
//!   clipped to the refill rate);
//! * [`LinkBandwidthSpec`] — a per-link capacity ladder driven by the
//!   same sticky birth–death Markov chain the helpers' bandwidth
//!   processes use ([`rths_stoch::markov`]);
//! * [`LatencySpec`] — a Markov-modulated extra delivery delay, layered
//!   on the legacy uniform jitter. Like jitter, latency is absorbed by
//!   the epoch barrier and must never change results.
//!
//! # Determinism across backends
//!
//! Every stochastic decision here is a **pure function of
//! `(plan seed, link, epoch)`** — there is no RNG object to advance, so
//! the decisions cannot depend on evaluation order, thread count, or
//! which backend asks. Chains that are conceptually stateful (the
//! Gilbert–Elliott state, the bandwidth ladder) are made *seekable* by
//! block regeneration: at every [`REGEN_BLOCK`]-epoch boundary the state
//! is drawn fresh from the chain's stationary distribution (a hashed
//! uniform), then at most `REGEN_BLOCK − 1` transition steps — each
//! driven by a counter-derived hash — reach the queried epoch. Within a
//! block the process has exactly the chain's transition dynamics (bursts
//! survive), across blocks it is stationary, and any epoch's state costs
//! `O(REGEN_BLOCK)` to evaluate from nothing. That is what lets the
//! simulator, the thread-per-actor runtime, and the reactor agree
//! bit-for-bit at any `RTHS_THREADS`, and lets churn add or remove peers
//! without perturbing any other link's stream.
//!
//! The only stateful piece is the token bucket ([`LinkShaper`]): its
//! level depends only on the owning peer's own delivered-rate sequence,
//! which is itself identical across backends, so the state path is too.
//!
//! # Example
//!
//! ```
//! use rths_sim::impairment::ImpairmentPlan;
//!
//! let plan = ImpairmentPlan::builder(7)
//!     .gilbert_loss(0.05, 0.3, 0.8, 0.01)
//!     .token_bucket(600.0, 1200.0)
//!     .build()
//!     .unwrap();
//! // Pure function of (seed, link, epoch): ask as often as you like.
//! let lost = plan.is_lost(3, 1, 42);
//! assert_eq!(lost, plan.is_lost(3, 1, 42));
//! ```

use rths_stoch::rng::derive_seed;

/// Epochs between stationary re-draws of the seekable chains. Large
/// enough that bursts develop (mean bad-state sojourns in realistic
/// parameterizations are far shorter), small enough that random access
/// stays cheap.
pub const REGEN_BLOCK: u64 = 64;

// Distinct salts so every per-link decision stream is independent.
const SALT_LINK: u64 = 0x0011_A71C_E50F_u64;
const SALT_GE_INIT: u64 = 0x6E_1B_AD_01;
const SALT_GE_STEP: u64 = 0x6E_1B_AD_02;
const SALT_GE_DROP: u64 = 0x6E_1B_AD_03;
const SALT_BW_INIT: u64 = 0xBA_4D_01;
const SALT_BW_STEP: u64 = 0xBA_4D_02;
const SALT_LAT_INIT: u64 = 0x1A_7E_4C_01;
const SALT_LAT_STEP: u64 = 0x1A_7E_4C_02;

/// A rejected [`ImpairmentPlan`] field: which field, what it must
/// satisfy, and the offending value. Returned (never panicked) by
/// [`ImpairmentPlanBuilder::build`] and the `ScenarioSpec` parser.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpairmentError {
    field: &'static str,
    requirement: &'static str,
    value: String,
}

impl ImpairmentError {
    fn new(
        field: &'static str,
        requirement: &'static str,
        value: impl std::fmt::Debug,
    ) -> Self {
        Self { field, requirement, value: format!("{value:?}") }
    }

    /// Dotted path of the rejected field (e.g. `"loss.bad_loss"`).
    pub fn field(&self) -> &'static str {
        self.field
    }
}

impl std::fmt::Display for ImpairmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "impairment field `{}` {} (got {})", self.field, self.requirement, self.value)
    }
}

impl std::error::Error for ImpairmentError {}

/// Data-plane payload loss model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LossModel {
    /// No loss. **Default.**
    #[default]
    None,
    /// Uniform per-(peer, epoch) loss — the legacy `FaultPlan` model,
    /// bit-compatible with its hash stream (the link's helper does not
    /// enter the draw).
    Uniform {
        /// Loss probability in `[0, 1]`.
        loss: f64,
    },
    /// Per-link Gilbert–Elliott burst loss: a hidden good/bad channel
    /// state per `(peer, helper)` link, each state with its own drop
    /// probability. Bursty: consecutive epochs on the same link are
    /// correlated through the hidden state.
    GilbertElliott {
        /// P(good → bad) per epoch.
        p_enter_bad: f64,
        /// P(bad → good) per epoch.
        p_exit_bad: f64,
        /// Drop probability while the link is in the bad state.
        bad_loss: f64,
        /// Drop probability while the link is in the good state.
        good_loss: f64,
    },
}

/// Token-bucket rate limiter per peer (the peer's access link). One
/// epoch is one refill interval: a delivered rate of `r` kbps consumes
/// `r` kbits of tokens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenBucketSpec {
    /// Refill rate (kbits per epoch = sustainable kbps).
    pub rate_kbps: f64,
    /// Bucket depth (kbits): the largest burst that passes unshaped.
    pub burst_kbits: f64,
}

/// Per-link capacity ladder: each `(peer, helper)` link walks the level
/// ladder with a sticky birth–death chain (stationary `[1, 2, …, 2, 1]`
/// — the same dynamics as [`crate::BandwidthSpec::Ladder`]), capping the
/// rate the link can carry that epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkBandwidthSpec {
    /// Capacity levels (kbps), ordered low→high.
    pub levels: Vec<f64>,
    /// Probability of staying at the current level each epoch,
    /// in `[0, 1)`.
    pub stay: f64,
}

/// Markov-modulated extra delivery delay per actor (logical ticks on the
/// reactor's timer wheel, microseconds of sleep on the threaded
/// backend). Latency, like jitter, is absorbed by the epoch barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySpec {
    /// Delay levels (ticks/µs), ordered low→high.
    pub ticks: Vec<u64>,
    /// Probability of staying at the current level each epoch,
    /// in `[0, 1)`.
    pub stay: f64,
}

/// A validated, declarative link-impairment plan. Construct with
/// [`ImpairmentPlan::none`] or [`ImpairmentPlan::builder`]; invalid
/// parameters surface as [`ImpairmentError`]s, never panics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ImpairmentPlan {
    loss: LossModel,
    jitter_us: u64,
    latency: Option<LatencySpec>,
    token_bucket: Option<TokenBucketSpec>,
    link_bandwidth: Option<LinkBandwidthSpec>,
    seed: u64,
}

/// Builder for [`ImpairmentPlan`]; validation happens once in
/// [`build`](ImpairmentPlanBuilder::build).
#[derive(Debug, Clone, Default)]
pub struct ImpairmentPlanBuilder {
    plan: ImpairmentPlan,
}

impl ImpairmentPlanBuilder {
    /// Uniform (legacy `FaultPlan`-compatible) loss with probability
    /// `loss`.
    #[must_use]
    pub fn uniform_loss(mut self, loss: f64) -> Self {
        self.plan.loss = LossModel::Uniform { loss };
        self
    }

    /// Gilbert–Elliott bursty loss (see [`LossModel::GilbertElliott`]).
    #[must_use]
    pub fn gilbert_loss(
        mut self,
        p_enter_bad: f64,
        p_exit_bad: f64,
        bad_loss: f64,
        good_loss: f64,
    ) -> Self {
        self.plan.loss =
            LossModel::GilbertElliott { p_enter_bad, p_exit_bad, bad_loss, good_loss };
        self
    }

    /// Uniform timing jitter up to `jitter_us` µs per message.
    #[must_use]
    pub fn jitter_us(mut self, jitter_us: u64) -> Self {
        self.plan.jitter_us = jitter_us;
        self
    }

    /// Markov-modulated extra delivery latency.
    #[must_use]
    pub fn latency(mut self, ticks: Vec<u64>, stay: f64) -> Self {
        self.plan.latency = Some(LatencySpec { ticks, stay });
        self
    }

    /// Per-peer token-bucket rate limiting.
    #[must_use]
    pub fn token_bucket(mut self, rate_kbps: f64, burst_kbits: f64) -> Self {
        self.plan.token_bucket = Some(TokenBucketSpec { rate_kbps, burst_kbits });
        self
    }

    /// Per-link Markov bandwidth caps.
    #[must_use]
    pub fn link_bandwidth(mut self, levels: Vec<f64>, stay: f64) -> Self {
        self.plan.link_bandwidth = Some(LinkBandwidthSpec { levels, stay });
        self
    }

    /// Validates every field and returns the plan.
    ///
    /// # Errors
    ///
    /// Returns an [`ImpairmentError`] naming the first out-of-range
    /// field.
    pub fn build(self) -> Result<ImpairmentPlan, ImpairmentError> {
        let plan = self.plan;
        match plan.loss {
            LossModel::None => {}
            LossModel::Uniform { loss } => probability("loss", loss)?,
            LossModel::GilbertElliott { p_enter_bad, p_exit_bad, bad_loss, good_loss } => {
                probability("loss.p_enter_bad", p_enter_bad)?;
                probability("loss.p_exit_bad", p_exit_bad)?;
                probability("loss.bad_loss", bad_loss)?;
                probability("loss.good_loss", good_loss)?;
            }
        }
        if let Some(tb) = &plan.token_bucket {
            positive_finite("token_bucket.rate_kbps", tb.rate_kbps)?;
            positive_finite("token_bucket.burst_kbits", tb.burst_kbits)?;
        }
        if let Some(bw) = &plan.link_bandwidth {
            if bw.levels.is_empty() {
                return Err(ImpairmentError::new(
                    "link_bandwidth.levels",
                    "must list at least one level",
                    &bw.levels,
                ));
            }
            for &level in &bw.levels {
                if !(level.is_finite() && level >= 0.0) {
                    return Err(ImpairmentError::new(
                        "link_bandwidth.levels",
                        "levels must be finite and non-negative",
                        level,
                    ));
                }
            }
            stay_probability("link_bandwidth.stay", bw.stay)?;
        }
        if let Some(lat) = &plan.latency {
            if lat.ticks.is_empty() {
                return Err(ImpairmentError::new(
                    "latency.ticks",
                    "must list at least one level",
                    &lat.ticks,
                ));
            }
            stay_probability("latency.stay", lat.stay)?;
        }
        Ok(plan)
    }
}

fn probability(field: &'static str, p: f64) -> Result<(), ImpairmentError> {
    if p.is_finite() && (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(ImpairmentError::new(field, "must be a probability in [0, 1]", p))
    }
}

fn stay_probability(field: &'static str, p: f64) -> Result<(), ImpairmentError> {
    if p.is_finite() && (0.0..1.0).contains(&p) {
        Ok(())
    } else {
        Err(ImpairmentError::new(field, "must be a stay probability in [0, 1)", p))
    }
}

fn positive_finite(field: &'static str, v: f64) -> Result<(), ImpairmentError> {
    if v.is_finite() && v > 0.0 {
        Ok(())
    } else {
        Err(ImpairmentError::new(field, "must be finite and positive", v))
    }
}

/// Hashed uniform in `[0, 1)`-ish (the exact legacy mapping: hash scaled
/// by `u64::MAX`).
fn unit(seed: u64, counter: u64) -> f64 {
    derive_seed(seed, counter) as f64 / u64::MAX as f64
}

/// The per-link decision stream seed.
fn link_seed(seed: u64, peer: u64, helper: usize) -> u64 {
    derive_seed(derive_seed(seed ^ SALT_LINK, peer), helper as u64)
}

/// Seekable Gilbert–Elliott state: regenerate from the stationary
/// distribution at the enclosing block boundary, then iterate hashed
/// transitions to `epoch`. Pure in `(seed, epoch)`.
fn ge_bad_at(seed: u64, p_enter_bad: f64, p_exit_bad: f64, epoch: u64) -> bool {
    let block = epoch / REGEN_BLOCK;
    let start = block * REGEN_BLOCK;
    let denom = p_enter_bad + p_exit_bad;
    let mut bad = denom > 0.0 && unit(seed ^ SALT_GE_INIT, block) < p_enter_bad / denom;
    for t in start..epoch {
        let u = unit(seed ^ SALT_GE_STEP, t);
        bad = if bad { u >= p_exit_bad } else { u < p_enter_bad };
    }
    bad
}

/// Seekable sticky birth–death ladder state over `n` levels (stationary
/// weights `[1, 2, …, 2, 1]`, matching
/// [`rths_stoch::markov::MarkovChain::sticky_birth_death`]).
fn ladder_state_at(
    seed: u64,
    init_salt: u64,
    step_salt: u64,
    stay: f64,
    n: usize,
    epoch: u64,
) -> usize {
    if n <= 1 {
        return 0;
    }
    let block = epoch / REGEN_BLOCK;
    let start = block * REGEN_BLOCK;
    // Stationary draw at the block boundary.
    let total = (2 * n - 2) as f64;
    let mut acc = unit(seed ^ init_salt, block) * total;
    let mut state = 0usize;
    for s in 0..n {
        let w = if s == 0 || s == n - 1 { 1.0 } else { 2.0 };
        if acc < w {
            state = s;
            break;
        }
        acc -= w;
        state = s;
    }
    // Transition steps to the queried epoch.
    for t in start..epoch {
        let u = unit(seed ^ step_salt, t);
        if u < stay {
            continue;
        }
        let v = (u - stay) / (1.0 - stay);
        state = if state == 0 {
            1
        } else if state == n - 1 {
            n - 2
        } else if v < 0.5 {
            state - 1
        } else {
            state + 1
        };
    }
    state
}

impl ImpairmentPlan {
    /// No impairments at all (the clean-link default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Starts a builder whose decision streams derive from `seed`
    /// (independent of the simulation seed).
    pub fn builder(seed: u64) -> ImpairmentPlanBuilder {
        ImpairmentPlanBuilder { plan: ImpairmentPlan { seed, ..ImpairmentPlan::default() } }
    }

    /// Whether the plan impairs nothing (jitter and latency count: they
    /// perturb timing, never results).
    pub fn is_none(&self) -> bool {
        matches!(self.loss, LossModel::None)
            && self.jitter_us == 0
            && self.latency.is_none()
            && self.token_bucket.is_none()
            && self.link_bandwidth.is_none()
    }

    /// Whether the plan can change *results* (loss or shaping — as
    /// opposed to timing-only jitter/latency, which the epoch barrier
    /// absorbs).
    pub fn affects_rates(&self) -> bool {
        !matches!(self.loss, LossModel::None)
            || self.token_bucket.is_some()
            || self.link_bandwidth.is_some()
    }

    /// The plan's decision-stream seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The loss model.
    pub fn loss(&self) -> &LossModel {
        &self.loss
    }

    /// Maximum uniform per-message jitter (µs; 0 = disabled).
    pub fn jitter_us(&self) -> u64 {
        self.jitter_us
    }

    /// The latency process, if any.
    pub fn latency(&self) -> Option<&LatencySpec> {
        self.latency.as_ref()
    }

    /// The token-bucket limiter, if any.
    pub fn token_bucket(&self) -> Option<&TokenBucketSpec> {
        self.token_bucket.as_ref()
    }

    /// The link-bandwidth process, if any.
    pub fn link_bandwidth(&self) -> Option<&LinkBandwidthSpec> {
        self.link_bandwidth.as_ref()
    }

    /// Adds uniform timing jitter up to `jitter_us` µs per message
    /// (infallible: mirrors `FaultPlan::with_jitter`).
    #[must_use]
    pub fn with_jitter(mut self, jitter_us: u64) -> Self {
        self.jitter_us = jitter_us;
        self
    }

    /// Whether the payload on link `(peer, helper)` is lost at `epoch`.
    /// Pure in `(seed, peer, helper, epoch)`. The uniform model ignores
    /// `helper` — it reproduces the legacy `FaultPlan` hash stream
    /// bit-for-bit.
    pub fn is_lost(&self, peer: u64, helper: usize, epoch: u64) -> bool {
        match self.loss {
            LossModel::None => false,
            LossModel::Uniform { loss } => {
                if loss <= 0.0 {
                    return false;
                }
                if loss >= 1.0 {
                    return true;
                }
                let h = derive_seed(self.seed, derive_seed(peer, epoch));
                (h as f64 / u64::MAX as f64) < loss
            }
            LossModel::GilbertElliott { p_enter_bad, p_exit_bad, bad_loss, good_loss } => {
                let ls = link_seed(self.seed, peer, helper);
                let p = if ge_bad_at(ls, p_enter_bad, p_exit_bad, epoch) {
                    bad_loss
                } else {
                    good_loss
                };
                if p <= 0.0 {
                    return false;
                }
                if p >= 1.0 {
                    return true;
                }
                unit(ls ^ SALT_GE_DROP, epoch) < p
            }
        }
    }

    /// The link's bandwidth cap at `epoch` (`None` when no link
    /// bandwidth process is configured). Pure in
    /// `(seed, peer, helper, epoch)`.
    pub fn link_cap_kbps(&self, peer: u64, helper: usize, epoch: u64) -> Option<f64> {
        self.link_bandwidth.as_ref().map(|bw| {
            let ls = link_seed(self.seed, peer, helper);
            let state = ladder_state_at(
                ls,
                SALT_BW_INIT,
                SALT_BW_STEP,
                bw.stay,
                bw.levels.len(),
                epoch,
            );
            bw.levels[state]
        })
    }

    /// The deterministic delivery delay for `(actor, epoch)`: the legacy
    /// uniform jitter draw (bit-compatible with `FaultPlan`) plus the
    /// Markov-modulated latency level. The threaded backend sleeps this
    /// many µs before processing a tick; the reactor delays the tick's
    /// delivery by the same number of logical ticks. Either way the
    /// epoch barrier absorbs it: delays must never change results.
    pub fn jitter_ticks(&self, actor: u64, epoch: u64) -> u64 {
        let mut total = 0;
        if self.jitter_us > 0 {
            let h = derive_seed(self.seed ^ 0xDEAD_BEEF, derive_seed(actor, epoch));
            total += h % self.jitter_us;
        }
        if let Some(lat) = &self.latency {
            let seed = derive_seed(self.seed ^ SALT_LAT_INIT, actor);
            let state = ladder_state_at(
                seed,
                SALT_LAT_INIT,
                SALT_LAT_STEP,
                lat.stay,
                lat.ticks.len(),
                epoch,
            );
            total += lat.ticks[state];
        }
        total
    }

    /// Sleeps the deterministic delay for `(actor, epoch)` (no-op when
    /// timing impairments are disabled).
    pub fn apply_jitter(&self, actor: u64, epoch: u64) {
        let us = self.jitter_ticks(actor, epoch);
        if us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
    }
}

/// Per-peer shaping state: the token-bucket level. The only stateful
/// impairment — but its path depends solely on the peer's own
/// delivered-rate sequence, which is identical across backends, so the
/// state is too. Call [`shape`](Self::shape) **exactly once per epoch**.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinkShaper {
    tokens: f64,
    primed: bool,
}

impl LinkShaper {
    /// A fresh shaper (the bucket starts full on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current token level (kbits; meaningful after the first `shape`).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Applies the plan's shaping pipeline to one epoch's offered rate:
    /// first the link-bandwidth cap (memoryless), then the token bucket
    /// (refill, then spend). Returns the shaped rate. With neither
    /// configured the offered rate passes through bit-identically.
    pub fn shape(
        &mut self,
        plan: &ImpairmentPlan,
        peer: u64,
        helper: usize,
        epoch: u64,
        offered_kbps: f64,
    ) -> f64 {
        let mut rate = offered_kbps;
        if let Some(cap) = plan.link_cap_kbps(peer, helper, epoch) {
            rate = rate.min(cap);
        }
        if let Some(tb) = plan.token_bucket() {
            if self.primed {
                self.tokens = (self.tokens + tb.rate_kbps).min(tb.burst_kbits);
            } else {
                self.tokens = tb.burst_kbits;
                self.primed = true;
            }
            let granted = rate.min(self.tokens);
            self.tokens -= granted;
            rate = granted;
        }
        rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ge_plan(seed: u64) -> ImpairmentPlan {
        ImpairmentPlan::builder(seed).gilbert_loss(0.05, 0.25, 0.8, 0.02).build().unwrap()
    }

    #[test]
    fn none_plan_is_inert() {
        let plan = ImpairmentPlan::none();
        assert!(plan.is_none());
        assert!(!plan.affects_rates());
        for peer in 0..20 {
            assert!(!plan.is_lost(peer, 0, peer));
            assert_eq!(plan.jitter_ticks(peer, 3), 0);
            assert_eq!(plan.link_cap_kbps(peer, 0, 3), None);
        }
        let mut shaper = LinkShaper::new();
        assert_eq!(shaper.shape(&plan, 1, 0, 0, 731.25).to_bits(), 731.25f64.to_bits());
    }

    #[test]
    fn uniform_loss_matches_legacy_fault_hash() {
        // The legacy FaultPlan formula, replicated literally: migrating
        // with_faults → with_impairments must not change a single drop.
        let seed = 42u64;
        let loss = 0.3;
        let plan = ImpairmentPlan::builder(seed).uniform_loss(loss).build().unwrap();
        for peer in 0..500u64 {
            for epoch in [0u64, 1, 7, 100] {
                let h = derive_seed(seed, derive_seed(peer, epoch));
                let legacy = (h as f64 / u64::MAX as f64) < loss;
                // Uniform loss ignores the helper by construction.
                assert_eq!(plan.is_lost(peer, 0, epoch), legacy);
                assert_eq!(plan.is_lost(peer, 3, epoch), legacy);
            }
        }
    }

    #[test]
    fn legacy_jitter_stream_is_preserved() {
        let plan = ImpairmentPlan::builder(9).build().unwrap().with_jitter(200);
        for actor in 0..50u64 {
            let h = derive_seed(9 ^ 0xDEAD_BEEF, derive_seed(actor, 5));
            assert_eq!(plan.jitter_ticks(actor, 5), h % 200);
        }
    }

    #[test]
    fn gilbert_loss_is_deterministic_and_link_local() {
        let a = ge_plan(7);
        let b = ge_plan(7);
        let mut differs_by_helper = 0;
        for peer in 0..50 {
            for epoch in 0..200 {
                assert_eq!(a.is_lost(peer, 0, epoch), b.is_lost(peer, 0, epoch));
                if a.is_lost(peer, 0, epoch) != a.is_lost(peer, 1, epoch) {
                    differs_by_helper += 1;
                }
            }
        }
        // Different helpers are different links with independent streams.
        assert!(differs_by_helper > 100, "links not independent: {differs_by_helper}");
    }

    #[test]
    fn gilbert_loss_rate_matches_stationary_mixture() {
        // pi_bad = p_enter/(p_enter+p_exit) = 1/6; expected loss
        // = pi_bad·0.8 + pi_good·0.02 = 0.15.
        let plan = ge_plan(3);
        let n = 60_000u64;
        let dropped = (0..n).filter(|&i| plan.is_lost(i % 300, 0, i / 300)).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.15).abs() < 0.015, "loss rate {rate}");
    }

    #[test]
    fn gilbert_loss_is_bursty() {
        // Within a link, P(lost at t+1 | lost at t) must far exceed the
        // marginal loss rate — the whole point of the burst model.
        let plan = ge_plan(11);
        let mut lost_pairs = 0u64;
        let mut lost = 0u64;
        let mut total = 0u64;
        for peer in 0..100u64 {
            let mut prev = false;
            for epoch in 0..500u64 {
                // Skip pairs spanning a regeneration boundary.
                let now = plan.is_lost(peer, 0, epoch);
                if epoch % REGEN_BLOCK != 0 && prev {
                    total += 1;
                    if now {
                        lost_pairs += 1;
                    }
                }
                if now {
                    lost += 1;
                }
                prev = now;
            }
        }
        let marginal = lost as f64 / (100.0 * 500.0);
        let conditional = lost_pairs as f64 / total as f64;
        assert!(
            conditional > marginal * 2.5,
            "no burstiness: marginal {marginal}, conditional {conditional}"
        );
    }

    #[test]
    fn ladder_states_follow_stationary_weights() {
        // 3 levels: stationary [1, 2, 1]/4.
        let n = 40_000u64;
        let mut counts = [0u64; 3];
        for i in 0..n {
            counts[ladder_state_at(
                derive_seed(5, i % 100),
                SALT_BW_INIT,
                SALT_BW_STEP,
                0.9,
                3,
                i / 100,
            )] += 1;
        }
        let mid = counts[1] as f64 / n as f64;
        assert!((mid - 0.5).abs() < 0.03, "middle-state mass {mid}");
    }

    #[test]
    fn ladder_is_sticky() {
        // With stay=0.95, consecutive states within a block are mostly
        // equal.
        let mut same = 0u64;
        let mut total = 0u64;
        for link in 0..50u64 {
            for epoch in 1..200u64 {
                if epoch % REGEN_BLOCK == 0 {
                    continue;
                }
                let s = |e| ladder_state_at(link, SALT_BW_INIT, SALT_BW_STEP, 0.95, 5, e);
                total += 1;
                if s(epoch) == s(epoch - 1) {
                    same += 1;
                }
            }
        }
        let frac = same as f64 / total as f64;
        assert!(frac > 0.9, "not sticky: {frac}");
    }

    #[test]
    fn link_cap_reads_the_configured_levels() {
        let plan = ImpairmentPlan::builder(2)
            .link_bandwidth(vec![100.0, 500.0, 900.0], 0.9)
            .build()
            .unwrap();
        for peer in 0..20 {
            for epoch in 0..100 {
                let cap = plan.link_cap_kbps(peer, 1, epoch).unwrap();
                assert!([100.0, 500.0, 900.0].contains(&cap));
            }
        }
    }

    #[test]
    fn token_bucket_passes_bursts_and_clips_sustained_rates() {
        let plan = ImpairmentPlan::builder(1).token_bucket(300.0, 900.0).build().unwrap();
        let mut shaper = LinkShaper::new();
        // First epoch: the full burst passes.
        assert_eq!(shaper.shape(&plan, 0, 0, 0, 900.0), 900.0);
        // Sustained overload converges to the refill rate.
        let mut last = 0.0;
        for epoch in 1..10 {
            last = shaper.shape(&plan, 0, 0, epoch, 900.0);
        }
        assert_eq!(last, 300.0);
        // An idle epoch refills the bucket for a later burst.
        assert_eq!(shaper.shape(&plan, 0, 0, 10, 0.0), 0.0);
        let burst = shaper.shape(&plan, 0, 0, 11, 900.0);
        assert_eq!(burst, 600.0, "two refills worth of tokens");
    }

    #[test]
    fn under_rate_traffic_is_untouched_by_the_bucket() {
        let plan = ImpairmentPlan::builder(1).token_bucket(500.0, 1000.0).build().unwrap();
        let mut shaper = LinkShaper::new();
        for epoch in 0..50 {
            let r = shaper.shape(&plan, 0, 0, epoch, 400.0);
            assert_eq!(r.to_bits(), 400.0f64.to_bits());
        }
    }

    #[test]
    fn shaping_pipeline_applies_cap_before_bucket() {
        let plan = ImpairmentPlan::builder(4)
            .link_bandwidth(vec![200.0], 0.0)
            .token_bucket(1000.0, 2000.0)
            .build()
            .unwrap();
        let mut shaper = LinkShaper::new();
        // The 200 kbps link cap binds before the generous bucket.
        assert_eq!(shaper.shape(&plan, 0, 0, 0, 800.0), 200.0);
    }

    // One rejection test per out-of-range field.

    #[test]
    fn rejects_uniform_loss_above_one() {
        let err = ImpairmentPlan::builder(0).uniform_loss(1.5).build().unwrap_err();
        assert_eq!(err.field(), "loss");
    }

    #[test]
    fn rejects_negative_uniform_loss() {
        let err = ImpairmentPlan::builder(0).uniform_loss(-0.1).build().unwrap_err();
        assert_eq!(err.field(), "loss");
    }

    #[test]
    fn rejects_gilbert_p_enter_bad() {
        let err =
            ImpairmentPlan::builder(0).gilbert_loss(1.2, 0.5, 0.5, 0.0).build().unwrap_err();
        assert_eq!(err.field(), "loss.p_enter_bad");
    }

    #[test]
    fn rejects_gilbert_p_exit_bad() {
        let err =
            ImpairmentPlan::builder(0).gilbert_loss(0.2, -0.5, 0.5, 0.0).build().unwrap_err();
        assert_eq!(err.field(), "loss.p_exit_bad");
    }

    #[test]
    fn rejects_gilbert_bad_loss() {
        let err = ImpairmentPlan::builder(0)
            .gilbert_loss(0.2, 0.5, f64::NAN, 0.0)
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "loss.bad_loss");
    }

    #[test]
    fn rejects_gilbert_good_loss() {
        let err =
            ImpairmentPlan::builder(0).gilbert_loss(0.2, 0.5, 0.5, 2.0).build().unwrap_err();
        assert_eq!(err.field(), "loss.good_loss");
    }

    #[test]
    fn rejects_nonpositive_bucket_rate() {
        let err = ImpairmentPlan::builder(0).token_bucket(0.0, 100.0).build().unwrap_err();
        assert_eq!(err.field(), "token_bucket.rate_kbps");
    }

    #[test]
    fn rejects_nonpositive_bucket_burst() {
        let err = ImpairmentPlan::builder(0).token_bucket(100.0, -5.0).build().unwrap_err();
        assert_eq!(err.field(), "token_bucket.burst_kbits");
    }

    #[test]
    fn rejects_empty_bandwidth_ladder() {
        let err = ImpairmentPlan::builder(0).link_bandwidth(vec![], 0.9).build().unwrap_err();
        assert_eq!(err.field(), "link_bandwidth.levels");
    }

    #[test]
    fn rejects_negative_bandwidth_level() {
        let err = ImpairmentPlan::builder(0)
            .link_bandwidth(vec![100.0, -1.0], 0.9)
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "link_bandwidth.levels");
    }

    #[test]
    fn rejects_bandwidth_stay_of_one() {
        let err =
            ImpairmentPlan::builder(0).link_bandwidth(vec![100.0], 1.0).build().unwrap_err();
        assert_eq!(err.field(), "link_bandwidth.stay");
    }

    #[test]
    fn rejects_empty_latency_ladder() {
        let err = ImpairmentPlan::builder(0).latency(vec![], 0.9).build().unwrap_err();
        assert_eq!(err.field(), "latency.ticks");
    }

    #[test]
    fn rejects_latency_stay_out_of_range() {
        let err = ImpairmentPlan::builder(0).latency(vec![0, 5], 1.5).build().unwrap_err();
        assert_eq!(err.field(), "latency.stay");
    }
}
