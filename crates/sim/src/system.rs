//! The single-channel simulation engine.
//!
//! Peers live in the sharded structure-of-arrays [`PeerStore`]; the
//! per-peer choose/observe phases run shard-parallel with index-ordered
//! reductions, so results are bit-for-bit identical at any shard count
//! and any `RTHS_THREADS` (see the store docs for the contract).

use rand::rngs::StdRng;
use rths_game::JointDistribution;
use rths_obs::{self as obs, Phase};
use rths_stoch::rng::seeded_rng;

use crate::config::SimConfig;
use crate::helper::{Helper, HelperId};
use crate::impairment::LinkShaper;
use crate::metrics::SimMetrics;
use crate::server::StreamingServer;
use crate::store::{PeerStore, ShardScratch};

/// Result of (so far) running a [`System`].
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Total epochs executed.
    pub epochs: u64,
    /// All recorded metrics.
    pub metrics: SimMetrics,
    /// Peers online at the end.
    pub final_population: usize,
    /// Joint action distribution (recorded only for churn-free runs,
    /// where profiles have a fixed player set).
    pub joint: Option<JointDistribution>,
    /// Per-peer delivered-rate series (only when
    /// `record_peer_rates` was set on a churn-free run); outer index =
    /// peer, inner = epoch. Feed to [`crate::playback::PlaybackBuffer`]
    /// for QoE analysis.
    pub peer_rate_series: Option<Vec<Vec<f64>>>,
    /// Helper capacities at the final epoch.
    pub final_capacities: Vec<f64>,
}

/// Reusable per-epoch buffers, hoisted out of [`System::step_epoch`] so
/// steady-state epochs allocate nothing: each buffer is cleared and
/// refilled in place every epoch (capacity is retained across epochs).
#[derive(Debug, Default)]
struct EpochScratch {
    /// Chosen helper per peer (u32 — helper sets stay far below 2³²).
    profile: Vec<u32>,
    /// Unused auxiliary choice column (the multi-channel engine maps
    /// local→global helper indices here; kept for the shared phase API).
    aux: Vec<u32>,
    /// Peers per helper (merged from the per-shard histograms).
    loads: Vec<usize>,
    /// Realized per-connection share per helper.
    shares: Vec<f64>,
    /// Counterfactual join rate per helper.
    join_rates: Vec<f64>,
    /// `[0, h]` — the single channel's window into `join_rates`.
    join_offsets: Vec<usize>,
    /// Unmet demand per peer.
    residuals: Vec<f64>,
    /// Delivered rate per peer.
    delivered: Vec<f64>,
    /// Per-shard thread-affine scratch.
    shards: Vec<ShardScratch>,
    /// Churn: mirror of the historical swap-remove draw sequence.
    alive: Vec<u32>,
    /// Churn: slots departing this epoch.
    removing: Vec<u32>,
    /// Profile widened to `usize` for joint-distribution recording.
    profile_usize: Vec<usize>,
    /// Impairment-shaped delivered rate per peer (loss + link cap +
    /// token bucket, before the demand cap). Only filled when the
    /// impairment plan affects rates.
    shaped: Vec<f64>,
}

/// The single-channel helper-assisted streaming system.
pub struct System {
    config: SimConfig,
    helpers: Vec<Helper>,
    peers: PeerStore,
    server: StreamingServer,
    metrics: SimMetrics,
    joint: Option<JointDistribution>,
    peer_rate_series: Option<Vec<Vec<f64>>>,
    epoch: u64,
    master_rng: StdRng,
    scratch: EpochScratch,
    /// Per-peer token-bucket state, slot-aligned with the peer store and
    /// keyed by stable id so churn can evict departed peers without
    /// touching survivors. Empty unless the impairment plan shapes rates.
    links: Vec<(u64, LinkShaper)>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("epoch", &self.epoch)
            .field("peers", &self.peers.len())
            .field("helpers", &self.helpers.len())
            .finish()
    }
}

impl System {
    /// Builds the system from a configuration: instantiates helper
    /// bandwidth processes and the initial peer population, all seeded
    /// deterministically from `config.seed`.
    pub fn new(config: SimConfig) -> Self {
        let mut master_rng = seeded_rng(config.seed);
        let helpers: Vec<Helper> = config
            .helpers
            .iter()
            .enumerate()
            .map(|(j, spec)| {
                Helper::with_seed(
                    HelperId(j as u32),
                    spec.instantiate(&mut master_rng),
                    config.seed,
                )
            })
            .collect();
        let mut peers = PeerStore::new(
            config.seed,
            config.learner.clone(),
            config.rate_scale(),
            &[helpers.len()],
        );
        peers.reserve(config.num_peers);
        for _ in 0..config.num_peers {
            peers.spawn(0, 0);
        }
        let metrics = SimMetrics::new(helpers.len());
        let track_joint =
            config.churn.arrival_rate() == 0.0 && config.churn.departure_prob() == 0.0;
        let track_rates = track_joint && config.record_peer_rates;
        Self {
            joint: track_joint.then(JointDistribution::new),
            peer_rate_series: track_rates.then(|| vec![Vec::new(); config.num_peers]),
            config,
            helpers,
            peers,
            server: StreamingServer::new(),
            metrics,
            epoch: 0,
            master_rng,
            scratch: EpochScratch::default(),
            links: Vec::new(),
        }
    }

    /// Current epoch count.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Online peers.
    pub fn num_peers(&self) -> usize {
        self.peers.len()
    }

    /// The helpers (e.g. for failure injection via
    /// [`set_helper_online`](Self::set_helper_online)).
    pub fn helpers(&self) -> &[Helper] {
        &self.helpers
    }

    /// The sharded SoA peer store (stable ids, per-peer accounting).
    pub fn peers(&self) -> &PeerStore {
        &self.peers
    }

    /// Pins the peer-store shard count (tests/benches); `None` restores
    /// the default derived from [`rths_par::threads`]. Results are
    /// bit-identical at any setting.
    pub fn set_shards(&mut self, shards: Option<usize>) {
        self.peers.set_shards(shards);
    }

    /// Current helper capacities.
    pub fn capacities(&self) -> Vec<f64> {
        self.helpers.iter().map(Helper::capacity).collect()
    }

    /// Injects a helper failure (or recovery). Peers are not notified —
    /// they must *learn* the change, which is the point of the churn
    /// ablation.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_helper_online(&mut self, index: usize, online: bool) {
        self.helpers[index].set_online(online);
    }

    /// The configured baseline churn arrival rate (used by workload
    /// generators to scale surges).
    pub fn config_arrival_rate(&self) -> f64 {
        self.config.churn.arrival_rate()
    }

    /// Adds `Poisson(lambda)` extra peers immediately (flash-crowd /
    /// diurnal workload injection, on top of the configured churn).
    pub fn inject_arrivals(&mut self, lambda: f64) {
        let extra = rths_stoch::process::sample_poisson(&mut self.master_rng, lambda);
        for _ in 0..extra {
            self.peers.spawn(0, self.epoch);
        }
    }

    /// Removes the peer with stable id `id` immediately (scripted
    /// departures for workloads and the departure-stability test).
    /// Returns whether the peer was online. Survivors keep their slots'
    /// relative order and their entire state — the departure can never
    /// re-alias another peer's RNG stream, learner row, or rate column.
    pub fn depart_peer(&mut self, id: u64) -> bool {
        match self.peers.slot_of(id) {
            Some(slot) => {
                self.scratch.removing.clear();
                self.scratch.removing.push(slot as u32);
                self.peers.remove_slots(&mut self.scratch.removing);
                true
            }
            None => false,
        }
    }

    /// Runs `epochs` additional epochs and returns the cumulative outcome.
    pub fn run(&mut self, epochs: u64) -> Outcome {
        for _ in 0..epochs {
            self.step_epoch();
        }
        self.outcome()
    }

    /// Executes exactly one epoch.
    pub fn step_epoch(&mut self) {
        let h = self.helpers.len();
        // Observability: tag the epoch for layers below the epoch
        // protocol and open the whole-epoch span. Spans only read the
        // monotonic clock into side buffers, so traced trajectories are
        // bit-identical to untraced ones (pinned by `obs_neutrality`).
        let ep = self.epoch;
        if obs::enabled() {
            obs::set_epoch(ep);
        }
        let t_epoch = obs::span_start();

        // 1. Helper bandwidth dynamics (each on its own RNG stream).
        let t = obs::span_start();
        for helper in &mut self.helpers {
            helper.step();
        }
        if let Some(t) = t {
            obs::span_end(Phase::HelperDynamics, ep, t);
        }

        // 2. Churn. Departure slots are drawn with the historical
        // swap-remove sequence against a mirror vector (so the master RNG
        // stream is unchanged), then removed in one order-preserving
        // compaction: survivors keep their slot order and identity.
        let t = obs::span_start();
        let events = self.config.churn.sample_epoch(&mut self.master_rng, self.peers.len());
        if events.departures > 0 {
            let EpochScratch { alive, removing, .. } = &mut self.scratch;
            alive.clear();
            alive.extend(0..self.peers.len() as u32);
            removing.clear();
            for _ in 0..events.departures.min(self.peers.len() as u64) {
                let idx = rand::Rng::gen_range(&mut self.master_rng, 0..alive.len());
                removing.push(alive.swap_remove(idx));
            }
            self.peers.remove_slots(removing);
        }
        for _ in 0..events.arrivals {
            self.peers.spawn(0, self.epoch);
        }
        if let Some(t) = t {
            obs::span_end(Phase::Churn, ep, t);
        }

        // 3. Decentralized helper selection: shard-parallel over the peer
        // store; each peer samples from its own RNG stream, so the choice
        // profile is independent of the shard partition. Loads accumulate
        // into per-shard histograms merged in shard order (integer counts
        // — order-insensitive).
        let n = self.peers.len();
        let demand = self.config.demand;
        let EpochScratch {
            profile,
            aux,
            loads,
            shares,
            join_rates,
            join_offsets,
            residuals,
            delivered,
            shards,
            profile_usize,
            shaped,
            ..
        } = &mut self.scratch;
        // resize without clear: choose_phase writes every slot (aux is
        // write-only here), so no per-epoch memset is needed.
        profile.resize(n, 0);
        aux.resize(n, 0);
        let t = obs::span_start();
        self.peers.choose_phase(profile, aux, loads, h, shards, |_, choice, _, _, loads| {
            loads[choice as usize] += 1;
        });
        if let Some(t) = t {
            obs::span_end(Phase::Choose, ep, t);
        }

        // 4-5. Rate allocation and bandit feedback. The per-peer phase
        // records each peer's rate into an index-aligned slot; all
        // order-sensitive float reductions happen afterwards in peer
        // order, so results are bit-identical at any shard count.
        let t = obs::span_start();
        shares.clear();
        shares.extend(self.helpers.iter().zip(loads.iter()).map(|(hp, &l)| hp.share(l)));
        join_rates.clear();
        join_rates.extend(self.helpers.iter().zip(loads.iter()).map(|(hp, &l)| {
            let raw = hp.share(l + 1);
            match demand {
                Some(d) => raw.min(d),
                None => raw,
            }
        }));
        join_offsets.clear();
        join_offsets.extend([0, h]);
        delivered.resize(n, 0.0);
        if let Some(t) = t {
            obs::span_end(Phase::RateAlloc, ep, t);
        }

        // Link impairments (loss, per-link bandwidth caps, token-bucket
        // shaping) are applied between the helper's even split and the
        // demand cap — the same pipeline order as the `rths_net`
        // machines, so trajectories stay bit-identical across backends.
        // The token bucket is stateful, so the shaped column is computed
        // sequentially here (the observe phase's rate closure runs
        // shard-parallel and must stay pure).
        let t = obs::span_start();
        let shaped_rates: Option<&[f64]> = if self.config.impairment.affects_rates() {
            let plan = &self.config.impairment;
            let ids = self.peers.ids();
            // Sync shaper slots with the population: survivors keep
            // their bucket state (the store preserves ascending-id slot
            // order through churn; arrivals always get larger ids, so
            // the retained prefix stays slot-aligned).
            self.links.retain(|&(id, _)| ids.binary_search(&id).is_ok());
            for &id in &ids[self.links.len()..] {
                self.links.push((id, LinkShaper::new()));
            }
            shaped.clear();
            for slot in 0..n {
                let choice = profile[slot] as usize;
                let id = ids[slot];
                let offered =
                    if plan.is_lost(id, choice, self.epoch) { 0.0 } else { shares[choice] };
                shaped.push(self.links[slot].1.shape(plan, id, choice, self.epoch, offered));
            }
            Some(&**shaped)
        } else {
            None
        };
        if let Some(t) = t {
            obs::span_end(Phase::Impairment, ep, t);
        }

        let t = obs::span_start();
        let (worst_est, worst_emp) = {
            let shares = &*shares;
            self.peers.observe_phase(
                profile,
                delivered,
                join_offsets,
                join_rates,
                shards,
                // The single-channel engine records worst_regret_estimate.
                true,
                move |slot, choice, _| {
                    let rate = match shaped_rates {
                        Some(s) => s[slot],
                        None => shares[choice as usize],
                    };
                    match demand {
                        Some(d) => {
                            let r = rate.min(d);
                            (r, r >= d - 1e-9)
                        }
                        None => (rate, true),
                    }
                },
            )
        };
        if let Some(t) = t {
            obs::span_end(Phase::Observe, ep, t);
        }
        let mut welfare = 0.0;
        residuals.clear();
        for &rate in delivered.iter() {
            welfare += rate;
            residuals.push(match demand {
                Some(d) => (d - rate).max(0.0),
                None => 0.0,
            });
        }
        if let Some(series) = &mut self.peer_rate_series {
            for (s, &r) in series.iter_mut().zip(delivered.iter()) {
                s.push(r);
            }
        }

        // 6. Server settles residual demand.
        let t = obs::span_start();
        let total_demand = demand.unwrap_or(0.0) * self.peers.len() as f64;
        let helper_min: f64 = self.helpers.iter().map(Helper::min_capacity).sum();
        let helper_now: f64 = self.helpers.iter().map(Helper::capacity).sum();
        let server_epoch =
            self.server.settle_epoch(residuals, total_demand, helper_min, helper_now);
        if let Some(t) = t {
            obs::span_end(Phase::Settle, ep, t);
        }

        // 7. Metrics.
        let t = obs::span_start();
        self.metrics.welfare.push(welfare);
        self.metrics.server_load.push(server_epoch.load);
        self.metrics.min_deficit.push(server_epoch.min_deficit);
        self.metrics.current_deficit.push(server_epoch.current_deficit);
        self.metrics.population.push(self.peers.len() as f64);
        self.metrics.jain.push(rths_math::stats::jain_index(delivered));
        self.metrics.worst_regret_estimate.push(worst_est);
        self.metrics.worst_empirical_regret.push(worst_emp);
        // Per-epoch switches = difference of cumulative counts.
        let total_switches = self.peers.total_switches();
        let prev_total = self.metrics.switches.values().iter().sum::<f64>();
        self.metrics.switches.push((total_switches as f64 - prev_total).max(0.0));
        for (series, &l) in self.metrics.helper_loads.iter_mut().zip(loads.iter()) {
            series.push(l as f64);
        }

        if let Some(joint) = &mut self.joint {
            if self.epoch >= self.config.record_joint_from {
                profile_usize.clear();
                profile_usize.extend(profile.iter().map(|&a| a as usize));
                joint.record(profile_usize);
            }
        }
        if let Some(t) = t {
            obs::span_end(Phase::Metrics, ep, t);
        }
        if let Some(t) = t_epoch {
            obs::span_end(Phase::Epoch, ep, t);
        }
        self.epoch += 1;
    }

    /// Snapshot of cumulative results.
    pub fn outcome(&self) -> Outcome {
        let mut metrics = self.metrics.clone();
        let denom = self.epoch.max(1) as f64;
        metrics.mean_helper_loads = metrics
            .helper_loads
            .iter()
            .map(|s| s.values().iter().sum::<f64>() / denom)
            .collect();
        metrics.mean_peer_rates =
            (0..self.peers.len()).map(|i| self.peers.mean_rate(i)).collect();
        metrics.peer_continuity =
            (0..self.peers.len()).map(|i| self.peers.continuity(i)).collect();
        Outcome {
            epochs: self.epoch,
            metrics,
            final_population: self.peers.len(),
            joint: self.joint.clone(),
            peer_rate_series: self.peer_rate_series.clone(),
            final_capacities: self.capacities(),
        }
    }

    /// Mean server load so far (convenience for Fig. 5 summaries).
    pub fn mean_server_load(&self) -> f64 {
        self.server.mean_load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BandwidthSpec, SimConfig};
    use rths_stoch::process::ChurnProcess;

    fn small_config(seed: u64) -> SimConfig {
        SimConfig::builder(10, vec![BandwidthSpec::Paper { stay: 0.98 }; 4]).seed(seed).build()
    }

    #[test]
    fn run_advances_epochs_and_metrics() {
        let mut sys = System::new(small_config(1));
        let out = sys.run(100);
        assert_eq!(out.epochs, 100);
        assert_eq!(out.metrics.epochs(), 100);
        assert_eq!(out.final_population, 10);
        assert_eq!(out.metrics.mean_peer_rates.len(), 10);
        assert_eq!(out.metrics.mean_helper_loads.len(), 4);
        assert!(out.joint.is_some());
    }

    #[test]
    fn runs_are_deterministic_given_seed() {
        let run = |seed| {
            let mut sys = System::new(small_config(seed));
            let out = sys.run(200);
            (out.metrics.welfare.values().to_vec(), out.metrics.mean_helper_loads.clone())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0);
    }

    #[test]
    fn welfare_conservation_uncapped() {
        // Delivered welfare equals the busy-capacity sum every epoch; in
        // particular it never exceeds total capacity (900·H bound).
        let mut sys = System::new(small_config(2));
        let out = sys.run(300);
        for &w in out.metrics.welfare.values() {
            assert!(w <= 4.0 * 900.0 + 1e-9, "welfare {w} above max capacity");
            assert!(w >= 0.0);
        }
    }

    #[test]
    fn loads_sum_to_population_every_epoch() {
        let mut sys = System::new(small_config(3));
        let out = sys.run(50);
        for e in 0..50 {
            let total: f64 = out.metrics.helper_loads.iter().map(|s| s.values()[e]).sum();
            assert_eq!(total, out.metrics.population.values()[e]);
        }
    }

    #[test]
    fn demand_capped_run_has_server_load_and_satisfies_bound() {
        // Demand 400 × 10 peers = 4000 > helper capacity (≤3600), so the
        // server must carry load ≥ the current deficit bound.
        let config = SimConfig::builder(10, vec![BandwidthSpec::Paper { stay: 0.98 }; 4])
            .demand(400.0)
            .seed(4)
            .build();
        let mut sys = System::new(config);
        let out = sys.run(200);
        for e in 0..200 {
            let load = out.metrics.server_load.values()[e];
            let bound = out.metrics.current_deficit.values()[e];
            assert!(load >= bound - 1e-6, "epoch {e}: load {load} below deficit bound {bound}");
        }
        assert!(sys.mean_server_load() > 0.0);
    }

    #[test]
    fn churn_changes_population() {
        let config = SimConfig::builder(20, vec![BandwidthSpec::Paper { stay: 0.98 }; 3])
            .churn(ChurnProcess::new(1.0, 0.05))
            .seed(5)
            .build();
        let mut sys = System::new(config);
        let out = sys.run(300);
        let pops = out.metrics.population.values();
        let min = pops.iter().copied().fold(f64::INFINITY, f64::min);
        let max = pops.iter().copied().fold(0.0f64, f64::max);
        assert!(max > min, "population never changed under churn");
        // Joint distribution is disabled under churn.
        assert!(out.joint.is_none());
    }

    #[test]
    fn churned_survivors_keep_insertion_order_and_ids() {
        let config = SimConfig::builder(30, vec![BandwidthSpec::Paper { stay: 0.98 }; 3])
            .churn(ChurnProcess::new(0.5, 0.03))
            .seed(11)
            .build();
        let mut sys = System::new(config);
        let _ = sys.run(200);
        let ids = sys.peers().ids();
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "slot order drifted from id order: {ids:?}"
        );
    }

    #[test]
    fn depart_peer_removes_exactly_one() {
        let mut sys = System::new(small_config(12));
        let _ = sys.run(5);
        assert!(sys.depart_peer(3));
        assert!(!sys.depart_peer(3), "peer 3 should be gone");
        assert_eq!(sys.num_peers(), 9);
        assert_eq!(sys.peers().slot_of(4), Some(3));
        let out = sys.run(5);
        assert_eq!(out.final_population, 9);
    }

    #[test]
    fn helper_failure_redirects_peers() {
        // Uses the conditional-regret extension: the paper's literal
        // update leaves rarely-played rows with near-zero proxy regret,
        // which makes evacuation from a dead helper slow (see
        // RthsConfig::conditional docs). Both variants are compared in
        // the `ablation_churn` bench.
        let config = SimConfig::builder(12, vec![BandwidthSpec::Constant(800.0); 3])
            .learner(crate::config::LearnerSpec {
                conditional: true,
                ..crate::config::LearnerSpec::default()
            })
            .seed(6)
            .build();
        let mut sys = System::new(config);
        let _ = sys.run(1500);
        sys.set_helper_online(0, false);
        let out = sys.run(1500);
        // In the last epochs, the dead helper should carry little load
        // beyond the exploration floor (12 peers × δ/m ≈ 0.4).
        let last: Vec<f64> =
            out.metrics.helper_loads[0].values().iter().rev().take(200).copied().collect();
        let mean_load_dead = rths_math::stats::mean(&last);
        assert!(
            mean_load_dead < 2.0,
            "peers kept using the dead helper: mean load {mean_load_dead}"
        );
    }

    #[test]
    fn empirical_regret_decays() {
        let mut sys = System::new(small_config(8));
        let out = sys.run(3000);
        let series = out.metrics.worst_empirical_regret;
        let early = rths_math::stats::mean(&series.values()[20..120]);
        let late = series.tail_mean(300);
        assert!(late < early * 0.6, "no decay: early {early}, late {late}");
    }

    #[test]
    fn outcome_is_cumulative_across_run_calls() {
        let mut sys = System::new(small_config(9));
        let _ = sys.run(50);
        let out = sys.run(50);
        assert_eq!(out.epochs, 100);
        assert_eq!(out.metrics.epochs(), 100);
    }
}
